# Empty dependencies file for brand_extraction.
# This may be replaced when dependencies are built.
