file(REMOVE_RECURSE
  "CMakeFiles/brand_extraction.dir/brand_extraction.cpp.o"
  "CMakeFiles/brand_extraction.dir/brand_extraction.cpp.o.d"
  "brand_extraction"
  "brand_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brand_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
