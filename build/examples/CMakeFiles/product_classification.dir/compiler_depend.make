# Empty compiler generated dependencies file for product_classification.
# This may be replaced when dependencies are built.
