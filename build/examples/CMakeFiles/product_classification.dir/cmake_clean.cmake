file(REMOVE_RECURSE
  "CMakeFiles/product_classification.dir/product_classification.cpp.o"
  "CMakeFiles/product_classification.dir/product_classification.cpp.o.d"
  "product_classification"
  "product_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
