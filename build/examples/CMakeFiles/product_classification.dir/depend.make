# Empty dependencies file for product_classification.
# This may be replaced when dependencies are built.
