file(REMOVE_RECURSE
  "CMakeFiles/tweet_tagging.dir/tweet_tagging.cpp.o"
  "CMakeFiles/tweet_tagging.dir/tweet_tagging.cpp.o.d"
  "tweet_tagging"
  "tweet_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tweet_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
