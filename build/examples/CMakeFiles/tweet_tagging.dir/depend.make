# Empty dependencies file for tweet_tagging.
# This may be replaced when dependencies are built.
