# Empty dependencies file for rule_authoring.
# This may be replaced when dependencies are built.
