file(REMOVE_RECURSE
  "CMakeFiles/rule_authoring.dir/rule_authoring.cpp.o"
  "CMakeFiles/rule_authoring.dir/rule_authoring.cpp.o.d"
  "rule_authoring"
  "rule_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
