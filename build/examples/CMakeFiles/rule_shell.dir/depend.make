# Empty dependencies file for rule_shell.
# This may be replaced when dependencies are built.
