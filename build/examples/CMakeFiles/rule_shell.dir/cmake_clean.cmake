file(REMOVE_RECURSE
  "CMakeFiles/rule_shell.dir/rule_shell.cpp.o"
  "CMakeFiles/rule_shell.dir/rule_shell.cpp.o.d"
  "rule_shell"
  "rule_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
