file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_synonyms.dir/bench_table1_synonyms.cpp.o"
  "CMakeFiles/bench_table1_synonyms.dir/bench_table1_synonyms.cpp.o.d"
  "bench_table1_synonyms"
  "bench_table1_synonyms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_synonyms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
