# Empty dependencies file for bench_table1_synonyms.
# This may be replaced when dependencies are built.
