file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_synonym_eval.dir/bench_sec51_synonym_eval.cpp.o"
  "CMakeFiles/bench_sec51_synonym_eval.dir/bench_sec51_synonym_eval.cpp.o.d"
  "bench_sec51_synonym_eval"
  "bench_sec51_synonym_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_synonym_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
