# Empty compiler generated dependencies file for bench_sec51_synonym_eval.
# This may be replaced when dependencies are built.
