file(REMOVE_RECURSE
  "CMakeFiles/bench_tail_and_drift.dir/bench_tail_and_drift.cpp.o"
  "CMakeFiles/bench_tail_and_drift.dir/bench_tail_and_drift.cpp.o.d"
  "bench_tail_and_drift"
  "bench_tail_and_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tail_and_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
