# Empty dependencies file for bench_tail_and_drift.
# This may be replaced when dependencies are built.
