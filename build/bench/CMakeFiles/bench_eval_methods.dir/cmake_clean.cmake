file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_methods.dir/bench_eval_methods.cpp.o"
  "CMakeFiles/bench_eval_methods.dir/bench_eval_methods.cpp.o.d"
  "bench_eval_methods"
  "bench_eval_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
