# Empty dependencies file for bench_eval_methods.
# This may be replaced when dependencies are built.
