file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_rule_mining.dir/bench_sec52_rule_mining.cpp.o"
  "CMakeFiles/bench_sec52_rule_mining.dir/bench_sec52_rule_mining.cpp.o.d"
  "bench_sec52_rule_mining"
  "bench_sec52_rule_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_rule_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
