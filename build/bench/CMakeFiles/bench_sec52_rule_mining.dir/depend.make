# Empty dependencies file for bench_sec52_rule_mining.
# This may be replaced when dependencies are built.
