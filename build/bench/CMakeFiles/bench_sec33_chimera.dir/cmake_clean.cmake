file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_chimera.dir/bench_sec33_chimera.cpp.o"
  "CMakeFiles/bench_sec33_chimera.dir/bench_sec33_chimera.cpp.o.d"
  "bench_sec33_chimera"
  "bench_sec33_chimera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_chimera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
