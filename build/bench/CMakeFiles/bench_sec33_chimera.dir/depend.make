# Empty dependencies file for bench_sec33_chimera.
# This may be replaced when dependencies are built.
