file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_execution.dir/bench_rule_execution.cpp.o"
  "CMakeFiles/bench_rule_execution.dir/bench_rule_execution.cpp.o.d"
  "bench_rule_execution"
  "bench_rule_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
