# Empty dependencies file for bench_rule_execution.
# This may be replaced when dependencies are built.
