# Empty dependencies file for maint_test.
# This may be replaced when dependencies are built.
