file(REMOVE_RECURSE
  "CMakeFiles/ie_test.dir/ie_test.cc.o"
  "CMakeFiles/ie_test.dir/ie_test.cc.o.d"
  "ie_test"
  "ie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
