file(REMOVE_RECURSE
  "CMakeFiles/chimera_test.dir/chimera_test.cc.o"
  "CMakeFiles/chimera_test.dir/chimera_test.cc.o.d"
  "chimera_test"
  "chimera_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
