# Empty compiler generated dependencies file for chimera_test.
# This may be replaced when dependencies are built.
