# Empty dependencies file for rulekit.
# This may be replaced when dependencies are built.
