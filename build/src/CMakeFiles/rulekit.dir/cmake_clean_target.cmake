file(REMOVE_RECURSE
  "librulekit.a"
)
