
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chimera/analyst.cc" "src/CMakeFiles/rulekit.dir/chimera/analyst.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/analyst.cc.o.d"
  "/root/repo/src/chimera/feedback_loop.cc" "src/CMakeFiles/rulekit.dir/chimera/feedback_loop.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/feedback_loop.cc.o.d"
  "/root/repo/src/chimera/first_responder.cc" "src/CMakeFiles/rulekit.dir/chimera/first_responder.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/first_responder.cc.o.d"
  "/root/repo/src/chimera/gate_keeper.cc" "src/CMakeFiles/rulekit.dir/chimera/gate_keeper.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/gate_keeper.cc.o.d"
  "/root/repo/src/chimera/monitor.cc" "src/CMakeFiles/rulekit.dir/chimera/monitor.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/monitor.cc.o.d"
  "/root/repo/src/chimera/pipeline.cc" "src/CMakeFiles/rulekit.dir/chimera/pipeline.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/pipeline.cc.o.d"
  "/root/repo/src/chimera/voting.cc" "src/CMakeFiles/rulekit.dir/chimera/voting.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/chimera/voting.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rulekit.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/rulekit.dir/common/random.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rulekit.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/rulekit.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/rulekit.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/crowd/crowd.cc" "src/CMakeFiles/rulekit.dir/crowd/crowd.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/crowd/crowd.cc.o.d"
  "/root/repo/src/crowd/estimator.cc" "src/CMakeFiles/rulekit.dir/crowd/estimator.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/crowd/estimator.cc.o.d"
  "/root/repo/src/data/catalog_generator.cc" "src/CMakeFiles/rulekit.dir/data/catalog_generator.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/data/catalog_generator.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/rulekit.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/drift.cc" "src/CMakeFiles/rulekit.dir/data/drift.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/data/drift.cc.o.d"
  "/root/repo/src/data/product.cc" "src/CMakeFiles/rulekit.dir/data/product.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/data/product.cc.o.d"
  "/root/repo/src/data/taxonomy.cc" "src/CMakeFiles/rulekit.dir/data/taxonomy.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/data/taxonomy.cc.o.d"
  "/root/repo/src/em/blocker.cc" "src/CMakeFiles/rulekit.dir/em/blocker.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/em/blocker.cc.o.d"
  "/root/repo/src/em/match_rule.cc" "src/CMakeFiles/rulekit.dir/em/match_rule.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/em/match_rule.cc.o.d"
  "/root/repo/src/em/matcher.cc" "src/CMakeFiles/rulekit.dir/em/matcher.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/em/matcher.cc.o.d"
  "/root/repo/src/engine/data_index.cc" "src/CMakeFiles/rulekit.dir/engine/data_index.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/engine/data_index.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/rulekit.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/rule_classifier.cc" "src/CMakeFiles/rulekit.dir/engine/rule_classifier.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/engine/rule_classifier.cc.o.d"
  "/root/repo/src/engine/rule_index.cc" "src/CMakeFiles/rulekit.dir/engine/rule_index.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/engine/rule_index.cc.o.d"
  "/root/repo/src/eval/module_eval.cc" "src/CMakeFiles/rulekit.dir/eval/module_eval.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/eval/module_eval.cc.o.d"
  "/root/repo/src/eval/per_rule_eval.cc" "src/CMakeFiles/rulekit.dir/eval/per_rule_eval.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/eval/per_rule_eval.cc.o.d"
  "/root/repo/src/eval/tracker.cc" "src/CMakeFiles/rulekit.dir/eval/tracker.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/eval/tracker.cc.o.d"
  "/root/repo/src/eval/validation_set.cc" "src/CMakeFiles/rulekit.dir/eval/validation_set.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/eval/validation_set.cc.o.d"
  "/root/repo/src/gen/rule_miner.cc" "src/CMakeFiles/rulekit.dir/gen/rule_miner.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/gen/rule_miner.cc.o.d"
  "/root/repo/src/gen/rule_selection.cc" "src/CMakeFiles/rulekit.dir/gen/rule_selection.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/gen/rule_selection.cc.o.d"
  "/root/repo/src/gen/synonym_finder.cc" "src/CMakeFiles/rulekit.dir/gen/synonym_finder.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/gen/synonym_finder.cc.o.d"
  "/root/repo/src/ie/attribute_extractor.cc" "src/CMakeFiles/rulekit.dir/ie/attribute_extractor.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ie/attribute_extractor.cc.o.d"
  "/root/repo/src/ie/brand_extractor.cc" "src/CMakeFiles/rulekit.dir/ie/brand_extractor.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ie/brand_extractor.cc.o.d"
  "/root/repo/src/ie/enricher.cc" "src/CMakeFiles/rulekit.dir/ie/enricher.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ie/enricher.cc.o.d"
  "/root/repo/src/ie/normalizer.cc" "src/CMakeFiles/rulekit.dir/ie/normalizer.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ie/normalizer.cc.o.d"
  "/root/repo/src/maint/consolidation.cc" "src/CMakeFiles/rulekit.dir/maint/consolidation.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/maint/consolidation.cc.o.d"
  "/root/repo/src/maint/drift_monitor.cc" "src/CMakeFiles/rulekit.dir/maint/drift_monitor.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/maint/drift_monitor.cc.o.d"
  "/root/repo/src/maint/overlap.cc" "src/CMakeFiles/rulekit.dir/maint/overlap.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/maint/overlap.cc.o.d"
  "/root/repo/src/maint/subsumption.cc" "src/CMakeFiles/rulekit.dir/maint/subsumption.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/maint/subsumption.cc.o.d"
  "/root/repo/src/mining/apriori_all.cc" "src/CMakeFiles/rulekit.dir/mining/apriori_all.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/mining/apriori_all.cc.o.d"
  "/root/repo/src/ml/ensemble.cc" "src/CMakeFiles/rulekit.dir/ml/ensemble.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/ensemble.cc.o.d"
  "/root/repo/src/ml/features.cc" "src/CMakeFiles/rulekit.dir/ml/features.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/features.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/CMakeFiles/rulekit.dir/ml/knn.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/knn.cc.o.d"
  "/root/repo/src/ml/logreg.cc" "src/CMakeFiles/rulekit.dir/ml/logreg.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/logreg.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/rulekit.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/rulekit.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/split.cc" "src/CMakeFiles/rulekit.dir/ml/split.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/ml/split.cc.o.d"
  "/root/repo/src/regex/analysis.cc" "src/CMakeFiles/rulekit.dir/regex/analysis.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/analysis.cc.o.d"
  "/root/repo/src/regex/ast.cc" "src/CMakeFiles/rulekit.dir/regex/ast.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/ast.cc.o.d"
  "/root/repo/src/regex/containment.cc" "src/CMakeFiles/rulekit.dir/regex/containment.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/containment.cc.o.d"
  "/root/repo/src/regex/dfa.cc" "src/CMakeFiles/rulekit.dir/regex/dfa.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/dfa.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/CMakeFiles/rulekit.dir/regex/nfa.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/nfa.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/CMakeFiles/rulekit.dir/regex/parser.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/parser.cc.o.d"
  "/root/repo/src/regex/regex.cc" "src/CMakeFiles/rulekit.dir/regex/regex.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/regex/regex.cc.o.d"
  "/root/repo/src/rules/dictionary_registry.cc" "src/CMakeFiles/rulekit.dir/rules/dictionary_registry.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/dictionary_registry.cc.o.d"
  "/root/repo/src/rules/predicate.cc" "src/CMakeFiles/rulekit.dir/rules/predicate.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/predicate.cc.o.d"
  "/root/repo/src/rules/repository.cc" "src/CMakeFiles/rulekit.dir/rules/repository.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/repository.cc.o.d"
  "/root/repo/src/rules/rule.cc" "src/CMakeFiles/rulekit.dir/rules/rule.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/rule.cc.o.d"
  "/root/repo/src/rules/rule_parser.cc" "src/CMakeFiles/rulekit.dir/rules/rule_parser.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/rule_parser.cc.o.d"
  "/root/repo/src/rules/rule_set.cc" "src/CMakeFiles/rulekit.dir/rules/rule_set.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/rule_set.cc.o.d"
  "/root/repo/src/rules/token_pattern.cc" "src/CMakeFiles/rulekit.dir/rules/token_pattern.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/rules/token_pattern.cc.o.d"
  "/root/repo/src/text/aho_corasick.cc" "src/CMakeFiles/rulekit.dir/text/aho_corasick.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/text/aho_corasick.cc.o.d"
  "/root/repo/src/text/dictionary.cc" "src/CMakeFiles/rulekit.dir/text/dictionary.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/text/dictionary.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/rulekit.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/rulekit.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/rulekit.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/rulekit.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/rulekit.dir/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
