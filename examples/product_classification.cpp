// End-to-end Chimera-style ongoing classification over a synthetic
// product feed: batches arrive, the crowd samples quality, the analyst
// patches with rules and labels, and an odd vendor triggers the
// scale-down / repair / restore cycle of §2.2.
//
// Build & run:  ./build/examples/product_classification

#include <cstdio>
#include <utility>

#include "src/chimera/analyst.h"
#include "src/chimera/feedback_loop.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/ml/metrics.h"

int main() {
  using namespace rulekit;

  data::GeneratorConfig gen_config;
  gen_config.seed = 2026;
  gen_config.num_types = 24;
  data::CatalogGenerator gen(gen_config);

  chimera::ChimeraPipeline pipeline;
  chimera::SimulatedAnalyst analyst(gen);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  chimera::QualityMonitor monitor(0.92);

  // Bootstrap: rules for the six most popular types, attribute and brand
  // rules, and a little initial training data.
  std::vector<rules::Rule> bootstrap;
  for (size_t t = 0; t < 6; ++t) {
    for (auto& r : analyst.WriteRulesForType(gen.specs()[t].name)) {
      bootstrap.push_back(std::move(r));
    }
  }
  for (auto& r : analyst.WriteAttributeRules()) bootstrap.push_back(std::move(r));
  for (auto& r : analyst.WriteBrandRules()) bootstrap.push_back(std::move(r));
  if (auto st = pipeline.AddRules(std::move(bootstrap), "bootstrap");
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  pipeline.AddTrainingData(analyst.LabelItems(gen.GenerateMany(1500)));
  pipeline.RetrainLearning();

  chimera::FeedbackLoopConfig loop_config;
  loop_config.precision_threshold = 0.92;
  chimera::FeedbackLoop loop(pipeline, analyst, crowd, loop_config);

  std::printf("%-8s %-6s %-10s %-10s %-8s %-8s\n", "batch", "items",
              "precision", "recall", "rules", "accepted");
  for (size_t batch_no = 1; batch_no <= 5; ++batch_no) {
    auto batch = gen.GenerateMany(1200);
    auto result = loop.RunBatch(batch);
    const auto& q = result.final_quality;
    std::printf("%-8zu %-6zu %-10.3f %-10.3f %-8zu %-8s\n", batch_no,
                batch.size(), q.precision(), q.recall(),
                pipeline.rule_set().CountActive(),
                result.accepted ? "yes" : "NO");
    chimera::BatchQuality quality;
    quality.batch_index = batch_no;
    quality.precision = result.iterations.back().sampled_precision;
    quality.recall = q.recall();
    monitor.Record(quality);
  }

  // An odd vendor arrives: new vocabulary, rules suddenly miss (§2.2).
  std::printf("\nodd vendor batch arrives (renamed head nouns):\n");
  auto vendor = gen.MakeOddVendor(6);
  auto odd_batch = gen.GenerateVendorBatch(1000, vendor);
  auto odd_result = loop.RunBatch(odd_batch);
  std::printf("  precision=%.3f recall=%.3f accepted=%s\n",
              odd_result.final_quality.precision(),
              odd_result.final_quality.recall(),
              odd_result.accepted ? "yes" : "NO");

  // Scale down the worst-hit type, then restore after the incident.
  uint64_t checkpoint = *pipeline.Checkpoint("oncall");
  const std::string& victim = gen.specs()[0].name;
  (void)pipeline.ScaleDownType(victim, "oncall", "odd vendor vocabulary");
  std::printf("\nscaled down '%s': active rules now %zu\n", victim.c_str(),
              pipeline.rule_set().CountActive());
  (void)pipeline.RestoreCheckpoint(checkpoint, "oncall");
  pipeline.ScaleUpType(victim);
  std::printf("restored checkpoint: active rules %zu, audit entries %zu\n",
              pipeline.rule_set().CountActive(),
              pipeline.repository().audit_log().size());
  return 0;
}
