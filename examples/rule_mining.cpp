// §5.2 rule generation from labeled data: mine frequent token sequences,
// score and select rules with Greedy-Biased, and show how the mined rule
// module lifts coverage of items the deployed system declined.
//
// Build & run:  ./build/examples/rule_mining

#include <cstdio>
#include <memory>

#include "src/data/catalog_generator.h"
#include "src/engine/rule_classifier.h"
#include "src/gen/rule_miner.h"
#include "src/ml/metrics.h"

int main() {
  using namespace rulekit;

  data::GeneratorConfig config;
  config.seed = 11;
  config.num_types = 20;
  data::CatalogGenerator gen(config);

  auto training = gen.GenerateMany(20000);
  std::printf("training data: %zu labeled items, %zu types\n",
              training.size(), gen.specs().size());

  gen::RuleMinerConfig miner_config;
  miner_config.min_support = 0.01;
  auto outcome = gen::MineRules(training, miner_config);
  std::printf("frequent sequences mined:   %zu\n", outcome.candidates_mined);
  std::printf("consistent rule candidates: %zu\n",
              outcome.candidates_consistent);
  std::printf("selected (greedy-biased):   %zu  (%zu high-conf, %zu "
              "low-conf at alpha=%.2f)\n\n",
              outcome.selected.size(), outcome.num_high_confidence,
              outcome.num_low_confidence, miner_config.alpha);

  std::printf("sample mined rules:\n");
  for (size_t i = 0; i < outcome.selected.size() && i < 8; ++i) {
    const auto& r = outcome.selected[i];
    std::printf("  %-40s => %-22s conf=%.2f support=%.3f\n",
                r.Pattern().c_str(), r.type.c_str(), r.confidence,
                r.support);
  }

  // Deploy the mined rules as a rule-based module and measure coverage and
  // precision on fresh data.
  auto rule_set = std::make_shared<rules::RuleSet>();
  size_t id = 0;
  for (const auto& mined : outcome.selected) {
    auto rule = mined.ToRule("mined-" + std::to_string(id++));
    if (rule.ok()) (void)rule_set->Add(std::move(rule).value());
  }
  engine::RuleBasedClassifier module(rule_set);

  auto test = gen.GenerateMany(5000);
  std::vector<ml::Observation> observations;
  for (const auto& li : test) {
    auto scored = module.Predict(li.item);
    observations.push_back(
        {li.label, scored.empty()
                       ? std::nullopt
                       : std::make_optional(scored.front().label)});
  }
  auto summary = ml::Summarize(observations);
  std::printf("\nmined-rule module on %zu fresh items:\n", test.size());
  std::printf("  coverage=%.3f precision=%.3f recall=%.3f\n",
              summary.coverage(), summary.precision(), summary.recall());
  return 0;
}
