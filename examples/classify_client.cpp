// A minimal client for the serving front-end: connects to a RuleServer
// (start one with `rule_shell` -> `serve <port>`), sends each command-line
// title as a single-item ClassifyRequest, and prints the prediction.
//
//   terminal 1:  ./build/examples/rule_shell
//                > serve 7070
//   terminal 2:  ./build/examples/classify_client 7070 "diamond ring"
//                    "motor oil 5w30"
//
// Concurrent single-title clients like this one are exactly what the
// server's request coalescing merges into shared pipeline batches.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/serving/client.h"

using namespace rulekit;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <port> <title> [<title> ...]\n",
                 argv[0]);
    return 2;
  }
  const uint16_t port =
      static_cast<uint16_t>(std::strtoul(argv[1], nullptr, 10));
  auto client = serving::RuleClient::Connect(port);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  for (int i = 2; i < argc; ++i) {
    serving::WireClassifyRequest request;
    request.request_id = static_cast<uint64_t>(i);
    data::ProductItem item;
    item.title = argv[i];
    request.items.push_back(std::move(item));

    auto response = client->Call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->code != serving::WireCode::kOk) {
      std::printf("%s -> error %u: %s\n", argv[i],
                  static_cast<unsigned>(response->code),
                  response->message.c_str());
      continue;
    }
    const auto& prediction = response->predictions[0];
    std::printf("%s -> %s\n", argv[i],
                prediction.has_value() ? prediction->c_str()
                                       : "(unclassified)");
  }
  return 0;
}
