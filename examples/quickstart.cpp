// Quickstart: author classification rules in the DSL, build the two rule
// classifiers, and classify a handful of product items.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/data/product.h"
#include "src/engine/rule_classifier.h"
#include "src/rules/rule_parser.h"

int main() {
  using namespace rulekit;

  // The rule language of §4, including the paper's own examples.
  const char* dsl = R"(
# whitelist: title matches regex  => type
whitelist rings1:  rings? => rings
whitelist rings2:  wedding bands? => rings
whitelist oil1:    (motor | engine) oils? => motor oil
whitelist jeans1:  denim.*jeans? => jeans
# blacklist: title matches regex  => NOT type
blacklist rings3:  toe rings? => rings
# attribute rules
attr     books1:   has(ISBN) => books
attrval  apple1:   Brand = "apple" => smart phones | laptop computers
# predicate rules ("if the title contains 'Apple' but the price is less
# than $100 then the product is not a phone")
pred     apple2:   title has "apple" and price < 100 => not smart phones
)";

  auto parsed = rules::ParseRuleSet(dsl);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rule parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto rule_set =
      std::make_shared<rules::RuleSet>(std::move(parsed).value());
  std::printf("loaded %zu rules (%zu whitelist, %zu blacklist)\n\n",
              rule_set->CountActive(),
              rule_set->CountActiveOfKind(rules::RuleKind::kWhitelist),
              rule_set->CountActiveOfKind(rules::RuleKind::kBlacklist));

  engine::RuleBasedClassifier title_rules(rule_set);
  engine::AttrValueClassifier attr_rules(rule_set);

  auto classify = [&](const data::ProductItem& item) {
    auto from_title = title_rules.Predict(item);
    auto from_attrs = attr_rules.Predict(item);
    const ml::ScoredLabel* best = nullptr;
    if (!from_title.empty()) best = &from_title.front();
    if (!from_attrs.empty() &&
        (best == nullptr || from_attrs.front().score > best->score)) {
      best = &from_attrs.front();
    }
    std::printf("  %-55s -> %s\n", item.title.c_str(),
                best != nullptr ? best->label.c_str() : "(unclassified)");
  };

  data::ProductItem ring;
  ring.title = "Always & Forever Platinaire Diamond Accent Ring";
  data::ProductItem toe_ring;
  toe_ring.title = "adjustable silver toe ring";
  data::ProductItem oil;
  oil.title = "Castrol GTX Motor Oil 5w-30, 5 Quart";
  data::ProductItem book;
  book.title = "The Silent Patient";
  book.SetAttribute("ISBN", "9781250301697");
  data::ProductItem phone_case;
  phone_case.title = "protective case for apple iphone";
  phone_case.SetAttribute("Brand", "apple");
  phone_case.SetAttribute("Price", "12.99");

  std::printf("classifying:\n");
  classify(ring);
  classify(toe_ring);   // whitelist proposes, blacklist vetoes
  classify(oil);
  classify(book);       // attribute rule
  classify(phone_case); // attrval proposes, predicate rule vetoes phones

  return 0;
}
