// An interactive-ish rule-management shell over a RuleRepository, the kind
// of tool a domain analyst drives day to day. Reads commands from stdin
// (or runs a scripted demo when stdin is a TTY/empty):
//
//   add <dsl line>            add a rule (audited)
//   disable <id> | enable <id> | retire <id>
//   classify <title>          classify a title with the current rules
//   serve [<port>]            serve ClassifyRequest frames over TCP until
//                             'stop' / EOF (port 0 or absent = ephemeral)
//   replicate [<port>]        ship this store's commit log to followers
//                             (needs a durable store — `open <dir>` first)
//   follow <port>             become a read-only replica of the shipper at
//                             127.0.0.1:<port>; classify against the
//                             replica until 'stop' / EOF
//   tenant [<id>]             scope the session to a tenant ("" = default):
//                             add/disable/classify act through its view
//   tenants                   list tenants known to any layer
//   list                      print active rules
//   history <id>              audit history of a rule
//   subsumed                  run the subsumption advisor
//   optimize [--dry-run]      plan (and, without --dry-run, apply) the
//                             rule-set optimizer for the current tenant:
//                             subsumption drops through one audited,
//                             WAL-journaled transaction
//   autoheal on [<ms>]        start the drift responder: poll the session's
//                             quality monitor every <ms> (default 1000) and
//                             fire policy-gated retrains on drift alarms
//   autoheal off              stop the responder (pending retrains finish)
//   autoheal status           per-tenant responder state: alarms, fires,
//                             failure backoff, cooldown
//   open <dir>                switch to a durable store (recovers state)
//   status                    storage status (epoch, WAL size, recovery)
//   compact                   force a snapshot + WAL rotation
//   save <path> | load <path>
//   quit
//
// Build & run:  echo 'classify diamond ring' | ./build/examples/rule_shell
//
// Persistence: `rule_shell <dir>` (or `open <dir>` at the prompt) serves
// out of a durable store — every edit is write-ahead-logged before it is
// published, and restarting the shell on the same directory recovers the
// rules, the audit history, and any torn tail from a crash.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "src/chimera/pipeline.h"
#include "src/maint/drift_responder.h"
#include "src/replication/follower.h"
#include "src/replication/shipper.h"
#include "src/serving/server.h"
#include "src/maint/optimizer.h"
#include "src/maint/subsumption.h"
#include "src/rules/rule_parser.h"

namespace {

using namespace rulekit;

const char* ActionName(rules::AuditAction action) {
  switch (action) {
    case rules::AuditAction::kAdd: return "add";
    case rules::AuditAction::kDisable: return "disable";
    case rules::AuditAction::kEnable: return "enable";
    case rules::AuditAction::kRetire: return "retire";
    case rules::AuditAction::kSetConfidence: return "set-confidence";
    case rules::AuditAction::kCheckpoint: return "checkpoint";
    case rules::AuditAction::kRestore: return "restore";
  }
  return "?";
}

/// Builds a pipeline, durable when `dir` is non-empty. Returns null (with
/// a message) when the store cannot be opened — e.g. a corrupt log.
/// Retrain reports flow into `monitor`, the session-lifetime quality
/// monitor the drift responder (`autoheal on`) watches.
std::unique_ptr<chimera::ChimeraPipeline> MakePipeline(
    const std::string& dir, chimera::QualityMonitor* monitor) {
  chimera::PipelineConfig config;
  config.storage_dir = dir;
  if (monitor != nullptr) {
    config.retrain.report_sink = [monitor](
        const chimera::RetrainReport& report) {
      monitor->RecordRetrain(report);
    };
  }
  auto pipeline = std::make_unique<chimera::ChimeraPipeline>(config);
  if (!pipeline->storage_status().ok()) {
    std::printf("error: %s\n",
                pipeline->storage_status().ToString().c_str());
    return nullptr;
  }
  if (pipeline->storage() != nullptr) {
    const auto& rec = pipeline->storage()->recovery_stats();
    std::printf("opened %s: %zu rules (snapshot epoch %llu, %zu log "
                "records%s)\n",
                dir.c_str(), pipeline->repository().rules().size(),
                static_cast<unsigned long long>(rec.snapshot_epoch),
                rec.records_replayed,
                rec.truncated_tail ? ", torn tail truncated" : "");
  }
  return pipeline;
}

void SeedRules(chimera::ChimeraPipeline& pipeline) {
  // A starter rule set so `classify` works out of the box.
  auto seed = rules::ParseRules(R"(
whitelist rings1: rings? => rings
whitelist oil1: (motor | engine) oils? => motor oil
blacklist rings2: toe rings? => rings
attr books1: has(ISBN) => books
)");
  if (seed.ok()) (void)pipeline.AddRules(std::move(seed).value(), "seed");
}

}  // namespace

int main(int argc, char** argv) {
  // Session-lifetime quality monitor: declared before the pipeline (and
  // the responder) so both can safely hold a reference across `open`.
  chimera::QualityMonitor monitor;
  std::unique_ptr<chimera::ChimeraPipeline> pipeline;
  if (argc > 1) {
    pipeline = MakePipeline(argv[1], &monitor);
    if (pipeline == nullptr) return 1;
    // Recovered stores keep their recovered rules; only a brand-new or
    // empty store gets the demo seed.
    if (pipeline->repository().rules().size() == 0) SeedRules(*pipeline);
  } else {
    pipeline = MakePipeline("", &monitor);
    SeedRules(*pipeline);
  }

  // The self-healing loop, armed by `autoheal on`: a background poll that
  // turns monitor alarms into policy-gated retrains. Owned here (not in
  // the pipeline) because it must be torn down before `open` swaps the
  // pipeline it references, then re-armed over the replacement.
  std::unique_ptr<maint::DriftResponder> responder;
  std::chrono::milliseconds autoheal_interval{1000};

  std::printf("rulekit shell — %zu rules loaded. commands: add, disable, "
              "enable, retire,\nclassify, serve, replicate, follow, tenant, "
              "tenants, list, history, subsumed,\noptimize [--dry-run], "
              "autoheal on|off|status, open, status, compact, save,\n"
              "load, quit\n",
              pipeline->rule_set().CountActive());

  // The session's tenant scope: edits and classifications run through
  // this tenant's view until the next `tenant` command.
  rules::TenantId scope;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd.empty() || cmd == "#") continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "add") {
      auto parsed = rules::ParseRules(rest);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto st =
          pipeline->AddRules(std::move(parsed).value(), "shell-user", scope);
      std::printf("%s\n", st.ok() ? "added" : st.ToString().c_str());
    } else if (cmd == "disable" || cmd == "enable" || cmd == "retire") {
      // One transaction per command: the commit journals the edit to the
      // store (when open), applies it, and republishes the touched shard.
      // A tenant-scoped session may only edit its own rules.
      rules::RuleId id(rest);
      Status st = pipeline->Mutate(
          "shell-user",
          [&](rules::RuleTransaction& txn) {
            return cmd == "disable" ? txn.Disable(id, "via shell")
                   : cmd == "enable" ? txn.Enable(id)
                                     : txn.Retire(id, "via shell");
          },
          scope);
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    } else if (cmd == "classify") {
      data::ProductItem item;
      item.title = rest;
      chimera::ClassifyRequest request;
      request.tenant = scope;
      request.items = std::span<const data::ProductItem>(&item, 1);
      auto response = pipeline->Classify(request);
      if (!response.ok()) {
        std::printf("error: %s\n", response.status.ToString().c_str());
        continue;
      }
      const auto& result = response.report.predictions[0];
      std::printf("%s -> %s\n", rest.c_str(),
                  result.has_value() ? result->c_str() : "(unclassified)");
    } else if (cmd == "serve") {
      // Expose the current pipeline over the framed-TCP front-end and
      // block until stdin closes or `stop` arrives. Try it with the
      // classify_client example in another terminal.
      serving::ServerConfig server_config;
      server_config.port =
          static_cast<uint16_t>(std::strtoul(rest.c_str(), nullptr, 10));
      server_config.monitor = &monitor;  // feeds `autoheal` while serving
      serving::RuleServer server(*pipeline, server_config);
      Status st = server.Start();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      std::printf("serving on 127.0.0.1:%u — 'stop' (or EOF) to stop\n",
                  server.port());
      std::string serve_line;
      while (std::getline(std::cin, serve_line) && serve_line != "stop") {
      }
      server.Stop();
      serving::ServerStats stats = server.stats();
      std::printf("served %llu requests in %llu batches (p50 %llu us, "
                  "p99 %llu us)\n",
                  static_cast<unsigned long long>(stats.requests_admitted),
                  static_cast<unsigned long long>(stats.batches_dispatched),
                  static_cast<unsigned long long>(stats.latency_us.P50()),
                  static_cast<unsigned long long>(stats.latency_us.P99()));
    } else if (cmd == "replicate") {
      // Ship this store's commit log to any follower that subscribes.
      // Blocks like `serve`: 'stop' or EOF shuts the shipper down.
      auto* store = pipeline->storage();
      if (store == nullptr) {
        std::printf("replication needs a durable store — `open <dir>` "
                    "first\n");
        continue;
      }
      replication::ShipperConfig shipper_config;
      shipper_config.port =
          static_cast<uint16_t>(std::strtoul(rest.c_str(), nullptr, 10));
      replication::LogShipper shipper(*store, shipper_config);
      Status st = shipper.Start();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      std::printf("shipping on 127.0.0.1:%u — `follow %u` in another "
                  "shell; 'stop' (or EOF) to stop\n",
                  shipper.port(), shipper.port());
      std::string ship_line;
      while (std::getline(std::cin, ship_line) && ship_line != "stop") {
      }
      shipper.Stop();
      replication::ShipperStats stats = shipper.stats();
      std::printf("shipped %llu records (%llu filtered) to %llu "
                  "connections\n",
                  static_cast<unsigned long long>(stats.records_shipped),
                  static_cast<unsigned long long>(stats.records_filtered),
                  static_cast<unsigned long long>(
                      stats.connections_accepted));
    } else if (cmd == "follow") {
      // Become a read-only replica: stream the primary's log into a
      // fresh in-memory pipeline and classify against it until 'stop'.
      replication::FollowerConfig follower_config;
      follower_config.primary_port =
          static_cast<uint16_t>(std::strtoul(rest.c_str(), nullptr, 10));
      if (follower_config.primary_port == 0) {
        std::printf("usage: follow <port>\n");
        continue;
      }
      auto follower = replication::ReplicaFollower::Open(follower_config);
      if (!follower.ok()) {
        std::printf("error: %s\n", follower.status().ToString().c_str());
        continue;
      }
      (*follower)->Start();
      std::printf("following 127.0.0.1:%u — `classify <title>` runs "
                  "against the replica; 'stop' (or EOF) detaches\n",
                  follower_config.primary_port);
      std::string follow_line;
      while (std::getline(std::cin, follow_line) && follow_line != "stop") {
        std::istringstream follow_in(follow_line);
        std::string follow_cmd;
        follow_in >> follow_cmd;
        if (follow_cmd == "classify") {
          std::string title;
          std::getline(follow_in >> std::ws, title);
          data::ProductItem item{"shell", title, {}};
          chimera::ClassifyRequest request;
          request.items = std::span<const data::ProductItem>(&item, 1);
          auto response = (*follower)->pipeline().Classify(request);
          if (!response.ok()) {
            std::printf("error: %s\n", response.status.ToString().c_str());
            continue;
          }
          const auto& result = response.report.predictions[0];
          std::printf("%s -> %s\n", title.c_str(),
                      result.has_value() ? result->c_str()
                                         : "(unclassified)");
        } else if (!follow_cmd.empty()) {
          std::printf("replica is read-only — 'classify <title>' or "
                      "'stop'\n");
        }
      }
      (*follower)->Stop();
      replication::FollowerStats stats = (*follower)->stats();
      std::printf("applied %llu records; position %llu:%llu%s%s\n",
                  static_cast<unsigned long long>(stats.records_applied),
                  static_cast<unsigned long long>(stats.position.epoch),
                  static_cast<unsigned long long>(stats.position.offset),
                  stats.halt_error.empty() ? "" : "; halted: ",
                  stats.halt_error.c_str());
    } else if (cmd == "tenant") {
      scope = rules::TenantId(rest);
      std::printf("scoped to tenant %s\n", scope.display().c_str());
    } else if (cmd == "tenants") {
      for (const std::string& tenant : pipeline->Tenants()) {
        const rules::TenantId id(tenant);
        std::printf("  %s%s\n", id.display().c_str(),
                    id == scope ? "  (current)" : "");
      }
    } else if (cmd == "list") {
      std::printf("%s", pipeline->rule_set().ToDsl().c_str());
    } else if (cmd == "history") {
      for (const auto& e : pipeline->repository().HistoryOf(rest)) {
        std::printf("  t=%llu %-14s by %-12s %s\n",
                    static_cast<unsigned long long>(e.timestamp),
                    ActionName(e.action), e.author.c_str(),
                    e.detail.c_str());
      }
    } else if (cmd == "subsumed") {
      auto report = maint::FindSubsumedRules(pipeline->rule_set());
      if (report.findings.empty()) std::printf("no subsumed rules\n");
      for (const auto& f : report.findings) {
        std::printf("  %s subsumed by %s%s\n", f.subsumed.c_str(),
                    f.by.c_str(), f.equivalent ? " (equivalent)" : "");
      }
    } else if (cmd == "optimize") {
      // Plan against the session tenant's rules. The shell holds no
      // reference corpus, so the corpus-dependent steps (merge, prune,
      // re-bucket) stay idle here: this plans subsumption drops and
      // applies them through the normal transactional commit path.
      const bool dry_run = rest == "--dry-run";
      if (!dry_run && !rest.empty()) {
        std::printf("usage: optimize [--dry-run]\n");
        continue;
      }
      maint::OptimizerOptions opt_options;
      opt_options.tenant = scope;
      auto plan = maint::PlanOptimization(pipeline->rule_set(), {},
                                          opt_options);
      std::printf("%s\n", plan.Summary().c_str());
      for (const auto& d : plan.drops) {
        std::printf("  retire %s (%s %s)\n", d.id.c_str(),
                    d.equivalent ? "equivalent to" : "subsumed by",
                    d.by.c_str());
      }
      if (dry_run || plan.empty()) {
        std::printf(plan.empty() ? "nothing to do\n"
                                 : "dry run — nothing applied\n");
        continue;
      }
      Status st = pipeline->Mutate(
          "shell-optimizer",
          [&](rules::RuleTransaction& txn) {
            return maint::StageOptimizationPlan(txn, plan);
          },
          scope);
      std::printf("%s\n", st.ok() ? "applied" : st.ToString().c_str());
    } else if (cmd == "autoheal") {
      std::istringstream arg_in(rest);
      std::string sub;
      arg_in >> sub;
      if (sub == "on") {
        unsigned long ms = 0;
        arg_in >> ms;
        if (ms > 0) autoheal_interval = std::chrono::milliseconds(ms);
        responder.reset();  // idempotent: re-arm with the new interval
        responder =
            std::make_unique<maint::DriftResponder>(*pipeline, monitor);
        responder->Start(autoheal_interval);
        std::printf("autoheal on — polling quality alarms every %llu ms "
                    "(hysteresis %zu windows, cooldown %llu ms)\n",
                    static_cast<unsigned long long>(
                        autoheal_interval.count()),
                    responder->policy().min_alarm_windows,
                    static_cast<unsigned long long>(
                        responder->policy().cooldown.count()));
      } else if (sub == "off") {
        if (responder == nullptr) {
          std::printf("autoheal already off\n");
        } else {
          size_t fires = responder->fires();
          responder.reset();
          std::printf("autoheal off (%zu retrain%s fired this session)\n",
                      fires, fires == 1 ? "" : "s");
        }
      } else if (sub == "status" || sub.empty()) {
        if (responder == nullptr) {
          std::printf("autoheal off — `autoheal on [<ms>]` to start\n");
          continue;
        }
        std::printf("autoheal on (%llu ms poll), %zu retrain%s fired\n",
                    static_cast<unsigned long long>(
                        autoheal_interval.count()),
                    responder->fires(),
                    responder->fires() == 1 ? "" : "s");
        for (const auto& s : responder->Status()) {
          const rules::TenantId id(s.tenant);
          std::printf("  %-12s alarms=%zu fires=%zu failure_streak=%zu "
                      "backoff=x%.1f cooldown=%.0fms%s\n",
                      id.display().c_str(), s.consecutive_alarms, s.fires,
                      s.failure_streak, s.backoff, s.cooldown_remaining_ms,
                      s.retrain_inflight ? " (retrain in flight)" : "");
        }
      } else {
        std::printf("usage: autoheal on [<interval_ms>] | off | status\n");
      }
    } else if (cmd == "open") {
      // The responder holds a reference to the pipeline it heals, so it
      // must stand down before the swap — and re-arm over whichever
      // pipeline the session ends up with (the old one if the open
      // fails, the new one if it succeeds).
      const bool autoheal_was_on = responder != nullptr;
      responder.reset();
      auto reopened = MakePipeline(rest, &monitor);
      const bool opened = reopened != nullptr;
      if (opened) {
        pipeline = std::move(reopened);
        std::printf("%zu active rules\n",
                    pipeline->rule_set().CountActive());
      }
      if (autoheal_was_on) {
        responder =
            std::make_unique<maint::DriftResponder>(*pipeline, monitor);
        responder->Start(autoheal_interval);
        std::printf("autoheal re-armed over the %s pipeline\n",
                    opened ? "opened" : "previous");
      }
    } else if (cmd == "status") {
      auto* store = pipeline->storage();
      if (store == nullptr) {
        std::printf("in-memory (no store open)\n");
      } else {
        std::printf("store %s: epoch %llu, wal %llu bytes\n",
                    store->dir().c_str(),
                    static_cast<unsigned long long>(store->epoch()),
                    static_cast<unsigned long long>(store->wal_bytes()));
      }
    } else if (cmd == "compact") {
      auto* store = pipeline->storage();
      if (store == nullptr) {
        std::printf("in-memory (no store open)\n");
      } else {
        Status st = store->Compact();
        std::printf("%s\n", st.ok() ? "compacted" : st.ToString().c_str());
      }
    } else if (cmd == "save") {
      auto st = pipeline->repository().SaveToFile(rest);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else if (cmd == "load") {
      auto loaded = rules::RuleRepository::LoadFromFile(rest);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        continue;
      }
      std::vector<rules::Rule> rules_to_add(
          loaded->rules().rules().begin(), loaded->rules().rules().end());
      auto st = pipeline->AddRules(std::move(rules_to_add), "loader");
      std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
    }
  }
  return 0;
}
