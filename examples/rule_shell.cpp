// An interactive-ish rule-management shell over a RuleRepository, the kind
// of tool a domain analyst drives day to day. Reads commands from stdin
// (or runs a scripted demo when stdin is a TTY/empty):
//
//   add <dsl line>            add a rule (audited)
//   disable <id> | enable <id> | retire <id>
//   classify <title>          classify a title with the current rules
//   list                      print active rules
//   history <id>              audit history of a rule
//   subsumed                  run the subsumption advisor
//   save <path> | load <path>
//   quit
//
// Build & run:  echo 'classify diamond ring' | ./build/examples/rule_shell

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "src/chimera/pipeline.h"
#include "src/maint/subsumption.h"
#include "src/rules/rule_parser.h"

namespace {

using namespace rulekit;

const char* ActionName(rules::AuditAction action) {
  switch (action) {
    case rules::AuditAction::kAdd: return "add";
    case rules::AuditAction::kDisable: return "disable";
    case rules::AuditAction::kEnable: return "enable";
    case rules::AuditAction::kRetire: return "retire";
    case rules::AuditAction::kSetConfidence: return "set-confidence";
    case rules::AuditAction::kCheckpoint: return "checkpoint";
    case rules::AuditAction::kRestore: return "restore";
  }
  return "?";
}

}  // namespace

int main() {
  chimera::ChimeraPipeline pipeline;

  // A starter rule set so `classify` works out of the box.
  auto seed = rules::ParseRules(R"(
whitelist rings1: rings? => rings
whitelist oil1: (motor | engine) oils? => motor oil
blacklist rings2: toe rings? => rings
attr books1: has(ISBN) => books
)");
  if (seed.ok()) (void)pipeline.AddRules(std::move(seed).value(), "seed");

  std::printf("rulekit shell — %zu rules loaded. commands: add, disable, "
              "enable, retire,\nclassify, list, history, subsumed, save, "
              "load, quit\n",
              pipeline.rule_set().CountActive());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd.empty() || cmd == "#") continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "add") {
      auto parsed = rules::ParseRules(rest);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto st = pipeline.AddRules(std::move(parsed).value(), "shell-user");
      std::printf("%s\n", st.ok() ? "added" : st.ToString().c_str());
    } else if (cmd == "disable" || cmd == "enable" || cmd == "retire") {
      // One transaction per command: the commit applies the edit and
      // republishes the touched shard — no RebuildRules() to forget.
      rules::RuleId id(rest);
      Status st = pipeline.Mutate(
          "shell-user", [&](rules::RuleTransaction& txn) {
            return cmd == "disable" ? txn.Disable(id, "via shell")
                   : cmd == "enable" ? txn.Enable(id)
                                     : txn.Retire(id, "via shell");
          });
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    } else if (cmd == "classify") {
      data::ProductItem item;
      item.title = rest;
      auto result = pipeline.Classify(item);
      std::printf("%s -> %s\n", rest.c_str(),
                  result.has_value() ? result->c_str() : "(unclassified)");
    } else if (cmd == "list") {
      std::printf("%s", pipeline.rule_set().ToDsl().c_str());
    } else if (cmd == "history") {
      const auto& repo = std::as_const(pipeline).repository();
      for (const auto& e : repo.HistoryOf(rest)) {
        std::printf("  t=%llu %-14s by %-12s %s\n",
                    static_cast<unsigned long long>(e.timestamp),
                    ActionName(e.action), e.author.c_str(),
                    e.detail.c_str());
      }
    } else if (cmd == "subsumed") {
      auto report = maint::FindSubsumedRules(pipeline.rule_set());
      if (report.findings.empty()) std::printf("no subsumed rules\n");
      for (const auto& f : report.findings) {
        std::printf("  %s subsumed by %s%s\n", f.subsumed.c_str(),
                    f.by.c_str(), f.equivalent ? " (equivalent)" : "");
      }
    } else if (cmd == "save") {
      auto st = std::as_const(pipeline).repository().SaveToFile(rest);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else if (cmd == "load") {
      auto loaded = rules::RuleRepository::LoadFromFile(rest);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        continue;
      }
      std::vector<rules::Rule> rules_to_add(
          loaded->rules().rules().begin(), loaded->rules().rules().end());
      auto st = pipeline.AddRules(std::move(rules_to_add), "loader");
      std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
    }
  }
  return 0;
}
