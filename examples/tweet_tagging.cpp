// Event detection in a tweet stream with rules (§6 "Event Detection and
// Monitoring in Social Media", the Kosmix Tweetbeat story): dictionary
// rules tag tweets with live events, blacklist rules drop junk, and when
// the system starts showing unrelated tweets for an event the analysts
// "scale it down" by making the rules more conservative — all with the
// same rule machinery the product classifier uses.
//
// Build & run:  ./build/examples/tweet_tagging

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/data/product.h"
#include "src/engine/rule_classifier.h"
#include "src/rules/dictionary_registry.h"
#include "src/rules/rule_parser.h"

namespace {

using namespace rulekit;

// A tweet re-uses ProductItem: the text is the title; metadata (author,
// follower count) are attributes the rules can reference.
data::ProductItem MakeTweet(std::string text, std::string author,
                            int followers) {
  data::ProductItem tweet;
  tweet.title = std::move(text);
  tweet.SetAttribute("Author", std::move(author));
  tweet.SetAttribute("Followers", std::to_string(followers));
  return tweet;
}

std::vector<data::ProductItem> SynthesizeStream(Rng& rng, size_t n) {
  const char* kGameTemplates[] = {
      "touchdown!! packers marching now",
      "what a pass from rodgers to the end zone",
      "lambeau field is going wild right now",
      "packers defense holding strong in the 4th",
  };
  const char* kOscarsTemplates[] = {
      "red carpet looks are unreal tonight #oscars",
      "best picture nominees announced at the academy awards",
      "that acceptance speech had me in tears",
  };
  const char* kNoiseTemplates[] = {
      "just had the best sandwich of my life",
      "monday again... coffee please",
      "check out my soundcloud mix",
      "packers of value bundles at the store lol",  // ambiguous troll
  };
  std::vector<data::ProductItem> stream;
  for (size_t i = 0; i < n; ++i) {
    double r = rng.NextDouble();
    const char* text =
        r < 0.35
            ? kGameTemplates[rng.Uniform(std::size(kGameTemplates))]
            : r < 0.55
                  ? kOscarsTemplates[rng.Uniform(std::size(kOscarsTemplates))]
                  : kNoiseTemplates[rng.Uniform(std::size(kNoiseTemplates))];
    stream.push_back(MakeTweet(text, "user" + std::to_string(i % 97),
                               static_cast<int>(rng.Uniform(100000))));
  }
  return stream;
}

}  // namespace

int main() {
  Rng rng(99);

  // Event dictionaries curated by analysts (the KB behind the rules).
  rules::DictionaryRegistry dicts;
  dicts.RegisterPhrases("packers game",
                        {"packers", "rodgers", "lambeau", "touchdown"});
  dicts.RegisterPhrases("oscars night",
                        {"oscars", "red carpet", "academy awards",
                         "best picture", "acceptance speech"});

  // Tagging rules. The blacklist makes the game tag conservative for the
  // known confusion ("packers of value bundles"); low-follower spam is
  // dropped by a predicate veto.
  const char* dsl = R"(
pred game1:   title anyof dict(packers game) => packers-game
pred oscars1: title anyof dict(oscars night) => oscars-night
pred junk1:   title has "value bundles" => not packers-game
pred junk2:   title has "soundcloud" and attr(Followers) ~ "^\d{1,2}$" => not packers-game
)";
  auto parsed = rules::ParseRuleSet(dsl, &dicts);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto rule_set =
      std::make_shared<rules::RuleSet>(std::move(parsed).value());
  engine::AttrValueClassifier tagger(rule_set);

  auto stream = SynthesizeStream(rng, 3000);
  size_t game = 0, oscars = 0, untagged = 0, bundle_vetoed = 0;
  for (const auto& tweet : stream) {
    auto tags = tagger.Predict(tweet);
    if (tags.empty()) {
      ++untagged;
      if (tweet.title.find("value bundles") != std::string::npos) {
        ++bundle_vetoed;
      }
    } else if (tags.front().label == "packers-game") {
      ++game;
    } else {
      ++oscars;
    }
  }
  std::printf("stream of %zu tweets:\n", stream.size());
  std::printf("  tagged packers-game: %zu\n", game);
  std::printf("  tagged oscars-night: %zu\n", oscars);
  std::printf("  untagged:            %zu (incl. %zu 'value bundle' "
              "confusions vetoed)\n",
              untagged, bundle_vetoed);

  // Something goes wrong mid-event: the game tag starts pulling unrelated
  // tweets (say the dictionaries drifted). Scale it down instantly.
  (void)rule_set->Disable("game1");
  engine::AttrValueClassifier conservative(rule_set);
  size_t still_game = 0;
  for (const auto& tweet : stream) {
    auto tags = conservative.Predict(tweet);
    if (!tags.empty() && tags.front().label == "packers-game") ++still_game;
  }
  std::printf("\nafter scaling the game tag down: %zu game-tagged tweets "
              "(was %zu)\n",
              still_game, game);
  std::printf("re-enable when repaired: rules are compositional, nothing "
              "else moved.\n");
  return 0;
}
