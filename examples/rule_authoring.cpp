// Rule authoring with the §5.1 synonym finder: an analyst starts from
// "(area | \syn) rugs?", the tool mines and ranks candidate synonyms from
// the catalog, and a scripted analyst accepts/rejects batches until the
// rule is expanded.
//
// Build & run:  ./build/examples/rule_authoring

#include <cstdio>
#include <set>
#include <string>

#include "src/data/catalog_generator.h"
#include "src/gen/synonym_finder.h"

int main() {
  using namespace rulekit;

  data::GeneratorConfig config;
  config.seed = 7;
  data::CatalogGenerator gen(config);

  // Development corpus of titles.
  std::vector<std::string> titles;
  for (const auto& li : gen.GenerateMany(20000)) {
    titles.push_back(li.item.title);
  }

  // Ground truth the scripted analyst consults: the generator's qualifier
  // vocabulary for "area rugs" (minus the golden seed "area").
  size_t rug_spec = gen.SpecIndexOf("area rugs");
  std::set<std::string> truth(gen.specs()[rug_spec].qualifiers.begin(),
                              gen.specs()[rug_spec].qualifiers.end());
  truth.erase("area");

  auto finder = gen::SynonymFinder::Create("(area|\\syn) rugs?", titles);
  if (!finder.ok()) {
    std::fprintf(stderr, "%s\n", finder.status().ToString().c_str());
    return 1;
  }
  std::printf("template: (area|\\syn) rugs?\n");
  std::printf("candidates mined from %zu titles: %zu\n\n", titles.size(),
              finder->num_candidates());

  size_t iteration = 0;
  while (!finder->exhausted() && iteration < 5) {
    auto batch = finder->NextBatch();
    if (batch.empty()) break;
    ++iteration;
    std::printf("--- iteration %zu (top %zu candidates) ---\n", iteration,
                batch.size());
    std::vector<std::string> accepted, rejected;
    for (const auto& cand : batch) {
      bool is_synonym = truth.count(cand.phrase) > 0;
      std::printf("  %-22s score=%.3f matches=%-4zu -> %s\n",
                  cand.phrase.c_str(), cand.score, cand.num_matches,
                  is_synonym ? "ACCEPT" : "reject");
      (is_synonym ? accepted : rejected).push_back(cand.phrase);
    }
    finder->ProvideFeedback(accepted, rejected);
    if (accepted.empty() && iteration > 2) break;  // analyst loses patience
  }

  std::printf("\nsynonyms found (%zu): ", finder->accepted().size());
  for (const auto& s : finder->accepted()) std::printf("%s ", s.c_str());
  std::printf("\nexpanded rule: %s => area rugs\n",
              finder->ExpandedPattern().c_str());
  return 0;
}
