// Rule-based entity matching (§6): declarative match rules, token
// blocking, and per-match explanations over a catalog salted with noisy
// duplicate listings.
//
// Build & run:  ./build/examples/entity_matching

#include <cstdio>
#include <map>
#include <set>

#include "src/common/random.h"
#include "src/data/catalog_generator.h"
#include "src/em/matcher.h"

int main() {
  using namespace rulekit;

  data::GeneratorConfig config;
  config.seed = 17;
  data::CatalogGenerator gen(config);
  Rng rng(5);

  // Catalog + planted duplicates.
  auto originals = gen.GenerateMany(3000);
  std::vector<data::ProductItem> records;
  std::set<std::pair<std::string, std::string>> truth;
  for (const auto& li : originals) records.push_back(li.item);
  for (size_t i = 0; i < originals.size(); i += 4) {
    auto dup = em::PerturbItem(originals[i].item, rng);
    truth.emplace(originals[i].item.id, dup.id);
    records.push_back(dup);
  }
  std::printf("%zu records, %zu planted duplicate pairs\n\n",
              records.size(), truth.size());

  // The paper's book rule plus a general title-similarity rule.
  std::vector<em::EmRule> match_rules = {
      em::EmRule("isbn+title",
                 {{"ISBN", em::EmOp::kExactEqual, 0.0},
                  {"Title", em::EmOp::kJaccard3Gram, 0.5}}),
      em::EmRule("title-sim", {{"Title", em::EmOp::kJaccard3Gram, 0.9}}),
      em::EmRule("brand+title",
                 {{"Brand", em::EmOp::kExactEqual, 0.0},
                  {"Title", em::EmOp::kJaccard3Gram, 0.8}}),
  };
  for (const auto& r : match_rules) {
    std::printf("rule %s\n", r.ToString().c_str());
  }

  em::EmMatcher matcher(match_rules);
  em::TokenBlocker blocker;
  auto candidates = blocker.CandidatePairs(records);
  auto matches = matcher.MatchAll(records, blocker);

  size_t tp = 0;
  std::map<std::string, size_t> by_rule;
  for (const auto& m : matches) {
    ++by_rule[m.rule_id];
    auto key = std::make_pair(records[m.left].id, records[m.right].id);
    auto rev = std::make_pair(records[m.right].id, records[m.left].id);
    if (truth.count(key) || truth.count(rev)) ++tp;
  }
  double precision = matches.empty()
                         ? 1.0
                         : static_cast<double>(tp) / matches.size();
  double recall = truth.empty()
                      ? 1.0
                      : static_cast<double>(tp) / truth.size();
  std::printf("\nblocking: %zu candidate pairs (vs %.0f all-pairs)\n",
              candidates.size(),
              0.5 * records.size() * (records.size() - 1));
  std::printf("matches: %zu  precision=%.3f recall=%.3f\n", matches.size(),
              precision, recall);
  std::printf("matches by rule (explainability):\n");
  for (const auto& [rule_id, count] : by_rule) {
    std::printf("  %-12s %zu\n", rule_id.c_str(), count);
  }
  return 0;
}
