// Rule-based information extraction (§6): dictionary+context brand
// extraction, brand-name normalization, and regex attribute extraction
// over generated product titles.
//
// Build & run:  ./build/examples/brand_extraction

#include <cstdio>

#include "src/data/catalog_generator.h"
#include "src/ie/attribute_extractor.h"
#include "src/ie/brand_extractor.h"
#include "src/ie/normalizer.h"

int main() {
  using namespace rulekit;

  data::GeneratorConfig config;
  config.seed = 21;
  data::CatalogGenerator gen(config);

  // Brand dictionary from domain knowledge (the specs' brand lists).
  std::vector<std::string> brands;
  for (const auto& spec : gen.specs()) {
    for (const auto& b : spec.brands) brands.push_back(b);
  }
  ie::BrandExtractor brand_extractor(brands);

  // Normalization rules (the paper's IBM example, adapted).
  ie::Normalizer normalizer;
  normalizer.AddRule("DeWalt Industrial Tool Co.", {"dewalt", "de-walt"});
  normalizer.AddRule("Castrol Ltd.", {"castrol"});
  normalizer.AddRule("Mr. Coffee", {"mr coffee", "mr. coffee"});

  auto attr_extractor = ie::AttributeExtractor::WithDefaultRules();

  auto items = gen.GenerateMany(4000);
  size_t with_brand = 0, extracted = 0, correct = 0, attrs_found = 0;
  std::printf("sample extractions:\n");
  size_t shown = 0;
  for (const auto& li : items) {
    auto truth = li.item.GetAttribute("Brand");
    if (truth.has_value()) ++with_brand;
    auto brand = brand_extractor.ExtractBrand(li.item);
    auto attrs = attr_extractor.Extract(li.item);
    attrs_found += attrs.size();
    if (brand.has_value()) {
      ++extracted;
      if (truth.has_value() && *truth == brand->value) ++correct;
      if (shown < 6 && !attrs.empty()) {
        ++shown;
        std::printf("  \"%s\"\n    brand: %s (normalized: %s)",
                    li.item.title.c_str(), brand->value.c_str(),
                    normalizer.Normalize(brand->value).c_str());
        for (const auto& a : attrs) {
          std::printf("  %s: %s", a.attribute.c_str(), a.value.c_str());
        }
        std::printf("\n");
      }
    }
  }

  std::printf("\nover %zu items:\n", items.size());
  std::printf("  items with a Brand attribute: %zu\n", with_brand);
  std::printf("  brands extracted from titles: %zu\n", extracted);
  std::printf("  agreement with the attribute: %.3f\n",
              extracted == 0 ? 0.0
                             : static_cast<double>(correct) / extracted);
  std::printf("  regex attribute extractions:  %zu\n", attrs_found);
  return 0;
}
