// Race hardening for the self-healing loop (the TSan tier's drift
// suite): a DriftResponder polling on its own thread fires retrains
// while reader threads classify the event stream, a writer churns rules,
// and a recorder feeds degraded quality + cache windows — every
// combination of monitor lock, responder state, trainer slot, and
// snapshot swap the loop can exercise at once.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/chimera/analyst.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"
#include "src/crowd/estimator.h"
#include "src/data/event_stream.h"
#include "src/maint/drift_responder.h"
#include "src/rules/ids.h"

namespace rulekit {
namespace {

using chimera::BatchQuality;
using chimera::CacheActivity;
using chimera::ChimeraPipeline;
using chimera::ClassifyRequest;
using chimera::PipelineConfig;
using chimera::QualityMonitor;
using chimera::RetrainReport;
using chimera::WriteEventRules;
using data::EventStreamGenerator;
using data::LabeledItem;
using maint::DriftResponder;
using maint::DriftResponderPolicy;

TEST(DriftStressTest, ResponderRetrainsWhileReadersClassifyAndWriterChurns) {
  EventStreamGenerator stream;
  QualityMonitor monitor;
  PipelineConfig config;
  config.retrain.report_sink = [&monitor](const RetrainReport& report) {
    monitor.RecordRetrain(report);
  };
  ChimeraPipeline pipeline(config);
  ASSERT_TRUE(pipeline.AddRules(WriteEventRules(stream), "analyst").ok());
  pipeline.AddTrainingData(stream.GenerateMany(120));
  pipeline.RetrainLearning();

  DriftResponderPolicy policy;
  policy.min_alarm_windows = 1;
  policy.cooldown = std::chrono::milliseconds(5);
  DriftResponder responder(pipeline, monitor, policy);
  responder.Start(std::chrono::milliseconds(1));

  constexpr int kReaders = 3;
  constexpr auto kRunFor = std::chrono::milliseconds(600);
  const auto deadline = std::chrono::steady_clock::now() + kRunFor;
  std::atomic<bool> stop{false};
  std::atomic<size_t> classified{0};
  std::vector<std::thread> threads;

  // Readers: classify event-stream windows through the one entry point.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      EventStreamGenerator local({.seed = 100 + static_cast<uint64_t>(r)});
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<LabeledItem> window = local.GenerateMany(40);
        ClassifyRequest request;
        std::vector<data::ProductItem> items;
        items.reserve(window.size());
        for (auto& labeled : window) items.push_back(labeled.item);
        request.items = items;
        auto response = pipeline.Classify(request);
        EXPECT_TRUE(response.status.ok());
        classified.fetch_add(response.report.predictions.size(),
                             std::memory_order_relaxed);
      }
    });
  }

  // Writer: churns rules (add + disable) so snapshots keep swapping
  // under the readers and under the responder's retrains.
  threads.emplace_back([&] {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string id = "churn-" + std::to_string(n++);
      auto added = rules::Rule::Whitelist(id, "never matches " + id, "noise");
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      std::ignore = pipeline.AddRules({std::move(added).value()}, "churn");
      std::ignore = pipeline.Mutate("churn", [&](rules::RuleTransaction& tx) {
        return tx.Disable(rules::RuleId(id), "cleanup");
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Recorder: a degraded stream of quality + cache windows keeps the
  // responder's triggers hot (so it actually fires retrains throughout).
  threads.emplace_back([&] {
    size_t index = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      BatchQuality quality;
      quality.batch_index = index;
      quality.precision = crowd::WilsonEstimate(30, 64);
      quality.coverage = 1.0;
      monitor.Record(quality);
      CacheActivity cache;
      cache.batch_index = index;
      cache.lookups = 50;
      cache.hits = 10;
      cache.stale_drops = 30;
      monitor.RecordCache(cache);
      ++index;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& thread : threads) thread.join();
  responder.Stop();
  EXPECT_FALSE(responder.running());

  // The loop really ran end to end: items were classified, the
  // responder fired retrains, and every decision was audited.
  EXPECT_GT(classified.load(), 0u);
  EXPECT_GE(responder.fires(), 1u);
  EXPECT_EQ(monitor.responder_fires(), responder.fires());
  EXPECT_GE(monitor.retrain_history().size(), 1u);
  // A restart after Stop is clean.
  responder.Start(std::chrono::milliseconds(1));
  EXPECT_TRUE(responder.running());
  responder.Stop();
}

}  // namespace
}  // namespace rulekit
