// Tests for the hot-title result cache: admission, segmented eviction,
// version-tag staleness (drop-on-read), and the pipeline integration —
// first-sight output byte-identical with the cache on, and no stale type
// ever served after AddRules / RetrainLearning / ScaleDownType.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/chimera/analyst.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/engine/hot_cache.h"
#include "src/rules/rule_parser.h"

#include "tests/classify_shims.h"

namespace rulekit::engine {
namespace {

constexpr VersionTag kTagA{1, 1};
constexpr VersionTag kTagB{2, 1};

HotCacheConfig SmallConfig(uint32_t admit_after = 1) {
  HotCacheConfig config;
  config.enabled = true;
  config.capacity = 8;
  config.stripes = 1;  // deterministic eviction order
  config.admit_after = admit_after;
  return config;
}

TEST(HotResultCacheTest, AdmitsOnlyAfterKSightings) {
  HotResultCache cache(SmallConfig(/*admit_after=*/3));
  EXPECT_FALSE(cache.Record("gold ring", "rings", kTagA).admitted);
  EXPECT_FALSE(cache.Record("gold ring", "rings", kTagA).admitted);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("gold ring", kTagA).hit);

  CacheRecord third = cache.Record("gold ring", "rings", kTagA);
  EXPECT_TRUE(third.admitted);
  EXPECT_EQ(cache.size(), 1u);
  CacheLookup hit = cache.Lookup("gold ring", kTagA);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.type, "rings");
}

TEST(HotResultCacheTest, StaleEntryDroppedOnRead) {
  HotResultCache cache(SmallConfig());
  ASSERT_TRUE(cache.Record("gold ring", "rings", kTagA).admitted);

  CacheLookup stale = cache.Lookup("gold ring", kTagB);
  EXPECT_FALSE(stale.hit);
  EXPECT_TRUE(stale.stale_dropped);
  EXPECT_EQ(cache.size(), 0u);  // erased, not just skipped
  // Even re-reading under the original tag misses now.
  EXPECT_FALSE(cache.Lookup("gold ring", kTagA).hit);

  HotCacheCounters counters = cache.TotalCounters();
  EXPECT_EQ(counters.stale_drops, 1u);
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 2u);
}

TEST(HotResultCacheTest, RecordRefreshesExistingEntryInPlace) {
  HotResultCache cache(SmallConfig());
  ASSERT_TRUE(cache.Record("gold ring", "rings", kTagA).admitted);
  CacheRecord again = cache.Record("gold ring", "jewelry", kTagB);
  EXPECT_FALSE(again.admitted);
  EXPECT_TRUE(again.refreshed);
  EXPECT_EQ(cache.size(), 1u);
  CacheLookup hit = cache.Lookup("gold ring", kTagB);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.type, "jewelry");
}

TEST(HotResultCacheTest, BoundedByCapacityWithEvictions) {
  HotResultCache cache(SmallConfig());
  ASSERT_EQ(cache.capacity(), 8u);
  for (int i = 0; i < 40; ++i) {
    cache.Record("title " + std::to_string(i), "t", kTagA);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  HotCacheCounters counters = cache.TotalCounters();
  EXPECT_EQ(counters.promotions, 40u);
  EXPECT_EQ(counters.evictions, 40u - cache.size());
}

TEST(HotResultCacheTest, HitEntriesSurviveAProbationFlood) {
  HotResultCache cache(SmallConfig());
  ASSERT_TRUE(cache.Record("hot title", "rings", kTagA).admitted);
  // A hit moves the entry into the protected segment.
  ASSERT_TRUE(cache.Lookup("hot title", kTagA).hit);
  // Flood: one-shot admissions churn through probation only.
  for (int i = 0; i < 100; ++i) {
    cache.Record("cold " + std::to_string(i), "t", kTagA);
  }
  EXPECT_TRUE(cache.Lookup("hot title", kTagA).hit)
      << "a hit-promoted entry was flushed by a scan of one-shot inserts";
}

TEST(HotResultCacheTest, ClearDropsEntriesButKeepsCounters) {
  HotResultCache cache(SmallConfig());
  cache.Record("gold ring", "rings", kTagA);
  ASSERT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("gold ring", kTagA).hit);
  EXPECT_EQ(cache.TotalCounters().promotions, 1u);
}

TEST(HotResultCacheTest, StripesRoundedUpAndKeysPartitioned) {
  HotCacheConfig config;
  config.capacity = 64;
  config.stripes = 5;  // rounds up to 8
  config.admit_after = 1;
  HotResultCache cache(config);
  EXPECT_EQ(cache.stripe_count(), 8u);
  EXPECT_GE(cache.capacity(), 64u);
  for (int i = 0; i < 64; ++i) {
    cache.Record("key " + std::to_string(i), "t", kTagA);
  }
  size_t hits = 0;
  for (int i = 0; i < 64; ++i) {
    if (cache.Lookup("key " + std::to_string(i), kTagA).hit) ++hits;
  }
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace rulekit::engine

namespace rulekit::chimera {
namespace {

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.title = std::move(title);
  return item;
}

/// A pipeline with one whitelist rule (rings) and the hot cache on with
/// first-sight admission, so every confident winner is cached at once.
PipelineConfig CachedConfig() {
  PipelineConfig config;
  config.batch_threads = 0;
  config.use_learning = false;
  config.hot_cache.enabled = true;
  config.hot_cache.capacity = 1024;
  config.hot_cache.admit_after = 1;
  return config;
}

void AddRingRule(ChimeraPipeline& pipeline) {
  auto parsed = rules::ParseRules("whitelist r1: rings? => rings\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "a").ok());
}

TEST(HotCachePipelineTest, RepeatLookupServedFromCache) {
  ChimeraPipeline pipeline(CachedConfig());
  AddRingRule(pipeline);
  ASSERT_NE(pipeline.hot_cache(), nullptr);

  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");
  engine::HotCacheCounters counters = pipeline.hot_cache()->TotalCounters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.promotions, 1u);
}

TEST(HotCachePipelineTest, CacheOffByDefault) {
  ChimeraPipeline pipeline;
  EXPECT_EQ(pipeline.hot_cache(), nullptr);
}

TEST(HotCachePipelineTest, AddRulesInvalidatesCachedWinner) {
  ChimeraPipeline pipeline(CachedConfig());
  AddRingRule(pipeline);
  ASSERT_EQ(ClassifyOne(pipeline, MakeItem("silver toe ring")).value_or(""),
            "rings");
  ASSERT_EQ(ClassifyOne(pipeline, MakeItem("silver toe ring")).value_or(""),
            "rings");  // cached
  ASSERT_EQ(pipeline.hot_cache()->TotalCounters().hits, 1u);

  // The analyst blacklists toe rings; the cached "rings" winner for this
  // title must not survive the rule edit.
  auto blacklist = rules::ParseRules("blacklist b1: toe rings? => rings\n");
  ASSERT_TRUE(blacklist.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(blacklist).value(), "a").ok());

  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("silver toe ring")).has_value());
  EXPECT_GE(pipeline.hot_cache()->TotalCounters().stale_drops, 1u);
}

TEST(HotCachePipelineTest, ScaleDownInvalidatesCachedWinner) {
  ChimeraPipeline pipeline(CachedConfig());
  AddRingRule(pipeline);
  ASSERT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");
  ASSERT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");

  // Scale-down both suppresses the type and disables its rules; the
  // cached "rings" winner must not survive either effect.
  ASSERT_TRUE(pipeline.ScaleDownType("rings", "oncall", "test").ok());
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("gold ring")).has_value())
      << "a suppressed type was served from the hot cache";
}

TEST(HotCachePipelineTest, RetrainLearningInvalidatesCachedWinner) {
  PipelineConfig config = CachedConfig();
  config.use_learning = true;
  ChimeraPipeline pipeline(config);
  AddRingRule(pipeline);
  ASSERT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");
  ASSERT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");
  const uint64_t hits_before = pipeline.hot_cache()->TotalCounters().hits;

  data::GeneratorConfig gen_config;
  gen_config.seed = 7;
  gen_config.num_types = 8;
  data::CatalogGenerator gen(gen_config);
  pipeline.AddTrainingData(gen.GenerateMany(300));
  pipeline.RetrainLearning();

  // The ensemble changed, so the next read of the cached title must
  // recompute (stale drop), not serve the pre-retrain winner.
  (void)ClassifyOne(pipeline, MakeItem("gold ring"));
  engine::HotCacheCounters counters = pipeline.hot_cache()->TotalCounters();
  EXPECT_GE(counters.stale_drops, 1u);
  EXPECT_EQ(counters.hits, hits_before);
}

// The headline first-sight guarantee: over a fresh (never-seen) catalog,
// a cache-on pipeline produces byte-identical predictions and counters to
// a cache-off pipeline — and stays byte-identical on a repeat of the same
// batch, when the hits actually flow.
TEST(HotCachePipelineTest, BatchOutputByteIdenticalCacheOnVsOff) {
  data::GeneratorConfig gen_config;
  gen_config.seed = 42;
  gen_config.num_types = 16;
  data::CatalogGenerator gen(gen_config);
  SimulatedAnalyst analyst(gen);
  std::vector<data::ProductItem> items;
  for (auto& li : gen.GenerateMany(3000)) items.push_back(std::move(li.item));

  auto provision = [&](ChimeraPipeline& pipeline) {
    for (const auto& spec : gen.specs()) {
      ASSERT_TRUE(
          pipeline.AddRules(analyst.WriteRulesForType(spec.name), "a").ok());
    }
  };
  PipelineConfig off_config;
  off_config.batch_threads = 0;
  off_config.use_learning = false;
  ChimeraPipeline off(off_config);
  provision(off);

  PipelineConfig on_config = CachedConfig();
  on_config.batch_threads = 2;  // cache + pool together
  on_config.hot_cache.capacity = 4096;
  ChimeraPipeline on(on_config);
  provision(on);

  BatchReport off_first = RunBatch(off, items);
  BatchReport on_first = RunBatch(on, items);
  BatchReport off_second = RunBatch(off, items);
  BatchReport on_second = RunBatch(on, items);

  EXPECT_GT(on_first.classified, 0u);
  EXPECT_EQ(on_first.cache_hits, 0u);  // first sight: nothing cached yet
  EXPECT_GT(on_second.cache_hits, 0u);
  for (const BatchReport* report :
       {&off_first, &on_first, &off_second, &on_second}) {
    ASSERT_EQ(report->predictions.size(), items.size());
    EXPECT_EQ(report->gate_classified + report->gate_rejected +
                  report->classified + report->filtered +
                  report->suppressed + report->declined,
              report->total);
  }
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(off_first.predictions[i], on_first.predictions[i])
        << "first-sight item " << i;
    EXPECT_EQ(off_second.predictions[i], on_second.predictions[i])
        << "repeat item " << i;
  }
  EXPECT_EQ(off_first.classified, on_first.classified);
  EXPECT_EQ(off_second.classified, on_second.classified);
}

TEST(QualityMonitorTest, CacheHitRateOverWindow) {
  QualityMonitor monitor;
  EXPECT_EQ(monitor.CacheHitRate(), 0.0);
  monitor.RecordCache({.batch_index = 0, .lookups = 100, .hits = 10});
  monitor.RecordCache({.batch_index = 1, .lookups = 100, .hits = 90});
  EXPECT_DOUBLE_EQ(monitor.CacheHitRate(), 0.5);
  EXPECT_DOUBLE_EQ(monitor.CacheHitRate(1), 0.9);
  ASSERT_EQ(monitor.cache_history().size(), 2u);
  EXPECT_EQ(monitor.cache_history()[1].hits, 90u);
}

}  // namespace
}  // namespace rulekit::chimera
