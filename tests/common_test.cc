#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"

namespace rulekit {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad pattern");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad pattern");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad pattern");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::FailedPrecondition("").code());
  codes.insert(Status::ResourceExhausted("").code());
  codes.insert(Status::Internal("").code());
  codes.insert(Status::IOError("").code());
  EXPECT_EQ(codes.size(), 7u);
}

Status FailsThenPropagates() {
  RULEKIT_RETURN_IF_ERROR(Status::NotFound("missing"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Result --

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  auto r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, HoldsError) {
  auto r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(5);
  const uint64_t n = 1000;
  int low = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    uint64_t v = rng.Zipf(n, 1.1);
    ASSERT_LT(v, n);
    if (v < 10) ++low;
  }
  // Rank 0-9 should absorb far more than 1% of the mass.
  EXPECT_GT(low, total / 10);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : unique) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooLarge) {
  Rng rng(9);
  auto sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, WeightedIndexPrefersHeavyWeight) {
  Rng rng(13);
  std::vector<double> w = {0.01, 0.01, 10.0};
  int heavy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.WeightedIndex(w) == 2) ++heavy;
  }
  EXPECT_GT(heavy, 900);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ----------------------------------------------------------- StringUtil --

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World 123"), "hello world 123");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("wedding band", "wed"));
  EXPECT_FALSE(StartsWith("wed", "wedding"));
  EXPECT_TRUE(EndsWith("wedding band", "band"));
  EXPECT_TRUE(Contains("wedding band", "ing ba"));
  EXPECT_FALSE(Contains("wedding band", "ring"));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string original = "a\tb\nc\\d\re";
  EXPECT_EQ(UnescapeControl(EscapeControl(original)), original);
  EXPECT_EQ(EscapeControl(original).find('\t'), std::string::npos);
}

TEST(StringUtilTest, RegexEscapeNeutralizesMetachars) {
  EXPECT_EQ(RegexEscape("a.b*c"), "a\\.b\\*c");
  EXPECT_EQ(RegexEscape("(x|y)"), "\\(x\\|y\\)");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 0.5), "0.50");
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace rulekit
