// Tenant isolation guarantees (see DESIGN.md "Multi-tenancy"): one
// tenant's cache partition cannot be evicted or stale-dropped by a noisy
// neighbour, a tenant's rules serve only its own view, cross-tenant rule
// edits are rejected, retrain gating is evaluated per tenant, the
// single-default-tenant pipeline stays byte-identical to the historical
// one, and durable recovery reproduces per-tenant shard versions exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/crowd/estimator.h"
#include "src/data/catalog_generator.h"
#include "src/engine/hot_cache.h"
#include "src/rules/rule_parser.h"
#include "src/storage/codec.h"

#include "tests/classify_shims.h"

namespace rulekit::chimera {
namespace {

namespace fs = std::filesystem;

using rules::TenantId;

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.title = std::move(title);
  return item;
}

std::vector<data::ProductItem> Repeated(const std::string& title, size_t n) {
  std::vector<data::ProductItem> items;
  for (size_t i = 0; i < n; ++i) items.push_back(MakeItem(title));
  return items;
}

std::vector<data::LabeledItem> MakeTrainingData(size_t n,
                                                uint64_t seed = 1234) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.num_types = 12;
  data::CatalogGenerator gen(config);
  return gen.GenerateMany(n);
}

void AddRules(ChimeraPipeline& pipeline, const std::string& dsl,
              const TenantId& tenant = {}) {
  auto parsed = rules::ParseRules(dsl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(
      pipeline.AddRules(std::move(parsed).value(), "tenant-test", tenant)
          .ok());
}

/// A pipeline with the hot cache on, first-sight admission, tiny
/// single-stripe partitions — so a flood of admissions measurably evicts.
PipelineConfig CachedConfig(size_t capacity = 64) {
  PipelineConfig config;
  config.use_learning = false;
  config.hot_cache.enabled = true;
  config.hot_cache.capacity = capacity;
  config.hot_cache.stripes = 1;
  config.hot_cache.admit_after = 1;
  return config;
}

std::string ScratchDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("rulekit_tenant_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// The canonical byte form of a repository's complete persisted state
/// (rules, audit log, per-tenant shard versions) — equality of these
/// strings is the "byte-identical recovery" check.
std::string StateBytes(const rules::RuleRepository& repo) {
  storage::Encoder enc;
  storage::EncodePersistedState(repo.ExportState(), enc);
  return enc.Release();
}

// ---------------------------------------------------- cache partitions --

// A noisy tenant flooding its own partition with first-sight admissions
// cannot evict a quiet tenant's established entries: partitions are
// independently bounded, so the quiet tenant keeps hitting.
TEST(TenantCacheSetTest, NoisyTenantCannotEvictQuietTenantsEntries) {
  engine::HotCacheConfig config;
  config.enabled = true;
  config.capacity = 8;
  config.stripes = 1;
  config.admit_after = 1;
  engine::TenantCacheSet set(config);

  const engine::VersionTag tag{1, 1};
  engine::HotResultCache& quiet = set.For("quiet");
  EXPECT_TRUE(quiet.Record("hot title", "rings", tag).admitted);
  ASSERT_TRUE(quiet.Lookup("hot title", tag).hit);

  engine::HotResultCache& noisy = set.For("noisy");
  for (int i = 0; i < 200; ++i) {
    noisy.Record("flood " + std::to_string(i), "rings", tag);
  }
  EXPECT_LE(noisy.size(), noisy.capacity());
  EXPECT_GT(noisy.TotalCounters().evictions, 0u);

  // The flood stayed inside the noisy partition.
  EXPECT_TRUE(quiet.Lookup("hot title", tag).hit);
  EXPECT_EQ(quiet.TotalCounters().evictions, 0u);

  std::vector<std::string> tenants = set.ActiveTenants();
  ASSERT_EQ(tenants.size(), 3u);
  EXPECT_EQ(tenants[0], "");  // default leads
  EXPECT_EQ(tenants[1], "noisy");
  EXPECT_EQ(tenants[2], "quiet");
}

// PipelineConfig::tenants overrides give one tenant its own cache bounds
// while everyone else inherits the pipeline-wide config.
TEST(TenantPipelineTest, PerTenantCacheConfigOverride) {
  PipelineConfig config = CachedConfig(/*capacity=*/8);
  PipelineConfig::TenantOverrides big;
  big.hot_cache = config.hot_cache;
  big.hot_cache->capacity = 64;
  config.tenants["big"] = big;

  ChimeraPipeline pipeline(config);
  ASSERT_NE(pipeline.tenant_caches(), nullptr);
  EXPECT_EQ(pipeline.tenant_caches()->defaults().capacity(), 8u);
  EXPECT_EQ(pipeline.tenant_caches()->For("small").capacity(), 8u);
  EXPECT_EQ(pipeline.tenant_caches()->For("big").capacity(), 64u);
}

// End-to-end eviction isolation: a noisy tenant streams hundreds of
// distinct admitted titles through batch Classify — far past the shared
// capacity — and the quiet tenant's repeats still serve from its cache.
TEST(TenantPipelineTest, QuietTenantHitsSurviveNoisyNeighbourFlood) {
  ChimeraPipeline pipeline(CachedConfig(/*capacity=*/64));
  AddRules(pipeline, "whitelist r1: rings? => rings\n");

  const TenantId quiet("quiet");
  const TenantId noisy("noisy");
  const std::vector<data::ProductItem> hot = Repeated("gold ring", 4);

  ASSERT_GT(RunBatch(pipeline, hot, quiet).cache_promotions, 0u);
  ASSERT_GT(RunBatch(pipeline, hot, quiet).cache_hits, 0u);

  std::vector<data::ProductItem> flood;
  for (int i = 0; i < 300; ++i) {
    flood.push_back(MakeItem("ring " + std::to_string(i)));
  }
  BatchReport noise = RunBatch(pipeline, flood, noisy);
  EXPECT_GT(noise.cache_evictions, 0u);  // the flood overflows *its* bound

  BatchReport after = RunBatch(pipeline, hot, quiet);
  EXPECT_EQ(after.cache_hits, hot.size());
  EXPECT_EQ(after.cache_stale_drops, 0u);
}

// Version-tag isolation: a foreign tenant's rule commit must not
// stale-drop another tenant's (or the default's) cached winners, while a
// shared-rule commit invalidates everyone's.
TEST(TenantPipelineTest, ForeignTenantCommitDoesNotStaleDropCachedWinners) {
  ChimeraPipeline pipeline(CachedConfig());
  AddRules(pipeline, "whitelist r1: rings? => rings\n");

  const TenantId a("a");
  const TenantId b("b");
  const std::vector<data::ProductItem> hot = Repeated("gold ring", 4);

  ASSERT_GT(RunBatch(pipeline, hot, a).cache_promotions, 0u);
  ASSERT_GT(RunBatch(pipeline, hot).cache_promotions, 0u);

  // Tenant b commits a rule of its own: only b's tag moves.
  AddRules(pipeline, "whitelist b1: widgets? => widget\n", b);

  BatchReport for_a = RunBatch(pipeline, hot, a);
  EXPECT_EQ(for_a.cache_hits, hot.size());
  EXPECT_EQ(for_a.cache_stale_drops, 0u);
  BatchReport for_default = RunBatch(pipeline, hot);
  EXPECT_EQ(for_default.cache_hits, hot.size());
  EXPECT_EQ(for_default.cache_stale_drops, 0u);

  // A shared (default-tenant) commit changes the rules every view serves,
  // so every tenant's cached winners must drop on next read.
  AddRules(pipeline, "whitelist r2: necklaces? => necklaces\n");
  EXPECT_GT(RunBatch(pipeline, hot, a).cache_stale_drops, 0u);
  EXPECT_GT(RunBatch(pipeline, hot).cache_stale_drops, 0u);
}

// ------------------------------------------------------- rule scoping --

// A tenant's rules classify only through its own view; the shared rules
// serve every view.
TEST(TenantPipelineTest, TenantRulesServeOnlyTheirOwnView) {
  PipelineConfig config;
  config.use_learning = false;
  ChimeraPipeline pipeline(config);

  const TenantId a("a");
  const TenantId b("b");
  AddRules(pipeline, "whitelist s1: rings? => rings\n");  // shared
  AddRules(pipeline, "whitelist a1: gizmos? => gizmo\n", a);

  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("brass gizmo"), a).value_or(""),
            "gizmo");
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("brass gizmo")).has_value());
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("brass gizmo"), b).has_value());

  // The shared rule serves everyone, including tenants with no rules.
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring"), a).value_or(""),
            "rings");
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring"), b).value_or(""),
            "rings");
}

// A non-default tenant cannot edit another tenant's (or the shared)
// rules; the default tenant is administrative and can.
TEST(TenantPipelineTest, CrossTenantEditsAreRejected) {
  PipelineConfig config;
  config.use_learning = false;
  ChimeraPipeline pipeline(config);

  const TenantId a("a");
  const TenantId b("b");
  AddRules(pipeline, "whitelist a1: gizmos? => gizmo\n", a);

  auto disable = [&](const TenantId& as) {
    return pipeline.Mutate(
        "tenant-test",
        [](rules::RuleTransaction& txn) {
          return txn.Disable(rules::RuleId("a1"), "cross-tenant probe");
        },
        as);
  };

  EXPECT_FALSE(disable(b).ok());  // b may not touch a's rule
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("brass gizmo"), a).value_or(""),
            "gizmo");  // probe had no effect

  EXPECT_TRUE(disable(a).ok());  // a edits its own rule
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("brass gizmo"), a).has_value());
}

// Tenant-scoped scale-down suppresses the type in that tenant's view
// only; the default tenant's scale-down is the platform-wide lever.
TEST(TenantPipelineTest, TenantScaleDownSuppressesOnlyItsOwnView) {
  PipelineConfig config;
  config.use_learning = false;
  ChimeraPipeline pipeline(config);

  const TenantId a("a");
  AddRules(pipeline, "whitelist s1: rings? => rings\n");

  ASSERT_TRUE(pipeline.ScaleDownType("rings", "oncall", "a only", a).ok());
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("gold ring"), a).has_value());
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring")).value_or(""), "rings");

  // A tenant scale-down disables only the tenant's own rules (a owns
  // none), so lifting the suppression fully restores a's view.
  pipeline.ScaleUpType("rings", a);
  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("gold ring"), a).value_or(""),
            "rings");
}

// ------------------------------------------------------ retrain gating --

// The min-interval gate is evaluated against each tenant's own run
// history: tenant B's first request trains even while tenant A is
// rate-limited.
TEST(TenantPipelineTest, RetrainGatesEvaluatePerTenant) {
  PipelineConfig config;
  config.retrain.min_interval = std::chrono::milliseconds(3'600'000);
  ChimeraPipeline pipeline(config);

  const TenantId a("a");
  const TenantId b("b");
  pipeline.AddTrainingData(MakeTrainingData(200, 1), a);
  pipeline.AddTrainingData(MakeTrainingData(200, 2), b);

  RetrainReport first_a = pipeline.RequestRetrain(a).get();
  EXPECT_EQ(first_a.outcome, RetrainReport::Outcome::kPublished);
  EXPECT_EQ(first_a.tenant, "a");

  RetrainReport second_a = pipeline.RequestRetrain(a).get();
  EXPECT_EQ(second_a.outcome, RetrainReport::Outcome::kSkippedMinInterval);

  // B has never trained, so A's fresh run does not gate it.
  RetrainReport first_b = pipeline.RequestRetrain(b).get();
  EXPECT_EQ(first_b.outcome, RetrainReport::Outcome::kPublished);
  EXPECT_EQ(first_b.tenant, "b");

  // Neither does it gate the default tenant.
  pipeline.AddTrainingData(MakeTrainingData(200, 3));
  RetrainReport shared = pipeline.RequestRetrain().get();
  EXPECT_EQ(shared.outcome, RetrainReport::Outcome::kPublished);
  EXPECT_EQ(shared.tenant, "");
}

// A per-tenant RetrainPolicy override gates that tenant alone.
TEST(TenantPipelineTest, PerTenantRetrainPolicyOverride) {
  PipelineConfig config;
  RetrainPolicy lazy;
  lazy.min_new_examples = 1'000'000;  // effectively never retrain
  config.tenants["lazy"].retrain = lazy;
  ChimeraPipeline pipeline(config);

  const TenantId frozen("lazy");
  pipeline.AddTrainingData(MakeTrainingData(200, 1), frozen);
  RetrainReport gated = pipeline.RequestRetrain(frozen).get();
  EXPECT_EQ(gated.outcome,
            RetrainReport::Outcome::kSkippedMinNewExamples);

  pipeline.AddTrainingData(MakeTrainingData(200, 2));
  RetrainReport shared = pipeline.RequestRetrain().get();
  EXPECT_EQ(shared.outcome, RetrainReport::Outcome::kPublished);
}

// ------------------------------------------------------- byte identity --

// A pipeline that never names a tenant is byte-identical to one driven
// through the explicit default TenantId, and the repository's default
// tenant version counter tracks each shard's version exactly.
TEST(TenantPipelineTest, SingleDefaultTenantRunIsByteIdentical) {
  auto provision = [](ChimeraPipeline& pipeline) {
    AddRules(pipeline,
             "whitelist r1: rings? => rings\n"
             "whitelist o1: (motor | engine) oils? => motor oil\n"
             "blacklist r2: toe rings? => rings\n");
    ASSERT_TRUE(pipeline
                    .Mutate("tenant-test",
                            [](rules::RuleTransaction& txn) {
                              return txn.Disable(rules::RuleId("o1"),
                                                 "byte-identity probe");
                            })
                    .ok());
  };

  PipelineConfig config;
  config.use_learning = false;
  ChimeraPipeline implicit(config);
  ChimeraPipeline explicit_default(config);
  provision(implicit);
  provision(explicit_default);

  std::vector<data::ProductItem> items = {
      MakeItem("gold ring"), MakeItem("silver toe ring"),
      MakeItem("synthetic motor oil"), MakeItem("unknown widget")};
  BatchReport a = RunBatch(implicit, items);
  BatchReport b = RunBatch(explicit_default, items, TenantId());
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.classified, b.classified);
  EXPECT_EQ(a.filtered, b.filtered);
  EXPECT_EQ(a.declined, b.declined);

  EXPECT_EQ(StateBytes(implicit.repository()),
            StateBytes(explicit_default.repository()));

  // Invariant behind the identity: with only default-tenant commits, the
  // "" tenant counter equals the shard version on every shard.
  const rules::RuleRepository& repo = implicit.repository();
  for (const std::string type : {"rings", "motor oil"}) {
    rules::ShardKey key =
        rules::ShardKey::ForType(type, repo.shard_count());
    rules::ShardSnapshot shard = repo.ShardSnapshotOf(key);
    EXPECT_EQ(repo.tenant_shard_version(key, TenantId()), shard.version);
  }
}

// ----------------------------------------------------------- recovery --

// Restarting a durable pipeline reproduces the complete persisted state
// — including every shard's per-tenant version counters — byte for byte.
TEST(TenantPipelineTest, RecoveryReproducesPerTenantShardVersionsExactly) {
  const std::string dir = ScratchDir();
  PipelineConfig config;
  config.use_learning = false;
  config.storage_dir = dir;

  const TenantId acme("acme");
  const TenantId beta("beta");
  std::string before;
  std::map<std::string, uint64_t> acme_versions_before;
  {
    ChimeraPipeline pipeline(config);
    ASSERT_TRUE(pipeline.storage_status().ok());
    AddRules(pipeline, "whitelist s1: rings? => rings\n");
    AddRules(pipeline,
             "whitelist a1: gizmos? => gizmo\n"
             "whitelist a2: sprockets? => sprocket\n",
             acme);
    AddRules(pipeline, "whitelist b1: widgets? => widget\n", beta);
    ASSERT_TRUE(pipeline
                    .Mutate("tenant-test",
                            [](rules::RuleTransaction& txn) {
                              return txn.Disable(rules::RuleId("a1"),
                                                 "pre-crash edit");
                            },
                            acme)
                    .ok());
    before = StateBytes(pipeline.repository());
    for (const std::string type : {"gizmo", "sprocket"}) {
      rules::ShardKey key = rules::ShardKey::ForTenantType(
          acme, type, pipeline.repository().shard_count());
      acme_versions_before[type] =
          pipeline.repository().tenant_shard_version(key, acme);
      ASSERT_GT(acme_versions_before[type], 0u);
    }
  }

  ChimeraPipeline recovered(config);
  ASSERT_TRUE(recovered.storage_status().ok());
  EXPECT_EQ(StateBytes(recovered.repository()), before);
  for (const auto& [type, version] : acme_versions_before) {
    rules::ShardKey key = rules::ShardKey::ForTenantType(
        acme, type, recovered.repository().shard_count());
    EXPECT_EQ(recovered.repository().tenant_shard_version(key, acme),
              version);
  }

  // The recovered store serves the same tenant views: a1 stayed
  // disabled, a2 and the other tenants' rules still classify.
  EXPECT_FALSE(ClassifyOne(recovered, MakeItem("brass gizmo"), acme).has_value());
  EXPECT_EQ(ClassifyOne(recovered, MakeItem("steel sprocket"), acme).value_or(""),
            "sprocket");
  EXPECT_EQ(ClassifyOne(recovered, MakeItem("odd widget"), beta).value_or(""),
            "widget");
  EXPECT_EQ(ClassifyOne(recovered, MakeItem("gold ring")).value_or(""), "rings");
}

// ---------------------------------------------------- quality monitor --

// Histories are capped ring buffers and partitioned per tenant: one
// tenant's degradation alarms without its neighbours' healthy batches
// diluting the signal.
TEST(TenantMonitorTest, CappedHistoriesAndPerTenantAlarms) {
  QualityMonitor monitor(0.92, /*max_history=*/4);
  EXPECT_EQ(monitor.max_history(), 4u);

  for (size_t i = 0; i < 6; ++i) {
    BatchQuality good;
    good.batch_index = i;
    good.precision = crowd::WilsonEstimate(95, 100);
    monitor.Record(good);
  }
  EXPECT_EQ(monitor.history().size(), 4u);
  EXPECT_EQ(monitor.history().dropped(), 2u);
  EXPECT_EQ(monitor.history()[0].batch_index, 2u);  // oldest two gone
  EXPECT_FALSE(monitor.DegradationAlarm());

  BatchQuality bad;
  bad.precision = crowd::WilsonEstimate(60, 100);
  monitor.Record(bad, "degraded");
  EXPECT_TRUE(monitor.DegradationAlarm("degraded"));
  EXPECT_TRUE(monitor.SevereDegradationAlarm("degraded"));
  EXPECT_FALSE(monitor.DegradationAlarm());  // default unaffected

  monitor.RecordCache({/*batch_index=*/0, /*lookups=*/10, /*hits=*/9}, "hot");
  monitor.RecordCache({/*batch_index=*/0, /*lookups=*/10, /*hits=*/1});
  EXPECT_DOUBLE_EQ(monitor.CacheHitRate("hot", 0), 0.9);
  EXPECT_DOUBLE_EQ(monitor.CacheHitRate(), 0.1);

  RetrainReport report;
  report.published = true;
  report.tenant = "degraded";
  monitor.RecordRetrain(report);
  EXPECT_EQ(monitor.retrains_published("degraded"), 1u);
  EXPECT_EQ(monitor.retrains_published(""), 0u);

  std::vector<std::string> tenants = monitor.Tenants();
  EXPECT_EQ(tenants.front(), "");  // default leads
  EXPECT_NE(std::find(tenants.begin(), tenants.end(), "degraded"),
            tenants.end());
  EXPECT_NE(std::find(tenants.begin(), tenants.end(), "hot"), tenants.end());
}

}  // namespace
}  // namespace rulekit::chimera
