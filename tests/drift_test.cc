// The drift-response loop, end to end: the event-stream workload's
// determinism and drift-plan replay contracts, the kBleed monotonicity
// property, DriftResponder trigger/hysteresis/cooldown/escalation
// semantics, tenant isolation of alarms and retrain slots, the
// severed-journal fault-injection backoff, and the full self-healing
// scenario (drift -> alarm -> automatic retrain -> recovery) with no
// operator in the loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/chimera/analyst.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"
#include "src/chimera/stream_window.h"
#include "src/crowd/estimator.h"
#include "src/data/event_stream.h"
#include "src/maint/drift_monitor.h"
#include "src/maint/drift_responder.h"
#include "src/rules/ids.h"

#include "tests/classify_shims.h"
#include "tests/seeded_test.h"

namespace rulekit {
namespace {

namespace fs = std::filesystem;

using chimera::BatchQuality;
using chimera::BatchReport;
using chimera::CacheActivity;
using chimera::ChimeraPipeline;
using chimera::PipelineConfig;
using chimera::QualityMonitor;
using chimera::ResponderDecision;
using chimera::RetrainReport;
using chimera::StreamWindowOptions;
using chimera::StreamWindowRunner;
using chimera::WindowResult;
using chimera::WriteEventRules;
using data::EventDriftKind;
using data::EventDriftOptions;
using data::EventDriftRecord;
using data::EventStreamConfig;
using data::EventStreamGenerator;
using data::LabeledItem;
using maint::DriftResponder;
using maint::DriftResponderPolicy;
using maint::ResponderTenantStatus;
using maint::RulePrecisionMonitor;

/// A fresh, empty scratch directory unique to the running test.
std::string ScratchDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("rulekit_drift_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// One synthetic crowd-verified window: `positives` of `n` sampled
/// predictions were correct.
BatchQuality Window(size_t index, size_t positives, size_t n) {
  BatchQuality q;
  q.batch_index = index;
  q.precision = crowd::WilsonEstimate(positives, n);
  q.coverage = 1.0;
  q.recall = q.precision.estimate;
  return q;
}

/// Rule precision of a pipeline over a labeled corpus: correct firings /
/// classified items (1.0 on an empty classified set).
double CorpusPrecision(const ChimeraPipeline& pipeline,
                       const std::vector<LabeledItem>& corpus) {
  std::vector<data::ProductItem> items;
  items.reserve(corpus.size());
  for (const auto& labeled : corpus) items.push_back(labeled.item);
  BatchReport report = RunBatch(pipeline, items);
  size_t classified = 0;
  size_t correct = 0;
  for (size_t i = 0; i < report.predictions.size(); ++i) {
    if (!report.predictions[i].has_value()) continue;
    ++classified;
    if (*report.predictions[i] == corpus[i].label) ++correct;
  }
  return classified == 0 ? 1.0
                         : static_cast<double>(correct) / classified;
}

/// A rules-only pipeline loaded with the stream's decoder rules.
std::unique_ptr<ChimeraPipeline> RulesOnlyPipeline(
    const EventStreamGenerator& stream) {
  PipelineConfig config;
  config.use_learning = false;
  auto pipeline = std::make_unique<ChimeraPipeline>(config);
  auto status = pipeline->AddRules(WriteEventRules(stream), "analyst");
  EXPECT_TRUE(status.ok()) << status.ToString();
  return pipeline;
}

// ---- event-stream workload ------------------------------------------------

TEST(EventStreamTest, CuratedSpecsHaveExclusiveKeywords) {
  EventStreamGenerator stream;
  ASSERT_GE(stream.specs().size(), 12u);
  std::set<std::string> seen;
  for (const auto& spec : stream.specs()) {
    EXPECT_FALSE(spec.keywords.empty()) << spec.name;
    for (const auto& keyword : spec.keywords) {
      EXPECT_TRUE(seen.insert(keyword).second)
          << "keyword shared across types: " << keyword;
    }
  }
}

TEST(EventStreamTest, RulesClassifyUndriftedCorpusPerfectly) {
  EventStreamGenerator stream;
  auto pipeline = RulesOnlyPipeline(stream);
  std::vector<LabeledItem> corpus = stream.ReferenceCorpus();
  ASSERT_FALSE(corpus.empty());
  EXPECT_DOUBLE_EQ(CorpusPrecision(*pipeline, corpus), 1.0);
  // Every keyword line classifies (variants don't exist yet).
  std::vector<data::ProductItem> items;
  for (const auto& labeled : corpus) items.push_back(labeled.item);
  BatchReport report = RunBatch(*pipeline, items);
  EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
}

TEST(EventStreamTest, VocabularyDriftMakesRulesAbstain) {
  EventStreamGenerator stream;
  EventDriftOptions options;
  options.kind = EventDriftKind::kVocabulary;
  options.drift_share = 1.0;  // every line of a drifted type drifts
  std::vector<EventDriftRecord> plan = stream.InjectDrift(options, 3);
  ASSERT_EQ(plan.size(), 3u);
  auto pipeline = RulesOnlyPipeline(stream);
  for (const EventDriftRecord& record : plan) {
    // Drifted lines carry no signature keyword: the decoder rules must
    // abstain, never misfire.
    for (int i = 0; i < 8; ++i) {
      LabeledItem line = stream.GenerateOfType(record.target_spec);
      auto prediction = ClassifyOne(*pipeline, line.item);
      if (line.item.title.find(plan[0].fresh_token) != std::string::npos ||
          !prediction.has_value()) {
        continue;  // drifted shape -> abstained, as required
      }
      EXPECT_EQ(*prediction, line.label) << line.item.title;
    }
  }
}

// ---- satellite: seeded determinism + drift-plan replay --------------------

class EventStreamSeededTest : public SeedAwareTest {};

TEST_P(EventStreamSeededTest, StreamIsDeterministicPerSeed) {
  EventStreamConfig config;
  config.seed = GetParam();
  EventStreamGenerator a(config);
  EventStreamGenerator b(config);
  std::vector<LabeledItem> lines_a = a.GenerateMany(200);
  std::vector<LabeledItem> lines_b = b.GenerateMany(200);
  ASSERT_EQ(lines_a.size(), lines_b.size());
  for (size_t i = 0; i < lines_a.size(); ++i) {
    EXPECT_EQ(lines_a[i].item.title, lines_b[i].item.title) << i;
    EXPECT_EQ(lines_a[i].label, lines_b[i].label) << i;
  }
}

TEST_P(EventStreamSeededTest, DriftPlanReplaysIdentically) {
  EventStreamConfig config;
  config.seed = GetParam();
  EventDriftOptions options;
  options.seed = GetParam() ^ 0x5eed;
  options.kind = EventDriftKind::kVocabulary;

  // Same seed, same magnitude, fresh generators: identical plans and
  // identical post-drift variants.
  EventStreamGenerator a(config);
  EventStreamGenerator b(config);
  std::vector<EventDriftRecord> plan_a = a.InjectDrift(options, 4);
  std::vector<EventDriftRecord> plan_b = b.InjectDrift(options, 4);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].target_spec, plan_b[i].target_spec);
    EXPECT_EQ(plan_a[i].donor_spec, plan_b[i].donor_spec);
    EXPECT_EQ(plan_a[i].fresh_token, plan_b[i].fresh_token);
  }

  // Incremental application: magnitude 2 then 4 lands exactly where a
  // fresh magnitude-4 injection does (plan prefix is a watermark).
  EventStreamGenerator c(config);
  std::vector<EventDriftRecord> first = c.InjectDrift(options, 2);
  std::vector<EventDriftRecord> rest = c.InjectDrift(options, 4);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(rest.size(), 2u);  // only the new entries
  for (size_t i = 0; i < c.specs().size(); ++i) {
    const auto& va = a.specs()[i].variants;
    const auto& vc = c.specs()[i].variants;
    ASSERT_EQ(va.size(), vc.size()) << a.specs()[i].name;
    for (size_t v = 0; v < va.size(); ++v) {
      EXPECT_EQ(va[v].tokens, vc[v].tokens);
      EXPECT_DOUBLE_EQ(va[v].share, vc[v].share);
    }
  }
}

// Satellite property: more drift can never *raise* post-drift rule
// precision on the reference corpus — and under kBleed (a donor keyword
// bleeding verbatim into another type's lines) every extra drifted type
// strictly lowers it, because each poisoned variant adds exactly one
// wrong firing and zero correct ones.
TEST_P(EventStreamSeededTest, BleedDriftIsMonotoneInMagnitude) {
  EventDriftOptions options;
  options.seed = GetParam();
  options.kind = EventDriftKind::kBleed;

  double previous = 2.0;  // above any precision
  const size_t max_magnitude = 6;
  for (size_t magnitude = 0; magnitude <= max_magnitude; ++magnitude) {
    EventStreamConfig config;
    config.seed = GetParam();
    EventStreamGenerator stream(config);
    stream.InjectDrift(options, magnitude);
    auto pipeline = RulesOnlyPipeline(stream);
    double precision = CorpusPrecision(*pipeline, stream.ReferenceCorpus());
    if (magnitude == 0) {
      EXPECT_DOUBLE_EQ(precision, 1.0);
    } else {
      EXPECT_LT(precision, previous)
          << "magnitude " << magnitude << " did not lower rule precision";
    }
    previous = precision;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EventStreamSeededTest,
    ::testing::ValuesIn(SeedsOrOverride({2025, 7, 4242})));

// ---- responder: triggers, hysteresis, cooldown ----------------------------

TEST(DriftResponderTest, HysteresisThenFireThenCooldown) {
  ChimeraPipeline pipeline;  // no training data: retrains resolve fast, OK
  QualityMonitor monitor;
  DriftResponderPolicy policy;
  policy.min_alarm_windows = 2;
  policy.cooldown = std::chrono::hours(1);
  DriftResponder responder(pipeline, monitor, policy);

  // Window 0: degraded but not severe (9/10 = 0.9 point estimate, Wilson
  // upper well above threshold). One bad window never fires.
  monitor.Record(Window(0, 9, 10));
  ResponderDecision d0 = responder.EvaluateTenant("");
  EXPECT_EQ(d0.trigger, ResponderDecision::Trigger::kDegradation);
  EXPECT_FALSE(d0.fired);
  EXPECT_EQ(d0.consecutive_alarms, 1u);

  // Re-poll between windows: no new observation, no hysteresis credit,
  // and the no-op is not recorded in the audit history.
  size_t recorded = monitor.responder_history().size();
  ResponderDecision repoll = responder.EvaluateTenant("");
  EXPECT_EQ(repoll.reason, "no new window");
  EXPECT_EQ(repoll.consecutive_alarms, 1u);
  EXPECT_EQ(monitor.responder_history().size(), recorded);

  // Window 1: second consecutive degraded window -> fire (non-urgent).
  monitor.Record(Window(1, 9, 10));
  ResponderDecision d1 = responder.EvaluateTenant("");
  EXPECT_TRUE(d1.fired);
  EXPECT_FALSE(d1.urgent);
  EXPECT_EQ(responder.fires(), 1u);
  auto retrain = responder.LastRetrain("");
  ASSERT_TRUE(retrain.has_value());
  retrain->wait();

  // Windows 2-3: still degraded. Window 2 rebuilds hysteresis; window 3
  // wants to fire but the cooldown suppresses it.
  monitor.Record(Window(2, 9, 10));
  ResponderDecision d2 = responder.EvaluateTenant("");
  EXPECT_FALSE(d2.fired);
  EXPECT_EQ(d2.consecutive_alarms, 1u);
  monitor.Record(Window(3, 9, 10));
  ResponderDecision d3 = responder.EvaluateTenant("");
  EXPECT_FALSE(d3.fired);
  EXPECT_EQ(d3.reason, "suppressed by cooldown");
  EXPECT_GT(d3.cooldown_remaining_ms, 0.0);
  EXPECT_EQ(responder.fires(), 1u);

  // A healthy window resets the hysteresis counter.
  monitor.Record(Window(4, 10, 10));
  ResponderDecision d4 = responder.EvaluateTenant("");
  EXPECT_EQ(d4.trigger, ResponderDecision::Trigger::kNone);
  EXPECT_EQ(d4.consecutive_alarms, 0u);
  EXPECT_EQ(d4.reason, "healthy");

  // The audit trail recorded every window-bearing decision.
  EXPECT_EQ(monitor.responder_fires(), 1u);
  EXPECT_GE(monitor.responder_history().size(), 5u);
}

TEST(DriftResponderTest, SevereAlarmEscalatesPastGatesAndHysteresis) {
  PipelineConfig config;
  // A throttle that would gate any ordinary retrain for an hour.
  config.retrain.min_interval = std::chrono::hours(1);
  ChimeraPipeline pipeline(config);
  std::vector<LabeledItem> labeled;
  for (int i = 0; i < 8; ++i) {
    LabeledItem li;
    li.item.title = "failed password for invalid user " + std::to_string(i);
    li.label = "auth-failure";
    labeled.push_back(std::move(li));
  }
  pipeline.AddTrainingData(labeled);
  // Seed the gate history: the first run is never interval-gated...
  RetrainReport first = pipeline.RequestRetrain().get();
  ASSERT_TRUE(first.published);
  // ...but the second ordinary request is.
  RetrainReport gated = pipeline.RequestRetrain().get();
  EXPECT_EQ(gated.outcome, RetrainReport::Outcome::kSkippedMinInterval);

  QualityMonitor monitor;
  DriftResponderPolicy policy;
  policy.min_alarm_windows = 5;  // would take 5 windows the ordinary way
  policy.cooldown = std::chrono::milliseconds(0);
  DriftResponder responder(pipeline, monitor, policy);

  // One severe window (30/64: Wilson upper far below 0.92) fires
  // immediately — no hysteresis wait — and the urgent request runs even
  // though the min_interval gate would have skipped it.
  monitor.Record(Window(0, 30, 64));
  ASSERT_TRUE(monitor.SevereDegradationAlarm());
  ResponderDecision decision = responder.EvaluateTenant("");
  EXPECT_EQ(decision.trigger,
            ResponderDecision::Trigger::kSevereDegradation);
  EXPECT_TRUE(decision.fired);
  EXPECT_TRUE(decision.urgent);
  auto retrain = responder.LastRetrain("");
  ASSERT_TRUE(retrain.has_value());
  RetrainReport report = retrain->get();
  EXPECT_EQ(report.outcome, RetrainReport::Outcome::kPublished);
  EXPECT_TRUE(report.urgent);
  EXPECT_TRUE(report.published);
}

TEST(DriftResponderTest, StaleSpikeTriggersRetrain) {
  ChimeraPipeline pipeline;
  QualityMonitor monitor;
  DriftResponderPolicy policy;
  policy.min_alarm_windows = 1;
  DriftResponder responder(pipeline, monitor, policy);

  CacheActivity activity;
  activity.batch_index = 0;
  activity.lookups = 100;
  activity.hits = 20;
  activity.stale_drops = 70;  // 70% of lookups dropped stale
  monitor.RecordCache(activity);
  ResponderDecision decision = responder.EvaluateTenant("");
  EXPECT_EQ(decision.trigger, ResponderDecision::Trigger::kStaleSpike);
  EXPECT_TRUE(decision.fired);
}

TEST(DriftResponderTest, RuleFlagsTriggerRetrain) {
  ChimeraPipeline pipeline;
  QualityMonitor monitor;
  RulePrecisionMonitor rule_monitor;
  // Three rules gone imprecise (12 verdicts each, mostly wrong).
  for (const char* rule : {"r1", "r2", "r3"}) {
    for (int i = 0; i < 12; ++i) {
      rule_monitor.RecordVerdict(rule, i % 4 == 0);
    }
  }
  ASSERT_GE(rule_monitor.FlaggedRules().size(), 3u);

  DriftResponderPolicy policy;
  policy.min_alarm_windows = 1;
  DriftResponder responder(pipeline, monitor, policy, &rule_monitor);

  // The quality window itself is healthy — the rule flags alone alarm.
  monitor.Record(Window(0, 10, 10));
  ResponderDecision decision = responder.EvaluateTenant("");
  EXPECT_EQ(decision.trigger, ResponderDecision::Trigger::kRuleFlags);
  EXPECT_TRUE(decision.fired);
}

// ---- satellite: tenant isolation ------------------------------------------

TEST(DriftResponderTest, TenantAlarmsNeverCrossTenants) {
  QualityMonitor monitor;
  PipelineConfig config;
  config.retrain.report_sink = [&monitor](const RetrainReport& report) {
    monitor.RecordRetrain(report);
  };
  ChimeraPipeline pipeline(config);

  const rules::TenantId alpha("alpha");
  const rules::TenantId beta("beta");
  for (const auto& tenant : {alpha, beta}) {
    std::vector<LabeledItem> labeled;
    for (int i = 0; i < 6; ++i) {
      LabeledItem li;
      li.item.title = "connection from port " + std::to_string(7000 + i);
      li.label = "network-scan";
      labeled.push_back(std::move(li));
    }
    pipeline.AddTrainingData(labeled, tenant);
  }

  DriftResponderPolicy policy;
  policy.min_alarm_windows = 2;
  DriftResponder responder(pipeline, monitor, policy);

  // Alpha degrades for three windows; beta stays healthy throughout.
  for (size_t w = 0; w < 3; ++w) {
    monitor.Record(Window(w, 9, 10), "alpha");
    monitor.Record(Window(w, 10, 10), "beta");
    responder.EvaluateNow();
  }

  EXPECT_FALSE(monitor.DegradationAlarm("beta"));
  EXPECT_EQ(monitor.responder_fires("alpha"), 1u);
  EXPECT_EQ(monitor.responder_fires("beta"), 0u);
  EXPECT_EQ(responder.fires(), 1u);

  // The fired retrain ran in alpha's slot only: beta's retrain history
  // stays empty, and the report names alpha.
  auto retrain = responder.LastRetrain("alpha");
  ASSERT_TRUE(retrain.has_value());
  RetrainReport report = retrain->get();
  EXPECT_EQ(report.tenant, "alpha");
  EXPECT_TRUE(monitor.retrain_history("beta").empty());
  EXPECT_FALSE(responder.LastRetrain("beta").has_value());
  ASSERT_FALSE(monitor.retrain_history("alpha").empty());
}

// ---- satellite: fault injection -------------------------------------------

// Sever the journal mid-stream, then let the responder's alarm-triggered
// retrain hit it: the failure must surface in the harvested
// RetrainReport, and the responder must back off (one fire, then quiet)
// instead of hot-looping on a retrain that cannot succeed.
TEST(DriftResponderTest, BacksOffAfterJournalSeveredRetrainFailure) {
  std::string dir = ScratchDir();
  PipelineConfig config;
  config.storage_dir = dir;
  config.rule_shards = 2;
  ChimeraPipeline pipeline(config);
  ASSERT_TRUE(pipeline.storage_status().ok())
      << pipeline.storage_status().ToString();

  EventStreamGenerator stream;
  ASSERT_TRUE(pipeline.AddRules(WriteEventRules(stream), "analyst").ok());
  pipeline.AddTrainingData(stream.GenerateMany(60));
  RetrainReport healthy = pipeline.RequestRetrain().get();
  ASSERT_TRUE(healthy.published);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status.ToString();

  // Sever journaling completely: squat the snapshot temp path so
  // compaction fails, and replace the epoch-0 WAL with a directory so
  // the failure-path reopen fails too. The WAL stays closed.
  fs::create_directories(dir + "/snapshot-1.tmp");
  fs::remove(dir + "/wal-0");
  fs::create_directories(dir + "/wal-0");
  ASSERT_FALSE(pipeline.storage()->Compact().ok());

  QualityMonitor monitor;
  DriftResponderPolicy policy;
  policy.min_alarm_windows = 1;
  policy.cooldown = std::chrono::milliseconds(0);
  policy.failure_cooldown = std::chrono::minutes(10);
  policy.failure_backoff = 2.0;
  DriftResponder responder(pipeline, monitor, policy);

  // First degraded window: fires, and the retrain's publish reports the
  // severed WAL.
  monitor.Record(Window(0, 30, 64));
  ResponderDecision fired = responder.EvaluateTenant("");
  ASSERT_TRUE(fired.fired);
  auto retrain = responder.LastRetrain("");
  ASSERT_TRUE(retrain.has_value());
  RetrainReport failed = retrain->get();
  EXPECT_TRUE(failed.published);  // in-memory serving still updated
  ASSERT_FALSE(failed.status.ok());
  EXPECT_NE(failed.status.message().find("WAL is closed"), std::string::npos)
      << failed.status.ToString();

  // Every further alarmed window is suppressed by the failure backoff —
  // the responder does not hot-loop on the broken journal even with a
  // zero cooldown.
  for (size_t w = 1; w <= 4; ++w) {
    monitor.Record(Window(w, 30, 64));
    ResponderDecision suppressed = responder.EvaluateTenant("");
    EXPECT_FALSE(suppressed.fired) << "window " << w;
    EXPECT_EQ(suppressed.reason, "backing off after failed retrain");
    EXPECT_GT(suppressed.cooldown_remaining_ms, 0.0);
  }
  EXPECT_EQ(responder.fires(), 1u);

  std::vector<ResponderTenantStatus> status = responder.Status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].failure_streak, 1u);
  EXPECT_GT(status[0].cooldown_remaining_ms, 0.0);
}

// ---- the stream-window runner ---------------------------------------------

TEST(StreamWindowTest, RecordsQualityAndFeedsTraining) {
  EventStreamGenerator stream;
  auto pipeline = RulesOnlyPipeline(stream);
  QualityMonitor monitor;
  StreamWindowOptions options;
  options.sample_size = 32;
  StreamWindowRunner runner(*pipeline, monitor, options);

  std::vector<LabeledItem> window = stream.GenerateMany(100);
  WindowResult result = runner.RunWindow(window);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // Rules classify the undrifted stream essentially perfectly; whatever
  // was classified and sampled verifies clean.
  EXPECT_GT(result.coverage, 0.5);
  EXPECT_DOUBLE_EQ(result.true_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(result.quality.precision.estimate, 1.0);
  EXPECT_EQ(result.quality.batch_index, 0u);
  ASSERT_EQ(monitor.history().size(), 1u);
  EXPECT_FALSE(monitor.DegradationAlarm());

  // The verified sample (plus labeled declined items) fed the training
  // pool, and window numbering is monotone per tenant.
  EXPECT_GT(pipeline->training_size(), 0u);
  WindowResult second = runner.RunWindow(stream.GenerateMany(100));
  EXPECT_EQ(second.quality.batch_index, 1u);
  EXPECT_EQ(runner.windows(), 2u);
}

// ---- the tentpole scenario ------------------------------------------------

// The full self-healing loop with no operator in it: a healthy stream
// drifts (kVocabulary: rules abstain, the stale ensemble confidently
// mislabels), the sampled precision collapses, the responder converts
// the alarm into one automatic retrain, and the pipeline recovers above
// threshold — exactly one retrain for the whole episode.
TEST(SelfHealingTest, DriftAlarmRetrainRecoverWithoutOperator) {
  EventStreamGenerator stream;
  PipelineConfig config;
  ChimeraPipeline pipeline(config);
  ASSERT_TRUE(pipeline.AddRules(WriteEventRules(stream), "analyst").ok());
  // Warm the learning side on the healthy stream.
  pipeline.AddTrainingData(stream.GenerateMany(400));
  pipeline.RetrainLearning();

  QualityMonitor monitor;  // default 0.92 threshold
  StreamWindowOptions options;
  options.sample_size = 64;
  StreamWindowRunner runner(pipeline, monitor, options);
  DriftResponderPolicy policy;  // defaults: hysteresis 2, cooldown 30s
  DriftResponder responder(pipeline, monitor, policy);

  // Healthy regime: three windows, no alarm, no responder fire.
  for (int w = 0; w < 3; ++w) {
    WindowResult result = runner.RunWindow(stream.GenerateMany(150));
    ASSERT_TRUE(result.status.ok());
    EXPECT_GE(result.quality.precision.estimate, 0.95) << "window " << w;
    responder.EvaluateNow();
  }
  EXPECT_FALSE(monitor.DegradationAlarm());
  EXPECT_EQ(responder.fires(), 0u);

  // Drift: half the type universe shifts vocabulary.
  EventDriftOptions drift;
  drift.kind = EventDriftKind::kVocabulary;
  drift.drift_share = 0.9;
  stream.InjectDrift(drift, 6);

  // Degraded regime: run windows until the responder fires, then wait
  // for its retrain to land before streaming on.
  bool alarmed = false;
  int fired_window = -1;
  for (int w = 0; w < 8 && fired_window < 0; ++w) {
    WindowResult result = runner.RunWindow(stream.GenerateMany(150));
    ASSERT_TRUE(result.status.ok());
    alarmed = alarmed || monitor.DegradationAlarm();
    responder.EvaluateNow();
    if (responder.fires() > 0) fired_window = w;
  }
  EXPECT_TRUE(alarmed) << "drift never tripped the degradation alarm";
  ASSERT_GE(fired_window, 0) << "responder never fired";
  auto retrain = responder.LastRetrain("");
  ASSERT_TRUE(retrain.has_value());
  RetrainReport report = retrain->get();
  ASSERT_TRUE(report.published) << report.status.ToString();

  // Recovery regime: the retrained ensemble has the drifted vocabulary;
  // precision climbs back above threshold and stays there.
  double recovered = 0.0;
  for (int w = 0; w < 4; ++w) {
    WindowResult result = runner.RunWindow(stream.GenerateMany(150));
    ASSERT_TRUE(result.status.ok());
    recovered = result.quality.precision.estimate;
    responder.EvaluateNow();
  }
  EXPECT_GE(recovered, monitor.threshold())
      << "pipeline did not recover after the automatic retrain";
  EXPECT_FALSE(monitor.DegradationAlarm());

  // Thrash freedom: the whole episode cost exactly one retrain.
  EXPECT_EQ(responder.fires(), 1u);
  EXPECT_EQ(monitor.responder_fires(), 1u);
}

}  // namespace
}  // namespace rulekit
