#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/engine/executor.h"
#include "src/engine/rule_index.h"
#include "src/maint/consolidation.h"
#include "src/maint/optimizer.h"
#include "src/maint/subsumption.h"
#include "src/rules/repository.h"
#include "src/rules/rule_parser.h"

#include "tests/classify_shims.h"

namespace rulekit::maint {
namespace {

rules::RuleSet MakeRuleSet(std::string_view dsl) {
  auto parsed = rules::ParseRuleSet(dsl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

std::vector<data::ProductItem> WheelsCorpus() {
  data::GeneratorConfig config;
  config.seed = 23;
  data::CatalogGenerator gen(config);
  size_t wheels = gen.SpecIndexOf("abrasive wheels & discs");
  EXPECT_NE(wheels, data::CatalogGenerator::kNpos);
  std::vector<data::ProductItem> corpus;
  for (auto& li : gen.GenerateManyOfType(wheels, 600)) {
    corpus.push_back(li.item);
  }
  for (auto& li : gen.GenerateMany(600)) corpus.push_back(li.item);
  return corpus;
}

// ------------------------------------------------------------------- Plan --

TEST(OptimizerPlanTest, DropsSubsumedRulesWithoutCorpus) {
  auto set = MakeRuleSet(R"(
whitelist narrow: denim.*jeans? => jeans
whitelist broad: jeans? => jeans
)");
  auto plan = PlanOptimization(set, {});
  EXPECT_EQ(plan.rules_considered, 2u);
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_EQ(plan.drops[0].id, "narrow");
  EXPECT_EQ(plan.drops[0].by, "broad");
  EXPECT_FALSE(plan.drops[0].equivalent);
  // No corpus: the corpus-dependent steps stay idle.
  EXPECT_TRUE(plan.merges.empty());
  EXPECT_TRUE(plan.prunes.empty());
  EXPECT_EQ(plan.rebucket.sample_titles, 0u);
  EXPECT_EQ(plan.index_sample, nullptr);
  EXPECT_FALSE(plan.empty());
  EXPECT_NE(plan.Summary().find("1 subsumption drops"), std::string::npos);
}

// Satellite regression: equivalence findings tie-break deterministically on
// the lexicographically-lowest rule id, so a chain A == B == C retires
// exactly the two higher ids and the keeper itself is never scheduled.
TEST(OptimizerPlanTest, EquivalentChainKeepsLowestId) {
  auto set = MakeRuleSet(R"(
whitelist a: rings? => rings
whitelist b: ring|rings => rings
whitelist c: ring(s)? => rings
)");
  auto plan = PlanOptimization(set, {});
  ASSERT_EQ(plan.drops.size(), 2u);
  std::set<std::string> dropped;
  for (const auto& drop : plan.drops) {
    EXPECT_TRUE(drop.equivalent);
    EXPECT_NE(drop.id, "a");  // the keeper can never be scheduled
    EXPECT_LT(drop.by, drop.id);
    dropped.insert(drop.id);
  }
  EXPECT_EQ(dropped, (std::set<std::string>{"b", "c"}));
  // Every drop's keeper survives the plan.
  for (const auto& drop : plan.drops) {
    EXPECT_EQ(dropped.count(drop.by), 0u) << drop.by;
  }
  rules::RuleSet planned = PlannedRuleSet(set, plan);
  EXPECT_EQ(planned.CountActive(), 1u);
  EXPECT_TRUE(planned.Find("a")->is_active());
}

// Satellite regression: anchored patterns are outside the containment
// checker's language. The pair must be reported skipped (and counted as
// anchored), never as a finding and never as a scan failure.
TEST(OptimizerPlanTest, AnchoredPatternsAreSkippedNotFailed) {
  auto set = MakeRuleSet(R"(
whitelist anch: ^denim jeans => jeans
whitelist plain: jeans => jeans
)");
  auto plan = PlanOptimization(set, {});
  EXPECT_TRUE(plan.drops.empty());
  EXPECT_EQ(plan.subsumption.pairs_checked, 1u);
  EXPECT_EQ(plan.subsumption.skipped_pairs, 1u);
  EXPECT_EQ(plan.subsumption.anchored_pairs, 1u);
  EXPECT_TRUE(plan.subsumption.findings.empty());
}

TEST(SubsumptionPrefilterTest, EndAnchorAlsoCountsAsAnchored) {
  auto set = MakeRuleSet(R"(
whitelist tail: jeans$ => jeans
whitelist plain: jeans => jeans
)");
  auto report = FindSubsumedRules(set);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.skipped_pairs, 1u);
  EXPECT_EQ(report.anchored_pairs, 1u);
}

TEST(SubsumptionPrefilterTest, PrefilterAgreesWithFullScan) {
  // Non-token patterns (the '?' defeats the token fast path) so every
  // decision is prefilter-or-DFA. The prefilter must refute some
  // directions yet change no findings.
  auto set = MakeRuleSet(R"(
whitelist r0: denim.*jeans? => t
whitelist r1: jeans? => t
whitelist r2: jackets? => t
whitelist r3: denim jackets? => t
whitelist r4: shorts? => t
whitelist r5: (denim|jean)[ -]shorts? => t
)");
  SubsumptionOptions with, without;
  without.use_literal_prefilter = false;
  auto a = FindSubsumedRules(set, with);
  auto b = FindSubsumedRules(set, without);
  EXPECT_GT(a.prefilter_refutations, 0u);
  EXPECT_EQ(b.prefilter_refutations, 0u);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].subsumed, b.findings[i].subsumed);
    EXPECT_EQ(a.findings[i].by, b.findings[i].by);
    EXPECT_EQ(a.findings[i].equivalent, b.findings[i].equivalent);
  }
}

// ---------------------------------------------- Consolidation round trip --

// Satellite property test: ConsolidateRules followed by SplitRule recovers
// the original branches, and the consolidated rule fires on exactly the
// union of the titles its parts fired on.
TEST(ConsolidationPropertyTest, MergeSplitRoundTripOnSeededCorpus) {
  auto a = *rules::Rule::Whitelist(
      "w1", "(abrasive|sand(er|ing))[ -](wheels?|discs?)",
      "abrasive wheels & discs");
  auto b = *rules::Rule::Whitelist("w2", "abrasive.*(wheels?|discs?)",
                                   "abrasive wheels & discs");
  auto merged = ConsolidateRules(a, b, "w1+w2");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  auto corpus = WheelsCorpus();
  size_t fired = 0;
  for (const auto& item : corpus) {
    const bool on_a = a.Applies(item);
    const bool on_b = b.Applies(item);
    EXPECT_EQ(merged->Applies(item), on_a || on_b) << item.title;
    if (on_a || on_b) ++fired;
  }
  ASSERT_GT(fired, 0u);  // the corpus genuinely exercises the union

  auto split = SplitRule(*merged);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->size(), 2u);
  for (const auto& item : corpus) {
    EXPECT_EQ((*split)[0].Applies(item), a.Applies(item)) << item.title;
    EXPECT_EQ((*split)[1].Applies(item), b.Applies(item)) << item.title;
  }
}

// --------------------------------------------------------- Plan + corpus --

TEST(OptimizerPlanTest, MergesPrunesAndRebucketsAgainstCorpus) {
  auto set = MakeRuleSet(R"(
whitelist w1: (abrasive|sand(er|ing))[ -](wheels?|discs?) => abrasive wheels & discs
whitelist w2: abrasive.*(wheels?|discs?) => abrasive wheels & discs
whitelist broad: jeans? => jeans
)");
  // A low-confidence rule with zero corpus coverage: the prune target.
  auto dead = *rules::Rule::Whitelist("dead", "zzzquux", "jeans");
  dead.metadata().confidence = 0.5;
  ASSERT_TRUE(set.Add(dead).ok());

  auto corpus = WheelsCorpus();
  OptimizerOptions options;
  options.merge_min_jaccard = 0.2;
  auto plan = PlanOptimization(set, corpus, options);

  ASSERT_EQ(plan.merges.size(), 1u);
  EXPECT_EQ(plan.merges[0].id_a, "w1");
  EXPECT_EQ(plan.merges[0].id_b, "w2");
  EXPECT_EQ(plan.merges[0].merged.id(), "w1+w2");
  EXPECT_GE(plan.merges[0].jaccard, 0.2);
  EXPECT_GT(plan.merges[0].intersection, 0u);

  ASSERT_EQ(plan.prunes.size(), 1u);
  EXPECT_EQ(plan.prunes[0].id, "dead");
  EXPECT_EQ(plan.prunes[0].coverage, 0u);
  EXPECT_EQ(plan.prunes[0].score, 0.0);
  // Zero coverage -> provably no corpus prediction changes.
  EXPECT_EQ(plan.prune_affected_items, 0u);

  EXPECT_EQ(plan.rebucket.sample_titles, corpus.size());
  ASSERT_NE(plan.index_sample, nullptr);
  EXPECT_EQ(plan.index_sample->size(), corpus.size());
  EXPECT_LE(plan.rebucket.candidates_per_item_after,
            plan.rebucket.candidates_per_item_before);
}

TEST(OptimizerPlanTest, HighConfidenceDormantRulesAreNotPruned) {
  auto set = MakeRuleSet("whitelist keep: zzzquux => jeans\n");
  // Default confidence 1.0 >= the 0.9 ceiling: dormant, not worthless.
  auto corpus = WheelsCorpus();
  auto plan = PlanOptimization(set, corpus);
  EXPECT_TRUE(plan.prunes.empty());
}

// ------------------------------------------------------------------ Apply --

TEST(OptimizerApplyTest, DryRunAppliesNothing) {
  rules::RuleRepository repo;
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("narrow", "denim.*jeans?", "jeans"),
               "a")
          .ok());
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("broad", "jeans?", "jeans"), "a")
          .ok());
  auto plan = PlanOptimization(repo.rules(), {});
  ASSERT_EQ(plan.drops.size(), 1u);

  auto dry = ApplyOptimizationPlan(repo, plan, "optimizer", {},
                                   /*dry_run=*/true);
  ASSERT_TRUE(dry.ok());
  EXPECT_FALSE(dry->applied);
  EXPECT_EQ(dry->retired, 1u);
  EXPECT_TRUE(repo.rules().Find("narrow")->is_active());

  auto wet = ApplyOptimizationPlan(repo, plan, "optimizer");
  ASSERT_TRUE(wet.ok());
  EXPECT_TRUE(wet->applied);
  EXPECT_EQ(repo.rules().Find("narrow")->metadata().state,
            rules::RuleState::kRetired);
  EXPECT_TRUE(repo.rules().Find("broad")->is_active());
  // The audit trail names the covering rule.
  auto history = repo.HistoryOf("narrow");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_NE(history[1].detail.find("broad"), std::string::npos);
  // Re-planning over the optimized repository finds nothing left.
  EXPECT_TRUE(PlanOptimization(repo.rules(), {}).empty());
}

TEST(OptimizerApplyTest, TenantScopedPlanTouchesOnlyTenantRules) {
  rules::RuleRepository repo;
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("narrow", "denim.*jeans?", "jeans"),
               "a")
          .ok());
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("broad", "jeans?", "jeans"), "a")
          .ok());
  rules::TenantId tenant("t1");
  ASSERT_TRUE(repo.Mutate("a", tenant, [&](rules::RuleTransaction& txn) {
                    auto tn_narrow = *rules::Rule::Whitelist(
                        "tn_narrow", "denim.*jeans?", "jeans");
                    tn_narrow.metadata().tenant = "t1";
                    auto tn_broad =
                        *rules::Rule::Whitelist("tn_broad", "jeans?", "jeans");
                    tn_broad.metadata().tenant = "t1";
                    Status st = txn.Add(tn_narrow);
                    if (!st.ok()) return st;
                    return txn.Add(tn_broad);
                  })
                  .ok());

  OptimizerOptions options;
  options.tenant = tenant;
  auto plan = PlanOptimization(repo.rules(), {}, options);
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_EQ(plan.drops[0].id, "tn_narrow");

  auto stats = ApplyOptimizationPlan(repo, plan, "optimizer", tenant);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->applied);
  EXPECT_FALSE(repo.rules().Find("tn_narrow")->is_active());
  // The default pool's identical redundancy is untouched.
  EXPECT_TRUE(repo.rules().Find("narrow")->is_active());
  EXPECT_TRUE(repo.rules().Find("broad")->is_active());
}

// -------------------------------------------------- Corpus-aware indexing --

TEST(CorpusAwareIndexTest, RebucketsOntoRarerLiteralWithIdenticalMatches) {
  auto set = MakeRuleSet(R"(
whitelist r1: usb.*cable => cables
whitelist r2: hdmi.*cable => cables
)");
  // Structurally both rules bucket on "cable" (longest literal). On this
  // sample "cable" is everywhere while "usb"/"hdmi" are rare, so the
  // corpus-aware build flips both rules to their prefix literal.
  std::vector<std::string> sample = {
      "audio cable 3m",    "cable organizer box", "coaxial cable 10ft",
      "power cable black", "usb hub 4 port",
  };
  engine::RuleIndex structural;
  structural.Build(set);
  engine::RuleIndex aware;
  aware.Build(set, regex::AnalysisOptions{}, sample);
  EXPECT_GE(aware.stats().rebucketed_rules, 1u);
  EXPECT_EQ(structural.stats().rebucketed_rules, 0u);

  size_t structural_total = 0, aware_total = 0;
  for (const auto& title : sample) {
    structural_total += structural.Candidates(title).size();
    aware_total += aware.Candidates(title).size();
  }
  EXPECT_LT(aware_total, structural_total);

  // Matching is identical through the executor whichever bucket is used.
  std::vector<data::ProductItem> items;
  for (const char* title :
       {"usb charging cable", "hdmi cable 4k", "plain cable", "usb hub"}) {
    data::ProductItem item;
    item.title = title;
    items.push_back(item);
  }
  engine::RuleExecutor plain_exec(set);
  engine::ExecutorOptions aware_options;
  aware_options.index_sample =
      std::make_shared<const std::vector<std::string>>(sample);
  engine::RuleExecutor aware_exec(set, aware_options);
  auto plain_result = plain_exec.Execute(items);
  auto aware_result = aware_exec.Execute(items);
  EXPECT_EQ(plain_result.matches_per_item, aware_result.matches_per_item);
  // The re-bucketed index performed no extra evaluations on this batch.
  EXPECT_LE(aware_result.stats.rule_evaluations,
            plain_result.stats.rule_evaluations);
}

// ------------------------------------------------- End-to-end through PR --

TEST(OptimizerPipelineTest, OutputIdenticalAndExecutedRulesDrop) {
  auto parsed = rules::ParseRules(R"(
whitelist narrow: denim.*jeans? => jeans
whitelist broad: jeans? => jeans
whitelist ring_a: rings? => rings
whitelist ring_b: ring|rings => rings
whitelist w1: (abrasive|sand(er|ing))[ -](wheels?|discs?) => abrasive wheels & discs
whitelist w2: abrasive.*(wheels?|discs?) => abrasive wheels & discs
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto rules_vec = std::move(parsed).value();
  auto dead = *rules::Rule::Whitelist("dead", "zzzquux", "jeans");
  dead.metadata().confidence = 0.5;
  rules_vec.push_back(dead);

  chimera::ChimeraPipeline pipeline;
  ASSERT_TRUE(pipeline.AddRules(std::move(rules_vec), "test").ok());

  auto corpus = WheelsCorpus();
  auto before = RunBatch(pipeline, corpus);
  ASSERT_EQ(before.rule_items, corpus.size());
  ASSERT_GT(before.rules_executed, 0u);
  EXPECT_GT(before.ExecutedRulesPerItem(), 0.0);

  OptimizerOptions options;
  options.merge_min_jaccard = 0.2;
  auto plan = PlanOptimization(pipeline.rule_set(), corpus, options);
  EXPECT_FALSE(plan.empty());
  EXPECT_GE(plan.drops.size(), 2u);   // narrow + one of the ring twins
  EXPECT_EQ(plan.merges.size(), 1u);  // w1 + w2
  EXPECT_EQ(plan.prunes.size(), 1u);  // dead
  EXPECT_EQ(plan.prune_affected_items, 0u);

  ASSERT_TRUE(pipeline.Mutate("optimizer",
                              [&](rules::RuleTransaction& txn) {
                                return StageOptimizationPlan(txn, plan);
                              })
                  .ok());

  auto after = RunBatch(pipeline, corpus);
  ASSERT_EQ(after.predictions.size(), before.predictions.size());
  for (size_t i = 0; i < before.predictions.size(); ++i) {
    EXPECT_EQ(before.predictions[i], after.predictions[i])
        << "item " << i << ": " << corpus[i].title;
  }
  // The optimization exists to shrink this: fewer regex evaluations for
  // the same predictions.
  EXPECT_EQ(after.rule_items, before.rule_items);
  EXPECT_LT(after.rules_executed, before.rules_executed);
  EXPECT_LT(after.ExecutedRulesPerItem(), before.ExecutedRulesPerItem());
}

// ---------------------------------------------------------------- Monitor --

TEST(MonitorTest, ExecutedRulesPerItemWindows) {
  chimera::QualityMonitor monitor;
  EXPECT_EQ(monitor.ExecutedRulesPerItem(), 0.0);

  chimera::ServingActivity a;
  a.batch_index = 0;
  a.rules_executed = 10;
  a.rule_items = 5;
  monitor.RecordServing(a);
  chimera::ServingActivity b;
  b.batch_index = 1;
  b.rules_executed = 2;
  b.rule_items = 2;
  monitor.RecordServing(b);

  EXPECT_DOUBLE_EQ(monitor.ExecutedRulesPerItem(), 12.0 / 7.0);
  EXPECT_DOUBLE_EQ(monitor.ExecutedRulesPerItem(1), 1.0);  // last batch only
  EXPECT_EQ(monitor.ExecutedRulesPerItem("t9", 0), 0.0);   // unknown tenant

  chimera::ServingActivity t;
  t.rules_executed = 9;
  t.rule_items = 3;
  monitor.RecordServing(t, "t1");
  EXPECT_DOUBLE_EQ(monitor.ExecutedRulesPerItem("t1", 0), 3.0);
  // Tenant histories are isolated.
  EXPECT_DOUBLE_EQ(monitor.ExecutedRulesPerItem(), 12.0 / 7.0);
}

}  // namespace
}  // namespace rulekit::maint
