#include <gtest/gtest.h>

#include "src/crowd/crowd.h"
#include "src/crowd/estimator.h"

namespace rulekit::crowd {
namespace {

TEST(CrowdTest, SpendsBudgetPerTask) {
  CrowdConfig config;
  config.votes_per_task = 3;
  config.cost_per_vote = 2.0;
  CrowdSimulator crowd(config);
  crowd.AskYesNo(true);
  crowd.AskYesNo(false);
  EXPECT_EQ(crowd.num_tasks(), 2u);
  EXPECT_EQ(crowd.num_votes(), 6u);
  EXPECT_DOUBLE_EQ(crowd.total_cost(), 12.0);
}

TEST(CrowdTest, MajorityVoteIsMostlyCorrect) {
  CrowdConfig config;
  config.seed = 7;
  config.mean_worker_accuracy = 0.9;
  config.votes_per_task = 3;
  CrowdSimulator crowd(config);
  size_t correct = 0;
  const size_t n = 5000;
  for (size_t i = 0; i < n; ++i) {
    bool truth = (i % 2) == 0;
    if (crowd.AskYesNo(truth) == truth) ++correct;
  }
  // Majority of three 0.9-accurate workers ≈ 0.972.
  EXPECT_GT(static_cast<double>(correct) / n, 0.94);
  EXPECT_NEAR(crowd.empirical_accuracy(),
              static_cast<double>(correct) / n, 1e-12);
}

TEST(CrowdTest, MoreVotesImproveAccuracy) {
  auto run = [](size_t votes) {
    CrowdConfig config;
    config.seed = 21;
    config.mean_worker_accuracy = 0.75;
    config.worker_accuracy_stddev = 0.0;
    config.votes_per_task = votes;
    CrowdSimulator crowd(config);
    size_t correct = 0;
    for (size_t i = 0; i < 4000; ++i) {
      bool truth = (i % 3) != 0;
      if (crowd.AskYesNo(truth) == truth) ++correct;
    }
    return static_cast<double>(correct) / 4000.0;
  };
  EXPECT_GT(run(7), run(1) + 0.02);
}

TEST(CrowdTest, WorkerAccuraciesAreClamped) {
  CrowdConfig config;
  config.worker_accuracy_stddev = 0.5;  // wild spread
  CrowdSimulator crowd(config);
  for (double acc : crowd.worker_accuracies()) {
    EXPECT_GE(acc, 0.51);
    EXPECT_LE(acc, 0.999);
  }
}

TEST(EstimatorTest, WilsonBasicProperties) {
  auto est = WilsonEstimate(90, 100);
  EXPECT_NEAR(est.estimate, 0.9, 1e-12);
  EXPECT_LT(est.lower, 0.9);
  EXPECT_GT(est.upper, 0.9);
  EXPECT_GE(est.lower, 0.0);
  EXPECT_LE(est.upper, 1.0);
}

TEST(EstimatorTest, WilsonZeroSample) {
  auto est = WilsonEstimate(0, 0);
  EXPECT_EQ(est.sample_size, 0u);
  EXPECT_DOUBLE_EQ(est.lower, 0.0);
  EXPECT_DOUBLE_EQ(est.upper, 1.0);
}

TEST(EstimatorTest, WilsonExtremesStayInBounds) {
  auto all = WilsonEstimate(10, 10);
  EXPECT_LE(all.upper, 1.0);
  EXPECT_LT(all.lower, 1.0);  // small samples can't certify perfection
  auto none = WilsonEstimate(0, 10);
  EXPECT_GE(none.lower, 0.0);
  EXPECT_GT(none.upper, 0.0);
}

TEST(EstimatorTest, IntervalShrinksWithSampleSize) {
  auto small = WilsonEstimate(9, 10);
  auto large = WilsonEstimate(900, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(EstimatorTest, SamplesForHalfWidth) {
  // Classic result: ±5% at 95% needs ~385 samples.
  size_t n = SamplesForHalfWidth(0.05);
  EXPECT_GE(n, 380u);
  EXPECT_LE(n, 390u);
  EXPECT_GT(SamplesForHalfWidth(0.01), n);
}

}  // namespace
}  // namespace rulekit::crowd
