// Cross-module property tests (parameterized over seeds): invariants of
// rule selection, the rule miner, the rule index, the Chimera voting
// semantics, EM matching, and repository checkpointing, all on randomized
// inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "src/chimera/pipeline.h"
#include "src/common/random.h"
#include "src/data/catalog_generator.h"
#include "src/em/matcher.h"
#include "src/engine/executor.h"
#include "src/eval/tracker.h"
#include "src/gen/rule_miner.h"
#include "src/gen/rule_selection.h"
#include "src/mining/apriori_all.h"
#include "src/rules/dictionary_registry.h"
#include "src/rules/rule_parser.h"
#include "src/storage/codec.h"
#include "src/text/aho_corasick.h"
#include "tests/seeded_test.h"

#include "tests/classify_shims.h"

namespace rulekit {
namespace {

class SeededTest : public SeedAwareTest {};

// ---------------------------------------------------------------------------
// Greedy selection invariants.
// ---------------------------------------------------------------------------

std::vector<gen::SelectionCandidate> RandomCandidates(Rng& rng, size_t n,
                                                      size_t universe) {
  std::vector<gen::SelectionCandidate> out(n);
  for (auto& c : out) {
    c.confidence = rng.NextDouble();
    size_t k = 1 + rng.Uniform(universe / 4 + 1);
    auto items = rng.SampleWithoutReplacement(universe, k);
    c.covered.assign(items.begin(), items.end());
    std::sort(c.covered.begin(), c.covered.end());
  }
  return out;
}

TEST_P(SeededTest, GreedySelectionInvariants) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    size_t universe = 20 + rng.Uniform(60);
    auto cands = RandomCandidates(rng, 5 + rng.Uniform(30), universe);
    size_t q = 1 + rng.Uniform(10);
    for (bool biased : {false, true}) {
      auto picked = biased
                        ? gen::GreedyBiasedSelect(cands, universe, q, 0.5)
                        : gen::GreedySelect(cands, universe, q);
      // Quota respected, no duplicates.
      EXPECT_LE(picked.size(), q);
      std::set<size_t> unique(picked.begin(), picked.end());
      EXPECT_EQ(unique.size(), picked.size());
      // Every selected rule added new coverage at selection time:
      // replaying the selection must grow coverage strictly.
      std::set<uint32_t> covered;
      for (size_t i : picked) {
        size_t before = covered.size();
        covered.insert(cands[i].covered.begin(), cands[i].covered.end());
        EXPECT_GT(covered.size(), before) << "rule added no coverage";
      }
    }
  }
}

TEST_P(SeededTest, GreedyBiasedSelectsHighPoolFirst) {
  Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 10; ++iter) {
    size_t universe = 30;
    auto cands = RandomCandidates(rng, 20, universe);
    auto biased = gen::GreedyBiasedSelect(cands, universe, 8, 0.5);
    // Algorithm 2's defining property: in selection order, once a
    // low-confidence rule appears, no high-confidence rule follows.
    bool seen_low = false;
    for (size_t i : biased) {
      if (cands[i].confidence < 0.5) {
        seen_low = true;
      } else {
        EXPECT_FALSE(seen_low)
            << "high-confidence rule selected after a low-confidence one";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule miner: selected rules never misfire on the training data.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, MinedRulesConsistentOnTraining) {
  data::GeneratorConfig config;
  config.seed = GetParam();
  config.num_types = 10;
  data::CatalogGenerator gen(config);
  auto labeled = gen.GenerateMany(1500);
  gen::RuleMinerConfig miner_config;
  miner_config.min_support = 0.05;
  auto outcome = gen::MineRules(labeled, miner_config);
  size_t checked = 0;
  for (const auto& mined : outcome.selected) {
    auto rule = mined.ToRule("m" + std::to_string(checked));
    ASSERT_TRUE(rule.ok());
    for (const auto& li : labeled) {
      if (li.label != mined.type) {
        EXPECT_FALSE(rule->Applies(li.item))
            << mined.Pattern() << " for " << mined.type << " matched "
            << li.label << ": " << li.item.title;
      }
    }
    if (++checked >= 25) break;  // bound test cost
  }
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------------
// Mined sequences really are frequent subsequences.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, FrequentSequencesHaveTrueSupport) {
  Rng rng(GetParam() + 300);
  std::vector<std::vector<text::TokenId>> docs;
  for (int d = 0; d < 120; ++d) {
    std::vector<text::TokenId> doc;
    size_t len = 2 + rng.Uniform(7);
    for (size_t i = 0; i < len; ++i) {
      doc.push_back(static_cast<text::TokenId>(rng.Uniform(12)));
    }
    docs.push_back(std::move(doc));
  }
  mining::SequenceMiningOptions options;
  options.min_support = 0.1;
  options.min_length = 2;
  options.max_length = 3;
  auto result = mining::MineFrequentSequences(docs, options);
  for (const auto& fs : result) {
    size_t count = 0;
    for (const auto& doc : docs) {
      if (mining::IsSubsequence(fs.tokens, doc)) ++count;
    }
    EXPECT_EQ(count, fs.support_count);
    EXPECT_GE(count, static_cast<size_t>(0.1 * docs.size()));
  }
}

// ---------------------------------------------------------------------------
// Rule index: indexed and scan execution agree on random rule sets.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, IndexedExecutionEqualsScan) {
  data::GeneratorConfig config;
  config.seed = GetParam() + 400;
  config.num_types = 15;
  data::CatalogGenerator gen(config);
  Rng rng(GetParam() + 401);

  // Random rules built from the generator vocabulary.
  auto set = std::make_shared<rules::RuleSet>();
  size_t id = 0;
  for (int r = 0; r < 40; ++r) {
    const auto& spec = gen.specs()[rng.Uniform(gen.specs().size())];
    std::string pattern;
    switch (rng.Uniform(3)) {
      case 0:
        pattern = spec.head_nouns[rng.Uniform(spec.head_nouns.size())];
        break;
      case 1:
        pattern = spec.qualifiers[rng.Uniform(spec.qualifiers.size())] +
                  ".*" + spec.head_nouns[0];
        break;
      default:
        pattern = "(" + spec.head_nouns[0] + "|" +
                  spec.qualifiers[rng.Uniform(spec.qualifiers.size())] +
                  ")s?";
    }
    auto rule = rules::Rule::Whitelist("r" + std::to_string(id++), pattern,
                                       spec.name);
    if (rule.ok()) (void)set->Add(std::move(rule).value());
  }
  std::vector<data::ProductItem> items;
  for (auto& li : gen.GenerateMany(300)) items.push_back(li.item);

  engine::RuleExecutor scan(*set, {.use_index = false});
  engine::RuleExecutor indexed(*set, {.use_index = true});
  auto a = scan.Execute(items);
  auto b = indexed.Execute(items);
  EXPECT_EQ(a.matches_per_item, b.matches_per_item);
  EXPECT_LE(b.stats.rule_evaluations, a.stats.rule_evaluations);
}

// ---------------------------------------------------------------------------
// Chimera: order of rule insertion never changes batch predictions.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, PipelinePredictionsInvariantUnderRuleOrder) {
  data::GeneratorConfig config;
  config.seed = GetParam() + 500;
  config.num_types = 8;
  data::CatalogGenerator gen(config);
  Rng rng(GetParam() + 501);

  std::vector<std::string> dsl_lines;
  for (const auto& spec : gen.specs()) {
    dsl_lines.push_back("whitelist w-" + spec.name + ": " +
                        spec.head_nouns[0] + "s? => " + spec.name);
    dsl_lines.push_back("blacklist b-" + spec.name + ": trial " +
                        spec.head_nouns[0] + " => " + spec.name);
  }
  auto batch = gen.GenerateMany(150);
  std::vector<data::ProductItem> items;
  for (const auto& li : batch) items.push_back(li.item);

  std::vector<std::optional<std::string>> reference;
  for (int perm = 0; perm < 4; ++perm) {
    chimera::ChimeraPipeline pipeline;
    std::string dsl;
    for (const auto& l : dsl_lines) dsl += l + "\n";
    auto parsed = rules::ParseRules(dsl);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "t").ok());
    auto report = RunBatch(pipeline, items);
    if (perm == 0) {
      reference = report.predictions;
    } else {
      EXPECT_EQ(report.predictions, reference);
    }
    rng.Shuffle(dsl_lines);
  }
}

// ---------------------------------------------------------------------------
// EM: matching is symmetric and order-independent.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, EmMatchingSymmetric) {
  data::GeneratorConfig config;
  config.seed = GetParam() + 600;
  data::CatalogGenerator gen(config);
  Rng rng(GetParam() + 601);
  auto items = gen.GenerateMany(60);
  em::EmMatcher matcher({
      em::EmRule("t", {{"Title", em::EmOp::kJaccard3Gram, 0.6}}),
      em::EmRule("b", {{"Brand", em::EmOp::kExactEqual, 0.0},
                       {"Title", em::EmOp::kJaccard3Gram, 0.4}}),
  });
  for (int trial = 0; trial < 60; ++trial) {
    const auto& a = items[rng.Uniform(items.size())].item;
    const auto& b = items[rng.Uniform(items.size())].item;
    std::string rule_ab, rule_ba;
    bool ab = matcher.Matches(a, b, &rule_ab);
    bool ba = matcher.Matches(b, a, &rule_ba);
    EXPECT_EQ(ab, ba);
    if (ab) {
      EXPECT_EQ(rule_ab, rule_ba);
    }
  }
}

// ---------------------------------------------------------------------------
// Repository: checkpoint/restore is a faithful snapshot under random ops.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, CheckpointRestoreFaithful) {
  Rng rng(GetParam() + 700);
  rules::RuleRepository repo;
  std::vector<std::string> ids;
  for (int i = 0; i < 15; ++i) {
    std::string id = "r" + std::to_string(i);
    ASSERT_TRUE(
        repo.Add(*rules::Rule::Whitelist(id, "tok" + std::to_string(i),
                                         "t"),
                 "init")
            .ok());
    ids.push_back(id);
  }
  // Random mutations, snapshot, more mutations, restore.
  auto mutate = [&] {
    const std::string& id = ids[rng.Uniform(ids.size())];
    switch (rng.Uniform(3)) {
      case 0: (void)repo.Disable(id, "fuzz", ""); break;
      case 1: (void)repo.Enable(id, "fuzz"); break;
      default: (void)repo.SetConfidence(id, rng.NextDouble(), "fuzz");
    }
  };
  for (int i = 0; i < 20; ++i) mutate();
  // Record the state.
  std::map<std::string, std::pair<rules::RuleState, double>> expected;
  for (const auto& rule : repo.rules().rules()) {
    expected[rule.id()] = {rule.metadata().state,
                           rule.metadata().confidence};
  }
  uint64_t version = *repo.Checkpoint("fuzz");
  for (int i = 0; i < 20; ++i) mutate();
  ASSERT_TRUE(repo.RestoreCheckpoint(version, "fuzz").ok());
  for (const auto& rule : repo.rules().rules()) {
    const auto& [state, confidence] = expected[rule.id()];
    EXPECT_EQ(rule.metadata().state, state) << rule.id();
    EXPECT_DOUBLE_EQ(rule.metadata().confidence, confidence) << rule.id();
  }
}

// ---------------------------------------------------------------------------
// Budgeted evaluation plans never exceed the budget.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, EvaluationPlanRespectsBudget) {
  data::GeneratorConfig config;
  config.seed = GetParam() + 800;
  config.num_types = 10;
  data::CatalogGenerator gen(config);
  auto set_dsl = std::string();
  for (const auto& spec : gen.specs()) {
    set_dsl += "whitelist w-" + spec.name + ": " + spec.head_nouns[0] +
               "s? => " + spec.name + "\n";
  }
  auto parsed = rules::ParseRuleSet(set_dsl);
  ASSERT_TRUE(parsed.ok());
  std::vector<data::ProductItem> items;
  for (auto& li : gen.GenerateMany(1500)) items.push_back(li.item);
  eval::ImpactTracker tracker(10);
  tracker.RecordBatch(*parsed, items);

  Rng rng(GetParam() + 801);
  for (int trial = 0; trial < 10; ++trial) {
    size_t budget = rng.Uniform(200);
    size_t per_rule = 1 + rng.Uniform(40);
    auto plan = eval::PlanBudgetedEvaluation(tracker, budget, per_rule);
    EXPECT_LE(plan.estimated_questions, budget);
    // Most impactful first.
    for (size_t i = 1; i < plan.to_evaluate.size(); ++i) {
      EXPECT_GE(tracker.MatchCount(plan.to_evaluate[i - 1]),
                tracker.MatchCount(plan.to_evaluate[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Predicate DSL: ToString round-trips through the parser with identical
// semantics.
// ---------------------------------------------------------------------------

rules::PredicatePtr RandomPredicate(Rng& rng,
                                    const rules::DictionaryRegistry& dicts,
                                    int depth) {
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    switch (rng.Uniform(7)) {
      case 0: return rules::TitleContains("ring");
      case 1: return rules::AttributeExists("ISBN");
      case 2: return rules::AttributeEquals("Brand", "apple");
      case 3: return rules::PriceBelow(10.0 + rng.NextDouble() * 90.0);
      case 4: return rules::PriceAbove(10.0 + rng.NextDouble() * 90.0);
      case 5:
        return rules::DictionaryContains(dicts.Find("bag words"),
                                         "bag words");
      default: {
        auto re = regex::Regex::CompileCaseFolded("(gold|silver) rings?");
        return rules::TitleMatches(std::move(re).value());
      }
    }
  }
  switch (rng.Uniform(3)) {
    case 0:
      return rules::And(RandomPredicate(rng, dicts, depth - 1),
                        RandomPredicate(rng, dicts, depth - 1));
    case 1:
      return rules::Or(RandomPredicate(rng, dicts, depth - 1),
                       RandomPredicate(rng, dicts, depth - 1));
    default:
      return rules::Not(RandomPredicate(rng, dicts, depth - 1));
  }
}

TEST_P(SeededTest, PredicateToStringRoundTrips) {
  Rng rng(GetParam() + 900);
  rules::DictionaryRegistry dicts;
  dicts.RegisterPhrases("bag words", {"satchel", "purse", "tote"});

  // Probe items covering the predicates' feature space.
  std::vector<data::ProductItem> probes;
  for (const char* title :
       {"gold ring", "silver rings deluxe", "leather satchel", "plain"}) {
    for (double price : {5.0, 50.0, 500.0}) {
      data::ProductItem item;
      item.title = title;
      item.SetAttribute("Price", std::to_string(price));
      if (price > 100) item.SetAttribute("ISBN", "978");
      if (price < 10) item.SetAttribute("Brand", "apple");
      probes.push_back(item);
    }
  }

  for (int iter = 0; iter < 25; ++iter) {
    auto original = RandomPredicate(rng, dicts, 3);
    auto reparsed = rules::ParsePredicate(original->ToString(), &dicts);
    ASSERT_TRUE(reparsed.ok())
        << original->ToString() << ": " << reparsed.status().ToString();
    for (const auto& probe : probes) {
      EXPECT_EQ(original->Eval(probe), (*reparsed)->Eval(probe))
          << original->ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Aho-Corasick agrees with naive substring search.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, AhoCorasickAgreesWithNaiveSearch) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 15; ++iter) {
    // Random patterns over a tiny alphabet maximize overlaps.
    std::vector<std::string> patterns;
    text::AhoCorasick ac;
    for (uint32_t p = 0; p < 12; ++p) {
      std::string pattern;
      size_t len = 1 + rng.Uniform(5);
      for (size_t i = 0; i < len; ++i) {
        pattern += static_cast<char>('a' + rng.Uniform(3));
      }
      patterns.push_back(pattern);
      ac.Add(pattern, p);
    }
    ac.Build();
    for (int t = 0; t < 20; ++t) {
      std::string textv;
      size_t len = rng.Uniform(25);
      for (size_t i = 0; i < len; ++i) {
        textv += static_cast<char>('a' + rng.Uniform(3));
      }
      auto hits = ac.CollectUnique(textv);
      std::set<uint32_t> expected;
      for (uint32_t p = 0; p < patterns.size(); ++p) {
        if (textv.find(patterns[p]) != std::string::npos) {
          expected.insert(p);
        }
      }
      EXPECT_EQ(std::set<uint32_t>(hits.begin(), hits.end()), expected)
          << "text=" << textv;
    }
  }
}

// ---------------------------------------------------------------------------
// FindAll: spans are in-bounds, ordered, and non-overlapping.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, FindAllSpansWellFormed) {
  Rng rng(GetParam() + 1100);
  const char* patterns[] = {"a+", "(ab|b)", "a?b", "\\w\\w", "b.*a"};
  for (const char* pattern : patterns) {
    auto re = regex::Regex::Compile(pattern);
    ASSERT_TRUE(re.ok());
    for (int t = 0; t < 30; ++t) {
      std::string textv;
      size_t len = rng.Uniform(15);
      for (size_t i = 0; i < len; ++i) {
        textv += "ab "[rng.Uniform(3)];
      }
      auto matches = re->FindAll(textv);
      size_t prev_end = 0;
      bool first = true;
      for (const auto& m : matches) {
        EXPECT_LE(m.overall.begin, m.overall.end);
        EXPECT_LE(m.overall.end, textv.size());
        if (!first) {
          EXPECT_GE(m.overall.begin, prev_end);
        }
        prev_end = std::max(prev_end, m.overall.end);
        first = false;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Storage codec: encode/decode is the identity on randomized rules.
// ---------------------------------------------------------------------------

TEST_P(SeededTest, CodecRoundTripsMinedRules) {
  data::GeneratorConfig config;
  config.seed = GetParam() + 1200;
  config.num_types = 8;
  data::CatalogGenerator gen(config);
  auto labeled = gen.GenerateMany(800);
  gen::RuleMinerConfig miner_config;
  miner_config.min_support = 0.05;
  auto outcome = gen::MineRules(labeled, miner_config);
  ASSERT_GT(outcome.selected.size(), 0u);

  Rng rng(GetParam() + 1300);
  size_t checked = 0;
  for (const auto& mined : outcome.selected) {
    auto rule = mined.ToRule("mined-" + std::to_string(checked));
    ASSERT_TRUE(rule.ok());
    // Randomized metadata so every field crosses the codec.
    rule->metadata().author = "miner-" + std::to_string(rng.Uniform(100));
    rule->metadata().origin = rules::RuleOrigin::kMined;
    rule->metadata().created_at = rng.Uniform(1 << 20);
    rule->metadata().confidence = rng.NextDouble();
    rule->metadata().state = rng.Uniform(2) == 0 ? rules::RuleState::kActive
                                                 : rules::RuleState::kDisabled;
    rule->metadata().note = rng.Uniform(2) == 0 ? "" : "note\twith tab";

    storage::Encoder enc;
    storage::EncodeRule(*rule, enc);
    storage::Decoder dec(enc.data());
    auto decoded = storage::DecodeRule(dec);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(dec.AtEnd());

    // Re-encoding the decoded rule must reproduce the exact bytes: the
    // codec is a fixed point, so byte equality is full field equality.
    storage::Encoder enc2;
    storage::EncodeRule(*decoded, enc2);
    EXPECT_EQ(enc2.data(), enc.data()) << rule->ToDsl();
    EXPECT_EQ(decoded->ToDsl(), rule->ToDsl());
    if (++checked >= 40) break;  // bound test cost
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(SeededTest, CodecRoundTripsParsedDsl) {
  // Rules arriving through the text parser (the analyst path) round-trip
  // through the binary codec with their DSL form intact.
  auto parsed = rules::ParseRules(R"(
whitelist w1: (diamond|gold) rings? => rings
blacklist b1: toe rings? => rings
attr a1: has(ISBN) => books
attrval v1: Brand = "acme" => tools | hardware
pred p1: title ~ "wrench(es)?" and not has(ISBN) => tools
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const auto& rule : *parsed) {
    storage::Encoder enc;
    storage::EncodeRule(rule, enc);
    storage::Decoder dec(enc.data());
    auto decoded = storage::DecodeRule(dec);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->ToDsl(), rule.ToDsl());
    storage::Encoder enc2;
    storage::EncodeRule(*decoded, enc2);
    EXPECT_EQ(enc2.data(), enc.data()) << rule.ToDsl();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeededTest,
    ::testing::ValuesIn(SeedsOrOverride({11u, 22u, 33u, 44u})));

}  // namespace
}  // namespace rulekit
