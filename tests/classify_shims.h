#ifndef RULEKIT_TESTS_CLASSIFY_SHIMS_H_
#define RULEKIT_TESTS_CLASSIFY_SHIMS_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"
#include "src/data/product.h"
#include "src/rules/ids.h"

namespace rulekit::chimera {

/// Test-side conveniences over the one classification entry point,
/// ChimeraPipeline::Classify(ClassifyRequest). They intentionally mirror
/// the deprecated ProcessBatch / single-item Classify shapes so the
/// hundreds of existing assertions migrate mechanically — but they build
/// a ClassifyRequest like any modern caller, so the deprecated wrappers
/// themselves have zero callers left in the tree. Found by ADL from any
/// test namespace (the pipeline argument lives in rulekit::chimera).

inline BatchReport RunBatch(const ChimeraPipeline& pipeline,
                            const std::vector<data::ProductItem>& items,
                            const rules::TenantId& tenant = {}) {
  ClassifyRequest request;
  request.tenant = tenant;
  request.items = items;
  return pipeline.Classify(request).report;
}

inline std::optional<std::string> ClassifyOne(
    const ChimeraPipeline& pipeline, const data::ProductItem& item,
    const rules::TenantId& tenant = {}) {
  ClassifyRequest request;
  request.tenant = tenant;
  request.items = std::span<const data::ProductItem>(&item, 1);
  return pipeline.Classify(request).report.predictions[0];
}

}  // namespace rulekit::chimera

#endif  // RULEKIT_TESTS_CLASSIFY_SHIMS_H_
