// Property tests: random small patterns and texts over a tiny alphabet,
// cross-checking the independent implementations against each other
// (Pike VM vs boolean VM vs DFA vs prefilter analysis vs containment).

#include <gtest/gtest.h>

#include <string>

#include "src/common/random.h"
#include "src/regex/analysis.h"
#include "src/regex/containment.h"
#include "src/regex/dfa.h"
#include "src/regex/regex.h"
#include "tests/seeded_test.h"

namespace rulekit::regex {
namespace {

// Generates a random pattern over {a, b, c, ' '} without anchors.
std::string RandomPattern(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    // Leaf: literal, class, or dot.
    switch (rng.Uniform(6)) {
      case 0: return "a";
      case 1: return "b";
      case 2: return "c";
      case 3: return "[ab]";
      case 4: return "[^a]";
      default: return ".";
    }
  }
  switch (rng.Uniform(5)) {
    case 0:  // concat
      return RandomPattern(rng, depth - 1) + RandomPattern(rng, depth - 1);
    case 1:  // alternation
      return "(" + RandomPattern(rng, depth - 1) + "|" +
             RandomPattern(rng, depth - 1) + ")";
    case 2:  // star
      return "(" + RandomPattern(rng, depth - 1) + ")*";
    case 3:  // plus
      return "(" + RandomPattern(rng, depth - 1) + ")+";
    default:  // optional
      return "(" + RandomPattern(rng, depth - 1) + ")?";
  }
}

std::string RandomText(Rng& rng, size_t max_len) {
  static const char kAlphabet[] = "abc abc";
  size_t len = rng.Uniform(max_len + 1);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class RegexPropertyTest : public ::rulekit::SeedAwareTest {};

TEST_P(RegexPropertyTest, DfaAgreesWithNfaFullMatch) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    std::string pattern = RandomPattern(rng, 3);
    auto re = Regex::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    ByteClasses classes = ComputeByteClasses({&re->program()});
    auto dfa = Dfa::Build(re->program(), classes);
    ASSERT_TRUE(dfa.ok()) << pattern;
    for (int t = 0; t < 25; ++t) {
      std::string text = RandomText(rng, 12);
      EXPECT_EQ(dfa->Matches(text), re->FullMatch(text))
          << "pattern=" << pattern << " text=\"" << text << "\"";
    }
  }
}

TEST_P(RegexPropertyTest, PartialMatchAgreesWithFind) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 40; ++iter) {
    std::string pattern = RandomPattern(rng, 3);
    auto re = Regex::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    for (int t = 0; t < 25; ++t) {
      std::string text = RandomText(rng, 12);
      bool partial = re->PartialMatch(text);
      auto m = re->Find(text);
      EXPECT_EQ(partial, m.has_value())
          << "pattern=" << pattern << " text=\"" << text << "\"";
      if (m.has_value()) {
        // The matched substring must itself be in the language.
        std::string sub(text.substr(m->overall.begin, m->overall.length()));
        EXPECT_TRUE(re->FullMatch(sub))
            << "pattern=" << pattern << " sub=\"" << sub << "\"";
      }
    }
  }
}

TEST_P(RegexPropertyTest, FullMatchImpliesPartialMatch) {
  Rng rng(GetParam() + 2000);
  for (int iter = 0; iter < 40; ++iter) {
    std::string pattern = RandomPattern(rng, 3);
    auto re = Regex::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    for (int t = 0; t < 25; ++t) {
      std::string text = RandomText(rng, 10);
      if (re->FullMatch(text)) {
        EXPECT_TRUE(re->PartialMatch(text))
            << "pattern=" << pattern << " text=\"" << text << "\"";
      }
    }
  }
}

TEST_P(RegexPropertyTest, SelfSubsumptionHolds) {
  Rng rng(GetParam() + 3000);
  for (int iter = 0; iter < 10; ++iter) {
    std::string pattern = RandomPattern(rng, 2);
    auto re = Regex::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    auto subsumes = SearchSubsumes(*re, *re);
    if (!subsumes.ok()) continue;  // state-cap blowup is acceptable
    EXPECT_TRUE(*subsumes) << pattern;
  }
}

TEST_P(RegexPropertyTest, ContainmentAgreesWithSampling) {
  Rng rng(GetParam() + 4000);
  for (int iter = 0; iter < 15; ++iter) {
    std::string pa = RandomPattern(rng, 2);
    std::string pb = RandomPattern(rng, 2);
    auto ra = Regex::Compile(pa);
    auto rb = Regex::Compile(pb);
    ASSERT_TRUE(ra.ok() && rb.ok());
    auto subset = LanguageSubset(*ra, *rb);
    if (!subset.ok()) continue;
    if (!*subset) continue;
    // If L(a) ⊆ L(b), then every sampled full match of a must match b.
    for (int t = 0; t < 60; ++t) {
      std::string text = RandomText(rng, 8);
      if (ra->FullMatch(text)) {
        EXPECT_TRUE(rb->FullMatch(text))
            << "a=" << pa << " b=" << pb << " text=\"" << text << "\"";
      }
    }
  }
}

TEST_P(RegexPropertyTest, PrefilterIsSoundOnRandomTexts) {
  Rng rng(GetParam() + 5000);
  AnalysisOptions options;
  options.min_length = 1;  // accept short literals for the tiny alphabet
  for (int iter = 0; iter < 30; ++iter) {
    std::string pattern = RandomPattern(rng, 3);
    auto re = Regex::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    auto alts = RequiredAlternatives(*re, options);
    if (!alts.ok()) continue;
    for (int t = 0; t < 40; ++t) {
      std::string text = RandomText(rng, 12);
      if (!re->PartialMatch(text)) continue;
      bool contains = false;
      for (const auto& lit : *alts) {
        if (text.find(lit) != std::string::npos) contains = true;
      }
      EXPECT_TRUE(contains) << "pattern=" << pattern << " text=\"" << text
                            << "\"";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RegexPropertyTest,
    ::testing::ValuesIn(
        ::rulekit::SeedsOrOverride({1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u})));

}  // namespace
}  // namespace rulekit::regex
