#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/data/catalog_generator.h"
#include "src/gen/rule_miner.h"
#include "src/gen/rule_selection.h"
#include "src/gen/synonym_finder.h"

namespace rulekit::gen {
namespace {

// ---------------------------------------------------------- RuleSelection --

TEST(GreedySelectTest, PrefersHighGain) {
  std::vector<SelectionCandidate> cands = {
      {1.0, {0, 1}},        // covers 2
      {1.0, {2, 3, 4, 5}},  // covers 4  <- picked first
      {1.0, {0, 2}},        // adds only {0} after #1
  };
  auto picked = GreedySelect(cands, 6, 10);
  ASSERT_GE(picked.size(), 2u);
  EXPECT_EQ(picked[0], 1u);
  EXPECT_EQ(picked[1], 0u);  // gain 2 beats candidate 2's gain 1
  EXPECT_EQ(picked.size(), 2u);
}

TEST(GreedySelectTest, ConfidenceWeighsGain) {
  std::vector<SelectionCandidate> cands = {
      {0.1, {0, 1, 2, 3}},  // gain 0.4
      {1.0, {4, 5}},        // gain 2.0 <- first
  };
  auto picked = GreedySelect(cands, 6, 10);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(GreedySelectTest, RespectsQuota) {
  std::vector<SelectionCandidate> cands;
  for (uint32_t i = 0; i < 20; ++i) {
    cands.push_back({1.0, {i}});
  }
  EXPECT_EQ(GreedySelect(cands, 20, 5).size(), 5u);
}

TEST(GreedySelectTest, StopsWhenNoNewCoverage) {
  std::vector<SelectionCandidate> cands = {
      {1.0, {0, 1}}, {1.0, {0, 1}}, {1.0, {1}}};
  EXPECT_EQ(GreedySelect(cands, 2, 10).size(), 1u);
}

TEST(GreedySelectTest, EmptyInput) {
  EXPECT_TRUE(GreedySelect({}, 10, 5).empty());
  EXPECT_TRUE(GreedyBiasedSelect({}, 10, 5, 0.7).empty());
}

TEST(GreedyBiasedTest, HighConfidenceFirstEvenWithLowerCoverage) {
  // The paper's motivation for Algorithm 2: wide but low-confidence rules
  // must not crowd out high-confidence ones.
  std::vector<SelectionCandidate> cands = {
      {0.2, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}},  // low conf, wide
      {0.9, {0, 1}},                                  // high conf
      {0.9, {2, 3}},                                  // high conf
  };
  auto plain = GreedySelect(cands, 12, 1);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0], 0u);  // plain greedy takes the wide rule (gain 2.4)

  auto biased = GreedyBiasedSelect(cands, 12, 3, 0.7);
  ASSERT_EQ(biased.size(), 3u);
  EXPECT_EQ(biased[0], 1u);
  EXPECT_EQ(biased[1], 2u);
  EXPECT_EQ(biased[2], 0u);  // low-conf pool fills the remainder
}

TEST(GreedyBiasedTest, QuotaSharedAcrossPools) {
  std::vector<SelectionCandidate> cands = {
      {0.9, {0}}, {0.9, {1}}, {0.1, {2}}, {0.1, {3}}};
  auto picked = GreedyBiasedSelect(cands, 4, 3, 0.7);
  ASSERT_EQ(picked.size(), 3u);
  // Two high-confidence first, one low-confidence.
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 0u) != picked.end());
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 1u) != picked.end());
}

// ------------------------------------------------------------- RuleMiner --

TEST(RuleMinerTest, MinesObviousRules) {
  data::GeneratorConfig config;
  config.seed = 41;
  config.num_types = 8;
  config.omit_noun_prob = 0.0;
  config.confuser_prob = 0.0;
  data::CatalogGenerator gen(config);
  auto labeled = gen.GenerateMany(2000);

  RuleMinerConfig miner_config;
  miner_config.min_support = 0.02;
  auto outcome = MineRules(labeled, miner_config);
  EXPECT_GT(outcome.candidates_mined, 0u);
  EXPECT_GT(outcome.selected.size(), 0u);
  EXPECT_EQ(outcome.num_high_confidence + outcome.num_low_confidence,
            outcome.selected.size());

  // Every selected rule is consistent on training data by construction:
  // its pattern must not match titles of other types.
  size_t checked = 0;
  for (const auto& mined : outcome.selected) {
    auto rule = mined.ToRule("m" + std::to_string(checked++));
    ASSERT_TRUE(rule.ok()) << mined.Pattern();
    for (const auto& li : labeled) {
      if (li.label != mined.type &&
          rule->Applies(li.item)) {
        // Tokenization differences (stopwords) can cause rare disagreement
        // between subsequence consistency and regex matching; it must stay
        // rare. Fail only on exact subsequence-level violations.
        ADD_FAILURE() << "rule " << mined.Pattern() << " for " << mined.type
                      << " matched a " << li.label << " item: "
                      << li.item.title;
        break;
      }
    }
    if (checked > 40) break;  // bound test cost
  }
}

TEST(RuleMinerTest, ConfidenceRewardsTypeNameTokens) {
  RuleMinerConfig config;
  std::vector<data::LabeledItem> labeled;
  // 30 titles "denim jeans x", 30 titles "blue trousers y" for type
  // "jeans"; "denim jeans" should outscore "blue trousers".
  for (int i = 0; i < 30; ++i) {
    data::LabeledItem a;
    a.item.title = "denim jeans item" + std::to_string(i);
    a.label = "jeans";
    labeled.push_back(a);
    data::LabeledItem b;
    b.item.title = "blue trousers item" + std::to_string(i);
    b.label = "jeans";
    labeled.push_back(b);
  }
  config.min_support = 0.1;
  auto outcome = MineRules(labeled, config);
  double jeans_conf = -1, trousers_conf = -1;
  for (const auto& r : outcome.selected) {
    if (r.tokens == std::vector<std::string>{"denim", "jeans"}) {
      jeans_conf = r.confidence;
    }
    if (r.tokens == std::vector<std::string>{"blue", "trousers"}) {
      trousers_conf = r.confidence;
    }
  }
  ASSERT_GE(jeans_conf, 0.0);
  ASSERT_GE(trousers_conf, 0.0);
  EXPECT_GT(jeans_conf, trousers_conf);
}

TEST(RuleMinerTest, ConsistencyFilterDropsCrossTypeSequences) {
  std::vector<data::LabeledItem> labeled;
  for (int i = 0; i < 20; ++i) {
    data::LabeledItem a;
    a.item.title = "shared words alpha";
    a.label = "t1";
    labeled.push_back(a);
    data::LabeledItem b;
    b.item.title = "shared words beta";
    b.label = "t2";
    labeled.push_back(b);
  }
  RuleMinerConfig config;
  config.min_support = 0.1;
  auto outcome = MineRules(labeled, config);
  for (const auto& r : outcome.selected) {
    EXPECT_NE(r.tokens, (std::vector<std::string>{"shared", "words"}))
        << "inconsistent rule survived for type " << r.type;
  }

  config.require_consistency = false;
  auto loose = MineRules(labeled, config);
  EXPECT_GT(loose.candidates_consistent, outcome.candidates_consistent);
}

TEST(RuleMinerTest, PatternCompilesAndMatches) {
  MinedRule mined;
  mined.tokens = {"denim", "jeans"};
  mined.type = "jeans";
  mined.confidence = 0.8;
  EXPECT_EQ(mined.Pattern(), "denim.*jeans");
  auto rule = mined.ToRule("m1");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->metadata().origin, rules::RuleOrigin::kMined);
  data::ProductItem item;
  item.title = "mens denim relaxed fit jeans 38x30";
  EXPECT_TRUE(rule->Applies(item));
}

// ----------------------------------------------------------SynonymFinder --

class SynonymFinderTest : public ::testing::Test {
 protected:
  // A corpus seeded with rug qualifiers in shared contexts.
  static std::vector<std::string> RugCorpus() {
    std::vector<std::string> titles;
    const char* qualifiers[] = {"area",   "braided", "oriental",
                                "tufted", "shag",    "floral"};
    const char* brands[] = {"mainstays", "better homes", "parkview"};
    const char* suffixes[] = {"5x7 blue", "8x10 ivory", "2 pack"};
    int n = 0;
    for (const char* q : qualifiers) {
      for (const char* b : brands) {
        for (const char* s : suffixes) {
          titles.push_back(std::string(b) + " " + q + " rug " + s);
          if (++n % 2 == 0) {
            titles.push_back(std::string(b) + " " + q + " rugs " + s);
          }
        }
      }
    }
    // Noise: other-type titles, some with misleading "<word> rug" shapes.
    titles.push_back("usb cable 6ft black");
    titles.push_back("dog chew toy rug pattern");
    titles.push_back("castrol motor oil 5qt");
    return titles;
  }
};

TEST_F(SynonymFinderTest, RejectsBadTemplates) {
  auto corpus = RugCorpus();
  EXPECT_FALSE(SynonymFinder::Create("area rugs?", corpus).ok());
  EXPECT_FALSE(SynonymFinder::Create("(\\syn|\\syn) rugs?", corpus).ok());
  EXPECT_FALSE(SynonymFinder::Create("\\syn rugs?", corpus).ok());
  EXPECT_FALSE(SynonymFinder::Create("(\\syn) rugs?", corpus).ok());
}

TEST_F(SynonymFinderTest, FindsSeededQualifiers) {
  auto corpus = RugCorpus();
  auto finder = SynonymFinder::Create("(area|\\syn) rugs?", corpus);
  ASSERT_TRUE(finder.ok()) << finder.status().ToString();
  EXPECT_EQ(finder->golden(), std::vector<std::string>{"area"});
  EXPECT_GT(finder->num_candidates(), 0u);

  std::set<std::string> truth = {"braided", "oriental", "tufted", "shag",
                                 "floral"};
  auto session = RunSynonymSession(
      *finder, [&](const std::string& p) { return truth.count(p) > 0; });
  std::set<std::string> found(session.found.begin(), session.found.end());
  // All five seeded qualifiers are discoverable within the session.
  for (const auto& q : truth) {
    EXPECT_TRUE(found.count(q)) << "missed " << q;
  }
  EXPECT_GE(session.iterations, 1u);
}

TEST_F(SynonymFinderTest, RankingPrefersSharedContexts) {
  auto corpus = RugCorpus();
  auto finder = SynonymFinder::Create("(area|\\syn) rugs?", corpus);
  ASSERT_TRUE(finder.ok());
  auto batch = finder->NextBatch();
  ASSERT_FALSE(batch.empty());
  // Scores are sorted descending.
  for (size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GE(batch[i - 1].score, batch[i].score);
  }
  // The top candidate should be one of the seeded qualifiers, which share
  // brand/suffix contexts with "area"; the noise phrases should not crowd
  // the top of the first batch.
  std::set<std::string> truth = {"braided", "oriental", "tufted", "shag",
                                 "floral"};
  EXPECT_TRUE(truth.count(batch[0].phrase)) << batch[0].phrase;
}

TEST_F(SynonymFinderTest, CandidatesComeWithSamples) {
  auto corpus = RugCorpus();
  auto finder = SynonymFinder::Create("(area|\\syn) rugs?", corpus);
  ASSERT_TRUE(finder.ok());
  for (const auto& cand : finder->NextBatch()) {
    EXPECT_FALSE(cand.sample_titles.empty()) << cand.phrase;
    EXPECT_LE(cand.sample_titles.size(), 3u);
  }
}

TEST_F(SynonymFinderTest, ExpandedPatternIncludesAccepted) {
  auto corpus = RugCorpus();
  auto finder = SynonymFinder::Create("(area|\\syn) rugs?", corpus);
  ASSERT_TRUE(finder.ok());
  finder->NextBatch();
  finder->ProvideFeedback({"braided", "shag"}, {});
  EXPECT_EQ(finder->ExpandedPattern(), "(area|braided|shag) rugs?");
}

TEST_F(SynonymFinderTest, GoldenSynonymsAreNotCandidates) {
  auto corpus = RugCorpus();
  auto finder = SynonymFinder::Create("(area|\\syn) rugs?", corpus);
  ASSERT_TRUE(finder.ok());
  while (!finder->exhausted()) {
    auto batch = finder->NextBatch();
    if (batch.empty()) break;
    std::vector<std::string> rejected;
    for (const auto& cand : batch) {
      EXPECT_NE(cand.phrase, "area");
      rejected.push_back(cand.phrase);
    }
    finder->ProvideFeedback({}, rejected);
  }
}

TEST_F(SynonymFinderTest, FeedbackImprovesRankingOfRelatedCandidates) {
  // With feedback off the order is frozen; with feedback on, accepting a
  // true qualifier should pull other qualifiers (same contexts) upward.
  auto corpus = RugCorpus();
  SynonymFinderConfig config;
  config.batch_size = 3;
  auto finder = SynonymFinder::Create("(area|\\syn) rugs?", corpus, config);
  ASSERT_TRUE(finder.ok());
  std::set<std::string> truth = {"braided", "oriental", "tufted", "shag",
                                 "floral"};
  auto session = RunSynonymSession(
      *finder, [&](const std::string& p) { return truth.count(p) > 0; },
      /*max_iterations=*/10, /*max_barren_batches=*/3);
  EXPECT_GE(session.found.size(), 4u);
}

TEST_F(SynonymFinderTest, MultiWordSynonymsAreFound) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back("brand" + std::to_string(i % 3) +
                     " twisted knot wheel 4in");
    corpus.push_back("brand" + std::to_string(i % 3) +
                     " abrasive wheel 4in");
  }
  auto finder = SynonymFinder::Create("(abrasive|\\syn) wheels?", corpus);
  ASSERT_TRUE(finder.ok());
  bool has_multiword = false;
  while (!finder->exhausted()) {
    auto batch = finder->NextBatch();
    if (batch.empty()) break;
    std::vector<std::string> rejected;
    for (const auto& cand : batch) {
      if (cand.phrase == "twisted knot") has_multiword = true;
      rejected.push_back(cand.phrase);
    }
    finder->ProvideFeedback({}, rejected);
  }
  EXPECT_TRUE(has_multiword);
}

}  // namespace
}  // namespace rulekit::gen
