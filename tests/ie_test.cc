#include <gtest/gtest.h>

#include "src/data/catalog_generator.h"
#include "src/rules/rule.h"
#include "src/ie/attribute_extractor.h"
#include "src/ie/brand_extractor.h"
#include "src/ie/enricher.h"
#include "src/ie/normalizer.h"

namespace rulekit::ie {
namespace {

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.title = std::move(title);
  return item;
}

// ------------------------------------------------------ AttributeExtractor --

TEST(AttributeExtractorTest, ExtractsWeight) {
  auto ex = AttributeExtractor::WithDefaultRules();
  auto found = ex.Extract(MakeItem("castrol motor oil 2.5 lb bottle"));
  bool weight = false;
  for (const auto& e : found) {
    if (e.attribute == "Item Weight") {
      weight = true;
      EXPECT_EQ(e.value, "2.5 lb");
    }
  }
  EXPECT_TRUE(weight);
}

TEST(AttributeExtractorTest, ExtractsDimensionsAndPack) {
  auto ex = AttributeExtractor::WithDefaultRules();
  auto found = ex.Extract(MakeItem("mainstays area rug 5x7 2-pack"));
  std::string size, pack;
  for (const auto& e : found) {
    if (e.attribute == "Size") size = e.value;
    if (e.attribute == "Pack Count") pack = e.value;
  }
  EXPECT_EQ(size, "5x7");
  EXPECT_EQ(pack, "2");
}

TEST(AttributeExtractorTest, ExtractsApparelSize) {
  auto ex = AttributeExtractor::WithDefaultRules();
  auto found = ex.Extract(MakeItem("boys cargo shorts size m blue"));
  bool size = false;
  for (const auto& e : found) {
    if (e.attribute == "Size") {
      size = true;
      EXPECT_EQ(e.value, "size m");
    }
  }
  EXPECT_TRUE(size);
}

TEST(AttributeExtractorTest, FirstRuleWinsPerAttribute) {
  auto ex = AttributeExtractor::WithDefaultRules();
  // Both the dimension rule and the apparel rule could fire; only one
  // Size extraction must be returned.
  auto found = ex.Extract(MakeItem("rug 5x7 size 10"));
  size_t size_count = 0;
  for (const auto& e : found) size_count += e.attribute == "Size";
  EXPECT_EQ(size_count, 1u);
}

TEST(AttributeExtractorTest, SpansPointIntoTitle) {
  auto ex = AttributeExtractor::WithDefaultRules();
  data::ProductItem item = MakeItem("thing 12 oz jar");
  auto found = ex.Extract(item);
  ASSERT_FALSE(found.empty());
  for (const auto& e : found) {
    EXPECT_EQ(item.title.substr(e.begin, e.end - e.begin), e.value);
  }
}

TEST(AttributeExtractorTest, RejectsBadPatterns) {
  AttributeExtractor ex;
  EXPECT_FALSE(ex.AddPattern("X", "(unclosed", 0).ok());
  EXPECT_FALSE(ex.AddPattern("X", "nogroups", 0).ok());
  EXPECT_TRUE(ex.AddPattern("X", "(\\d+)", 0).ok());
}

TEST(AttributeExtractorTest, NoMatchesOnPlainTitle) {
  auto ex = AttributeExtractor::WithDefaultRules();
  EXPECT_TRUE(ex.Extract(MakeItem("plain wooden chair")).empty());
}

// ---------------------------------------------------------- BrandExtractor --

TEST(BrandExtractorTest, TitleInitialBrand) {
  BrandExtractor ex({"dickies", "levis", "apple"});
  auto brand = ex.ExtractBrand(
      MakeItem("dickies 38in x 30in indigo relaxed fit jeans"));
  ASSERT_TRUE(brand.has_value());
  EXPECT_EQ(brand->value, "dickies");
  EXPECT_EQ(brand->begin, 0u);
}

TEST(BrandExtractorTest, ContextPatternBy) {
  BrandExtractor ex({"keepsake", "miabella"});
  auto brand = ex.ExtractBrand(MakeItem("diamond ring by keepsake 10kt"));
  ASSERT_TRUE(brand.has_value());
  EXPECT_EQ(brand->value, "keepsake");
}

TEST(BrandExtractorTest, UniqueHitAnywhere) {
  BrandExtractor ex({"fisher-price", "graco"});
  auto brand = ex.ExtractBrand(MakeItem("baby swing graco deluxe"));
  ASSERT_TRUE(brand.has_value());
  EXPECT_EQ(brand->value, "graco");
}

TEST(BrandExtractorTest, AmbiguousMidTitleHitsRejected) {
  BrandExtractor ex({"alpha", "beta"});
  // Two mid-title dictionary hits with no context: abstain.
  EXPECT_FALSE(
      ex.ExtractBrand(MakeItem("thing alpha and beta bundle")).has_value());
}

TEST(BrandExtractorTest, NoDictionaryHit) {
  BrandExtractor ex({"apple"});
  EXPECT_FALSE(ex.ExtractBrand(MakeItem("generic usb cable")).has_value());
}

TEST(BrandExtractorTest, WorksOnGeneratedCatalog) {
  data::GeneratorConfig config;
  config.seed = 15;
  data::CatalogGenerator gen(config);
  // Build the brand dictionary from the specs (the "large given
  // dictionary of brand names").
  std::vector<std::string> brands;
  for (const auto& spec : gen.specs()) {
    for (const auto& b : spec.brands) brands.push_back(b);
  }
  BrandExtractor ex(brands);
  auto items = gen.GenerateMany(300);
  size_t extracted = 0, agree = 0;
  for (const auto& li : items) {
    auto brand = ex.ExtractBrand(li.item);
    if (!brand.has_value()) continue;
    ++extracted;
    auto truth = li.item.GetAttribute("Brand");
    if (truth.has_value() && *truth == brand->value) ++agree;
  }
  EXPECT_GT(extracted, 50u);
  // When the Brand attribute is present it should usually agree.
  EXPECT_GT(agree * 10, extracted * 5);
}

// ---------------------------------------------------------------- Enricher --

TEST(EnricherTest, FillsMissingAttributes) {
  Normalizer norm;
  norm.AddRule("Castrol Ltd.", {"castrol"});
  ProductEnricher enricher(BrandExtractor({"castrol", "mobil"}),
                           AttributeExtractor::WithDefaultRules(),
                           std::move(norm));
  data::ProductItem item = MakeItem("castrol motor oil 2.5 lb 2-pack");
  auto enriched = enricher.Enrich(item);
  EXPECT_EQ(enriched.GetAttribute("Brand").value_or(""), "Castrol Ltd.");
  EXPECT_EQ(enriched.GetAttribute("Item Weight").value_or(""), "2.5 lb");
  EXPECT_EQ(enriched.GetAttribute("Pack Count").value_or(""), "2");
  // The original is untouched.
  EXPECT_FALSE(item.HasAttribute("Brand"));
}

TEST(EnricherTest, VendorDataWinsByDefault) {
  ProductEnricher enricher(BrandExtractor({"castrol"}),
                           AttributeExtractor::WithDefaultRules(),
                           Normalizer());
  data::ProductItem item = MakeItem("castrol motor oil");
  item.SetAttribute("Brand", "Vendor Says Mobil");
  auto enriched = enricher.Enrich(item);
  EXPECT_EQ(enriched.GetAttribute("Brand").value_or(""),
            "Vendor Says Mobil");

  EnricherConfig overwrite;
  overwrite.overwrite_existing = true;
  ProductEnricher aggressive(BrandExtractor({"castrol"}),
                             AttributeExtractor::WithDefaultRules(),
                             Normalizer(), overwrite);
  auto replaced = aggressive.Enrich(item);
  EXPECT_EQ(replaced.GetAttribute("Brand").value_or(""), "castrol");
}

TEST(EnricherTest, EnrichAllCountsAdditions) {
  ProductEnricher enricher(BrandExtractor({"castrol"}),
                           AttributeExtractor::WithDefaultRules(),
                           Normalizer());
  std::vector<data::ProductItem> items = {
      MakeItem("castrol motor oil 5x7"),  // brand + size
      MakeItem("plain wooden chair"),     // nothing
  };
  size_t added = enricher.EnrichAll(items);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(items[0].HasAttribute("Brand"));
  EXPECT_FALSE(items[1].HasAttribute("Brand"));
}

TEST(EnricherTest, EnrichedAttributesDriveAttributeRules) {
  // The point of enrichment: an item without a vendor Brand attribute
  // becomes classifiable by a Brand attrval rule after extraction.
  ProductEnricher enricher(BrandExtractor({"castrol"}),
                           AttributeExtractor::WithDefaultRules(),
                           Normalizer());
  data::ProductItem item = MakeItem("castrol gtx 5w-30 full synthetic");
  auto rule = rulekit::rules::Rule::AttributeValue(
      "brand1", "Brand", "castrol", {"motor oil"});
  EXPECT_FALSE(rule.Applies(item));
  EXPECT_TRUE(rule.Applies(enricher.Enrich(item)));
}

// -------------------------------------------------------------- Normalizer --

TEST(NormalizerTest, PaperIbmExample) {
  Normalizer norm;
  norm.AddRule("IBM Corporation", {"IBM", "IBM Inc.", "the Big Blue"});
  EXPECT_EQ(norm.Normalize("ibm"), "IBM Corporation");
  EXPECT_EQ(norm.Normalize("IBM INC"), "IBM Corporation");
  EXPECT_EQ(norm.Normalize("The  Big Blue"), "IBM Corporation");
  EXPECT_EQ(norm.Normalize("IBM Corporation"), "IBM Corporation");
  EXPECT_EQ(norm.Normalize("Lenovo"), "Lenovo");  // pass-through
}

TEST(NormalizerTest, PunctuationAndCaseInsensitive) {
  Normalizer norm;
  norm.AddRule("Mr. Coffee", {"mr coffee", "MR-COFFEE"});
  EXPECT_TRUE(norm.Knows("mr. coffee"));
  EXPECT_EQ(norm.Normalize("MR COFFEE!"), "Mr. Coffee");
}

TEST(NormalizerTest, LaterRulesOverrideEarlier) {
  Normalizer norm;
  norm.AddRule("A", {"x"});
  norm.AddRule("B", {"x"});
  EXPECT_EQ(norm.Normalize("x"), "B");
}

}  // namespace
}  // namespace rulekit::ie
