#include <gtest/gtest.h>

#include <memory>

#include "src/chimera/analyst.h"
#include "src/chimera/feedback_loop.h"
#include "src/chimera/first_responder.h"
#include "src/chimera/gate_keeper.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/voting.h"
#include "src/data/catalog_generator.h"
#include "src/ml/metrics.h"
#include "src/rules/rule_parser.h"

#include "tests/classify_shims.h"

namespace rulekit::chimera {
namespace {

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.title = std::move(title);
  return item;
}

// -------------------------------------------------------------- GateKeeper --

TEST(GateKeeperTest, RejectsEmptyTitles) {
  GateKeeper gate;
  EXPECT_EQ(gate.Decide(MakeItem("")).kind, GateDecision::Kind::kRejected);
  EXPECT_EQ(gate.Decide(MakeItem("  ")).kind,
            GateDecision::Kind::kRejected);
  EXPECT_EQ(gate.Decide(MakeItem("ring")).kind, GateDecision::Kind::kPass);
}

TEST(GateKeeperTest, MemoShortCircuits) {
  GateKeeper gate;
  gate.Memoize("Diamond Ring 10kt", "rings");
  auto decision = gate.Decide(MakeItem("diamond ring 10KT"));
  EXPECT_EQ(decision.kind, GateDecision::Kind::kClassified);
  EXPECT_EQ(decision.type, "rings");
  EXPECT_EQ(gate.Decide(MakeItem("other title")).kind,
            GateDecision::Kind::kPass);
}

// ------------------------------------------------------------ VotingMaster --

class FixedClassifier : public ml::Classifier {
 public:
  FixedClassifier(std::string name, std::vector<ml::ScoredLabel> scored)
      : name_(std::move(name)), scored_(std::move(scored)) {}
  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem&) const override {
    return scored_;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<ml::ScoredLabel> scored_;
};

TEST(VotingMasterTest, CombinesWeightedScores) {
  VotingMaster master({.confidence_threshold = 0.3, .min_margin = 0.0});
  master.AddMember(
      std::make_shared<FixedClassifier>(
          "a", std::vector<ml::ScoredLabel>{{"rings", 0.9}}),
      1.0);
  master.AddMember(
      std::make_shared<FixedClassifier>(
          "b", std::vector<ml::ScoredLabel>{{"rings", 0.5}, {"books", 0.4}}),
      1.0);
  auto vote = master.Vote(MakeItem("x"));
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->label, "rings");
  EXPECT_NEAR(vote->score, (0.9 + 0.5) / 2.0, 1e-9);
}

TEST(VotingMasterTest, DeclinesBelowThreshold) {
  VotingMaster master({.confidence_threshold = 0.6, .min_margin = 0.0});
  master.AddMember(
      std::make_shared<FixedClassifier>(
          "a", std::vector<ml::ScoredLabel>{{"rings", 0.5}}),
      1.0);
  EXPECT_FALSE(master.Vote(MakeItem("x")).has_value());
}

TEST(VotingMasterTest, DeclinesOnSlimMargin) {
  VotingMaster master({.confidence_threshold = 0.1, .min_margin = 0.2});
  master.AddMember(
      std::make_shared<FixedClassifier>(
          "a",
          std::vector<ml::ScoredLabel>{{"rings", 0.5}, {"books", 0.45}}),
      1.0);
  EXPECT_FALSE(master.Vote(MakeItem("x")).has_value());
}

TEST(VotingMasterTest, AbstainingMembersDoNotDilute) {
  VotingMaster master({.confidence_threshold = 0.5, .min_margin = 0.0});
  master.AddMember(
      std::make_shared<FixedClassifier>(
          "a", std::vector<ml::ScoredLabel>{{"rings", 0.8}}),
      1.0);
  master.AddMember(std::make_shared<FixedClassifier>(
                       "b", std::vector<ml::ScoredLabel>{}),
                   5.0);  // abstains; its weight must not count
  auto vote = master.Vote(MakeItem("x"));
  ASSERT_TRUE(vote.has_value());
  EXPECT_NEAR(vote->score, 0.8, 1e-9);
}

// ---------------------------------------------------------------- Filter --

TEST(FilterTest, BlacklistVetoesFinalPrediction) {
  auto parsed = rules::ParseRuleSet("blacklist b: toe rings? => rings\n");
  ASSERT_TRUE(parsed.ok());
  auto set = std::make_shared<rules::RuleSet>(std::move(parsed).value());
  Filter filter(set);
  EXPECT_FALSE(filter.Admit(MakeItem("silver toe ring"), "rings"));
  EXPECT_TRUE(filter.Admit(MakeItem("silver ring"), "rings"));
  EXPECT_TRUE(filter.Admit(MakeItem("silver toe ring"), "jewelry sets"));
}

TEST(FilterTest, AttrValueConsistencyVeto) {
  auto parsed = rules::ParseRuleSet(
      "attrval a: Brand = \"apple\" => smart phones | laptop computers\n");
  ASSERT_TRUE(parsed.ok());
  auto set = std::make_shared<rules::RuleSet>(std::move(parsed).value());
  Filter filter(set);
  data::ProductItem item = MakeItem("apple device");
  item.SetAttribute("Brand", "apple");
  EXPECT_TRUE(filter.Admit(item, "smart phones"));
  EXPECT_FALSE(filter.Admit(item, "area rugs"));
  data::ProductItem other = MakeItem("generic device");
  EXPECT_TRUE(filter.Admit(other, "area rugs"));
}

// ----------------------------------------------------------------- Monitor --

TEST(QualityMonitorTest, AlarmsBelowThreshold) {
  QualityMonitor monitor(0.92);
  BatchQuality good;
  good.precision = crowd::WilsonEstimate(95, 100);
  monitor.Record(good);
  EXPECT_FALSE(monitor.DegradationAlarm());
  BatchQuality bad;
  bad.precision = crowd::WilsonEstimate(60, 100);
  monitor.Record(bad);
  EXPECT_TRUE(monitor.DegradationAlarm());
  EXPECT_TRUE(monitor.SevereDegradationAlarm());
  BatchQuality borderline;
  borderline.precision = crowd::WilsonEstimate(91, 100);
  monitor.Record(borderline);
  EXPECT_TRUE(monitor.DegradationAlarm());
  EXPECT_FALSE(monitor.SevereDegradationAlarm());  // CI still crosses 0.92
}

// ----------------------------------------------------------------- Analyst --

class AnalystTest : public ::testing::Test {
 protected:
  AnalystTest() : gen_(MakeConfig()), analyst_(gen_) {}
  static data::GeneratorConfig MakeConfig() {
    data::GeneratorConfig config;
    config.seed = 31;
    return config;
  }
  data::CatalogGenerator gen_;
  SimulatedAnalyst analyst_;
};

TEST_F(AnalystTest, WritesCompilingRulesForEveryType) {
  for (const auto& spec : gen_.specs()) {
    auto written = analyst_.WriteRulesForType(spec.name, 2);
    ASSERT_FALSE(written.empty()) << spec.name;
    for (const auto& rule : written) {
      EXPECT_EQ(rule.target_type(), spec.name);
      EXPECT_TRUE(rule.kind() == rules::RuleKind::kWhitelist);
    }
  }
}

TEST_F(AnalystTest, HeadNounRuleMatchesGeneratedItems) {
  data::GeneratorConfig config;
  config.seed = 32;
  config.omit_noun_prob = 0.0;
  config.typo_prob = 0.0;
  data::CatalogGenerator gen(config);
  SimulatedAnalyst analyst(gen);
  size_t rugs = gen.SpecIndexOf("area rugs");
  auto written = analyst.WriteRulesForType("area rugs", 0);
  ASSERT_EQ(written.size(), 1u);
  size_t matched = 0;
  auto items = gen.GenerateManyOfType(rugs, 100);
  for (const auto& li : items) {
    if (written[0].Applies(li.item)) ++matched;
  }
  EXPECT_EQ(matched, items.size());
}

TEST_F(AnalystTest, BlacklistsForConfusions) {
  std::vector<Misclassification> errors;
  data::ProductItem bag = MakeItem("neoprene laptop sleeve 15.6");
  errors.push_back({bag, "laptop computers", "laptop bags & cases"});
  errors.push_back({bag, "laptop computers", "laptop bags & cases"});  // dup
  auto written = analyst_.WriteBlacklistsForErrors(errors);
  ASSERT_EQ(written.size(), 1u);  // confusions are deduplicated
  EXPECT_EQ(written[0].kind(), rules::RuleKind::kBlacklist);
  EXPECT_EQ(written[0].target_type(), "laptop computers");
  EXPECT_TRUE(written[0].Applies(bag));  // fires on bag-ish titles
}

TEST_F(AnalystTest, AttributeAndBrandRules) {
  auto attr_rules = analyst_.WriteAttributeRules();
  ASSERT_EQ(attr_rules.size(), 1u);  // only books carry ISBNs
  EXPECT_EQ(attr_rules[0].target_type(), "books");

  auto brand_rules = analyst_.WriteBrandRules();
  EXPECT_GT(brand_rules.size(), 10u);
  bool found_apple = false;
  for (const auto& rule : brand_rules) {
    if (rule.attribute_value() == "apple") {
      found_apple = true;
      EXPECT_EQ(rule.candidate_types().size(), 2u);  // phones + laptops
    }
  }
  EXPECT_TRUE(found_apple);
}

TEST_F(AnalystTest, LabelingIsImperfect) {
  AnalystConfig config;
  config.labeling_accuracy = 0.5;
  config.seed = 3;
  SimulatedAnalyst sloppy(gen_, config);
  auto items = gen_.GenerateMany(400);
  auto labeled = sloppy.LabelItems(items);
  size_t wrong = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (labeled[i].label != items[i].label) ++wrong;
  }
  EXPECT_GT(wrong, 100u);
  EXPECT_LT(wrong, 300u);
}

// ---------------------------------------------------------------- Pipeline --

TEST(PipelineTest, RulesOnlyClassifiesRuleCoveredItems) {
  ChimeraPipeline pipeline;
  auto parsed = rules::ParseRules(R"(
whitelist r1: rings? => rings
whitelist r2: rugs? => area rugs
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "test").ok());

  EXPECT_EQ(ClassifyOne(pipeline, MakeItem("diamond ring")).value_or(""),
            "rings");
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("mystery novel")).has_value());
}

TEST(PipelineTest, ScaleDownSuppressesType) {
  ChimeraPipeline pipeline;
  auto parsed = rules::ParseRules("whitelist r1: rings? => rings\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "test").ok());
  ASSERT_TRUE(ClassifyOne(pipeline, MakeItem("gold ring")).has_value());

  uint64_t version = *pipeline.Checkpoint("oncall");
  ASSERT_TRUE(pipeline.ScaleDownType("rings", "oncall",
                                     "bad vendor batch").ok());
  EXPECT_FALSE(ClassifyOne(pipeline, MakeItem("gold ring")).has_value());
  EXPECT_EQ(pipeline.rule_set().CountActive(), 0u);

  // Scale back up: restore the checkpoint and lift the suppression.
  ASSERT_TRUE(pipeline.RestoreCheckpoint(version, "oncall").ok());
  pipeline.ScaleUpType("rings");
  EXPECT_EQ(pipeline.rule_set().CountActive(), 1u);
  EXPECT_TRUE(ClassifyOne(pipeline, MakeItem("gold ring")).has_value());
}

TEST(PipelineTest, BatchReportAccounting) {
  ChimeraPipeline pipeline;
  auto parsed = rules::ParseRules(R"(
whitelist r1: rings? => rings
blacklist b1: toe rings? => rings
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "test").ok());
  pipeline.gate_keeper().Memoize("known title", "books");

  std::vector<data::ProductItem> batch = {
      MakeItem("gold ring"),      // classified
      MakeItem("toe ring"),       // whitelist+blacklist -> no proposal
      MakeItem("known title"),    // gate memo
      MakeItem(""),               // rejected
      MakeItem("mystery novel"),  // declined
  };
  auto report = RunBatch(pipeline, batch);
  EXPECT_EQ(report.total, 5u);
  EXPECT_EQ(report.classified, 1u);
  EXPECT_EQ(report.gate_classified, 1u);
  EXPECT_EQ(report.gate_rejected, 1u);
  EXPECT_EQ(report.declined, 2u);
  ASSERT_EQ(report.predictions.size(), 5u);
  EXPECT_EQ(report.predictions[0].value_or(""), "rings");
  EXPECT_EQ(report.predictions[2].value_or(""), "books");
}

// Regression: an empty batch used to make ClassifiedFraction() divide by
// zero. It must report 0.0 on both the sequential and the parallel path
// (the parallel path also used to hand the pool a zero-item partition).
TEST(PipelineTest, EmptyBatchReportsZeroFraction) {
  auto parsed = rules::ParseRules("whitelist r1: rings? => rings\n");
  ASSERT_TRUE(parsed.ok());

  PipelineConfig parallel_config;
  parallel_config.batch_threads = 4;
  for (PipelineConfig config : {PipelineConfig{}, parallel_config}) {
    ChimeraPipeline pipeline(config);
    ASSERT_TRUE(pipeline.AddRules(parsed.value(), "test").ok());
    BatchReport report = RunBatch(pipeline, {});
    EXPECT_EQ(report.total, 0u);
    EXPECT_TRUE(report.predictions.empty());
    EXPECT_EQ(report.ClassifiedFraction(), 0.0);
    EXPECT_EQ(report.coverage(), 0.0);
  }
}

TEST(PipelineTest, LearningJoinsAfterTraining) {
  data::GeneratorConfig config;
  config.seed = 71;
  config.num_types = 8;
  data::CatalogGenerator gen(config);

  ChimeraPipeline pipeline;
  EXPECT_FALSE(
      ClassifyOne(pipeline, gen.GenerateOfType(0).item).has_value());

  pipeline.AddTrainingData(gen.GenerateMany(1500));
  pipeline.RetrainLearning();

  size_t classified = 0;
  auto test_items = gen.GenerateMany(200);
  for (const auto& li : test_items) {
    if (ClassifyOne(pipeline, li.item).has_value()) ++classified;
  }
  EXPECT_GT(classified, 100u);
}

// ---------------------------------------------------------- FirstResponder --

TEST(FirstResponderTest, HealthyBatchNoIncident) {
  data::GeneratorConfig config;
  config.seed = 61;
  config.num_types = 8;
  data::CatalogGenerator gen(config);
  SimulatedAnalyst analyst(gen);
  ChimeraPipeline pipeline;
  for (const auto& spec : gen.specs()) {
    ASSERT_TRUE(
        pipeline.AddRules(analyst.WriteRulesForType(spec.name), "a").ok());
  }
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  FirstResponder responder(pipeline, crowd);

  auto batch = gen.GenerateMany(800);
  std::vector<data::ProductItem> items;
  for (const auto& li : batch) items.push_back(li.item);
  auto report = RunBatch(pipeline, items);
  auto incident = responder.Triage(batch, report);
  EXPECT_FALSE(incident.incident);
  EXPECT_GT(incident.batch_precision.estimate, 0.92);
  EXPECT_TRUE(incident.scaled_down_types.empty());
  EXPECT_GT(incident.crowd_questions, 0u);
}

TEST(FirstResponderTest, IncidentScalesDownAndResolves) {
  data::GeneratorConfig config;
  config.seed = 62;
  config.num_types = 8;
  data::CatalogGenerator gen(config);
  SimulatedAnalyst analyst(gen);
  ChimeraPipeline pipeline;
  // Good rules for the most popular type, plus a rule that grabs another
  // popular type's items and labels them wrong.
  ASSERT_TRUE(pipeline
                  .AddRules(analyst.WriteRulesForType(gen.specs()[0].name),
                            "a")
                  .ok());
  ASSERT_TRUE(pipeline
                  .AddRules({*rules::Rule::Whitelist(
                                "bad", "(glove|gloves)", "rings")},
                            "a")
                  .ok());
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  FirstResponder responder(pipeline, crowd);

  auto batch = gen.GenerateMany(1200);
  std::vector<data::ProductItem> items;
  for (const auto& li : batch) items.push_back(li.item);
  auto report = RunBatch(pipeline, items);
  auto incident = responder.Triage(batch, report);
  ASSERT_TRUE(incident.incident);
  // "rings" is the misbehaving predicted type.
  ASSERT_FALSE(incident.scaled_down_types.empty());
  EXPECT_EQ(incident.scaled_down_types[0], "rings");
  EXPECT_TRUE(pipeline.suppressed_types().count("rings"));

  // After the fix (retire the bad rule), resolve restores everything.
  ASSERT_TRUE(responder.Resolve(incident).ok());
  EXPECT_TRUE(pipeline.suppressed_types().empty());
  // The restore re-activated the bad rule (snapshot semantics); retiring
  // it is the actual fix.
  ASSERT_TRUE(pipeline
                  .Mutate("dev",
                          [](rules::RuleTransaction& txn) {
                            return txn.Retire(rules::RuleId("bad"),
                                              "misfired");
                          })
                  .ok());
  auto report2 = RunBatch(pipeline, items);
  auto incident2 = responder.Triage(batch, report2);
  EXPECT_FALSE(incident2.incident);
}

// ------------------------------------------------------------ FeedbackLoop --

TEST(FeedbackLoopTest, ImprovesAcrossIterations) {
  data::GeneratorConfig config;
  config.seed = 99;
  config.num_types = 10;
  data::CatalogGenerator gen(config);
  SimulatedAnalyst analyst(gen);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};

  ChimeraPipeline pipeline;
  // Cold start: one type covered properly, plus a misbehaving rule that
  // labels area rugs as rings (the kind of mistake the loop must catch).
  ASSERT_TRUE(pipeline
                  .AddRules(analyst.WriteRulesForType(gen.specs()[0].name),
                            "analyst")
                  .ok());
  size_t baseline_rules = pipeline.rule_set().size();
  // The bad rule targets a type no good rule covers, so its wrong
  // predictions actually ship (athletic gloves labeled as rings).
  ASSERT_TRUE(pipeline
                  .AddRules({*rules::Rule::Whitelist(
                                "bad-rule", "(glove|gloves)", "rings")},
                            "sloppy-analyst")
                  .ok());

  FeedbackLoopConfig loop_config;
  loop_config.max_iterations = 3;
  loop_config.precision_threshold = 0.92;
  FeedbackLoop loop(pipeline, analyst, crowd, loop_config);

  auto batch = gen.GenerateMany(800);
  auto result = loop.RunBatch(batch);
  // The bad rule forces at least one failed iteration before the analyst's
  // corrections take hold.
  ASSERT_GE(result.iterations.size(), 2u);
  EXPECT_FALSE(result.iterations.front().accepted);
  EXPECT_GT(result.iterations.front().rules_added, 0u);
  // Precision recovers across iterations.
  const auto& first = result.iterations.front();
  const auto& last = result.iterations.back();
  EXPECT_GT(last.true_quality.precision(),
            first.true_quality.precision());
  // And the repository grew.
  EXPECT_GT(pipeline.rule_set().size(), baseline_rules + 1);
}

}  // namespace
}  // namespace rulekit::chimera
