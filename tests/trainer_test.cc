// Semantics of the background trainer: RequestRetrain() never blocks on
// training, bursts coalesce into at most one pending run, gated requests
// resolve deterministically, shutdown drains-or-abandons without ever
// publishing late, and the synchronous wrapper publishes the same
// ensemble the historical blocking call did.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/trainer.h"
#include "src/data/catalog_generator.h"

#include "tests/classify_shims.h"

namespace rulekit::chimera {
namespace {

using Outcome = RetrainReport::Outcome;

std::vector<data::LabeledItem> MakeTrainingData(size_t n,
                                                uint64_t seed = 1234) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.num_types = 12;
  data::CatalogGenerator gen(config);
  return gen.GenerateMany(n);
}

/// A gate tests use to hold a training run in flight: the trainer blocks
/// in Arrive() until Release(); the test waits for the run to arrive.
class TrainGate {
 public:
  void Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
  }

  void AwaitArrivals(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  size_t arrived() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arrived_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  bool released_ = false;
};

// A burst of 50 requests against a held-open first run coalesces into at
// most 2 training runs, and every single future still resolves.
TEST(BackgroundTrainerTest, BurstOf50CoalescesToAtMostTwoRuns) {
  auto gate = std::make_shared<TrainGate>();
  PipelineConfig config;
  config.retrain.train_probe = [gate] { gate->Arrive(); };
  ChimeraPipeline pipeline(config);
  pipeline.AddTrainingData(MakeTrainingData(200));

  std::vector<std::shared_future<RetrainReport>> futures;
  futures.push_back(pipeline.RequestRetrain());
  gate->AwaitArrivals(1);  // run 1 is now in flight, holding the probe
  for (int i = 0; i < 49; ++i) {
    futures.push_back(pipeline.RequestRetrain());
  }
  gate->Release();

  for (auto& f : futures) {
    RetrainReport report = f.get();
    EXPECT_TRUE(report.published);
    EXPECT_EQ(report.outcome, Outcome::kPublished);
  }
  // Run 1 plus exactly one follow-up run for the whole burst.
  EXPECT_LE(gate->arrived(), 2u);
  // All 49 burst requests shared one future, i.e. one pending batch.
  EXPECT_EQ(futures[1].get().coalesced_requests, 49u);
  for (size_t i = 2; i < futures.size(); ++i) {
    // shared_future equality isn't observable, but the reports are: every
    // burst request resolved with the same coalesced batch.
    EXPECT_EQ(futures[i].get().coalesced_requests, 49u);
  }
}

// The enqueue path must never wait on training: while a multi-second run
// holds the probe, RequestRetrain() is a mutex-protected pointer update.
TEST(BackgroundTrainerTest, RequestReturnsInUnderOneMillisecondDuringRun) {
  auto gate = std::make_shared<TrainGate>();
  PipelineConfig config;
  config.retrain.train_probe = [gate] { gate->Arrive(); };
  ChimeraPipeline pipeline(config);
  pipeline.AddTrainingData(MakeTrainingData(200));

  auto first = pipeline.RequestRetrain();
  gate->AwaitArrivals(1);  // the "multi-second" run is now in flight

  // Minimum over several calls: robust to a scheduler hiccup on any one
  // call (sanitizer builds especially), while still proving the fast
  // path exists — a single sub-millisecond enqueue is impossible if the
  // call waits on the held-open training run.
  double best_ms = 1e9;
  std::vector<std::shared_future<RetrainReport>> futures;
  for (int i = 0; i < 10; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    futures.push_back(pipeline.RequestRetrain());
    const auto t1 = std::chrono::steady_clock::now();
    best_ms = std::min(
        best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  EXPECT_LT(best_ms, 1.0);

  gate->Release();
  EXPECT_TRUE(first.get().published);
  for (auto& f : futures) EXPECT_TRUE(f.get().published);
}

// The pending run copies its data snapshot when it STARTS, not when it
// was requested: labels added while it queued behind the in-flight run
// are trained on.
TEST(BackgroundTrainerTest, PendingRunTrainsOnLatestData) {
  auto gate = std::make_shared<TrainGate>();
  PipelineConfig config;
  config.retrain.train_probe = [gate] { gate->Arrive(); };
  ChimeraPipeline pipeline(config);
  pipeline.AddTrainingData(MakeTrainingData(200));

  auto first = pipeline.RequestRetrain();
  gate->AwaitArrivals(1);
  auto second = pipeline.RequestRetrain();   // queued behind run 1
  pipeline.AddTrainingData(MakeTrainingData(300, 77));  // arrives after
  gate->Release();

  EXPECT_EQ(first.get().trained_on, 200u);   // snapshotted before probe
  EXPECT_EQ(second.get().trained_on, 500u);  // latest data won
}

// min_interval with no queue-age budget: the gated request resolves
// immediately as skipped (cheap throttling for fire-and-forget callers).
TEST(BackgroundTrainerTest, MinIntervalGateSkipsImmediately) {
  PipelineConfig config;
  config.retrain.min_interval = std::chrono::milliseconds(3600 * 1000);
  ChimeraPipeline pipeline(config);
  pipeline.AddTrainingData(MakeTrainingData(100));

  // The first run is never interval-gated.
  RetrainReport first = pipeline.RequestRetrain().get();
  EXPECT_TRUE(first.published);

  RetrainReport second = pipeline.RequestRetrain().get();
  EXPECT_FALSE(second.published);
  EXPECT_EQ(second.outcome, Outcome::kSkippedMinInterval);
  EXPECT_TRUE(second.status.ok());  // a skip is policy, not an error
  EXPECT_EQ(second.trained_on, 0u);
}

// min_new_examples: requests skip until enough labels accumulated beyond
// the last published run's training-set size.
TEST(BackgroundTrainerTest, MinNewExamplesGate) {
  PipelineConfig config;
  config.retrain.min_new_examples = 150;
  ChimeraPipeline pipeline(config);

  pipeline.AddTrainingData(MakeTrainingData(100));
  RetrainReport gated = pipeline.RequestRetrain().get();
  EXPECT_FALSE(gated.published);
  EXPECT_EQ(gated.outcome, Outcome::kSkippedMinNewExamples);

  pipeline.AddTrainingData(MakeTrainingData(100, 55));
  RetrainReport run1 = pipeline.RequestRetrain().get();  // 200 >= 0 + 150
  EXPECT_TRUE(run1.published);
  EXPECT_EQ(run1.trained_on, 200u);

  pipeline.AddTrainingData(MakeTrainingData(50, 56));
  RetrainReport gated2 = pipeline.RequestRetrain().get();  // 250 < 200+150
  EXPECT_EQ(gated2.outcome, Outcome::kSkippedMinNewExamples);

  pipeline.AddTrainingData(MakeTrainingData(100, 57));
  RetrainReport run2 = pipeline.RequestRetrain().get();  // 350 >= 200+150
  EXPECT_TRUE(run2.published);
  EXPECT_EQ(run2.trained_on, 350u);
}

// max_queue_age > 0 turns skips into bounded deferral: an interval-gated
// request runs anyway once it has queued that long.
TEST(BackgroundTrainerTest, MaxQueueAgeForcesGatedRequestToRun) {
  PipelineConfig config;
  config.retrain.min_interval = std::chrono::milliseconds(3600 * 1000);
  config.retrain.max_queue_age = std::chrono::milliseconds(50);
  ChimeraPipeline pipeline(config);
  pipeline.AddTrainingData(MakeTrainingData(100));

  EXPECT_TRUE(pipeline.RequestRetrain().get().published);  // first: free
  // Gated by the hour-long interval, but force-run after ~50ms.
  RetrainReport forced = pipeline.RequestRetrain().get();
  EXPECT_TRUE(forced.published);
  EXPECT_EQ(forced.outcome, Outcome::kPublished);
}

// A run against an empty training pool publishes nothing (the historical
// early return) but its future still resolves with the reason.
TEST(BackgroundTrainerTest, EmptyTrainingDataResolvesWithoutPublishing) {
  ChimeraPipeline pipeline;
  const uint64_t gen_before = pipeline.semantic_generation();
  RetrainReport report = pipeline.RequestRetrain().get();
  EXPECT_FALSE(report.published);
  EXPECT_EQ(report.outcome, Outcome::kNoTrainingData);
  EXPECT_EQ(pipeline.semantic_generation(), gen_before);
  // The synchronous wrapper keeps the historical no-op contract too.
  pipeline.RetrainLearning();
  EXPECT_EQ(pipeline.semantic_generation(), gen_before);
}

// Destroying the pipeline mid-run drains the in-flight run (its publish
// completes) and abandons the queued one — resolved, never trained.
TEST(BackgroundTrainerTest, ShutdownDrainsInFlightAndAbandonsQueued) {
  auto gate = std::make_shared<TrainGate>();
  PipelineConfig config;
  config.retrain.train_probe = [gate] { gate->Arrive(); };
  auto pipeline = std::make_unique<ChimeraPipeline>(config);
  pipeline->AddTrainingData(MakeTrainingData(150));

  auto in_flight = pipeline->RequestRetrain();
  gate->AwaitArrivals(1);
  auto queued = pipeline->RequestRetrain();
  // Release the held run only after the destructor is already stopping
  // the trainer, so the queued request is (near-)always abandoned.
  std::thread releaser([gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate->Release();
  });
  pipeline.reset();  // must not deadlock: drains run 1, abandons run 2
  releaser.join();

  RetrainReport drained = in_flight.get();
  EXPECT_TRUE(drained.published);
  EXPECT_EQ(drained.trained_on, 150u);

  RetrainReport second = queued.get();
  if (second.outcome == Outcome::kPublished) {
    // Only possible if the release beat the destructor's stop flag AND a
    // full second run squeezed in first — legal, just unlikely.
    EXPECT_TRUE(second.published);
  } else {
    EXPECT_EQ(second.outcome, Outcome::kAbandoned);
    EXPECT_FALSE(second.published);
    EXPECT_FALSE(second.status.ok());
  }
  EXPECT_LE(gate->arrived(), 2u);
}

// Shutdown must also wake a trainer parked on a policy-deferral wait.
TEST(BackgroundTrainerTest, ShutdownAbandonsDeferredRequestPromptly) {
  PipelineConfig config;
  config.retrain.min_interval = std::chrono::milliseconds(3600 * 1000);
  config.retrain.max_queue_age = std::chrono::milliseconds(3600 * 1000);
  auto pipeline = std::make_unique<ChimeraPipeline>(config);
  pipeline->AddTrainingData(MakeTrainingData(100));

  EXPECT_TRUE(pipeline->RequestRetrain().get().published);
  auto deferred = pipeline->RequestRetrain();  // parked for "an hour"
  pipeline.reset();                            // returns promptly

  RetrainReport report = deferred.get();
  EXPECT_FALSE(report.published);
  EXPECT_EQ(report.outcome, Outcome::kAbandoned);
}

// The async path publishes the exact ensemble the historical synchronous
// call would have: same fixed-seed data, byte-identical predictions.
TEST(BackgroundTrainerTest, AsyncAndSyncPublishIdenticalEnsembles) {
  std::vector<data::LabeledItem> labeled = MakeTrainingData(600, 99);
  std::vector<data::ProductItem> probe_items;
  for (const auto& li : MakeTrainingData(400, 100)) {
    probe_items.push_back(li.item);
  }

  ChimeraPipeline sync_pipeline;   // default (ungated) retrain policy
  sync_pipeline.AddTrainingData(labeled);
  sync_pipeline.RetrainLearning();  // the historical blocking call shape

  ChimeraPipeline async_pipeline;
  async_pipeline.AddTrainingData(labeled);
  RetrainReport report = async_pipeline.RequestRetrain().get();
  EXPECT_TRUE(report.published);
  EXPECT_EQ(report.trained_on, labeled.size());
  EXPECT_GT(report.publish_generation, 0u);

  for (const auto& item : probe_items) {
    EXPECT_EQ(ClassifyOne(sync_pipeline, item), ClassifyOne(async_pipeline, item))
        << "item: " << item.title;
  }
}

// Reports flow through QualityMonitor when bound as the report_sink, and
// the sink fires before the future resolves.
TEST(BackgroundTrainerTest, ReportsSurfaceThroughQualityMonitor) {
  auto monitor = std::make_shared<QualityMonitor>();
  PipelineConfig config;
  config.retrain.min_interval = std::chrono::milliseconds(3600 * 1000);
  config.retrain.report_sink = [monitor](const RetrainReport& r) {
    monitor->RecordRetrain(r);
  };
  ChimeraPipeline pipeline(config);
  pipeline.AddTrainingData(MakeTrainingData(120));

  RetrainReport published = pipeline.RequestRetrain().get();
  EXPECT_TRUE(published.published);
  RetrainReport skipped = pipeline.RequestRetrain().get();
  EXPECT_FALSE(skipped.published);

  // The sink ran before each future resolved, so both are visible now.
  auto history = monitor->retrain_history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(monitor->retrains_published(), 1u);
  EXPECT_EQ(history[0].outcome, Outcome::kPublished);
  EXPECT_EQ(history[0].trained_on, 120u);
  EXPECT_GT(history[0].duration_ms, 0.0);
  EXPECT_EQ(history[1].outcome, Outcome::kSkippedMinInterval);
}

}  // namespace
}  // namespace rulekit::chimera
