#include <gtest/gtest.h>

#include <set>

#include "src/data/catalog_generator.h"
#include "src/mining/apriori_all.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace rulekit::mining {
namespace {

using text::TokenId;

TEST(SubsequenceTest, Basics) {
  EXPECT_TRUE(IsSubsequence({1, 3}, {1, 2, 3}));
  EXPECT_TRUE(IsSubsequence({}, {1, 2}));
  EXPECT_FALSE(IsSubsequence({3, 1}, {1, 2, 3}));
  EXPECT_FALSE(IsSubsequence({1, 1}, {1, 2}));
  EXPECT_TRUE(IsSubsequence({1, 1}, {1, 2, 1}));
}

TEST(AprioriAllTest, FindsPlantedSequences) {
  // 60% of docs contain (1, 2) in order, 10% contain (7, 8).
  std::vector<std::vector<TokenId>> docs;
  for (int i = 0; i < 100; ++i) {
    if (i < 60) {
      docs.push_back({1, 5, 2, 9});
    } else if (i < 70) {
      docs.push_back({7, 6, 8});
    } else {
      docs.push_back({9, 5, 6});
    }
  }
  SequenceMiningOptions options;
  options.min_support = 0.5;
  options.min_length = 2;
  options.max_length = 2;
  auto result = MineFrequentSequences(docs, options);
  // The 60-doc titles {1,5,2,9} make all six of their in-order pairs
  // frequent; nothing else reaches 50 docs.
  ASSERT_EQ(result.size(), 6u);
  bool found_planted = false;
  for (const auto& fs : result) {
    EXPECT_GE(fs.support_count, 50u);
    if (fs.tokens == std::vector<TokenId>{1, 2}) {
      found_planted = true;
      EXPECT_EQ(fs.support_count, 60u);
      EXPECT_NEAR(fs.support, 0.6, 1e-12);
    }
    EXPECT_NE(fs.tokens, (std::vector<TokenId>{7, 8}));
  }
  EXPECT_TRUE(found_planted);
}

TEST(AprioriAllTest, OrderMatters) {
  std::vector<std::vector<TokenId>> docs(10, {2, 1});
  SequenceMiningOptions options;
  options.min_support = 0.5;
  options.min_length = 2;
  auto result = MineFrequentSequences(docs, options);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].tokens, (std::vector<TokenId>{2, 1}));
}

TEST(AprioriAllTest, CountsDocumentOncePerSequence) {
  // Sequence (1,2) occurs twice inside one doc; support must count docs.
  std::vector<std::vector<TokenId>> docs = {{1, 2, 1, 2}, {3, 4}};
  SequenceMiningOptions options;
  options.min_support = 0.5;
  options.min_length = 2;
  options.max_length = 2;
  auto result = MineFrequentSequences(docs, options);
  for (const auto& fs : result) {
    if (fs.tokens == std::vector<TokenId>{1, 2}) {
      EXPECT_EQ(fs.support_count, 1u);
    }
  }
}

TEST(AprioriAllTest, RespectsLengthBounds) {
  std::vector<std::vector<TokenId>> docs(20, {1, 2, 3, 4, 5});
  SequenceMiningOptions options;
  options.min_support = 0.9;
  options.min_length = 2;
  options.max_length = 4;
  auto result = MineFrequentSequences(docs, options);
  for (const auto& fs : result) {
    EXPECT_GE(fs.tokens.size(), 2u);
    EXPECT_LE(fs.tokens.size(), 4u);
  }
  // All in-order pairs/triples/quadruples of {1..5} are frequent:
  // C(5,2) + C(5,3) + C(5,4) = 10 + 10 + 5 = 25.
  EXPECT_EQ(result.size(), 25u);
}

TEST(AprioriAllTest, MinSupportFiltersRareSequences) {
  std::vector<std::vector<TokenId>> docs;
  for (int i = 0; i < 99; ++i) docs.push_back({1, 2});
  docs.push_back({8, 9});
  SequenceMiningOptions options;
  options.min_support = 0.02;
  options.min_length = 2;
  auto result = MineFrequentSequences(docs, options);
  std::set<std::vector<TokenId>> found;
  for (const auto& fs : result) found.insert(fs.tokens);
  EXPECT_TRUE(found.count({1, 2}));
  EXPECT_FALSE(found.count({8, 9}));
}

TEST(AprioriAllTest, EmptyInput) {
  auto result = MineFrequentSequences({}, {});
  EXPECT_TRUE(result.empty());
}

TEST(AprioriAllTest, ResultsSortedBySupport) {
  std::vector<std::vector<TokenId>> docs;
  for (int i = 0; i < 100; ++i) {
    std::vector<TokenId> d = {1, 2};
    if (i < 50) d.push_back(3);
    docs.push_back(d);
  }
  SequenceMiningOptions options;
  options.min_support = 0.3;
  options.min_length = 2;
  auto result = MineFrequentSequences(docs, options);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].support_count, result[i].support_count);
  }
}

TEST(AprioriAllTest, MinesProductTitles) {
  // End-to-end shape test on generated jeans titles: the (denim-ish
  // qualifier, jeans) pairs should be frequent.
  data::GeneratorConfig config;
  config.seed = 77;
  config.omit_noun_prob = 0.0;
  data::CatalogGenerator gen(config);
  size_t jeans = gen.SpecIndexOf("jeans");
  ASSERT_NE(jeans, data::CatalogGenerator::kNpos);
  text::Tokenizer tokenizer;
  text::Vocabulary vocab;
  std::vector<std::vector<TokenId>> docs;
  for (const auto& li : gen.GenerateManyOfType(jeans, 500)) {
    docs.push_back(vocab.InternAll(tokenizer.Tokenize(li.item.title)));
  }
  SequenceMiningOptions options;
  options.min_support = 0.05;
  options.min_length = 2;
  options.max_length = 3;
  auto result = MineFrequentSequences(docs, options);
  ASSERT_FALSE(result.empty());
  // Expect some frequent sequence ending in "jeans".
  TokenId jeans_tok = vocab.Lookup("jeans");
  ASSERT_NE(jeans_tok, text::kInvalidTokenId);
  bool found = false;
  for (const auto& fs : result) {
    if (fs.tokens.back() == jeans_tok && fs.tokens.size() >= 2) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rulekit::mining
