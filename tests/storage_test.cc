// Durable rule store: binary codec round trips, WAL framing/recovery
// semantics (torn tail vs mid-log corruption), snapshot atomicity,
// kill-and-recover equivalence (byte-identical persisted state), and the
// pipeline's storage_dir wiring.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/chimera/pipeline.h"
#include "src/rules/rule_parser.h"
#include "src/storage/codec.h"
#include "src/storage/rule_store.h"
#include "src/storage/snapshot.h"
#include "src/storage/wal.h"

#include "tests/classify_shims.h"

namespace rulekit {
namespace {

namespace fs = std::filesystem;

using rules::AuditAction;
using rules::CommitRecord;
using rules::Rule;
using rules::RuleId;
using rules::RuleRepository;
using storage::Crc32;
using storage::Decoder;
using storage::DurableRuleStore;
using storage::Encoder;
using storage::FsyncPolicy;
using storage::StoreOptions;
using storage::WalReplayStats;
using storage::WriteAheadLog;

/// A fresh, empty scratch directory unique to the running test.
std::string ScratchDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("rulekit_storage_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// The canonical byte form of a repository's complete persisted state —
/// equality of these strings is the "byte-identical recovery" check.
std::string StateBytes(const RuleRepository& repo) {
  Encoder enc;
  storage::EncodePersistedState(repo.ExportState(), enc);
  return enc.Release();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

void AppendFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << data;
}

// ---------------------------------------------------------------------------
// CRC and codec primitives.
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(CodecTest, VarintBoundaries) {
  Encoder enc;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  ~0ull >> 1, ~0ull};
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.data());
  for (uint64_t v : values) EXPECT_EQ(dec.Varint(), v);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, DecoderErrorsAreSticky) {
  Encoder enc;
  enc.PutU8(7);
  Decoder dec(enc.data());
  EXPECT_EQ(dec.U8(), 7);
  EXPECT_EQ(dec.U64(), 0u);  // short read
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.String(), "");  // still failed, still zero values
  EXPECT_FALSE(dec.status().ok());
}

std::vector<Rule> SampleRules() {
  std::vector<Rule> out;
  out.push_back(*Rule::Whitelist("w1", "(motor | engine) oils?", "motor oil"));
  out.push_back(*Rule::Blacklist("b1", "toe rings?", "rings"));
  out.push_back(Rule::AttributeExists("a1", "ISBN", "books"));
  out.push_back(Rule::AttributeValue("v1", "Brand", "apple",
                                     {"phones", "laptops", "tablets"}));
  auto pred = rules::ParsePredicate(
      "title ~ \"gold\" and not title ~ \"plated\"");
  out.push_back(Rule::FromPredicate("p1", std::move(pred).value(), "jewelry",
                                    /*positive=*/false));
  out[0].metadata().author = "analyst-7";
  out[0].metadata().created_at = 41;
  out[0].metadata().confidence = 0.875;
  out[1].metadata().state = rules::RuleState::kDisabled;
  out[1].metadata().origin = rules::RuleOrigin::kMined;
  out[2].metadata().note = "from the \t catalog import";
  return out;
}

TEST(CodecTest, RuleRoundTripAllKinds) {
  for (const Rule& rule : SampleRules()) {
    Encoder enc;
    storage::EncodeRule(rule, enc);
    Decoder dec(enc.data());
    auto decoded = storage::DecodeRule(dec);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(dec.AtEnd());

    EXPECT_EQ(decoded->id(), rule.id());
    EXPECT_EQ(decoded->kind(), rule.kind());
    EXPECT_EQ(decoded->candidate_types(), rule.candidate_types());
    EXPECT_EQ(decoded->is_positive(), rule.is_positive());
    EXPECT_EQ(decoded->pattern_text(), rule.pattern_text());
    EXPECT_EQ(decoded->attribute(), rule.attribute());
    EXPECT_EQ(decoded->attribute_value(), rule.attribute_value());
    EXPECT_EQ(decoded->ToDsl(), rule.ToDsl());
    EXPECT_EQ(decoded->metadata().author, rule.metadata().author);
    EXPECT_EQ(decoded->metadata().origin, rule.metadata().origin);
    EXPECT_EQ(decoded->metadata().created_at, rule.metadata().created_at);
    EXPECT_EQ(decoded->metadata().confidence, rule.metadata().confidence);
    EXPECT_EQ(decoded->metadata().state, rule.metadata().state);
    EXPECT_EQ(decoded->metadata().note, rule.metadata().note);

    // Re-encoding the decoded rule is byte-identical: the codec is a
    // fixed point, which is what makes state comparisons meaningful.
    Encoder enc2;
    storage::EncodeRule(*decoded, enc2);
    EXPECT_EQ(enc2.data(), enc.data());
  }
}

TEST(CodecTest, RuleRejectsCorruptEnums) {
  Encoder enc;
  storage::EncodeRule(*Rule::Whitelist("w", "rings?", "rings"), enc);
  std::string bytes = enc.Release();
  bytes[0] = 99;  // kind byte
  Decoder dec(bytes);
  auto decoded = storage::DecodeRule(dec);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bad kind"), std::string::npos);
}

TEST(CodecTest, CommitRecordRoundTrip) {
  CommitRecord record;
  record.ops.push_back({CommitRecord::OpKind::kAdd,
                        *Rule::Whitelist("w1", "rings?", "rings"), RuleId(),
                        0.0, 0});
  record.ops.push_back(
      {CommitRecord::OpKind::kDisable, std::nullopt, RuleId("w1"), 0.0, 0});
  record.ops.push_back({CommitRecord::OpKind::kSetConfidence, std::nullopt,
                        RuleId("w1"), 0.25, 0});
  record.ops.push_back(
      {CommitRecord::OpKind::kCheckpoint, std::nullopt, RuleId(), 0.0, 0});
  record.ops.push_back({CommitRecord::OpKind::kRestoreCheckpoint,
                        std::nullopt, RuleId(), 0.0, 4});
  record.entries = {
      {1, AuditAction::kAdd, RuleId("w1"), "alice", ""},
      {2, AuditAction::kDisable, RuleId("w1"), "alice", "drift"},
      {3, AuditAction::kSetConfidence, RuleId("w1"), "alice", "0.2500"},
      {4, AuditAction::kCheckpoint, RuleId(), "bob", ""},
      {5, AuditAction::kRestore, RuleId(), "bob", "version 4"},
  };

  Encoder enc;
  storage::EncodeCommitRecord(record, enc);
  Decoder dec(enc.data());
  auto decoded = storage::DecodeCommitRecord(dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->ops.size(), record.ops.size());
  ASSERT_EQ(decoded->entries.size(), record.entries.size());
  EXPECT_EQ(decoded->ops[0].rule->id(), "w1");
  EXPECT_EQ(decoded->ops[2].confidence, 0.25);
  EXPECT_EQ(decoded->ops[4].checkpoint_version, 4u);
  for (size_t i = 0; i < record.entries.size(); ++i) {
    EXPECT_EQ(decoded->entries[i].timestamp, record.entries[i].timestamp);
    EXPECT_EQ(decoded->entries[i].action, record.entries[i].action);
    EXPECT_EQ(decoded->entries[i].rule_id, record.entries[i].rule_id);
    EXPECT_EQ(decoded->entries[i].author, record.entries[i].author);
    EXPECT_EQ(decoded->entries[i].detail, record.entries[i].detail);
  }
}

// ---------------------------------------------------------------------------
// WAL: framing, torn tails, corruption.
// ---------------------------------------------------------------------------

TEST(WalTest, AppendThenReplay) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  std::vector<std::string> payloads = {"alpha", "", "gamma gamma gamma"};
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (const auto& p : payloads) ASSERT_TRUE(wal->Append(p).ok());
  }
  std::vector<std::string> seen;
  WalReplayStats stats;
  Status st = WriteAheadLog::Replay(
      path,
      [&](std::string_view p) {
        seen.emplace_back(p);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(seen, payloads);
  EXPECT_EQ(stats.records, payloads.size());
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal->Append("one").ok());
  }
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal->Append("two").ok());
  }
  size_t count = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](std::string_view) {
                ++count;
                return Status::OK();
              }).ok());
  EXPECT_EQ(count, 2u);
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal->Append("good record one").ok());
    ASSERT_TRUE(wal->Append("good record two").ok());
  }
  uint64_t good_size = fs::file_size(path);
  // A crash mid-append: the frame header promises more bytes than exist.
  AppendFile(path, std::string("\xFF\x00\x00\x00garbage", 11));

  size_t count = 0;
  WalReplayStats stats;
  Status st = WriteAheadLog::Replay(
      path,
      [&](std::string_view) {
        ++count;
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(count, 2u);
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_EQ(stats.valid_bytes, good_size);
  EXPECT_EQ(fs::file_size(path), good_size);  // tail physically removed

  // After truncation the log replays clean — the torn bytes are gone.
  WalReplayStats again;
  ASSERT_TRUE(WriteAheadLog::Replay(
                  path, [](std::string_view) { return Status::OK(); }, &again)
                  .ok());
  EXPECT_FALSE(again.truncated_tail);
  EXPECT_EQ(again.records, 2u);
}

TEST(WalTest, FinalRecordFailingCrcIsTorn) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal->Append("first").ok());
    ASSERT_TRUE(wal->Append("second").ok());
  }
  // Garble the last byte of the final record's payload.
  std::string data = ReadFile(path);
  data.back() ^= 0x40;
  WriteFile(path, data);

  std::vector<std::string> seen;
  WalReplayStats stats;
  Status st = WriteAheadLog::Replay(
      path,
      [&](std::string_view p) {
        seen.emplace_back(p);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(seen, std::vector<std::string>{"first"});
  EXPECT_TRUE(stats.truncated_tail);
}

TEST(WalTest, MidLogCorruptionIsRejectedWithOffset) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal->Append("first record payload").ok());
    ASSERT_TRUE(wal->Append("second record payload").ok());
  }
  // Flip a payload byte of the FIRST record: valid history follows it,
  // so this is damage, not a torn write — replay must refuse.
  std::string data = ReadFile(path);
  data[8 + 8 + 2] ^= 0x01;  // file header + frame header + 2
  WriteFile(path, data);

  Status st = WriteAheadLog::Replay(
      path, [](std::string_view) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("corrupt WAL record at offset 8"),
            std::string::npos)
      << st.ToString();
  // The file was not modified: refusing must not destroy evidence.
  EXPECT_EQ(ReadFile(path), data);
}

TEST(WalTest, RejectsForeignFile) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  WriteFile(path, "definitely not a WAL header");
  Status st = WriteAheadLog::Replay(
      path, [](std::string_view) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a rulekit WAL"), std::string::npos);
}

TEST(WalTest, RejectsUnsupportedFormatVersion) {
  std::string dir = ScratchDir();
  std::string path = dir + "/wal-0";
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("payload").ok());
  }
  // A future format must be refused with a version error, not parsed
  // with current framing.
  std::string data = ReadFile(path);
  data[4] = 9;
  WriteFile(path, data);
  Status st = WriteAheadLog::Replay(
      path, [](std::string_view) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unsupported WAL format version"),
            std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// Snapshot files.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RoundTripAndCorruptionDetection) {
  std::string dir = ScratchDir();
  std::string path = dir + "/snapshot-1";

  RuleRepository repo(4);
  for (Rule& rule : SampleRules()) {
    ASSERT_TRUE(repo.Add(std::move(rule), "seeder").ok());
  }
  auto state = repo.ExportState();
  ASSERT_TRUE(storage::WriteSnapshotFile(path, state).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // temp file renamed away

  auto loaded = storage::ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Encoder a, b;
  storage::EncodePersistedState(state, a);
  storage::EncodePersistedState(*loaded, b);
  EXPECT_EQ(a.data(), b.data());

  // One flipped payload byte must be caught by the CRC.
  std::string data = ReadFile(path);
  data[data.size() / 2] ^= 0x10;
  WriteFile(path, data);
  auto corrupt = storage::ReadSnapshotFile(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("CRC"), std::string::npos);

  // A truncated snapshot reports truncation, not a decode mystery.
  WriteFile(path, ReadFile(path).substr(0, 25));
  auto truncated = storage::ReadSnapshotFile(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("truncated"),
            std::string::npos);
}

TEST(SnapshotTest, RejectsUnsupportedFormatVersion) {
  std::string dir = ScratchDir();
  std::string path = dir + "/snapshot-1";
  RuleRepository repo;
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "rings?", "rings"), "a").ok());
  ASSERT_TRUE(storage::WriteSnapshotFile(path, repo.ExportState()).ok());

  std::string data = ReadFile(path);
  data[4] = 9;  // bump the format-version byte
  WriteFile(path, data);
  auto loaded = storage::ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(
      loaded.status().message().find("unsupported snapshot format version"),
      std::string::npos)
      << loaded.status().ToString();
}

// ---------------------------------------------------------------------------
// DurableRuleStore: kill-and-recover equivalence.
// ---------------------------------------------------------------------------

/// A representative mutation history: adds across shards, state edits,
/// a failed commit (journals its applied prefix), scale-down, checkpoint
/// and restore.
void RunMutationHistory(RuleRepository& repo) {
  for (Rule& rule : SampleRules()) {
    ASSERT_TRUE(repo.Add(std::move(rule), "alice").ok());
  }
  ASSERT_TRUE(repo.Disable(RuleId("w1"), "bob", "precision drop").ok());
  ASSERT_TRUE(repo.SetConfidence(RuleId("b1"), 0.375, "bob").ok());
  auto cp_result = repo.Checkpoint("carol");
  ASSERT_TRUE(cp_result.ok());
  uint64_t cp = *cp_result;
  ASSERT_TRUE(repo.Enable(RuleId("w1"), "bob").ok());
  ASSERT_TRUE(repo.Retire(RuleId("a1"), "carol", "taxonomy split").ok());
  // Multi-op transaction, one commit record.
  ASSERT_TRUE(repo.Mutate("dave",
                          [](rules::RuleTransaction& txn) {
                            (void)txn.Add(*Rule::Whitelist(
                                "w2", "necklaces?", "necklaces"));
                            (void)txn.SetConfidence(RuleId("w2"), 0.5);
                            return Status::OK();
                          })
                  .ok());
  // Failed commit: the duplicate add aborts, but the disable that landed
  // first stays — and must be journaled.
  Status dup = repo.Mutate("eve", [](rules::RuleTransaction& txn) {
    (void)txn.Disable(RuleId("v1"), "pause");
    (void)txn.Add(*Rule::Whitelist("w2", "necklaces?", "necklaces"));
    return Status::OK();
  });
  ASSERT_FALSE(dup.ok());
  ASSERT_TRUE(repo.DisableRulesForType("books", "ops",
                                       "scale down books").ok());
  ASSERT_TRUE(repo.RestoreCheckpoint(cp, "carol").ok());
}

TEST(DurableRuleStoreTest, KillAndRecoverIsByteIdentical) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    RuleRepository& repo = *(*store)->repository();
    RunMutationHistory(repo);
    expected = StateBytes(repo);
    // "Kill": drop the store without any graceful shutdown beyond what
    // the journal already guaranteed (every commit was fsynced ahead of
    // publication under kEveryCommit).
  }
  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
  EXPECT_GT((*recovered)->recovery_stats().records_replayed, 0u);
  EXPECT_FALSE((*recovered)->recovery_stats().from_snapshot);
}

TEST(DurableRuleStoreTest, RecoversAcrossTornTail) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
    ASSERT_TRUE(store.ok());
    RunMutationHistory(*(*store)->repository());
    expected = StateBytes(*(*store)->repository());
  }
  // Crash mid-append: half a record lands after the last good one.
  AppendFile(dir + "/wal-0", std::string("\x60\x01\x00\x00\x11\x22", 6));

  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery_stats().truncated_tail);
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);

  // And the truncated log reopens clean a second time.
  auto again = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->recovery_stats().truncated_tail);
  EXPECT_EQ(StateBytes(*(*again)->repository()), expected);
}

TEST(DurableRuleStoreTest, RejectsMidLogCorruption) {
  std::string dir = ScratchDir();
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
    ASSERT_TRUE(store.ok());
    RunMutationHistory(*(*store)->repository());
  }
  // Damage an early record's payload — many valid records follow, so
  // recovery must fail loudly rather than truncate years of history.
  std::string path = dir + "/wal-0";
  std::string data = ReadFile(path);
  data[8 + 8 + 3] ^= 0x08;
  WriteFile(path, data);

  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("corrupt WAL record"),
            std::string::npos)
      << recovered.status().ToString();
}

TEST(DurableRuleStoreTest, CheckpointRestoreWorksAfterRecovery) {
  std::string dir = ScratchDir();
  uint64_t cp = 0;
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
    ASSERT_TRUE(store.ok());
    RuleRepository& repo = *(*store)->repository();
    ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "rings?", "rings"), "a").ok());
    auto cp_result = repo.Checkpoint("a");
    ASSERT_TRUE(cp_result.ok());
    cp = *cp_result;
    ASSERT_TRUE(repo.Disable(RuleId("w1"), "a", "pause").ok());
  }
  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RuleRepository& repo = *(*recovered)->repository();
  EXPECT_FALSE(repo.rules().Find("w1")->is_active());
  // The checkpoint was journaled, so restoring it works post-crash.
  ASSERT_TRUE(repo.RestoreCheckpoint(cp, "a").ok());
  EXPECT_TRUE(repo.rules().Find("w1")->is_active());
}

TEST(DurableRuleStoreTest, CompactionSnapshotsAndPrunes) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    // A tiny threshold so compaction fires repeatedly mid-history.
    StoreOptions opts{.shard_count = 4, .compact_wal_bytes = 512};
    auto store = DurableRuleStore::Open(dir, opts);
    ASSERT_TRUE(store.ok());
    RuleRepository& repo = *(*store)->repository();
    for (int i = 0; i < 40; ++i) {
      std::string id = "bulk-" + std::to_string(i);
      ASSERT_TRUE(
          repo.Add(*Rule::Whitelist(id, "tok" + std::to_string(i),
                                    "type-" + std::to_string(i % 7)),
                   "loader")
              .ok());
    }
    ASSERT_TRUE((*store)->last_compaction_error().ok())
        << (*store)->last_compaction_error().ToString();
    EXPECT_GT((*store)->epoch(), 0u);
    expected = StateBytes(repo);
  }
  // Only a bounded set of files remains: two snapshot generations and
  // the WAL chain from the older one forward.
  size_t snapshots = 0, wals = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) ++snapshots;
    if (name.rfind("wal-", 0) == 0) ++wals;
  }
  EXPECT_LE(snapshots, 2u);
  EXPECT_GE(snapshots, 1u);

  auto recovered = DurableRuleStore::Open(
      dir, StoreOptions{.shard_count = 4, .compact_wal_bytes = 512});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery_stats().from_snapshot);
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
}

TEST(DurableRuleStoreTest, ExplicitCompactionPreservesState) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
    ASSERT_TRUE(store.ok());
    RunMutationHistory(*(*store)->repository());
    expected = StateBytes(*(*store)->repository());
    ASSERT_TRUE((*store)->Compact().ok());
    EXPECT_EQ((*store)->epoch(), 1u);
    // Post-compaction commits land in the fresh epoch.
    ASSERT_TRUE((*store)
                    ->repository()
                    ->Add(*Rule::Whitelist("post", "after?", "misc"), "z")
                    .ok());
    expected = StateBytes(*(*store)->repository());
  }
  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery_stats().from_snapshot);
  EXPECT_EQ((*recovered)->recovery_stats().snapshot_epoch, 1u);
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
}

TEST(DurableRuleStoreTest, FailedCompactionKeepsJournaling) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
    ASSERT_TRUE(store.ok());
    RuleRepository& repo = *(*store)->repository();
    ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "one", "t1"), "a").ok());
    // Sabotage the snapshot write: a directory squats on the temp path.
    fs::create_directories(dir + "/snapshot-1.tmp");
    ASSERT_FALSE((*store)->Compact().ok());
    EXPECT_EQ((*store)->epoch(), 0u);
    // The failed compaction must reopen the epoch-0 log: later commits
    // keep journaling (one transient error must not sever durability).
    ASSERT_TRUE(repo.Add(*Rule::Whitelist("w2", "two", "t2"), "a").ok());
    expected = StateBytes(repo);
  }
  // Recovery ignores the leftover sabotage directory and replays both
  // commits — including the one made after the failed compaction.
  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->recovery_stats().records_replayed, 2u);
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
}

TEST(DurableRuleStoreTest, FailedAutoCompactionDoesNotFailCommits) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    // Tiny threshold: compaction triggers (and fails) inside OnCommit.
    StoreOptions opts{.shard_count = 2, .compact_wal_bytes = 256};
    auto store = DurableRuleStore::Open(dir, opts);
    ASSERT_TRUE(store.ok());
    RuleRepository& repo = *(*store)->repository();
    fs::create_directories(dir + "/snapshot-1.tmp");
    for (int i = 0; i < 12; ++i) {
      std::string id = "bulk-" + std::to_string(i);
      ASSERT_TRUE(repo.Add(*Rule::Whitelist(id, "tok" + std::to_string(i),
                                            "type-" + std::to_string(i % 3)),
                           "loader")
                      .ok());
    }
    EXPECT_FALSE((*store)->last_compaction_error().ok());
    EXPECT_EQ((*store)->epoch(), 0u);
    expected = StateBytes(repo);
  }
  auto recovered = DurableRuleStore::Open(
      dir, StoreOptions{.shard_count = 2, .compact_wal_bytes = 256});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
}

TEST(DurableRuleStoreTest, FallsBackToPreviousSnapshotGeneration) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    auto store = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
    ASSERT_TRUE(store.ok());
    RuleRepository& repo = *(*store)->repository();
    ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "one", "t1"), "a").ok());
    ASSERT_TRUE((*store)->Compact().ok());  // snapshot-1
    ASSERT_TRUE(repo.Add(*Rule::Whitelist("w2", "two", "t2"), "a").ok());
    ASSERT_TRUE((*store)->Compact().ok());  // snapshot-2
    ASSERT_TRUE(repo.Add(*Rule::Whitelist("w3", "three", "t3"), "a").ok());
    expected = StateBytes(repo);
  }
  // The newest snapshot rots; the previous generation + its WAL chain
  // must still recover the exact same state.
  std::string newest = dir + "/snapshot-2";
  std::string data = ReadFile(newest);
  data[data.size() - 3] ^= 0x01;
  WriteFile(newest, data);

  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->recovery_stats().snapshot_epoch, 1u);
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
}

TEST(DurableRuleStoreTest, IntervalFsyncPolicyStillRecoversOnCleanClose) {
  std::string dir = ScratchDir();
  std::string expected;
  {
    StoreOptions opts{.shard_count = 2,
                      .fsync_policy = FsyncPolicy::kInterval,
                      .fsync_interval_commits = 16};
    auto store = DurableRuleStore::Open(dir, opts);
    ASSERT_TRUE(store.ok());
    RunMutationHistory(*(*store)->repository());
    ASSERT_TRUE((*store)->Sync().ok());
    expected = StateBytes(*(*store)->repository());
  }
  auto recovered = DurableRuleStore::Open(dir, StoreOptions{.shard_count = 2});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(StateBytes(*(*recovered)->repository()), expected);
}

// ---------------------------------------------------------------------------
// Pipeline wiring.
// ---------------------------------------------------------------------------

TEST(PipelineStorageTest, StorageDirSurvivesPipelineRestart) {
  std::string dir = ScratchDir();
  {
    chimera::PipelineConfig config;
    config.use_learning = false;
    config.storage_dir = dir;
    chimera::ChimeraPipeline pipeline(config);
    ASSERT_TRUE(pipeline.storage_status().ok())
        << pipeline.storage_status().ToString();
    ASSERT_NE(pipeline.storage(), nullptr);
    auto parsed = rules::ParseRules(
        "whitelist rings1: rings? => rings\n"
        "whitelist oil1: (motor | engine) oils? => motor oil\n");
    ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "analyst").ok());
    ASSERT_TRUE(pipeline
                    .Mutate("analyst",
                            [](rules::RuleTransaction& txn) {
                              return txn.Disable(RuleId("oil1"), "pause");
                            })
                    .ok());
  }
  chimera::PipelineConfig config;
  config.use_learning = false;
  config.storage_dir = dir;
  chimera::ChimeraPipeline pipeline(config);
  ASSERT_TRUE(pipeline.storage_status().ok());

  // Recovered rules serve immediately...
  data::ProductItem item;
  item.title = "diamond ring";
  auto result = ClassifyOne(pipeline, item);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "rings");
  // ...the disable stuck...
  EXPECT_FALSE(pipeline.repository().rules().Find("oil1")->is_active());
  // ...and so did the audit history.
  auto history = pipeline.repository().HistoryOf("oil1");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].action, AuditAction::kDisable);
  EXPECT_EQ(history[1].detail, "pause");
}

// A journal failure during an async-retrain publish is surfaced in the
// RetrainReport instead of swallowed: sever journaling completely (a
// compaction that fails AND cannot reopen its old-epoch log — the WAL
// stays closed), then let the background trainer publish. The in-memory
// ensemble must still go live (the emergency-lever semantics every other
// journal failure follows), but report.status must carry the WAL error.
// Before this regression test, WriteAheadLog::Sync() returned OK on a
// closed log, so the trainer's durability flush reported success while
// nothing was journaled.
TEST(PipelineStorageTest, RetrainReportSurfacesSeveredJournal) {
  std::string dir = ScratchDir();
  chimera::PipelineConfig config;
  config.storage_dir = dir;
  config.rule_shards = 2;
  chimera::ChimeraPipeline pipeline(config);
  ASSERT_TRUE(pipeline.storage_status().ok())
      << pipeline.storage_status().ToString();
  auto parsed = rules::ParseRules("whitelist rings1: rings? => rings\n");
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "analyst").ok());
  std::vector<data::LabeledItem> labeled;
  for (int i = 0; i < 8; ++i) {
    data::LabeledItem li;
    li.item.title = "gold ring model " + std::to_string(i);
    li.label = "rings";
    labeled.push_back(std::move(li));
  }
  pipeline.AddTrainingData(labeled);

  // Healthy journal: the publish's durability flush reports OK.
  chimera::RetrainReport healthy = pipeline.RequestRetrain().get();
  ASSERT_TRUE(healthy.published);
  EXPECT_TRUE(healthy.status.ok()) << healthy.status.ToString();

  // Sabotage: the snapshot temp path is squatted (compaction fails) and
  // the epoch-0 WAL is replaced by a directory (the failure-path reopen
  // fails too) — journaling is now severed, the WAL closed.
  fs::create_directories(dir + "/snapshot-1.tmp");
  fs::remove(dir + "/wal-0");
  fs::create_directories(dir + "/wal-0");
  ASSERT_FALSE(pipeline.storage()->Compact().ok());

  chimera::RetrainReport severed = pipeline.RequestRetrain().get();
  EXPECT_TRUE(severed.published);  // in-memory serving still updated
  ASSERT_FALSE(severed.status.ok());
  EXPECT_NE(severed.status.message().find("WAL is closed"),
            std::string::npos)
      << severed.status.ToString();
  // The degraded ensemble really is live: the pipeline still classifies.
  data::ProductItem item;
  item.title = "diamond ring";
  EXPECT_EQ(ClassifyOne(pipeline, item).value_or(""), "rings");
}

TEST(PipelineStorageTest, OpenFailureFallsBackToInMemory) {
  std::string dir = ScratchDir();
  // A plain file where the store directory should be.
  std::string blocker = dir + "/not-a-dir";
  WriteFile(blocker, "occupied");
  chimera::PipelineConfig config;
  config.use_learning = false;
  config.storage_dir = blocker;
  chimera::ChimeraPipeline pipeline(config);
  EXPECT_FALSE(pipeline.storage_status().ok());
  EXPECT_EQ(pipeline.storage(), nullptr);
  // Still a functioning (in-memory) pipeline.
  auto parsed = rules::ParseRules("whitelist r: rings? => rings");
  EXPECT_TRUE(pipeline.AddRules(std::move(parsed).value(), "a").ok());
}

}  // namespace
}  // namespace rulekit
