#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/rules/dictionary_registry.h"
#include "src/rules/predicate.h"
#include "src/rules/repository.h"
#include "src/rules/rule.h"
#include "src/rules/rule_parser.h"
#include "src/rules/rule_set.h"

namespace rulekit::rules {
namespace {

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.id = "x";
  item.title = std::move(title);
  return item;
}

// ---------------------------------------------------------------- Pattern --

TEST(NormalizePatternTest, StripsDecorativeSpaces) {
  EXPECT_EQ(Rule::NormalizePattern("(motor | engine) oils?"),
            "(motor|engine) oils?");
  EXPECT_EQ(Rule::NormalizePattern("( a | b )x"), "(a|b)x");
  // Significant spaces survive.
  EXPECT_EQ(Rule::NormalizePattern("wedding band"), "wedding band");
  EXPECT_EQ(Rule::NormalizePattern("a b|c d"), "a b|c d");
}

// ------------------------------------------------------------------- Rule --

TEST(RuleTest, WhitelistAppliesToMatchingTitle) {
  auto rule = Rule::Whitelist("r1", "rings?", "rings");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->kind(), RuleKind::kWhitelist);
  EXPECT_EQ(rule->target_type(), "rings");
  EXPECT_TRUE(rule->is_positive());
  EXPECT_TRUE(rule->Applies(MakeItem("diamond accent RING in gold")));
  EXPECT_FALSE(rule->Applies(MakeItem("gold necklace")));
}

TEST(RuleTest, PaperStylePatternParses) {
  auto rule = Rule::Whitelist("r2", "(motor | engine) oils?", "motor oil");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->Applies(MakeItem("castrol MOTOR OIL 5qt")));
  EXPECT_TRUE(rule->Applies(MakeItem("engine oils synthetic")));
  EXPECT_FALSE(rule->Applies(MakeItem("olive oil")));
}

TEST(RuleTest, BlacklistIsNegative) {
  auto rule = Rule::Blacklist("b1", "toe rings?", "rings");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->is_positive());
  EXPECT_TRUE(rule->Applies(MakeItem("silver toe ring")));
}

TEST(RuleTest, BadPatternFailsCompilation) {
  EXPECT_FALSE(Rule::Whitelist("bad", "(unclosed", "rings").ok());
}

TEST(RuleTest, AttributeExists) {
  Rule rule = Rule::AttributeExists("isbn1", "ISBN", "books");
  data::ProductItem book = MakeItem("some title");
  book.SetAttribute("ISBN", "9781111111111");
  EXPECT_TRUE(rule.Applies(book));
  EXPECT_FALSE(rule.Applies(MakeItem("some title")));
}

TEST(RuleTest, AttributeValueCaseInsensitive) {
  Rule rule = Rule::AttributeValue("apple1", "Brand", "Apple",
                                   {"smart phones", "laptop computers"});
  data::ProductItem item = MakeItem("device");
  item.SetAttribute("Brand", "APPLE");
  EXPECT_TRUE(rule.Applies(item));
  EXPECT_EQ(rule.candidate_types().size(), 2u);
  item.SetAttribute("Brand", "dell");
  EXPECT_FALSE(rule.Applies(item));
}

TEST(RuleTest, DslRoundTrip) {
  auto original = Rule::Whitelist("w1", "denim.*jeans?", "jeans");
  ASSERT_TRUE(original.ok());
  auto reparsed = ParseRules(original->ToDsl());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), 1u);
  EXPECT_EQ((*reparsed)[0].id(), "w1");
  EXPECT_EQ((*reparsed)[0].kind(), RuleKind::kWhitelist);
  EXPECT_EQ((*reparsed)[0].pattern_text(), "denim.*jeans?");
  EXPECT_EQ((*reparsed)[0].target_type(), "jeans");
}

// -------------------------------------------------------------- Predicate --

TEST(PredicateTest, PaperApplePhoneExample) {
  // "if the title contains 'Apple' but the price is less than $100 then
  // the product is not a phone" (§4).
  auto pred = And(TitleContains("apple"), PriceBelow(100.0));
  Rule rule = Rule::FromPredicate("p1", pred, "smart phones",
                                  /*positive=*/false);
  data::ProductItem cheap = MakeItem("apple phone case");
  cheap.SetAttribute("Price", "12.99");
  EXPECT_TRUE(rule.Applies(cheap));
  EXPECT_FALSE(rule.is_positive());

  data::ProductItem pricey = MakeItem("apple iphone 6");
  pricey.SetAttribute("Price", "649.00");
  EXPECT_FALSE(rule.Applies(pricey));
}

TEST(PredicateTest, DictionaryPredicate) {
  auto dict = std::make_shared<text::Dictionary>();
  dict->AddAll({"satchel", "purse", "tote"});
  auto pred = DictionaryContains(dict, "handbag_words");
  EXPECT_TRUE(pred->Eval(MakeItem("leather satchel brown")));
  EXPECT_FALSE(pred->Eval(MakeItem("leather wallet")));
}

TEST(PredicateTest, Combinators) {
  auto p = Or(Not(AttributeExists("X")), AttributeEquals("X", "y"));
  data::ProductItem no_x = MakeItem("t");
  EXPECT_TRUE(p->Eval(no_x));
  data::ProductItem with_y = MakeItem("t");
  with_y.SetAttribute("X", "Y");
  EXPECT_TRUE(p->Eval(with_y));
  data::ProductItem with_z = MakeItem("t");
  with_z.SetAttribute("X", "z");
  EXPECT_FALSE(p->Eval(with_z));
}

TEST(PredicateTest, PriceEdgeCases) {
  auto below = PriceBelow(10.0);
  auto above = PriceAbove(10.0);
  data::ProductItem no_price = MakeItem("t");
  EXPECT_FALSE(below->Eval(no_price));
  EXPECT_FALSE(above->Eval(no_price));
  data::ProductItem exact = MakeItem("t");
  exact.SetAttribute("Price", "10.00");
  EXPECT_FALSE(below->Eval(exact));
  EXPECT_FALSE(above->Eval(exact));
}

// ----------------------------------------------------------------- Parser --

TEST(ParserTest, ParsesAllRuleKinds) {
  const char* dsl = R"(
# Chimera-style rules
whitelist rings1: rings? => rings
blacklist toe1: toe rings? => rings
attr isbn1: has(ISBN) => books
attrval apple1: Brand = "apple" => smart phones | laptop computers
pred cheap1: title has "apple" and price < 100 => not smart phones
)";
  auto rules = ParseRules(dsl);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 5u);
  EXPECT_EQ((*rules)[0].kind(), RuleKind::kWhitelist);
  EXPECT_EQ((*rules)[1].kind(), RuleKind::kBlacklist);
  EXPECT_EQ((*rules)[2].kind(), RuleKind::kAttributeExists);
  EXPECT_EQ((*rules)[3].kind(), RuleKind::kAttributeValue);
  EXPECT_EQ((*rules)[3].candidate_types().size(), 2u);
  EXPECT_EQ((*rules)[4].kind(), RuleKind::kPredicate);
  EXPECT_FALSE((*rules)[4].is_positive());
}

TEST(ParserTest, ParsedPredicateRuleEvaluates) {
  auto rules = ParseRules(
      "pred p1: (title ~ \"gaming\" or title has \"ultrabook\") "
      "and price > 200 => laptop computers");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  data::ProductItem item = MakeItem("asus GAMING laptop 15.6");
  item.SetAttribute("Price", "899");
  EXPECT_TRUE((*rules)[0].Applies(item));
  item.SetAttribute("Price", "99");
  EXPECT_FALSE((*rules)[0].Applies(item));
}

TEST(ParserTest, ReportsLineNumbersOnErrors) {
  auto rules = ParseRules("whitelist ok1: rings? => rings\nbogus line\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRules("whitelist x rings? => rings").ok());  // no colon
  EXPECT_FALSE(ParseRules("whitelist x: rings?").ok());          // no arrow
  EXPECT_FALSE(ParseRules("mystery x: a => b").ok());            // bad kind
  EXPECT_FALSE(ParseRules("attrval a: B = noquotes => t").ok());
  EXPECT_FALSE(ParseRules("pred p: price ? 4 => t").ok());
}

TEST(ParserTest, DictionaryRulesNeedRegistry) {
  const char* dsl =
      "pred bags1: title anyof dict(handbag words) => handbags";
  EXPECT_FALSE(ParseRules(dsl).ok());  // no registry supplied

  DictionaryRegistry registry;
  registry.RegisterPhrases("handbag words", {"satchel", "purse", "tote"});
  auto rules = ParseRules(dsl, &registry);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_TRUE((*rules)[0].Applies(MakeItem("leather satchel brown")));
  EXPECT_FALSE((*rules)[0].Applies(MakeItem("leather wallet")));

  // Unknown dictionary name is a parse error with the name in the message.
  auto bad = ParseRules("pred x: title anyof dict(nope) => t", &registry);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("nope"), std::string::npos);
}

TEST(ParserTest, DictionaryRegistryBasics) {
  DictionaryRegistry registry;
  EXPECT_EQ(registry.Find("x"), nullptr);
  registry.RegisterPhrases("brands", {"apple", "dell"});
  registry.RegisterPhrases("colors", {"red"});
  ASSERT_NE(registry.Find("brands"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"brands",
                                                        "colors"}));
  // Re-registering replaces.
  registry.RegisterPhrases("brands", {"sony"});
  EXPECT_TRUE(registry.Find("brands")->ContainsAny("sony tv"));
  EXPECT_FALSE(registry.Find("brands")->ContainsAny("apple tv"));
}

TEST(ParserTest, PredicateParserStandalone) {
  auto p = ParsePredicate("not (has(ISBN) or price < 5)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  data::ProductItem item = MakeItem("t");
  item.SetAttribute("Price", "50");
  EXPECT_TRUE((*p)->Eval(item));
  item.SetAttribute("ISBN", "978");
  EXPECT_FALSE((*p)->Eval(item));
}

// ---------------------------------------------------------------- RuleSet --

TEST(RuleSetTest, RejectsDuplicateIds) {
  RuleSet set;
  ASSERT_TRUE(set.Add(*Rule::Whitelist("r1", "a+", "t")).ok());
  EXPECT_EQ(set.Add(*Rule::Whitelist("r1", "b+", "t")).code(),
            StatusCode::kAlreadyExists);
}

TEST(RuleSetTest, StateTransitions) {
  RuleSet set;
  ASSERT_TRUE(set.Add(*Rule::Whitelist("r1", "a+", "t")).ok());
  EXPECT_EQ(set.CountActive(), 1u);
  ASSERT_TRUE(set.Disable("r1").ok());
  EXPECT_EQ(set.CountActive(), 0u);
  ASSERT_TRUE(set.Enable("r1").ok());
  EXPECT_EQ(set.CountActive(), 1u);
  ASSERT_TRUE(set.Retire("r1").ok());
  EXPECT_EQ(set.Enable("r1").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(set.Disable("missing").code(), StatusCode::kNotFound);
}

TEST(RuleSetTest, QueriesByKindAndType) {
  RuleSet set;
  ASSERT_TRUE(set.Add(*Rule::Whitelist("w1", "a", "t1")).ok());
  ASSERT_TRUE(set.Add(*Rule::Whitelist("w2", "b", "t2")).ok());
  ASSERT_TRUE(set.Add(*Rule::Blacklist("b1", "c", "t1")).ok());
  ASSERT_TRUE(set.Add(Rule::AttributeValue("a1", "Brand", "x",
                                           {"t1", "t2"})).ok());
  EXPECT_EQ(set.ActiveOfKind(RuleKind::kWhitelist).size(), 2u);
  EXPECT_EQ(set.ActiveOfKind(RuleKind::kBlacklist).size(), 1u);
  EXPECT_EQ(set.ActiveForType("t1").size(), 3u);  // w1, b1, a1
  ASSERT_TRUE(set.Disable("w1").ok());
  EXPECT_EQ(set.ActiveForType("t1").size(), 2u);
}

TEST(RuleSetTest, DslSerializationSkipsInactive) {
  RuleSet set;
  ASSERT_TRUE(set.Add(*Rule::Whitelist("w1", "a", "t1")).ok());
  ASSERT_TRUE(set.Add(*Rule::Whitelist("w2", "b", "t2")).ok());
  ASSERT_TRUE(set.Disable("w2").ok());
  std::string dsl = set.ToDsl();
  EXPECT_NE(dsl.find("w1"), std::string::npos);
  EXPECT_EQ(dsl.find("w2"), std::string::npos);
}

TEST(RuleSetTest, ComputeStats) {
  RuleSet set;
  ASSERT_TRUE(set.Add(*Rule::Whitelist("w1", "a", "t1")).ok());
  ASSERT_TRUE(set.Add(*Rule::Whitelist("w2", "b", "t2")).ok());
  ASSERT_TRUE(set.Add(*Rule::Blacklist("b1", "c", "t1")).ok());
  ASSERT_TRUE(set.Add(Rule::AttributeExists("a1", "ISBN", "t3")).ok());
  Rule mined = *Rule::Whitelist("m1", "d", "t1");
  mined.metadata().origin = RuleOrigin::kMined;
  mined.metadata().confidence = 0.5;
  ASSERT_TRUE(set.Add(std::move(mined)).ok());
  ASSERT_TRUE(set.Disable("w2").ok());
  ASSERT_TRUE(set.Retire("b1").ok());

  RuleSetStats stats = ComputeStats(set);
  EXPECT_EQ(stats.total, 5u);
  EXPECT_EQ(stats.active, 3u);     // w1, a1, m1
  EXPECT_EQ(stats.disabled, 1u);
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.whitelist, 2u);  // w1, m1
  EXPECT_EQ(stats.blacklist, 0u);  // b1 retired
  EXPECT_EQ(stats.attribute_rules, 1u);
  EXPECT_EQ(stats.mined_rules, 1u);
  EXPECT_EQ(stats.analyst_rules, 2u);
  EXPECT_EQ(stats.types_covered, 2u);  // t1, t3
  EXPECT_NEAR(stats.mean_confidence, (1.0 + 1.0 + 0.5) / 3.0, 1e-12);
}

// ------------------------------------------------------------- Repository --

TEST(RepositoryTest, AuditLogRecordsMutations) {
  RuleRepository repo;
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "a+", "t"), "alice").ok());
  ASSERT_TRUE(repo.Disable("r1", "bob", "misfires on batch 7").ok());
  ASSERT_TRUE(repo.Enable("r1", "bob").ok());
  ASSERT_TRUE(repo.SetConfidence("r1", 0.8, "carol").ok());
  auto history = repo.HistoryOf("r1");
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history[0].action, AuditAction::kAdd);
  EXPECT_EQ(history[0].author, "alice");
  EXPECT_EQ(history[1].action, AuditAction::kDisable);
  EXPECT_EQ(history[1].detail, "misfires on batch 7");
  EXPECT_LT(history[0].timestamp, history[3].timestamp);
  EXPECT_DOUBLE_EQ(repo.rules().Find("r1")->metadata().confidence, 0.8);
}

TEST(RepositoryTest, DisableRulesForTypeScalesDown) {
  RuleRepository repo;
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "coats?", "winter coats"),
                       "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w2", "parkas?", "winter coats"),
                       "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w3", "rings?", "rings"), "a").ok());
  auto disabled = repo.DisableRulesForType("winter coats", "oncall",
                                           "bad vendor batch");
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(disabled->size(), 2u);
  EXPECT_EQ(repo.rules().CountActive(), 1u);
}

TEST(RepositoryTest, CheckpointRestore) {
  RuleRepository repo;
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "a", "t"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w2", "b", "t"), "a").ok());
  uint64_t version = *repo.Checkpoint("oncall");

  // Scale down, patch with a new rule...
  ASSERT_TRUE(repo.Disable("w1", "oncall", "incident").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("patch1", "c", "t"), "oncall").ok());
  EXPECT_EQ(repo.rules().CountActive(), 2u);  // w2 + patch1

  // ...then restore to the checkpointed state.
  ASSERT_TRUE(repo.RestoreCheckpoint(version, "oncall").ok());
  EXPECT_TRUE(repo.rules().Find("w1")->is_active());
  EXPECT_TRUE(repo.rules().Find("w2")->is_active());
  EXPECT_FALSE(repo.rules().Find("patch1")->is_active());
  EXPECT_EQ(repo.RestoreCheckpoint(9999, "x").code(),
            StatusCode::kNotFound);
}

TEST(RepositoryTest, SaveLoadRoundTrip) {
  RuleRepository repo;
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "rings?", "rings"),
                       "alice").ok());
  ASSERT_TRUE(repo.Add(Rule::AttributeExists("a1", "ISBN", "books"),
                       "bob").ok());
  ASSERT_TRUE(repo.SetConfidence("w1", 0.75, "alice").ok());
  ASSERT_TRUE(repo.Disable("a1", "bob", "testing").ok());

  std::string path = ::testing::TempDir() + "/rulekit_repo_test.rules";
  ASSERT_TRUE(repo.SaveToFile(path).ok());
  auto loaded = RuleRepository::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Rule* w1 = loaded->rules().Find("w1");
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->pattern_text(), "rings?");
  EXPECT_DOUBLE_EQ(w1->metadata().confidence, 0.75);
  EXPECT_EQ(w1->metadata().author, "alice");
  const Rule* a1 = loaded->rules().Find("a1");
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(a1->metadata().state, RuleState::kDisabled);
  std::remove(path.c_str());
}

TEST(RepositoryTest, AuditLogSurvivesSaveLoad) {
  RuleRepository repo;
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("w1", "rings?", "rings"),
                       "alice").ok());
  ASSERT_TRUE(repo.Disable("w1", "bob", "precision\tdip").ok());
  ASSERT_TRUE(repo.Enable("w1", "alice").ok());
  ASSERT_TRUE(repo.SetConfidence("w1", 0.625, "carol").ok());
  auto before = repo.HistoryOf("w1");
  ASSERT_EQ(before.size(), 4u);

  std::string path = ::testing::TempDir() + "/rulekit_audit_test.rules";
  ASSERT_TRUE(repo.SaveToFile(path).ok());
  auto loaded = RuleRepository::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The real history survives the reload — timestamps, authors and
  // details included (not a synthetic "loader" add).
  auto after = loaded->HistoryOf("w1");
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].timestamp, before[i].timestamp);
    EXPECT_EQ(after[i].action, before[i].action);
    EXPECT_EQ(after[i].rule_id, before[i].rule_id);
    EXPECT_EQ(after[i].author, before[i].author);
    EXPECT_EQ(after[i].detail, before[i].detail);  // tab was escaped
  }
  // The logical clock resumes past every loaded timestamp, so new edits
  // never reuse an old timestamp.
  EXPECT_EQ(loaded->clock(), repo.clock());
  std::remove(path.c_str());
}

TEST(RepositoryTest, LoadFromFileRejectsDuplicateIds) {
  std::string path = ::testing::TempDir() + "/rulekit_dup_test.rules";
  {
    std::ofstream out(path);
    out << "whitelist dup1: rings? => rings\n"
        << "whitelist other: oils? => motor oil\n"
        << "whitelist dup1: bands? => rings\n";
  }
  auto loaded = RuleRepository::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kAlreadyExists);
  // The error pinpoints the offending file and line.
  EXPECT_NE(loaded.status().message().find(":3: duplicate rule id: dup1"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// ----------------------------------------------------- Sharded repository --

TEST(ShardedRepositoryTest, RoutesRulesByTargetType) {
  RuleRepository repo(/*shard_count=*/8);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "rings?", "rings"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r2", "coats?", "coats"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r3", "bands?", "rings"), "a").ok());

  // Same target type -> same shard; routing agrees with the hash.
  auto s1 = repo.ShardOfRule(RuleId("r1"));
  auto s3 = repo.ShardOfRule(RuleId("r3"));
  ASSERT_TRUE(s1.ok() && s3.ok());
  EXPECT_EQ(*s1, *s3);
  EXPECT_EQ(*s1, repo.KeyForType("rings"));
  EXPECT_EQ(repo.ShardOfRule(RuleId("ghost")).status().code(),
            StatusCode::kNotFound);

  // The merged view spans all shards.
  EXPECT_EQ(repo.rules().size(), 3u);
  EXPECT_NE(repo.rules().Find("r2"), nullptr);
}

TEST(ShardedRepositoryTest, MutationBumpsOnlyItsShard) {
  RuleRepository repo(/*shard_count=*/8);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "rings?", "rings"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r2", "coats?", "coats"), "a").ok());
  ShardKey rings_shard = *repo.ShardOfRule(RuleId("r1"));
  ShardKey coats_shard = *repo.ShardOfRule(RuleId("r2"));
  ASSERT_FALSE(rings_shard == coats_shard) << "hash collision; pick types";

  uint64_t rings_before = repo.shard_version(rings_shard);
  uint64_t coats_before = repo.shard_version(coats_shard);
  uint64_t composite_before = repo.composite_version();
  ASSERT_TRUE(repo.Disable(RuleId("r1"), "a", "test").ok());
  EXPECT_EQ(repo.shard_version(rings_shard), rings_before + 1);
  EXPECT_EQ(repo.shard_version(coats_shard), coats_before);
  EXPECT_EQ(repo.composite_version(), composite_before + 1);
}

TEST(ShardedRepositoryTest, UntouchedShardSnapshotIsPointerStable) {
  RuleRepository repo(/*shard_count=*/8);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "rings?", "rings"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r2", "coats?", "coats"), "a").ok());
  ShardKey rings_shard = repo.KeyForType("rings");
  ShardKey coats_shard = repo.KeyForType("coats");
  ASSERT_FALSE(rings_shard == coats_shard);

  ShardSnapshot coats_pin = repo.ShardSnapshotOf(coats_shard);
  ASSERT_TRUE(repo.Disable(RuleId("r1"), "a", "test").ok());

  // The untouched shard republishes the same immutable RuleSet...
  ShardSnapshot coats_again = repo.ShardSnapshotOf(coats_shard);
  EXPECT_EQ(coats_pin.rules.get(), coats_again.rules.get());
  EXPECT_EQ(coats_pin.version, coats_again.version);
  // ...while the touched shard publishes a fresh copy, and the pinned old
  // copy still shows the pre-mutation state.
  ShardSnapshot rings_now = repo.ShardSnapshotOf(rings_shard);
  EXPECT_FALSE(rings_now.rules->Find("r1")->is_active());
}

TEST(ShardedRepositoryTest, SnapshotAllIsCoherent) {
  RuleRepository repo(/*shard_count=*/4);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "a+", "t1"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r2", "b+", "t2"), "a").ok());
  RepositorySnapshot snap = repo.SnapshotAll();
  ASSERT_EQ(snap.shards.size(), 4u);
  size_t total = 0;
  uint64_t version_sum = 0;
  for (const auto& shard : snap.shards) {
    total += shard.rules->size();
    version_sum += shard.version;
  }
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(snap.composite_version, version_sum);
}

TEST(ShardedRepositoryTest, SingleShardPreservesMonolithicBehaviour) {
  RuleRepository repo;  // default shard_count = 1
  EXPECT_EQ(repo.shard_count(), 1u);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "a+", "t1"), "a").ok());
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r2", "b+", "t2"), "a").ok());
  EXPECT_EQ(repo.KeyForType("t1"), repo.KeyForType("t2"));
  EXPECT_EQ(repo.rules().size(), 2u);
  EXPECT_EQ(repo.composite_version(), 2u);
}

// ------------------------------------------------------------ Transactions --

TEST(TransactionTest, CommitPublishesEachTouchedShardOnce) {
  RuleRepository repo(/*shard_count=*/8);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("old", "x+", "rings"), "a").ok());
  ShardKey rings_shard = repo.KeyForType("rings");
  uint64_t rings_before = repo.shard_version(rings_shard);

  auto txn = repo.Begin("alice");
  (void)txn.Add(*Rule::Whitelist("n1", "rings?", "rings"));
  (void)txn.Add(*Rule::Whitelist("n2", "bands?", "rings"));
  (void)txn.Disable(RuleId("old"), "superseded");
  (void)txn.Add(*Rule::Whitelist("n3", "coats?", "coats"));
  ASSERT_TRUE(txn.Commit().ok());

  // Three edits to the rings shard, one publish.
  EXPECT_EQ(repo.shard_version(rings_shard), rings_before + 1);
  ASSERT_EQ(txn.touched().size(), 2u);
  EXPECT_EQ(repo.rules().CountActive(), 3u);  // n1 n2 n3; old disabled
  // Audit still records every edit individually.
  EXPECT_EQ(repo.HistoryOf("n1").size(), 1u);
  EXPECT_EQ(repo.HistoryOf("old").size(), 2u);
}

TEST(TransactionTest, UnknownIdFailsCommitAtomically) {
  RuleRepository repo(/*shard_count=*/8);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("r1", "a+", "t1"), "a").ok());
  uint64_t composite_before = repo.composite_version();

  auto txn = repo.Begin("alice");
  (void)txn.Add(*Rule::Whitelist("n1", "b+", "t2"));
  (void)txn.Disable(RuleId("ghost"), "no such rule");
  Status status = txn.Commit();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // Nothing applied, nothing published: validation precedes application.
  EXPECT_EQ(repo.composite_version(), composite_before);
  EXPECT_EQ(repo.rules().Find("n1"), nullptr);
  EXPECT_TRUE(txn.touched().empty());
}

TEST(TransactionTest, OpsMayReferenceEarlierStagedAdds) {
  RuleRepository repo(/*shard_count=*/8);
  auto txn = repo.Begin("alice");
  (void)txn.Add(*Rule::Whitelist("fresh", "a+", "t1"));
  (void)txn.SetConfidence(RuleId("fresh"), 0.42);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_DOUBLE_EQ(repo.rules().Find("fresh")->metadata().confidence, 0.42);
}

TEST(TransactionTest, DuplicateAddAcrossShardsIsRejected) {
  RuleRepository repo(/*shard_count=*/8);
  ASSERT_TRUE(repo.Add(*Rule::Whitelist("dup", "a+", "rings"), "a").ok());
  // Same id, different target type -> different shard; the routing map
  // still catches it.
  Status status = repo.Add(*Rule::Whitelist("dup", "b+", "coats"), "a");
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(repo.rules().size(), 1u);
}

TEST(TransactionTest, MutateConvenienceCommits) {
  RuleRepository repo(/*shard_count=*/4);
  Status status = repo.Mutate("alice", [](RuleTransaction& txn) {
    (void)txn.Add(*Rule::Whitelist("m1", "a+", "t1"));
    (void)txn.Add(*Rule::Whitelist("m2", "b+", "t2"));
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(repo.rules().size(), 2u);

  // An fn error drops the transaction without applying anything.
  status = repo.Mutate("alice", [](RuleTransaction& txn) {
    (void)txn.Add(*Rule::Whitelist("m3", "c+", "t3"));
    return Status::InvalidArgument("changed my mind");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(repo.rules().Find("m3"), nullptr);
}

}  // namespace
}  // namespace rulekit::rules
