#include <gtest/gtest.h>

#include "src/text/dictionary.h"
#include "src/text/similarity.h"
#include "src/text/tfidf.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace rulekit::text {
namespace {

// ------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, SplitsOnPunctuationAndSpace) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Dickies 38in. x 30in. indigo-blue jeans!");
  std::vector<std::string> expected = {"dickies", "38in", "x",    "30in",
                                       "indigo",  "blue", "jeans"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Apple MacBook");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "apple");
  EXPECT_EQ(tokens[1], "macbook");
}

TEST(TokenizerTest, PreservesCaseWhenConfigured) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize("Apple");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "Apple");
}

TEST(TokenizerTest, DropsStopwords) {
  TokenizerOptions opts;
  opts.stopwords = {"the", "of"};
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize("the ring of power");
  std::vector<std::string> expected = {"ring", "power"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  .,;!  ").empty());
}

// ------------------------------------------------------------ Vocabulary --

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  TokenId a = vocab.Intern("ring");
  TokenId b = vocab.Intern("ring");
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.Intern("ring");
  EXPECT_EQ(vocab.Lookup("band"), kInvalidTokenId);
}

TEST(VocabularyTest, RoundTripTokenFor) {
  Vocabulary vocab;
  TokenId id = vocab.Intern("laptop");
  EXPECT_EQ(vocab.TokenFor(id), "laptop");
}

TEST(VocabularyTest, InternAllAssignsDenseIds) {
  Vocabulary vocab;
  auto ids = vocab.InternAll({"a", "b", "a", "c"});
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(vocab.size(), 3u);
}

// ---------------------------------------------------------- SparseVector --

TEST(SparseVectorTest, FromPairsMergesDuplicates) {
  auto v = SparseVector::FromPairs({{3, 1.0}, {1, 2.0}, {3, 4.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.WeightOf(3), 5.0);
  EXPECT_DOUBLE_EQ(v.WeightOf(1), 2.0);
  EXPECT_DOUBLE_EQ(v.WeightOf(2), 0.0);
}

TEST(SparseVectorTest, DotProduct) {
  auto a = SparseVector::FromPairs({{1, 1.0}, {2, 2.0}});
  auto b = SparseVector::FromPairs({{2, 3.0}, {4, 9.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 6.0);
}

TEST(SparseVectorTest, CosineOfIdenticalVectorsIsOne) {
  auto a = SparseVector::FromPairs({{1, 1.0}, {2, 2.0}});
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
}

TEST(SparseVectorTest, CosineOfDisjointVectorsIsZero) {
  auto a = SparseVector::FromPairs({{1, 1.0}});
  auto b = SparseVector::FromPairs({{2, 1.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(b), 0.0);
}

TEST(SparseVectorTest, CosineWithEmptyIsZero) {
  auto a = SparseVector::FromPairs({{1, 1.0}});
  SparseVector empty;
  EXPECT_DOUBLE_EQ(a.Cosine(empty), 0.0);
}

TEST(SparseVectorTest, AddScaledMergesEntries) {
  auto a = SparseVector::FromPairs({{1, 1.0}, {2, 1.0}});
  auto b = SparseVector::FromPairs({{2, 1.0}, {3, 1.0}});
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(1), 1.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(2), 3.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(3), 2.0);
}

TEST(SparseVectorTest, ClampNonNegativeDropsNegatives) {
  auto a = SparseVector::FromPairs({{1, 1.0}, {2, -0.5}});
  a.ClampNonNegative();
  EXPECT_DOUBLE_EQ(a.WeightOf(1), 1.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(2), 0.0);
  EXPECT_EQ(a.size(), 1u);
}

TEST(SparseVectorTest, NormalizeYieldsUnitNorm) {
  auto a = SparseVector::FromPairs({{1, 3.0}, {2, 4.0}});
  a.Normalize();
  EXPECT_NEAR(a.Norm(), 1.0, 1e-12);
}

// ------------------------------------------------------------ TfIdfModel --

TEST(TfIdfModelTest, RareTokensGetHigherIdf) {
  TfIdfModel model;
  // "common" appears in every doc, "rare" in one.
  for (int i = 0; i < 10; ++i) {
    std::vector<TokenId> doc = {1};
    if (i == 0) doc.push_back(2);
    model.AddDocument(doc);
  }
  EXPECT_GT(model.Idf(2), model.Idf(1));
}

TEST(TfIdfModelTest, VectorizeWeighsByTfAndIdf) {
  TfIdfModel model;
  model.AddDocument({1});
  model.AddDocument({1, 2});
  auto v = model.Vectorize({1, 1, 2});
  // tf(1)=2, tf(2)=1; idf(2) > idf(1).
  EXPECT_GT(v.WeightOf(1), 0.0);
  EXPECT_GT(v.WeightOf(2), 0.0);
}

TEST(TfIdfModelTest, UnseenTokenGetsMaxIdf) {
  TfIdfModel model;
  model.AddDocument({1});
  EXPECT_GT(model.Idf(99), model.Idf(1));
}

// ------------------------------------------------------------ Similarity --

TEST(SimilarityTest, CharNGramsBasic) {
  auto grams = CharNGrams("abcd", 3);
  EXPECT_EQ(grams.size(), 2u);
  EXPECT_TRUE(grams.count("abc"));
  EXPECT_TRUE(grams.count("bcd"));
}

TEST(SimilarityTest, CharNGramsShortString) {
  auto grams = CharNGrams("ab", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_TRUE(grams.count("ab"));
}

TEST(SimilarityTest, JaccardIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaccardNGram("the hobbit", "the hobbit", 3), 1.0);
}

TEST(SimilarityTest, JaccardDisjointIsZero) {
  EXPECT_DOUBLE_EQ(JaccardNGram("aaaa", "bbbb", 3), 0.0);
}

TEST(SimilarityTest, JaccardSymmetric) {
  double ab = JaccardNGram("harry potter", "harry pottr", 3);
  double ba = JaccardNGram("harry pottr", "harry potter", 3);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GT(ab, 0.5);
}

TEST(SimilarityTest, EditDistanceClassic) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
}

TEST(SimilarityTest, EditSimilarityBounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("a", "b"), 0.0);
}

TEST(SimilarityTest, JaccardTokens) {
  EXPECT_DOUBLE_EQ(JaccardTokens({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
}

TEST(SimilarityTest, OverlapCoefficient) {
  std::unordered_set<std::string> a = {"x", "y"};
  std::unordered_set<std::string> b = {"y", "z", "w"};
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), 0.5);
}

// ------------------------------------------------------------ Dictionary --

TEST(DictionaryTest, SingleWordMatch) {
  Dictionary dict;
  dict.Add("apple");
  auto matches = dict.FindAll("new apple iphone");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 4u);
  EXPECT_EQ(matches[0].end, 9u);
}

TEST(DictionaryTest, MatchIsCaseInsensitive) {
  Dictionary dict;
  dict.Add("Apple");
  EXPECT_TRUE(dict.ContainsAny("APPLE iPhone"));
}

TEST(DictionaryTest, MultiWordPhraseLongestWins) {
  Dictionary dict;
  dict.Add("fisher");
  dict.Add("fisher price");
  auto matches = dict.FindAll("fisher price toy");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].entry, 1u);  // the longer phrase
}

TEST(DictionaryTest, WordBoundaryRespected) {
  Dictionary dict;
  dict.Add("ring");
  // "ring" inside "earring" is a different token, so no match.
  EXPECT_FALSE(dict.ContainsAny("earrings"));
  EXPECT_TRUE(dict.ContainsAny("gold ring"));
}

TEST(DictionaryTest, MultipleNonOverlappingMatches) {
  Dictionary dict;
  dict.Add("usb cable");
  dict.Add("hdmi");
  auto matches = dict.FindAll("usb cable with hdmi adapter");
  EXPECT_EQ(matches.size(), 2u);
}

TEST(DictionaryTest, EmptyDictionaryMatchesNothing) {
  Dictionary dict;
  EXPECT_FALSE(dict.ContainsAny("anything at all"));
}

}  // namespace
}  // namespace rulekit::text
