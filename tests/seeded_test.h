#ifndef RULEKIT_TESTS_SEEDED_TEST_H_
#define RULEKIT_TESTS_SEEDED_TEST_H_

// Seed plumbing for the randomized property suites: every assertion that
// fails inside a seeded test names the RNG seed that produced it, and
// setting RULEKIT_SEED=<n> reruns the suite on exactly that seed — so any
// CI failure replays locally with one command, e.g.
//
//   RULEKIT_SEED=1234 ./property_test
//
// (gtest already dedups the parameterized test names, so the override
// simply swaps the default seed list for the single requested one.)

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace rulekit {

/// The suite's default seeds, unless RULEKIT_SEED overrides them with a
/// single seed. A non-numeric override is ignored (defaults run).
inline std::vector<uint64_t> SeedsOrOverride(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("RULEKIT_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return {static_cast<uint64_t>(v)};
  }
  return defaults;
}

/// Fixture for seed-parameterized property tests: the seed (and the
/// replay command) is pushed onto the gtest trace stack for the whole
/// test body, so it prints with any failure message.
class SeedAwareTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    trace_ = std::make_unique<::testing::ScopedTrace>(
        __FILE__, __LINE__,
        "RNG seed " + std::to_string(GetParam()) +
            " (replay: RULEKIT_SEED=" + std::to_string(GetParam()) + ")");
  }

  void TearDown() override { trace_.reset(); }

 private:
  std::unique_ptr<::testing::ScopedTrace> trace_;
};

}  // namespace rulekit

#endif  // RULEKIT_TESTS_SEEDED_TEST_H_
