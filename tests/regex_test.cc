#include <gtest/gtest.h>

#include "src/regex/analysis.h"
#include "src/regex/containment.h"
#include "src/regex/dfa.h"
#include "src/regex/regex.h"

namespace rulekit::regex {
namespace {

Regex MustCompile(std::string_view pattern, bool folded = false) {
  auto r = folded ? Regex::CompileCaseFolded(pattern)
                  : Regex::Compile(pattern);
  EXPECT_TRUE(r.ok()) << pattern << ": " << r.status().ToString();
  return *r;
}

// --------------------------------------------------------------- Parsing --

TEST(RegexParseTest, RejectsMalformedPatterns) {
  EXPECT_FALSE(Regex::Compile("(").ok());
  EXPECT_FALSE(Regex::Compile("a)").ok());
  EXPECT_FALSE(Regex::Compile("[abc").ok());
  EXPECT_FALSE(Regex::Compile("*a").ok());
  EXPECT_FALSE(Regex::Compile("a\\").ok());
  EXPECT_FALSE(Regex::Compile("a{3,1}").ok());
}

TEST(RegexParseTest, LiteralBraceWithoutBoundIsAccepted) {
  Regex re = MustCompile("a{x");
  EXPECT_TRUE(re.FullMatch("a{x"));
}

TEST(RegexParseTest, CountsCaptures) {
  Regex re = MustCompile("(a)(?:b)(c(d))");
  EXPECT_EQ(re.num_captures(), 3);
}

TEST(RegexParseTest, AstRoundTripsThroughToString) {
  // ToString output must itself be a valid, equivalent pattern.
  for (const char* pattern :
       {"rings?", "diamond.*trio sets?", "(motor|engine) oils?",
        "pick[ -]?up", "(\\w+) oils?", "a{2,4}b+c*",
        "(abrasive|sand(er|ing))[ -](wheels?|discs?)", "^start.*end$"}) {
    Regex re1 = MustCompile(pattern);
    std::string printed = re1.ast().ToString();
    auto re2 = Regex::Compile(printed);
    ASSERT_TRUE(re2.ok()) << printed;
    // Spot-check equivalence on a probe string.
    EXPECT_EQ(re1.PartialMatch("diamond xyz trio set"),
              re2->PartialMatch("diamond xyz trio set"))
        << pattern;
  }
}

// -------------------------------------------------------------- Matching --

TEST(RegexMatchTest, FullMatchLiteral) {
  Regex re = MustCompile("ring");
  EXPECT_TRUE(re.FullMatch("ring"));
  EXPECT_FALSE(re.FullMatch("rings"));
  EXPECT_FALSE(re.FullMatch("rin"));
}

TEST(RegexMatchTest, OptionalSuffix) {
  Regex re = MustCompile("rings?");
  EXPECT_TRUE(re.FullMatch("ring"));
  EXPECT_TRUE(re.FullMatch("rings"));
  EXPECT_FALSE(re.FullMatch("ringss"));
}

TEST(RegexMatchTest, PartialMatchFindsSubstring) {
  Regex re = MustCompile("rings?");
  EXPECT_TRUE(re.PartialMatch("diamond accent ring in white gold"));
  EXPECT_TRUE(re.PartialMatch("earrings"));  // substring, unanchored
  EXPECT_FALSE(re.PartialMatch("necklace"));
}

TEST(RegexMatchTest, PaperWhitelistRuleExamples) {
  // §3.3: whitelist rules for product type "rings".
  Regex r1 = MustCompile("rings?");
  EXPECT_TRUE(r1.PartialMatch(
      "always & forever platinaire diamond accent ring"));
  EXPECT_TRUE(r1.PartialMatch(
      "1/4 carat t.w. diamond semi-eternity ring in 10kt white gold"));

  Regex r2 = MustCompile("diamond.*trio sets?");
  EXPECT_TRUE(r2.PartialMatch("diamond wedding trio set"));
  EXPECT_FALSE(r2.PartialMatch("trio set diamond"));
}

TEST(RegexMatchTest, PaperMotorOilRule) {
  // §5.1 Rule R2.
  Regex re = MustCompile(
      "(motor|engine|auto(motive)?|car|truck|suv|van|vehicle|motorcycle|"
      "pick[ -]?up|scooter|atv|boat) (oil|lubricant)s?");
  EXPECT_TRUE(re.PartialMatch("castrol gtx motor oil 5w-30"));
  EXPECT_TRUE(re.PartialMatch("full synthetic engine oils for trucks"));
  EXPECT_TRUE(re.PartialMatch("pick-up lubricant"));
  EXPECT_TRUE(re.PartialMatch("pickup oil"));
  EXPECT_TRUE(re.PartialMatch("automotive oil"));
  EXPECT_FALSE(re.PartialMatch("olive oil extra virgin"));
}

TEST(RegexMatchTest, Alternation) {
  Regex re = MustCompile("cat|dog|bird");
  EXPECT_TRUE(re.FullMatch("dog"));
  EXPECT_FALSE(re.FullMatch("do"));
}

TEST(RegexMatchTest, CharClasses) {
  Regex re = MustCompile("[a-c]x[^0-9]");
  EXPECT_TRUE(re.FullMatch("bxz"));
  EXPECT_FALSE(re.FullMatch("dxz"));
  EXPECT_FALSE(re.FullMatch("bx3"));
}

TEST(RegexMatchTest, EscapeClasses) {
  Regex re = MustCompile("\\d+\\s\\w+");
  EXPECT_TRUE(re.FullMatch("123 abc"));
  EXPECT_FALSE(re.FullMatch("abc abc"));
}

TEST(RegexMatchTest, BoundedRepetition) {
  Regex re = MustCompile("a{2,3}");
  EXPECT_FALSE(re.FullMatch("a"));
  EXPECT_TRUE(re.FullMatch("aa"));
  EXPECT_TRUE(re.FullMatch("aaa"));
  EXPECT_FALSE(re.FullMatch("aaaa"));
}

TEST(RegexMatchTest, ExactRepetition) {
  Regex re = MustCompile("(ab){2}");
  EXPECT_TRUE(re.FullMatch("abab"));
  EXPECT_FALSE(re.FullMatch("ab"));
  EXPECT_FALSE(re.FullMatch("ababab"));
}

TEST(RegexMatchTest, OpenEndedRepetition) {
  Regex re = MustCompile("ba{2,}");
  EXPECT_FALSE(re.FullMatch("ba"));
  EXPECT_TRUE(re.FullMatch("baa"));
  EXPECT_TRUE(re.FullMatch("baaaaaaa"));
}

TEST(RegexMatchTest, Anchors) {
  Regex re = MustCompile("^abc$");
  EXPECT_TRUE(re.PartialMatch("abc"));
  EXPECT_FALSE(re.PartialMatch("xabc"));
  EXPECT_FALSE(re.PartialMatch("abcx"));
}

TEST(RegexMatchTest, AnchorBeginOnly) {
  Regex re = MustCompile("^ab");
  EXPECT_TRUE(re.PartialMatch("abc"));
  EXPECT_FALSE(re.PartialMatch("cab"));
}

TEST(RegexMatchTest, CaseFolding) {
  Regex re = MustCompile("Apple iPhone", /*folded=*/true);
  EXPECT_TRUE(re.PartialMatch("new APPLE IPHONE 6"));
  EXPECT_TRUE(re.PartialMatch("apple iphone"));
  Regex sensitive = MustCompile("Apple");
  EXPECT_FALSE(sensitive.PartialMatch("apple"));
}

TEST(RegexMatchTest, CaseFoldingInClasses) {
  Regex re = MustCompile("[a-c]+", /*folded=*/true);
  EXPECT_TRUE(re.FullMatch("AbC"));
}

TEST(RegexMatchTest, DotDoesNotMatchNewline) {
  Regex re = MustCompile("a.b");
  EXPECT_TRUE(re.FullMatch("axb"));
  EXPECT_FALSE(re.FullMatch("a\nb"));
}

TEST(RegexMatchTest, EmptyPatternMatchesEmpty) {
  Regex re = MustCompile("");
  EXPECT_TRUE(re.FullMatch(""));
  EXPECT_FALSE(re.FullMatch("a"));
  EXPECT_TRUE(re.PartialMatch("anything"));
}

TEST(RegexMatchTest, NestedGroups) {
  Regex re = MustCompile("(abrasive|sand(er|ing))[ -](wheels?|discs?)");
  EXPECT_TRUE(re.PartialMatch("4in sanding discs 10 pack"));
  EXPECT_TRUE(re.PartialMatch("abrasive wheels"));
  EXPECT_TRUE(re.PartialMatch("sander disc"));
  EXPECT_FALSE(re.PartialMatch("sand paper"));
}

// -------------------------------------------------------------- Captures --

TEST(RegexCaptureTest, FindReportsSpans) {
  Regex re = MustCompile("(\\w+) oils?");
  auto m = re.Find("quaker state motor oil 5qt");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->Text("quaker state motor oil 5qt"), "motor oil");
  EXPECT_EQ(m->GroupText("quaker state motor oil 5qt", 0), "motor");
}

TEST(RegexCaptureTest, LeftmostMatchWins) {
  Regex re = MustCompile("a(b+)");
  auto m = re.Find("xxabbyyabbb");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->overall.begin, 2u);
  EXPECT_EQ(m->GroupText("xxabbyyabbb", 0), "bb");
}

TEST(RegexCaptureTest, GreedyRepetition) {
  Regex re = MustCompile("(a+)");
  auto m = re.Find("aaaa");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->GroupText("aaaa", 0), "aaaa");
}

TEST(RegexCaptureTest, AlternationPrefersLeftBranch) {
  Regex re = MustCompile("(a|ab)");
  auto m = re.Find("ab");
  ASSERT_TRUE(m.has_value());
  // Leftmost-first (Perl-like) semantics: branch "a" wins.
  EXPECT_EQ(m->GroupText("ab", 0), "a");
}

TEST(RegexCaptureTest, NonParticipatingGroupIsInvalid) {
  Regex re = MustCompile("(a)|(b)");
  auto m = re.Find("b");
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->groups[0].valid());
  EXPECT_TRUE(m->groups[1].valid());
}

TEST(RegexCaptureTest, FindAllNonOverlapping) {
  Regex re = MustCompile("\\d+");
  auto ms = re.FindAll("a1 bb22 ccc333");
  ASSERT_EQ(ms.size(), 3u);
  EXPECT_EQ(ms[0].Text("a1 bb22 ccc333"), "1");
  EXPECT_EQ(ms[1].Text("a1 bb22 ccc333"), "22");
  EXPECT_EQ(ms[2].Text("a1 bb22 ccc333"), "333");
}

TEST(RegexCaptureTest, FindWithStartOffset) {
  Regex re = MustCompile("a");
  auto m = re.Find("abca", 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->overall.begin, 3u);
}

TEST(RegexCaptureTest, FindAllHandlesEmptyMatches) {
  Regex re = MustCompile("a*");
  auto ms = re.FindAll("ba");
  // Must terminate and produce finitely many matches.
  ASSERT_FALSE(ms.empty());
}

TEST(RegexMatchTest, SearchDfaFastPathAvailability) {
  // Typical rule patterns get the O(len) DFA fast path.
  EXPECT_TRUE(MustCompile("rings?").has_search_dfa());
  EXPECT_TRUE(MustCompile("(motor|engine) oils?").has_search_dfa());
  EXPECT_TRUE(MustCompile("denim.*jeans?").has_search_dfa());
  // Anchored patterns cannot be determinized position-obliviously.
  EXPECT_FALSE(MustCompile("^abc$").has_search_dfa());
  // Both paths agree (the anchored fallback still runs the Pike/Thompson
  // machinery).
  Regex anchored = MustCompile("^ab");
  EXPECT_TRUE(anchored.PartialMatch("abc"));
  EXPECT_FALSE(anchored.PartialMatch("cab"));
}

// ------------------------------------------------------------------- DFA --

TEST(DfaTest, AgreesWithNfaOnFullMatch) {
  Regex re = MustCompile("(ab|a)*c");
  ByteClasses classes = ComputeByteClasses({&re.program()});
  auto dfa = Dfa::Build(re.program(), classes);
  ASSERT_TRUE(dfa.ok());
  for (const char* s : {"c", "ac", "abc", "aababc", "", "ab", "abab"}) {
    EXPECT_EQ(dfa->Matches(s), re.FullMatch(s)) << s;
  }
}

TEST(DfaTest, RejectsAssertions) {
  Regex re = MustCompile("^a");
  ByteClasses classes = ComputeByteClasses({&re.program()});
  auto dfa = Dfa::Build(re.program(), classes);
  EXPECT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DfaTest, ByteClassesPartitionIsConsistent) {
  Regex re = MustCompile("[a-m]x");
  ByteClasses classes = ComputeByteClasses({&re.program()});
  // 'a' and 'm' behave identically; 'x' differs from both.
  EXPECT_EQ(classes.class_of['a'], classes.class_of['m']);
  EXPECT_NE(classes.class_of['a'], classes.class_of['x']);
  EXPECT_GE(classes.num_classes, 3);
}

// ----------------------------------------------------------- Containment --

TEST(ContainmentTest, PaperSubsumptionExample) {
  // §4: "denim.*jeans?" is subsumed by "jeans?".
  Regex narrow = MustCompile("denim.*jeans?");
  Regex broad = MustCompile("jeans?");
  auto r = SearchSubsumes(narrow, broad);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  auto rev = SearchSubsumes(broad, narrow);
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(*rev);
}

TEST(ContainmentTest, PaperOverlappingWheelsRules) {
  // §4: the two "wheels & discs" rules overlap; the (abrasive|sand...) one
  // is subsumed by "abrasive.*(wheels?|discs?)" only partially, so neither
  // subsumes the other.
  Regex a = MustCompile("(abrasive|sand(er|ing))[ -](wheels?|discs?)");
  Regex b = MustCompile("abrasive.*(wheels?|discs?)");
  auto ab = SearchSubsumes(a, b);
  ASSERT_TRUE(ab.ok());
  EXPECT_FALSE(*ab);  // "sanding discs" matches a but not b
  auto ba = SearchSubsumes(b, a);
  ASSERT_TRUE(ba.ok());
  EXPECT_FALSE(*ba);  // "abrasive grinding wheels" matches b but not a
}

TEST(ContainmentTest, IdenticalPatternsSubsumeEachOther) {
  Regex a = MustCompile("rings?");
  Regex b = MustCompile("rings?");
  EXPECT_TRUE(*SearchSubsumes(a, b));
  EXPECT_TRUE(*SearchSubsumes(b, a));
}

TEST(ContainmentTest, AnchoredLanguageSubset) {
  Regex a = MustCompile("ab");
  Regex b = MustCompile("a(b|c)");
  EXPECT_TRUE(*LanguageSubset(a, b));
  EXPECT_FALSE(*LanguageSubset(b, a));
}

TEST(ContainmentTest, LanguagesIntersect) {
  Regex a = MustCompile("a+b");
  Regex b = MustCompile("aab|zzz");
  EXPECT_TRUE(*LanguagesIntersect(a, b));
  Regex c = MustCompile("c+");
  EXPECT_FALSE(*LanguagesIntersect(a, c));
}

// -------------------------------------------------------------- Analysis --

TEST(AnalysisTest, SimpleLiteralRequired) {
  Regex re = MustCompile("rings?");
  auto alts = RequiredAlternatives(re);
  ASSERT_TRUE(alts.ok()) << alts.status().ToString();
  ASSERT_EQ(alts->size(), 1u);
  EXPECT_EQ((*alts)[0], "ring");  // "rings" contains "ring"
}

TEST(AnalysisTest, AlternationYieldsAlternatives) {
  Regex re = MustCompile("(motor|engine) oils?");
  auto alts = RequiredAlternatives(re);
  ASSERT_TRUE(alts.ok());
  // Best candidate: the " oil" run is shared by all matches.
  bool has_oil_run = false;
  for (const auto& s : *alts) {
    if (s.find("oil") != std::string::npos) has_oil_run = true;
  }
  EXPECT_TRUE(has_oil_run);
}

TEST(AnalysisTest, UnconstrainedPatternHasNone) {
  Regex re = MustCompile("\\w+");
  auto alts = RequiredAlternatives(re);
  EXPECT_FALSE(alts.ok());
  EXPECT_EQ(alts.status().code(), StatusCode::kNotFound);
}

TEST(AnalysisTest, PrefilterIsSound) {
  // Every string matched by the pattern must contain >= 1 alternative.
  const char* patterns[] = {
      "rings?", "diamond.*trio sets?", "(motor|engine) oils?",
      "denim.*jeans?", "(area|throw) rugs?"};
  const char* probes[] = {
      "platinaire diamond accent ring",  "diamond wedding trio set",
      "engine oil 5w30",                 "mens denim blue jeans",
      "5x7 area rug floral",             "unrelated product title"};
  for (const char* p : patterns) {
    Regex re = MustCompile(p);
    auto alts = RequiredAlternatives(re);
    ASSERT_TRUE(alts.ok()) << p;
    for (const char* probe : probes) {
      if (!re.PartialMatch(probe)) continue;
      bool contains = false;
      for (const auto& lit : *alts) {
        if (std::string_view(probe).find(lit) != std::string_view::npos) {
          contains = true;
        }
      }
      EXPECT_TRUE(contains) << p << " on " << probe;
    }
  }
}

TEST(AnalysisTest, CaseFoldedPatternYieldsLowercaseLiterals) {
  Regex re = MustCompile("Wedding Band", /*folded=*/true);
  auto alts = RequiredAlternatives(re);
  ASSERT_TRUE(alts.ok());
  ASSERT_EQ(alts->size(), 1u);
  EXPECT_EQ((*alts)[0], "wedding band");
}

TEST(AnalysisTest, TooShortLiteralsRejected) {
  Regex re = MustCompile("a|b");
  auto alts = RequiredAlternatives(re);
  EXPECT_FALSE(alts.ok());
}

}  // namespace
}  // namespace rulekit::regex
