#include <gtest/gtest.h>

#include <memory>

#include "src/data/catalog_generator.h"
#include "src/maint/consolidation.h"
#include "src/maint/drift_monitor.h"
#include "src/maint/overlap.h"
#include "src/maint/subsumption.h"
#include "src/rules/rule_parser.h"

namespace rulekit::maint {
namespace {

rules::RuleSet MakeRuleSet(std::string_view dsl) {
  auto parsed = rules::ParseRuleSet(dsl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

// ------------------------------------------------------------ Subsumption --

TEST(SubsumptionTest, PaperJeansExample) {
  // §4: "denim.*jeans? → Jeans" and "jeans? → Jeans": the first is
  // subsumed by the second and should be removed.
  auto set = MakeRuleSet(R"(
whitelist narrow: denim.*jeans? => jeans
whitelist broad: jeans? => jeans
)");
  auto report = FindSubsumedRules(set);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].subsumed, "narrow");
  EXPECT_EQ(report.findings[0].by, "broad");
  EXPECT_FALSE(report.findings[0].equivalent);
}

TEST(SubsumptionTest, EquivalentRulesDetected) {
  auto set = MakeRuleSet(R"(
whitelist a1: rings? => rings
whitelist a2: ring|rings => rings
)");
  auto report = FindSubsumedRules(set);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings[0].equivalent);
  EXPECT_EQ(report.findings[0].subsumed, "a2");  // keeps the smaller id
}

TEST(SubsumptionTest, DifferentTypesNeverCompared) {
  auto set = MakeRuleSet(R"(
whitelist a: jeans? => jeans
whitelist b: jeans? => denim pants
)");
  auto report = FindSubsumedRules(set);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.pairs_checked, 0u);
}

TEST(SubsumptionTest, WhitelistVsBlacklistNeverCompared) {
  auto set = MakeRuleSet(R"(
whitelist a: jeans? => jeans
blacklist b: jeans? => jeans
)");
  auto report = FindSubsumedRules(set);
  EXPECT_TRUE(report.findings.empty());
}

TEST(SubsumptionTest, MinedRulesUseFastPath) {
  auto set = MakeRuleSet(R"(
whitelist m1: denim.*jeans => jeans
whitelist m2: jeans => jeans
whitelist m3: mens.*denim.*jeans => jeans
)");
  auto report = FindSubsumedRules(set);
  EXPECT_GE(report.fast_path_hits, 3u);  // all pairs are token patterns
  // m1 subsumed by m2; m3 subsumed by m2 and by m1.
  size_t subsumed_count = report.findings.size();
  EXPECT_EQ(subsumed_count, 3u);
}

TEST(SubsumptionTest, TokenFastPathAgreesWithAutomata) {
  const char* patterns[] = {"denim.*jeans", "jeans", "denim",
                            "mens.*jeans",  "denim.*jean", "jean"};
  // Compare the report with the fast path on and off.
  std::string dsl;
  int id = 0;
  for (const char* p : patterns) {
    dsl += "whitelist r" + std::to_string(id++) + ": " + p + " => t\n";
  }
  auto set = MakeRuleSet(dsl);
  SubsumptionOptions with_fast, without_fast;
  without_fast.use_token_fast_path = false;
  auto a = FindSubsumedRules(set, with_fast);
  auto b = FindSubsumedRules(set, without_fast);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].subsumed, b.findings[i].subsumed);
    EXPECT_EQ(a.findings[i].by, b.findings[i].by);
    EXPECT_EQ(a.findings[i].equivalent, b.findings[i].equivalent);
  }
}

TEST(SubsumptionTest, IsDotStarTokenPattern) {
  std::vector<std::string> tokens;
  EXPECT_TRUE(IsDotStarTokenPattern("denim.*jeans", &tokens));
  EXPECT_EQ(tokens, (std::vector<std::string>{"denim", "jeans"}));
  EXPECT_TRUE(IsDotStarTokenPattern("plain", &tokens));
  EXPECT_FALSE(IsDotStarTokenPattern("rings?", nullptr));
  EXPECT_FALSE(IsDotStarTokenPattern("(a|b).*c", nullptr));
  EXPECT_FALSE(IsDotStarTokenPattern("a.*.*b", nullptr));  // empty part
}

TEST(SubsumptionTest, ApplyFindingsRetiresSubsumedRules) {
  rules::RuleRepository repo;
  ASSERT_TRUE(repo.Add(*rules::Rule::Whitelist("narrow", "denim.*jeans?",
                                               "jeans"),
                       "a")
                  .ok());
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("broad", "jeans?", "jeans"), "a")
          .ok());
  auto report = FindSubsumedRules(repo.rules());
  auto retired = ApplySubsumptionFindings(repo, report, "maintenance");
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0], "narrow");
  EXPECT_EQ(repo.rules().Find("narrow")->metadata().state,
            rules::RuleState::kRetired);
  EXPECT_TRUE(repo.rules().Find("broad")->is_active());
  // The audit trail names the subsuming rule.
  auto history = repo.HistoryOf("narrow");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_NE(history[1].detail.find("broad"), std::string::npos);
  // Re-applying is a no-op.
  EXPECT_TRUE(ApplySubsumptionFindings(repo, report).empty());
}

// ---------------------------------------------------------------- Overlap --

TEST(OverlapTest, PaperWheelsRulesOverlap) {
  // §4's overlapping pair.
  auto set = MakeRuleSet(R"(
whitelist w1: (abrasive|sand(er|ing))[ -](wheels?|discs?) => abrasive wheels & discs
whitelist w2: abrasive.*(wheels?|discs?) => abrasive wheels & discs
whitelist other: rings? => rings
)");
  data::GeneratorConfig config;
  config.seed = 23;
  data::CatalogGenerator gen(config);
  size_t wheels = gen.SpecIndexOf("abrasive wheels & discs");
  ASSERT_NE(wheels, data::CatalogGenerator::kNpos);
  std::vector<data::ProductItem> corpus;
  for (auto& li : gen.GenerateManyOfType(wheels, 600)) {
    corpus.push_back(li.item);
  }
  for (auto& li : gen.GenerateMany(600)) corpus.push_back(li.item);

  auto findings = FindOverlappingRules(set, corpus, /*min_jaccard=*/0.2);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule_a, "w1");
  EXPECT_EQ(findings[0].rule_b, "w2");
  EXPECT_GT(findings[0].intersection, 0u);
}

TEST(OverlapTest, DisjointRulesNotReported) {
  auto set = MakeRuleSet(R"(
whitelist a: rings? => rings
whitelist b: wedding bands? => rings
)");
  data::GeneratorConfig config;
  data::CatalogGenerator gen(config);
  std::vector<data::ProductItem> corpus;
  for (auto& li : gen.GenerateMany(500)) corpus.push_back(li.item);
  // "wedding band" titles don't contain "ring", so overlap stays low.
  auto findings = FindOverlappingRules(set, corpus, /*min_jaccard=*/0.9);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------- Consolidation --

TEST(ConsolidationTest, MergeAndSplitRoundTrip) {
  auto a = *rules::Rule::Whitelist("a", "rings?", "rings");
  auto b = *rules::Rule::Whitelist("b", "wedding bands?", "rings");
  auto merged = ConsolidateRules(a, b, "merged");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  data::ProductItem ring;
  ring.title = "diamond ring";
  data::ProductItem band;
  band.title = "tungsten wedding band";
  EXPECT_TRUE(merged->Applies(ring));
  EXPECT_TRUE(merged->Applies(band));

  auto split = SplitRule(*merged);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->size(), 2u);
  EXPECT_TRUE((*split)[0].Applies(ring));
  EXPECT_FALSE((*split)[0].Applies(band));
  EXPECT_TRUE((*split)[1].Applies(band));
}

TEST(ConsolidationTest, MergeRejectsMismatchedRules) {
  auto a = *rules::Rule::Whitelist("a", "x", "t1");
  auto b = *rules::Rule::Whitelist("b", "y", "t2");
  EXPECT_FALSE(ConsolidateRules(a, b, "m").ok());
  auto c = *rules::Rule::Blacklist("c", "z", "t1");
  EXPECT_FALSE(ConsolidateRules(a, c, "m").ok());
}

TEST(ConsolidationTest, SplitRequiresTopLevelAlternation) {
  auto rule = *rules::Rule::Whitelist("r", "(a|b)c", "t");
  EXPECT_FALSE(SplitRule(rule).ok());  // the alternation is nested
  auto flat = *rules::Rule::Whitelist("f", "ab|cd|ef", "t");
  auto split = SplitRule(flat);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->size(), 3u);
}

TEST(ConsolidationTest, TopLevelBranches) {
  EXPECT_EQ(TopLevelBranches("a|b").size(), 2u);
  EXPECT_EQ(TopLevelBranches("(a|b)").size(), 1u);
  EXPECT_EQ(TopLevelBranches("(?:a|b)").size(), 2u);  // unwrapped
  EXPECT_EQ(TopLevelBranches("(?:a)|(?:b)").size(), 2u);
  EXPECT_EQ(TopLevelBranches("a\\|b").size(), 1u);  // escaped pipe
}

// ---------------------------------------------------------- Drift monitor --

TEST(DriftMonitorTest, FlagsDecayingRule) {
  RulePrecisionMonitor monitor({.window_size = 20,
                                .min_verdicts = 10,
                                .precision_floor = 0.8});
  // Rule starts healthy...
  for (int i = 0; i < 20; ++i) monitor.RecordVerdict("r1", true);
  EXPECT_TRUE(monitor.FlaggedRules().empty());
  // ...then the data drifts under it.
  for (int i = 0; i < 15; ++i) monitor.RecordVerdict("r1", i % 3 != 0);
  for (int i = 0; i < 10; ++i) monitor.RecordVerdict("r1", false);
  auto flags = monitor.FlaggedRules();
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].rule_id, "r1");
  EXPECT_LT(flags[0].windowed_precision, 0.8);
}

TEST(DriftMonitorTest, RequiresMinimumEvidence) {
  RulePrecisionMonitor monitor({.window_size = 50,
                                .min_verdicts = 10,
                                .precision_floor = 0.9});
  for (int i = 0; i < 5; ++i) monitor.RecordVerdict("r1", false);
  EXPECT_TRUE(monitor.FlaggedRules().empty());  // only 5 verdicts
  EXPECT_DOUBLE_EQ(monitor.WindowedPrecision("r1"), 0.0);
  EXPECT_DOUBLE_EQ(monitor.WindowedPrecision("unknown"), 1.0);
}

TEST(DriftMonitorTest, WindowSlides) {
  RulePrecisionMonitor monitor({.window_size = 10,
                                .min_verdicts = 5,
                                .precision_floor = 0.5});
  for (int i = 0; i < 10; ++i) monitor.RecordVerdict("r1", false);
  EXPECT_DOUBLE_EQ(monitor.WindowedPrecision("r1"), 0.0);
  for (int i = 0; i < 10; ++i) monitor.RecordVerdict("r1", true);
  EXPECT_DOUBLE_EQ(monitor.WindowedPrecision("r1"), 1.0);  // old forgotten
}

TEST(InapplicableRulesTest, MigrateRulesAcrossSplit) {
  rules::RuleRepository repo;
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("p1", "pants?", "pants"), "a").ok());
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Blacklist("p2", "yoga pants?", "pants"), "a")
          .ok());
  ASSERT_TRUE(
      repo.Add(*rules::Rule::Whitelist("j1", "jeans?", "jeans"), "a").ok());
  data::Taxonomy taxonomy;
  taxonomy.AddType("pants");
  taxonomy.AddType("jeans");
  ASSERT_TRUE(taxonomy.SplitType("pants", {"work pants", "jeans"}).ok());

  auto report = MigrateRulesAcrossSplit(repo, taxonomy);
  EXPECT_EQ(report.retired, (std::vector<std::string>{"p1", "p2"}));
  EXPECT_EQ(report.drafted.size(), 4u);  // 2 rules x 2 replacements
  // Old rules are out of execution; drafts exist but are disabled.
  EXPECT_FALSE(repo.rules().Find("p1")->is_active());
  const rules::Rule* draft = repo.rules().Find("p1@work pants");
  ASSERT_NE(draft, nullptr);
  EXPECT_EQ(draft->metadata().state, rules::RuleState::kDisabled);
  EXPECT_EQ(draft->target_type(), "work pants");
  EXPECT_EQ(draft->pattern_text(), "pants?");
  // Unrelated rules untouched; re-running is a no-op.
  EXPECT_TRUE(repo.rules().Find("j1")->is_active());
  auto again = MigrateRulesAcrossSplit(repo, taxonomy);
  EXPECT_TRUE(again.retired.empty());
}

TEST(InapplicableRulesTest, TaxonomySplitRetiresRules) {
  auto set = MakeRuleSet(R"(
whitelist p1: pants? => pants
whitelist p2: slacks? => pants
whitelist j1: jeans? => jeans
)");
  data::Taxonomy taxonomy;
  taxonomy.AddType("pants");
  taxonomy.AddType("jeans");
  ASSERT_TRUE(taxonomy.SplitType("pants", {"work pants", "jeans"}).ok());

  auto inapplicable = FindInapplicableRules(set, taxonomy);
  ASSERT_EQ(inapplicable.size(), 2u);
  EXPECT_EQ(inapplicable[0].retired_type, "pants");
  ASSERT_EQ(inapplicable[0].replacements.size(), 2u);
  EXPECT_EQ(inapplicable[0].replacements[0], "work pants");
}

}  // namespace
}  // namespace rulekit::maint
