// Replication subsystem: group-commit WAL batching, interval-mode
// close durability, the incremental segment cursor, the tenant peek,
// wire-protocol round trips, and the end-to-end primary -> shipper ->
// follower pipeline path — including tenant-scoped subscriptions,
// CRC-mismatch (torn-on-the-wire) rejection, follower crash/restart
// resume from the mirror log, read-only edit refusal, and replay-lag
// monitoring.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/replication/follower.h"
#include "src/replication/protocol.h"
#include "src/replication/shipper.h"
#include "src/rules/rule_parser.h"
#include "src/serving/client.h"
#include "src/serving/server.h"
#include "src/serving/wire.h"
#include "src/storage/codec.h"
#include "src/storage/log_cursor.h"
#include "src/storage/rule_store.h"
#include "src/storage/wal.h"

#include "tests/classify_shims.h"

namespace rulekit {
namespace {

namespace fs = std::filesystem;

using chimera::ChimeraPipeline;
using chimera::PipelineConfig;
using replication::FollowerConfig;
using replication::LogShipper;
using replication::ReplicaFollower;
using replication::ShipperConfig;
using rules::CommitRecord;
using rules::RuleRepository;
using storage::Crc32;
using storage::Decoder;
using storage::DurableRuleStore;
using storage::Encoder;
using storage::FsyncPolicy;
using storage::LogPosition;
using storage::StoreLogCursor;
using storage::WriteAheadLog;

constexpr auto kWait = std::chrono::seconds(10);

std::string ScratchDir(const std::string& suffix = {}) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("rulekit_replication_") + info->name() + suffix);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string StateBytes(const RuleRepository& repo) {
  Encoder enc;
  storage::EncodePersistedState(repo.ExportState(), enc);
  return enc.Release();
}

void AddRules(ChimeraPipeline& pipeline, const std::string& dsl,
              const rules::TenantId& tenant = {}) {
  auto parsed = rules::ParseRules(dsl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "replication-test",
                                tenant)
                  .ok());
}

/// A primary pipeline journaling to `dir` with rule-only serving (no
/// learning ensemble: learned state does not replicate, so byte-identity
/// checks compare rule state only — by design).
PipelineConfig PrimaryConfig(const std::string& dir) {
  PipelineConfig config;
  config.use_learning = false;
  config.storage_dir = dir;
  return config;
}

PipelineConfig FollowerPipelineConfig() {
  PipelineConfig config;
  config.use_learning = false;
  return config;
}

// ---------------------------------------------------------------------------
// Group-commit WAL.
// ---------------------------------------------------------------------------

TEST(GroupCommitTest, ConcurrentAppendersBatchIntoFewerSyncs) {
  const std::string dir = ScratchDir();
  const std::string path = (fs::path(dir) / "group.wal").string();
  auto wal = WriteAheadLog::Open(path, FsyncPolicy::kGroup);
  ASSERT_TRUE(wal.ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<size_t> failures{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        std::string payload =
            "rec-" + std::to_string(t) + "-" + std::to_string(i);
        if (!wal->Append(payload).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0u);

  // Every record survives, exactly once.
  size_t records = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](std::string_view) {
                records++;
                return Status::OK();
              }).ok());
  EXPECT_EQ(records, kThreads * kPerThread);

  // The whole point: fewer fsyncs than appends (leaders batched), and
  // at least one multi-record batch under 8-way contention.
  EXPECT_LE(wal->sync_count(), kThreads * kPerThread);
  EXPECT_GT(wal->group_batches(), 0u);
  wal->Close();
}

TEST(GroupCommitTest, SingleAppenderStillDurablePerCommit) {
  const std::string dir = ScratchDir();
  const std::string path = (fs::path(dir) / "solo.wal").string();
  auto wal = WriteAheadLog::Open(path, FsyncPolicy::kGroup);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append("one").ok());
  ASSERT_TRUE(wal->Append("two").ok());
  // No batching partner: each append led its own batch and synced.
  EXPECT_GE(wal->sync_count(), 2u);
  wal->Close();
  std::vector<std::string> seen;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](std::string_view p) {
                seen.emplace_back(p);
                return Status::OK();
              }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two"}));
}

// The satellite-2 durability pin: interval-mode records appended since
// the last sync boundary are flushed by Close(), not lost.
TEST(WalIntervalTest, CloseFlushesUnsyncedTail) {
  const std::string dir = ScratchDir();
  const std::string path = (fs::path(dir) / "interval.wal").string();
  {
    auto wal = WriteAheadLog::Open(path, FsyncPolicy::kInterval,
                                   /*fsync_interval_commits=*/1000);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->Append("tail-" + std::to_string(i)).ok());
    }
    // Well under the interval: nothing has hit an fsync boundary yet.
    wal->Close();
  }
  size_t records = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](std::string_view) {
                records++;
                return Status::OK();
              }).ok());
  EXPECT_EQ(records, 5u);
}

// ---------------------------------------------------------------------------
// Segment cursor.
// ---------------------------------------------------------------------------

TEST(LogCursorTest, IteratesAcrossSealedSegments) {
  const std::string dir = ScratchDir();
  {
    auto w0 = WriteAheadLog::Open((fs::path(dir) / "wal-0").string(),
                                  FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(w0.ok());
    ASSERT_TRUE(w0->Append("a").ok());
    ASSERT_TRUE(w0->Append("b").ok());
    w0->Close();
    auto w1 = WriteAheadLog::Open((fs::path(dir) / "wal-1").string(),
                                  FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(w1.ok());
    ASSERT_TRUE(w1->Append("c").ok());
    w1->Close();
  }
  StoreLogCursor cursor(dir, LogPosition{0, 0});  // offset normalized to 8
  std::vector<std::string> seen;
  for (;;) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok()) << next.status().message();
    if (!next->has_value()) break;
    seen.push_back((**next).payload);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c"}));
  // Caught up at the live tail of the newest segment.
  EXPECT_EQ(cursor.position().epoch, 1u);

  // New appends to the live segment become visible without re-opening.
  {
    auto w1 = WriteAheadLog::Open((fs::path(dir) / "wal-1").string(),
                                  FsyncPolicy::kEveryCommit);
    ASSERT_TRUE(w1.ok());
    ASSERT_TRUE(w1->Append("d").ok());
    w1->Close();
  }
  auto next = cursor.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((**next).payload, "d");
}

TEST(LogCursorTest, CompactedEpochIsNotFound) {
  const std::string dir = ScratchDir();
  auto w1 = WriteAheadLog::Open((fs::path(dir) / "wal-1").string(),
                                FsyncPolicy::kEveryCommit);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w1->Append("x").ok());
  w1->Close();
  // Epoch 0 no longer exists while epoch 1 does: the position was
  // compacted away and the reader must re-seed, not silently skip.
  StoreLogCursor cursor(dir, LogPosition{0, 8});
  auto next = cursor.Next();
  EXPECT_FALSE(next.ok());
}

TEST(LogCursorTest, TornLiveTailMeansNotYet) {
  const std::string dir = ScratchDir();
  const std::string path = (fs::path(dir) / "wal-0").string();
  auto wal = WriteAheadLog::Open(path, FsyncPolicy::kEveryCommit);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append("whole").ok());
  wal->Close();
  // Simulate a torn in-progress append: half a frame header at the tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x0b\x00";
  }
  StoreLogCursor cursor(dir, LogPosition{0, 8});
  auto first = cursor.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((**first).payload, "whole");
  // The torn tail of the LIVE segment is "not yet", not corruption —
  // a concurrent write(2) may be mid-flight.
  auto tail = cursor.Next();
  ASSERT_TRUE(tail.ok());
  EXPECT_FALSE(tail->has_value());
}

// ---------------------------------------------------------------------------
// Tenant peek + protocol codecs.
// ---------------------------------------------------------------------------

TEST(PeekTenantTest, ReadsTenantWithoutFullDecode) {
  auto parsed = rules::ParseRules("whitelist r1: rings? => rings\n");
  ASSERT_TRUE(parsed.ok());
  CommitRecord record;
  CommitRecord::Op op;
  op.kind = CommitRecord::OpKind::kAdd;
  op.rule = parsed->front();
  record.ops.push_back(std::move(op));
  record.entries.push_back(rules::AuditEntry{});
  record.tenant = "acme";
  Encoder enc;
  storage::EncodeCommitRecord(record, enc);
  auto tenant = storage::PeekCommitTenant(enc.data());
  ASSERT_TRUE(tenant.ok()) << tenant.status().message();
  EXPECT_EQ(*tenant, "acme");

  record.tenant.clear();
  Encoder enc2;
  storage::EncodeCommitRecord(record, enc2);
  auto shared = storage::PeekCommitTenant(enc2.data());
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(*shared, "");
}

TEST(ProtocolTest, MessagesRoundTrip) {
  replication::ReplicaSubscribe sub;
  sub.position = LogPosition{3, 4096};
  sub.tenants = {"a", "b"};
  Encoder enc;
  EncodeSubscribe(sub, enc);
  auto sub2 = replication::DecodeSubscribe(enc.data());
  ASSERT_TRUE(sub2.ok());
  EXPECT_EQ(sub2->protocol_version, replication::kProtocolVersion);
  EXPECT_EQ(sub2->position, sub.position);
  EXPECT_EQ(sub2->tenants, sub.tenants);

  replication::ReplicaSubscribeAck ack;
  ack.code = serving::WireCode::kInvalidArgument;
  ack.message = "nope";
  ack.position = LogPosition{1, 8};
  Encoder enc2;
  EncodeSubscribeAck(ack, enc2);
  auto ack2 = replication::DecodeSubscribeAck(enc2.data());
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2->code, ack.code);
  EXPECT_EQ(ack2->message, "nope");
  EXPECT_EQ(ack2->position, ack.position);

  replication::ReplicaRecord rec;
  rec.end = LogPosition{2, 96};
  rec.ship_unix_ms = 1234567;
  rec.payload = "payload-bytes";
  rec.crc = Crc32(rec.payload);
  Encoder enc3;
  EncodeRecord(rec, enc3);
  auto rec2 = replication::DecodeRecord(enc3.data());
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->end, rec.end);
  EXPECT_EQ(rec2->ship_unix_ms, rec.ship_unix_ms);
  EXPECT_EQ(rec2->crc, rec.crc);
  EXPECT_EQ(rec2->payload, rec.payload);

  replication::ReplicaHeartbeat hb;
  hb.end = LogPosition{5, 800};
  hb.ship_unix_ms = 42;
  Encoder enc4;
  EncodeHeartbeat(hb, enc4);
  auto hb2 = replication::DecodeHeartbeat(enc4.data());
  ASSERT_TRUE(hb2.ok());
  EXPECT_EQ(hb2->end, hb.end);

  replication::ReplicaAck rack;
  rack.position = LogPosition{5, 800};
  Encoder enc5;
  EncodeAck(rack, enc5);
  auto rack2 = replication::DecodeAck(enc5.data());
  ASSERT_TRUE(rack2.ok());
  EXPECT_EQ(rack2->position, rack.position);
}

TEST(ProtocolTest, TrailingBytesRejected) {
  replication::ReplicaAck ack;
  ack.position = LogPosition{1, 8};
  Encoder enc;
  EncodeAck(ack, enc);
  std::string bytes(enc.data());
  bytes.push_back('x');
  EXPECT_FALSE(replication::DecodeAck(bytes).ok());
}

TEST(ProtocolTest, EditFramesRoundTrip) {
  serving::WireRuleEditRequest request;
  request.request_id = 7;
  request.tenant = "acme";
  request.author = "analyst";
  request.op = serving::EditOp::kSetConfidence;
  request.rule_id = "r1";
  request.confidence = 0.75;
  request.detail = "tuning";
  Encoder enc;
  EncodeEditRequestPayload(request, enc);
  auto decoded = serving::DecodeEditRequestPayload(enc.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->tenant, "acme");
  EXPECT_EQ(decoded->op, serving::EditOp::kSetConfidence);
  EXPECT_EQ(decoded->rule_id, "r1");
  EXPECT_DOUBLE_EQ(decoded->confidence, 0.75);

  serving::WireRuleEditResponse response;
  response.request_id = 7;
  response.code = serving::WireCode::kReadOnly;
  response.message = "replica";
  Encoder enc2;
  EncodeEditResponsePayload(response, enc2);
  auto decoded2 = serving::DecodeEditResponsePayload(enc2.data());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2->code, serving::WireCode::kReadOnly);
}

// ---------------------------------------------------------------------------
// End to end: primary -> shipper -> follower.
// ---------------------------------------------------------------------------

struct PrimaryHarness {
  explicit PrimaryHarness(const std::string& dir,
                          ShipperConfig shipper_config = {})
      : pipeline(PrimaryConfig(dir)) {
    EXPECT_TRUE(pipeline.storage_status().ok());
    shipper = std::make_unique<LogShipper>(*pipeline.storage(),
                                           shipper_config);
    EXPECT_TRUE(shipper->Start().ok());
  }
  ~PrimaryHarness() { shipper->Stop(); }

  LogPosition position() const { return pipeline.storage()->position(); }

  ChimeraPipeline pipeline;
  std::unique_ptr<LogShipper> shipper;
};

TEST(ReplicationEndToEndTest, FollowerConvergesByteIdentically) {
  PrimaryHarness primary(ScratchDir());
  AddRules(primary.pipeline,
           "whitelist r1: rings? => rings\n"
           "blacklist b1: toe rings? => rings\n");

  FollowerConfig config;
  config.primary_port = primary.shipper->port();
  config.pipeline = FollowerPipelineConfig();
  auto follower = ReplicaFollower::Open(config);
  ASSERT_TRUE(follower.ok()) << follower.status().message();
  (*follower)->Start();

  ASSERT_TRUE((*follower)->WaitForPosition(primary.position(), kWait));

  // More commits after the follower attached stream incrementally.
  AddRules(primary.pipeline, "whitelist r2: necklaces? => necklaces\n");
  ASSERT_TRUE((*follower)->WaitForPosition(primary.position(), kWait));

  EXPECT_EQ(StateBytes(primary.pipeline.repository()),
            StateBytes((*follower)->pipeline().repository()));

  // And the served answers agree byte for byte.
  std::vector<data::ProductItem> items = {
      data::ProductItem{"1", "gold rings", {}},
      data::ProductItem{"2", "toe rings", {}},
      data::ProductItem{"3", "silver necklaces", {}},
      data::ProductItem{"4", "unrelated widget", {}},
  };
  auto primary_report = chimera::RunBatch(primary.pipeline, items);
  auto follower_report = chimera::RunBatch((*follower)->pipeline(), items);
  EXPECT_EQ(primary_report.predictions, follower_report.predictions);

  auto stats = (*follower)->stats();
  EXPECT_TRUE(stats.connected);
  EXPECT_GE(stats.records_applied, 2u);
  EXPECT_TRUE(stats.halt_error.empty());
  (*follower)->Stop();
}

TEST(ReplicationEndToEndTest, TenantScopedSubscriptionFilters) {
  PrimaryHarness primary(ScratchDir());
  AddRules(primary.pipeline, "whitelist shared1: rings? => rings\n");
  AddRules(primary.pipeline, "whitelist a1: gizmos? => gizmo\n",
           rules::TenantId("a"));
  AddRules(primary.pipeline, "whitelist b1: widgets? => widget\n",
           rules::TenantId("b"));

  FollowerConfig config;
  config.primary_port = primary.shipper->port();
  config.tenants = {"a"};
  config.pipeline = FollowerPipelineConfig();
  auto follower = ReplicaFollower::Open(config);
  ASSERT_TRUE(follower.ok());
  (*follower)->Start();
  ASSERT_TRUE((*follower)->WaitForPosition(primary.position(), kWait));

  const auto& rules = (*follower)->pipeline().rule_set();
  EXPECT_NE(rules.Find("shared1"), nullptr);  // "" ships to everyone
  EXPECT_NE(rules.Find("a1"), nullptr);       // subscribed tenant
  EXPECT_EQ(rules.Find("b1"), nullptr);       // filtered at the source

  auto shipper_stats = primary.shipper->stats();
  EXPECT_GE(shipper_stats.records_filtered, 1u);
  (*follower)->Stop();
}

TEST(ReplicationEndToEndTest, FollowerCrashRestartResumesFromMirror) {
  const std::string primary_dir = ScratchDir("_p");
  const std::string mirror_dir = ScratchDir("_m");
  PrimaryHarness primary(primary_dir);
  AddRules(primary.pipeline, "whitelist r1: rings? => rings\n");

  FollowerConfig config;
  config.primary_port = primary.shipper->port();
  config.mirror_dir = mirror_dir;
  config.pipeline = FollowerPipelineConfig();
  {
    auto follower = ReplicaFollower::Open(config);
    ASSERT_TRUE(follower.ok());
    (*follower)->Start();
    ASSERT_TRUE((*follower)->WaitForPosition(primary.position(), kWait));
    // "Kill" mid-stream: Stop() + destruction. The mirror retains the
    // applied records.
    (*follower)->Stop();
  }

  // The primary moves on while the follower is down.
  AddRules(primary.pipeline, "whitelist r2: necklaces? => necklaces\n");

  auto restarted = ReplicaFollower::Open(config);
  ASSERT_TRUE(restarted.ok()) << restarted.status().message();
  // Mirror recovery alone restored the pre-crash state (r1 but not r2).
  EXPECT_NE((*restarted)->pipeline().rule_set().Find("r1"), nullptr);
  EXPECT_EQ((*restarted)->pipeline().rule_set().Find("r2"), nullptr);
  EXPECT_GT((*restarted)->position().offset, storage::wal_format::kHeaderBytes);

  (*restarted)->Start();
  ASSERT_TRUE((*restarted)->WaitForPosition(primary.position(), kWait));
  EXPECT_EQ(StateBytes(primary.pipeline.repository()),
            StateBytes((*restarted)->pipeline().repository()));
  // Resume was incremental: the restarted session did not re-apply r1's
  // record (it was recovered from the mirror, then streaming continued
  // from that position).
  EXPECT_LE((*restarted)->stats().records_applied, 1u);
  (*restarted)->Stop();
}

// A fake primary that serves the handshake, then ships one record whose
// CRC does not match its bytes — the follower must reject it (count a
// mismatch, apply nothing) rather than let a torn frame reach Replay.
TEST(ReplicationEndToEndTest, CorruptRecordOnWireIsRejected) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  std::thread fake_primary([listen_fd] {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    auto frame = serving::ReadFrame(fd);
    if (!frame.ok()) {
      ::close(fd);
      return;
    }
    replication::ReplicaSubscribeAck ack;
    ack.code = serving::WireCode::kOk;
    ack.position = LogPosition{0, 8};
    Encoder enc;
    EncodeSubscribeAck(ack, enc);
    (void)serving::WriteFrame(fd, serving::FrameType::kReplicaSubscribeAck,
                              enc.data());
    replication::ReplicaRecord rec;
    rec.end = LogPosition{0, 100};
    rec.payload = "these bytes were torn in flight";
    rec.crc = Crc32("the bytes the primary meant to send");
    Encoder enc2;
    EncodeRecord(rec, enc2);
    (void)serving::WriteFrame(fd, serving::FrameType::kReplicaRecord,
                              enc2.data());
    // Leave the socket open; the follower disconnects on the mismatch.
    char buf[16];
    (void)::read(fd, buf, sizeof(buf));
    ::close(fd);
  });

  FollowerConfig config;
  config.primary_port = port;
  config.pipeline = FollowerPipelineConfig();
  auto follower = ReplicaFollower::Open(config);
  ASSERT_TRUE(follower.ok());
  (*follower)->Start();

  auto deadline = std::chrono::steady_clock::now() + kWait;
  while ((*follower)->stats().crc_mismatches == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto stats = (*follower)->stats();
  EXPECT_GE(stats.crc_mismatches, 1u);
  EXPECT_EQ(stats.records_applied, 0u);  // the torn record never applied
  EXPECT_EQ(stats.position.offset, 8u);  // position did not advance past it
  (*follower)->Stop();
  ::shutdown(listen_fd, SHUT_RDWR);
  fake_primary.join();
  ::close(listen_fd);
}

TEST(ReplicationEndToEndTest, ReadOnlyServerRefusesEditsPrimaryApplies) {
  PrimaryHarness primary(ScratchDir());

  serving::ServerConfig primary_server_config;
  primary_server_config.writer = &primary.pipeline;
  serving::RuleServer primary_server(primary.pipeline, primary_server_config);
  ASSERT_TRUE(primary_server.Start().ok());

  FollowerConfig config;
  config.primary_port = primary.shipper->port();
  config.pipeline = FollowerPipelineConfig();
  auto follower = ReplicaFollower::Open(config);
  ASSERT_TRUE(follower.ok());
  (*follower)->Start();

  // Follower front-end: no writer — a read-only replica.
  serving::RuleServer replica_server((*follower)->pipeline(), {});
  ASSERT_TRUE(replica_server.Start().ok());

  serving::WireRuleEditRequest edit;
  edit.request_id = 1;
  edit.author = "analyst";
  edit.op = serving::EditOp::kAddRules;
  edit.rule_dsl = "whitelist wire1: rings? => rings\n";

  // The replica refuses with the typed kReadOnly code.
  {
    auto client = serving::RuleClient::Connect(replica_server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->CallEdit(edit);
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->code, serving::WireCode::kReadOnly);
  }
  EXPECT_EQ((*follower)->pipeline().rule_set().Find("wire1"), nullptr);
  EXPECT_EQ(replica_server.stats().edits_refused_readonly, 1u);

  // The primary applies the same edit — and it replicates to the
  // follower like any local mutation.
  {
    auto client = serving::RuleClient::Connect(primary_server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->CallEdit(edit);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, serving::WireCode::kOk);
    EXPECT_EQ(response->rules_added, 1u);
  }
  EXPECT_NE(primary.pipeline.rule_set().Find("wire1"), nullptr);
  EXPECT_EQ(primary_server.stats().edits_applied, 1u);
  ASSERT_TRUE((*follower)->WaitForPosition(primary.position(), kWait));
  EXPECT_NE((*follower)->pipeline().rule_set().Find("wire1"), nullptr);

  replica_server.Stop();
  primary_server.Stop();
  (*follower)->Stop();
}

TEST(ReplicationEndToEndTest, ReplayLagRecordedInMonitor) {
  chimera::QualityMonitor monitor;
  PrimaryHarness primary(ScratchDir());
  AddRules(primary.pipeline, "whitelist r1: rings? => rings\n");

  FollowerConfig config;
  config.primary_port = primary.shipper->port();
  config.pipeline = FollowerPipelineConfig();
  config.monitor = &monitor;
  auto follower = ReplicaFollower::Open(config);
  ASSERT_TRUE(follower.ok());
  (*follower)->Start();
  ASSERT_TRUE((*follower)->WaitForPosition(primary.position(), kWait));
  (*follower)->Stop();

  auto history = monitor.replication_history();
  ASSERT_FALSE(history.empty());
  size_t applied = 0;
  for (const auto& activity : history) applied += activity.records_applied;
  EXPECT_GE(applied, 1u);
  // Applied-through position landed in the last observation.
  EXPECT_GT(history.back().offset, 0u);
  EXPECT_GE((*follower)->stats().last_lag_ms, 0.0);
}

TEST(ReplicationEndToEndTest, CompactedResumePositionIsRefused) {
  const std::string dir = ScratchDir();
  PrimaryHarness primary(dir);
  AddRules(primary.pipeline, "whitelist r1: rings? => rings\n");
  // Compact twice: epoch 0's log is gone, history now starts at the
  // snapshot.
  ASSERT_TRUE(primary.pipeline.storage()->Compact().ok());
  AddRules(primary.pipeline, "whitelist r2: necklaces? => necklaces\n");
  ASSERT_TRUE(primary.pipeline.storage()->Compact().ok());
  ASSERT_FALSE(fs::exists(fs::path(dir) / "wal-0"));

  // A follower resuming from epoch 0 is refused (it must re-seed) —
  // the subscription fails rather than silently skipping history.
  FollowerConfig config;
  config.primary_port = primary.shipper->port();
  config.pipeline = FollowerPipelineConfig();
  auto follower = ReplicaFollower::Open(config);
  ASSERT_TRUE(follower.ok());
  (*follower)->Start();
  auto deadline = std::chrono::steady_clock::now() + kWait;
  while ((*follower)->stats().connect_failures == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*follower)->stats().connect_failures, 1u);
  EXPECT_EQ((*follower)->stats().records_applied, 0u);
  EXPECT_GE(primary.shipper->stats().subscriptions_refused, 1u);
  (*follower)->Stop();
}

TEST(ReplicationEndToEndTest, FollowerRejectsOwnStorageDir) {
  FollowerConfig config;
  config.pipeline = FollowerPipelineConfig();
  config.pipeline.storage_dir = ScratchDir();
  auto follower = ReplicaFollower::Open(config);
  EXPECT_FALSE(follower.ok());
}

}  // namespace
}  // namespace rulekit
