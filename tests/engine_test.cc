#include <gtest/gtest.h>

#include <memory>

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/data/catalog_generator.h"
#include "src/engine/data_index.h"
#include "src/engine/executor.h"
#include "src/engine/rule_classifier.h"
#include "src/engine/rule_index.h"
#include "src/rules/rule_parser.h"
#include "src/text/aho_corasick.h"

namespace rulekit::engine {
namespace {

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.title = std::move(title);
  return item;
}

std::shared_ptr<rules::RuleSet> MakeRuleSet(std::string_view dsl) {
  auto parsed = rules::ParseRuleSet(dsl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::make_shared<rules::RuleSet>(std::move(parsed).value());
}

// ------------------------------------------------------------ AhoCorasick --

TEST(AhoCorasickTest, FindsOverlappingPatterns) {
  text::AhoCorasick ac;
  ac.Add("he", 1);
  ac.Add("she", 2);
  ac.Add("hers", 3);
  ac.Build();
  auto hits = ac.CollectUnique("ushers");
  EXPECT_EQ(hits, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(AhoCorasickTest, NoFalsePositives) {
  text::AhoCorasick ac;
  ac.Add("ring", 1);
  ac.Build();
  EXPECT_TRUE(ac.CollectUnique("earring").size() == 1);
  EXPECT_TRUE(ac.CollectUnique("rng rig").empty());
  EXPECT_FALSE(ac.AnyMatch("necklace"));
  EXPECT_TRUE(ac.AnyMatch("spring sale"));
}

TEST(AhoCorasickTest, SamePayloadManyPatterns) {
  text::AhoCorasick ac;
  ac.Add("oil", 7);
  ac.Add("lubricant", 7);
  ac.Build();
  EXPECT_EQ(ac.CollectUnique("motor oil and lubricant"),
            (std::vector<uint32_t>{7}));
}

TEST(AhoCorasickTest, EmptyAutomatonMatchesNothing) {
  text::AhoCorasick ac;
  ac.Build();
  EXPECT_FALSE(ac.AnyMatch("anything"));
}

// -------------------------------------------------------------- RuleIndex --

TEST(RuleIndexTest, CandidatesAreSupersetOfMatches) {
  auto set = MakeRuleSet(R"(
whitelist r1: rings? => rings
whitelist r2: (motor | engine) oils? => motor oil
whitelist r3: denim.*jeans? => jeans
whitelist r4: \w+ cables? => computer cables
blacklist b1: toe rings? => rings
)");
  RuleIndex index;
  index.Build(*set);
  // r4 has no usable literal ("\w+ cable..." does have "cable"!), so check
  // stats make sense overall.
  EXPECT_GE(index.stats().indexed_rules + index.stats().unindexed_rules, 5u);

  const char* titles[] = {
      "diamond ring 10kt", "castrol motor oil", "relaxed denim jeans",
      "usb cable 6ft", "silver toe ring", "unrelated product"};
  for (const char* title : titles) {
    auto candidates = index.Candidates(title);
    // Every actually-matching rule must be in the candidate set.
    const auto& all = set->rules();
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i].pattern_regex()->PartialMatch(
              rulekit::ToLowerAscii(title))) {
        EXPECT_NE(std::find(candidates.begin(), candidates.end(), i),
                  candidates.end())
            << all[i].id() << " missing for " << title;
      }
    }
  }
}

TEST(RuleIndexTest, PrunesIrrelevantRules) {
  auto set = MakeRuleSet(R"(
whitelist r1: rings? => rings
whitelist r2: jeans? => jeans
whitelist r3: laptops? => laptop computers
)");
  RuleIndex index;
  index.Build(*set);
  EXPECT_EQ(index.stats().indexed_rules, 3u);
  auto candidates = index.Candidates("gold ring");
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(RuleIndexTest, SkipsInactiveRules) {
  auto set = MakeRuleSet("whitelist r1: rings? => rings\n");
  ASSERT_TRUE(set->Disable("r1").ok());
  RuleIndex index;
  index.Build(*set);
  EXPECT_TRUE(index.Candidates("gold ring").empty());
}

// ---------------------------------------------------- RuleBasedClassifier --

TEST(RuleBasedClassifierTest, WhitelistProposesBlacklistVetoes) {
  auto set = MakeRuleSet(R"(
whitelist w1: rings? => rings
blacklist b1: toe rings? => rings
)");
  RuleBasedClassifier clf(set);
  auto scored = clf.Predict(MakeItem("diamond ring"));
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].label, "rings");
  EXPECT_TRUE(clf.Predict(MakeItem("silver toe ring")).empty());
  EXPECT_TRUE(clf.Predict(MakeItem("necklace")).empty());
}

TEST(RuleBasedClassifierTest, OrderIndependenceProperty) {
  // §4: "the output of the system remains the same regardless of the order
  // in which the rules are being executed." Build the same logical rule
  // set in shuffled orders and check identical predictions.
  const char* rule_lines[] = {
      "whitelist w1: rings? => rings",
      "whitelist w2: wedding bands? => rings",
      "whitelist w3: jeans? => jeans",
      "whitelist w4: denim => jeans",
      "blacklist b1: toe rings? => rings",
      "blacklist b2: jeans? jackets? => jeans",
  };
  const char* titles[] = {
      "diamond ring",      "toe ring",       "wedding band",
      "skinny jeans",      "denim jacket",   "denim jeans jacket",
      "jeans jacket",      "plain shirt",
  };
  Rng rng(17);
  std::vector<std::string> lines(std::begin(rule_lines),
                                 std::end(rule_lines));
  std::vector<std::vector<ml::ScoredLabel>> reference;
  for (int perm = 0; perm < 12; ++perm) {
    std::string dsl;
    for (const auto& l : lines) dsl += l + std::string("\n");
    auto set = MakeRuleSet(dsl);
    RuleBasedClassifier clf(set, {.use_index = perm % 2 == 0});
    std::vector<std::vector<ml::ScoredLabel>> outputs;
    for (const char* t : titles) outputs.push_back(clf.Predict(MakeItem(t)));
    if (perm == 0) {
      reference = outputs;
    } else {
      for (size_t i = 0; i < outputs.size(); ++i) {
        ASSERT_EQ(outputs[i].size(), reference[i].size()) << titles[i];
        for (size_t j = 0; j < outputs[i].size(); ++j) {
          EXPECT_EQ(outputs[i][j].label, reference[i][j].label) << titles[i];
        }
      }
    }
    rng.Shuffle(lines);
  }
}

TEST(RuleBasedClassifierTest, ConfidenceCarriesThrough) {
  auto set = MakeRuleSet("whitelist w1: rings? => rings\n");
  set->FindMutable("w1")->metadata().confidence = 0.6;
  RuleBasedClassifier clf(set);
  auto scored = clf.Predict(MakeItem("gold ring"));
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_DOUBLE_EQ(scored[0].score, 0.6);
}

TEST(RuleBasedClassifierTest, IndexAndScanAgree) {
  data::GeneratorConfig config;
  config.seed = 3;
  data::CatalogGenerator gen(config);
  auto items = gen.GenerateMany(300);

  auto set = MakeRuleSet(R"(
whitelist r1: rugs? => area rugs
whitelist r2: (ring|wedding band)s? => rings
whitelist r3: jeans? => jeans
whitelist r4: (laptop|ultrabook)s? => laptop computers
blacklist b1: laptop (bag|case|sleeve)s? => laptop computers
)");
  RuleBasedClassifier indexed(set, {.use_index = true});
  RuleBasedClassifier scanned(set, {.use_index = false});
  for (const auto& li : items) {
    auto a = indexed.Predict(li.item);
    auto b = scanned.Predict(li.item);
    ASSERT_EQ(a.size(), b.size()) << li.item.title;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].label, b[i].label);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

// ----------------------------------------------------- AttrValueClassifier --

TEST(AttrValueClassifierTest, IsbnRule) {
  auto set = MakeRuleSet("attr a1: has(ISBN) => books\n");
  AttrValueClassifier clf(set);
  data::ProductItem book = MakeItem("mystery novel");
  book.SetAttribute("ISBN", "9781234567897");
  auto scored = clf.Predict(book);
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].label, "books");
  EXPECT_TRUE(clf.Predict(MakeItem("mystery novel")).empty());
}

TEST(AttrValueClassifierTest, BrandNarrowsToCandidateSet) {
  auto set = MakeRuleSet(
      "attrval a1: Brand = \"apple\" => smart phones | laptop computers\n");
  AttrValueClassifier clf(set);
  data::ProductItem item = MakeItem("device 64gb");
  item.SetAttribute("Brand", "Apple");
  auto scored = clf.Predict(item);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_DOUBLE_EQ(scored[0].score, 0.5);  // confidence split across 2
}

TEST(AttrValueClassifierTest, NegativePredicateVetoes) {
  auto set = MakeRuleSet(R"(
attrval a1: Brand = "apple" => smart phones
pred p1: title has "apple" and price < 100 => not smart phones
)");
  AttrValueClassifier clf(set);
  data::ProductItem case_item = MakeItem("apple phone case");
  case_item.SetAttribute("Brand", "apple");
  case_item.SetAttribute("Price", "15.00");
  EXPECT_TRUE(clf.Predict(case_item).empty());
  data::ProductItem phone = MakeItem("apple iphone");
  phone.SetAttribute("Brand", "apple");
  phone.SetAttribute("Price", "650.00");
  EXPECT_EQ(clf.Predict(phone).size(), 1u);
}

// -------------------------------------------------------------- DataIndex --

TEST(DataIndexTest, MatchesAgreeWithFullScan) {
  data::GeneratorConfig config;
  config.seed = 9;
  data::CatalogGenerator gen(config);
  auto items = gen.GenerateMany(500);
  std::vector<std::string> titles;
  for (const auto& li : items) titles.push_back(li.item.title);

  DataIndex index;
  index.Build(titles);
  ASSERT_EQ(index.num_titles(), titles.size());

  for (const char* pattern :
       {"rings?", "(motor|engine) oils?", "denim.*jeans?", "area rugs?"}) {
    auto re = regex::Regex::CompileCaseFolded(pattern);
    ASSERT_TRUE(re.ok());
    DataIndexQueryStats stats;
    auto matches = index.MatchingTitles(*re, &stats);
    // Reference: full scan.
    std::vector<size_t> expected;
    for (size_t i = 0; i < titles.size(); ++i) {
      if (re->PartialMatch(rulekit::ToLowerAscii(titles[i]))) expected.push_back(i);
    }
    EXPECT_EQ(matches, expected) << pattern;
    EXPECT_TRUE(stats.used_index) << pattern;
    EXPECT_LE(stats.matches, stats.candidates);
    EXPECT_LT(stats.candidates, titles.size()) << pattern;
  }
}

TEST(DataIndexTest, FallsBackToScanWithoutPrefilter) {
  DataIndex index;
  index.Build({"abc def", "xyz"});
  auto re = regex::Regex::CompileCaseFolded("\\w+");
  ASSERT_TRUE(re.ok());
  DataIndexQueryStats stats;
  auto matches = index.MatchingTitles(*re, &stats);
  EXPECT_FALSE(stats.used_index);
  EXPECT_EQ(matches.size(), 2u);
}

// --------------------------------------------------------------- Executor --

TEST(ExecutorTest, IndexedScanAndParallelAllAgree) {
  data::GeneratorConfig config;
  config.seed = 21;
  data::CatalogGenerator gen(config);
  auto labeled = gen.GenerateMany(400);
  std::vector<data::ProductItem> items;
  for (auto& li : labeled) items.push_back(li.item);

  auto set = MakeRuleSet(R"(
whitelist r1: rugs? => area rugs
whitelist r2: rings? => rings
whitelist r3: jeans? => jeans
whitelist r4: (oil|lubricant)s? => motor oil
whitelist r5: gloves? => athletic gloves
blacklist b1: toe rings? => rings
)");

  RuleExecutor scan(*set, {.use_index = false});
  RuleExecutor indexed(*set, {.use_index = true});
  ThreadPool pool(4);
  RuleExecutor parallel_exec(*set, {.use_index = true, .pool = &pool});

  auto r1 = scan.Execute(items);
  auto r2 = indexed.Execute(items);
  auto r3 = parallel_exec.Execute(items);

  EXPECT_EQ(r1.matches_per_item, r2.matches_per_item);
  EXPECT_EQ(r1.matches_per_item, r3.matches_per_item);
  EXPECT_EQ(r1.stats.matches, r2.stats.matches);
  // The index must strictly reduce evaluations on this workload.
  EXPECT_LT(r2.stats.rule_evaluations, r1.stats.rule_evaluations);
  EXPECT_EQ(r1.stats.rule_evaluations, items.size() * 6);
}

TEST(ExecutorTest, EmptyBatch) {
  auto set = MakeRuleSet("whitelist r1: rings? => rings\n");
  RuleExecutor exec(*set);
  auto result = exec.Execute({});
  EXPECT_EQ(result.stats.items, 0u);
  EXPECT_TRUE(result.matches_per_item.empty());
}

}  // namespace
}  // namespace rulekit::engine
