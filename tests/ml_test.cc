#include <gtest/gtest.h>

#include <memory>

#include "src/data/catalog_generator.h"
#include "src/ml/ensemble.h"
#include "src/ml/features.h"
#include "src/ml/knn.h"
#include "src/ml/logreg.h"
#include "src/ml/metrics.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/split.h"

namespace rulekit::ml {
namespace {

// Shared fixture data: a small catalog plus train/test split.
class LearnersTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config;
    config.seed = 1234;
    config.num_types = 12;
    data::CatalogGenerator gen(config);
    auto items = gen.GenerateMany(3000);
    Rng rng(55);
    auto [train, test] = StratifiedSplit(items, 0.25, rng);
    train_ = new std::vector<data::LabeledItem>(std::move(train));
    test_ = new std::vector<data::LabeledItem>(std::move(test));
  }

  template <typename C>
  double AccuracyOf(const C& classifier) {
    size_t correct = 0, predicted = 0;
    for (const auto& li : *test_) {
      auto scored = classifier.Predict(li.item);
      if (scored.empty()) continue;
      ++predicted;
      if (scored.front().label == li.label) ++correct;
    }
    EXPECT_GT(predicted, test_->size() * 8 / 10);
    return predicted == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(predicted);
  }

  static std::vector<data::LabeledItem>* train_;
  static std::vector<data::LabeledItem>* test_;
};

std::vector<data::LabeledItem>* LearnersTest::train_ = nullptr;
std::vector<data::LabeledItem>* LearnersTest::test_ = nullptr;

// -------------------------------------------------------------- Features --

TEST(FeatureExtractorTest, InternThenLookupRoundTrips) {
  FeatureExtractor fx;
  data::ProductItem item;
  item.title = "blue denim jeans";
  item.SetAttribute("Brand", "levis");
  auto train_ids = fx.InternFeatureIds(item);
  auto test_ids = fx.LookupFeatureIds(item);
  EXPECT_EQ(train_ids, test_ids);
  EXPECT_FALSE(train_ids.empty());
}

TEST(FeatureExtractorTest, UnseenTokensDroppedAtLookup) {
  FeatureExtractor fx;
  data::ProductItem seen;
  seen.title = "red shirt";
  fx.InternFeatureIds(seen);
  data::ProductItem unseen;
  unseen.title = "completely novel words";
  EXPECT_TRUE(fx.LookupFeatureIds(unseen).empty());
}

TEST(FeatureExtractorTest, AttributeFeaturesToggle) {
  data::ProductItem item;
  item.title = "x";
  item.SetAttribute("ISBN", "9781234567890");
  FeatureOptions with;
  FeatureExtractor fx_with(with);
  size_t n_with = fx_with.InternFeatureIds(item).size();
  FeatureOptions without;
  without.use_attributes = false;
  FeatureExtractor fx_without(without);
  size_t n_without = fx_without.InternFeatureIds(item).size();
  EXPECT_GT(n_with, n_without);
}

// -------------------------------------------------------------- Learners --

TEST_F(LearnersTest, NaiveBayesLearnsTheCatalog) {
  auto fx = std::make_shared<FeatureExtractor>();
  NaiveBayesClassifier nb(fx);
  nb.Train(*train_);
  EXPECT_EQ(nb.num_classes(), 12u);
  EXPECT_GT(AccuracyOf(nb), 0.85);
}

TEST_F(LearnersTest, KnnLearnsTheCatalog) {
  auto fx = std::make_shared<FeatureExtractor>();
  KnnClassifier knn(fx, 7);
  knn.Train(*train_);
  EXPECT_EQ(knn.num_examples(), train_->size());
  EXPECT_GT(AccuracyOf(knn), 0.85);
}

TEST_F(LearnersTest, LogRegLearnsTheCatalog) {
  auto fx = std::make_shared<FeatureExtractor>();
  LogRegClassifier lr(fx);
  lr.Train(*train_);
  EXPECT_GT(AccuracyOf(lr), 0.85);
}

TEST_F(LearnersTest, EnsembleAtLeastMatchesMembers) {
  auto fx = std::make_shared<FeatureExtractor>();
  auto nb = std::make_shared<NaiveBayesClassifier>(fx);
  nb->Train(*train_);
  auto knn = std::make_shared<KnnClassifier>(fx, 7);
  knn->Train(*train_);
  EnsembleClassifier ensemble;
  ensemble.AddMember(nb);
  ensemble.AddMember(knn);
  EXPECT_EQ(ensemble.num_members(), 2u);
  double acc = AccuracyOf(ensemble);
  EXPECT_GT(acc, 0.85);
}

TEST_F(LearnersTest, PredictionsAreSortedAndBounded) {
  auto fx = std::make_shared<FeatureExtractor>();
  NaiveBayesClassifier nb(fx);
  nb.Train(*train_);
  for (size_t i = 0; i < 20 && i < test_->size(); ++i) {
    auto scored = nb.Predict((*test_)[i].item);
    for (size_t j = 1; j < scored.size(); ++j) {
      EXPECT_GE(scored[j - 1].score, scored[j].score);
    }
    for (const auto& s : scored) {
      EXPECT_GE(s.score, 0.0);
      EXPECT_LE(s.score, 1.0 + 1e-9);
    }
  }
}

TEST(ClassifierTest, UntrainedDeclines) {
  auto fx = std::make_shared<FeatureExtractor>();
  NaiveBayesClassifier nb(fx);
  KnnClassifier knn(fx);
  LogRegClassifier lr(fx);
  data::ProductItem item;
  item.title = "anything";
  EXPECT_TRUE(nb.Predict(item).empty());
  EXPECT_TRUE(knn.Predict(item).empty());
  EXPECT_TRUE(lr.Predict(item).empty());
}

TEST(ClassifierTest, EmptyFeaturesDecline) {
  auto fx = std::make_shared<FeatureExtractor>();
  NaiveBayesClassifier nb(fx);
  std::vector<data::LabeledItem> tiny(2);
  tiny[0].item.title = "red ring";
  tiny[0].label = "rings";
  tiny[1].item.title = "blue rug";
  tiny[1].label = "area rugs";
  nb.Train(tiny);
  data::ProductItem item;  // empty title, no attrs
  EXPECT_TRUE(nb.Predict(item).empty());
}

// --------------------------------------------------------------- Metrics --

TEST(MetricsTest, SummarizeCountsDeclines) {
  std::vector<Observation> obs = {
      {"a", "a"}, {"a", "b"}, {"b", std::nullopt}, {"b", "b"}};
  EvalSummary s = Summarize(obs);
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.predicted, 3u);
  EXPECT_EQ(s.correct, 2u);
  EXPECT_NEAR(s.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.recall(), 0.5, 1e-12);
  EXPECT_NEAR(s.coverage(), 0.75, 1e-12);
  EXPECT_GT(s.f1(), 0.0);
}

TEST(MetricsTest, EmptyObservations) {
  EvalSummary s = Summarize({});
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
}

TEST(MetricsTest, PerClassBreakdown) {
  std::vector<Observation> obs = {
      {"a", "a"}, {"a", "b"}, {"b", "b"}, {"b", std::nullopt}};
  auto per_class = PerClass(obs);
  EXPECT_EQ(per_class["a"].gold_count, 2u);
  EXPECT_EQ(per_class["a"].predicted_count, 1u);
  EXPECT_EQ(per_class["a"].correct, 1u);
  EXPECT_DOUBLE_EQ(per_class["a"].precision(), 1.0);
  EXPECT_DOUBLE_EQ(per_class["a"].recall(), 0.5);
  EXPECT_EQ(per_class["b"].predicted_count, 2u);
}

// ----------------------------------------------------------------- Split --

TEST(SplitTest, RandomSplitSizes) {
  std::vector<data::LabeledItem> items(100);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].label = i % 2 ? "a" : "b";
  }
  Rng rng(3);
  auto [train, test] = RandomSplit(items, 0.2, rng);
  EXPECT_EQ(test.size(), 20u);
  EXPECT_EQ(train.size(), 80u);
}

TEST(SplitTest, StratifiedKeepsClassBalance) {
  std::vector<data::LabeledItem> items;
  for (int i = 0; i < 90; ++i) {
    data::LabeledItem li;
    li.label = "big";
    items.push_back(li);
  }
  for (int i = 0; i < 10; ++i) {
    data::LabeledItem li;
    li.label = "small";
    items.push_back(li);
  }
  Rng rng(3);
  auto [train, test] = StratifiedSplit(items, 0.3, rng);
  size_t small_test = 0;
  for (const auto& li : test) small_test += li.label == "small";
  EXPECT_EQ(small_test, 3u);
  EXPECT_EQ(test.size(), 30u);
}

TEST(SplitTest, StratifiedKeepsOneInTrain) {
  std::vector<data::LabeledItem> items(1);
  items[0].label = "only";
  Rng rng(3);
  auto [train, test] = StratifiedSplit(items, 0.99, rng);
  EXPECT_EQ(train.size(), 1u);
  EXPECT_TRUE(test.empty());
}

}  // namespace
}  // namespace rulekit::ml
