#include <gtest/gtest.h>

#include <memory>

#include "src/data/catalog_generator.h"
#include "src/engine/rule_classifier.h"
#include "src/eval/module_eval.h"
#include "src/eval/per_rule_eval.h"
#include "src/eval/tracker.h"
#include "src/eval/validation_set.h"
#include "src/rules/rule_parser.h"

namespace rulekit::eval {
namespace {

std::shared_ptr<rules::RuleSet> MakeRuleSet(std::string_view dsl) {
  auto parsed = rules::ParseRuleSet(dsl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::make_shared<rules::RuleSet>(std::move(parsed).value());
}

std::vector<data::LabeledItem> MakeCorpus(size_t n, uint64_t seed = 5) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.num_types = 12;
  data::CatalogGenerator gen(config);
  return gen.GenerateMany(n);
}

// ----------------------------------------------------- Validation method --

TEST(ValidationSetTest, EstimatesRulePrecision) {
  auto set = MakeRuleSet(R"(
whitelist good: rugs? => area rugs
whitelist bad: rugs? => rings
)");
  auto corpus = MakeCorpus(2000);
  auto report = EvaluateOnValidationSet(*set, corpus);
  ASSERT_EQ(report.per_rule.size(), 2u);
  const ValidationRuleResult* good = nullptr;
  const ValidationRuleResult* bad = nullptr;
  for (const auto& r : report.per_rule) {
    if (r.rule_id == "good") good = &r;
    if (r.rule_id == "bad") bad = &r;
  }
  ASSERT_NE(good, nullptr);
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(good->touched, bad->touched);  // identical condition
  EXPECT_GT(good->estimate.estimate, 0.8);
  EXPECT_LT(bad->estimate.estimate, 0.1);
  EXPECT_EQ(report.labeling_cost, corpus.size());
}

TEST(ValidationSetTest, TailRulesAreNotEvaluable) {
  // "christmas tree" touches almost nothing: holiday decorations is a
  // deliberate tail type in the generator.
  auto set = MakeRuleSet(R"(
whitelist head: rugs? => area rugs
whitelist tail: christmas trees? => holiday decorations
)");
  auto corpus = MakeCorpus(400);
  auto report = EvaluateOnValidationSet(*set, corpus, /*min_sample=*/5);
  const ValidationRuleResult* tail = nullptr;
  for (const auto& r : report.per_rule) {
    if (r.rule_id == "tail") tail = &r;
  }
  ASSERT_NE(tail, nullptr);
  EXPECT_FALSE(tail->evaluable);
  EXPECT_GE(report.tail_rules, 1u);
}

TEST(ValidationSetTest, BlacklistRulesSkipped) {
  auto set = MakeRuleSet("blacklist b: toe rings? => rings\n");
  auto report = EvaluateOnValidationSet(*set, MakeCorpus(100));
  EXPECT_TRUE(report.per_rule.empty());
}

// ------------------------------------------------------- Per-rule method --

TEST(PerRuleEvalTest, OverlapSamplingCostsLess) {
  // Several overlapping rules for the same type.
  auto set = MakeRuleSet(R"(
whitelist r1: rugs? => area rugs
whitelist r2: area rugs? => area rugs
whitelist r3: (braided|tufted).*rugs? => area rugs
whitelist r4: (oriental|shag).*rugs? => area rugs
)");
  auto corpus = MakeCorpus(3000);
  PerRuleEvalConfig config;
  config.samples_per_rule = 20;

  crowd::CrowdConfig crowd_config;
  crowd::CrowdSimulator crowd_overlap(crowd_config);
  config.exploit_overlap = true;
  auto with_overlap = EvaluatePerRule(*set, corpus, crowd_overlap, config);

  crowd::CrowdSimulator crowd_indep(crowd_config);
  config.exploit_overlap = false;
  auto independent = EvaluatePerRule(*set, corpus, crowd_indep, config);

  EXPECT_EQ(with_overlap.per_rule.size(), 4u);
  EXPECT_EQ(independent.per_rule.size(), 4u);
  // The headline effect of ref [18]: overlap sharing needs fewer
  // questions for the same per-rule sample targets.
  EXPECT_LT(with_overlap.crowd_questions, independent.crowd_questions);
  // Both produce sane estimates for the precise rules.
  EXPECT_GT(with_overlap.per_rule.at("r2").estimate, 0.7);
  EXPECT_GT(independent.per_rule.at("r2").estimate, 0.7);
}

TEST(PerRuleEvalTest, ReportsUndersampledTailRules) {
  auto set = MakeRuleSet(
      "whitelist tail: christmas trees? => holiday decorations\n");
  auto corpus = MakeCorpus(300);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  PerRuleEvalConfig config;
  config.samples_per_rule = 50;
  auto report = EvaluatePerRule(*set, corpus, crowd, config);
  EXPECT_EQ(report.under_sampled_rules, 1u);
}

TEST(PerRuleEvalTest, ImpreciseRuleGetsLowEstimate) {
  auto set = MakeRuleSet("whitelist wrong: rugs? => rings\n");
  auto corpus = MakeCorpus(2000);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  auto report = EvaluatePerRule(*set, corpus, crowd, {});
  EXPECT_LT(report.per_rule.at("wrong").estimate, 0.2);
}

TEST(SequentialEvalTest, ResolvesGoodAndBadRulesCheaply) {
  auto corpus = MakeCorpus(4000);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};

  auto good = *rules::Rule::Whitelist("good", "rugs?", "area rugs");
  auto decision = EvaluateRuleUntilResolved(good, corpus, crowd,
                                            /*precision_bar=*/0.8);
  EXPECT_EQ(decision.verdict, SequentialDecision::Verdict::kAbove);
  EXPECT_LT(decision.crowd_questions, 200u);  // resolved before the cap

  auto bad = *rules::Rule::Whitelist("bad", "rugs?", "rings");
  auto bad_decision = EvaluateRuleUntilResolved(bad, corpus, crowd, 0.8);
  EXPECT_EQ(bad_decision.verdict, SequentialDecision::Verdict::kBelow);
  // A clearly-bad rule resolves far faster than a borderline one.
  EXPECT_LT(bad_decision.crowd_questions, 60u);
}

TEST(SequentialEvalTest, BorderlineRuleMayStayUnresolved) {
  auto corpus = MakeCorpus(4000);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  // A rule whose true precision sits near the bar: matches rugs, but the
  // bar is set exactly at its noisy neighborhood.
  auto rule = *rules::Rule::Whitelist("edge", "rugs?", "area rugs");
  auto decision = EvaluateRuleUntilResolved(rule, corpus, crowd,
                                            /*precision_bar=*/0.97,
                                            /*max_samples=*/30);
  // With only 30 samples a 0.97 bar is typically not separable from the
  // rule's ~0.95-0.99 true precision either way; any verdict is legal but
  // the questions must respect the cap.
  EXPECT_LE(decision.crowd_questions, 30u);
}

// --------------------------------------------------------- Module method --

TEST(ModuleEvalTest, CheapButCoarse) {
  auto set = MakeRuleSet(R"(
whitelist r1: rugs? => area rugs
whitelist r2: rings? => rings
whitelist wrong: jeans? => rings
)");
  engine::RuleBasedClassifier module(set);
  auto corpus = MakeCorpus(3000);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  auto report = EvaluateModule(module, corpus, crowd, /*sample_size=*/150);
  EXPECT_EQ(report.crowd_questions, 150u);
  EXPECT_GT(report.items_touched, 150u);
  // Module precision sits between the good rules' (high) and the wrong
  // rule's (0) precision.
  EXPECT_GT(report.estimate.estimate, 0.3);
  EXPECT_LT(report.estimate.estimate, 0.98);
}

TEST(ModuleEvalTest, EmptyModule) {
  auto set = MakeRuleSet("");
  engine::RuleBasedClassifier module(set);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  auto report = EvaluateModule(module, MakeCorpus(50), crowd, 10);
  EXPECT_EQ(report.items_touched, 0u);
  EXPECT_EQ(report.crowd_questions, 0u);
}

// --------------------------------------------------------- ImpactTracker --

TEST(ImpactTrackerTest, AlertsOnImpactfulUnevaluatedRules) {
  auto set = MakeRuleSet(R"(
whitelist head: rugs? => area rugs
whitelist tail: christmas trees? => holiday decorations
)");
  auto corpus = MakeCorpus(2000);
  std::vector<data::ProductItem> items;
  for (auto& li : corpus) items.push_back(li.item);

  ImpactTracker tracker(/*impact_threshold=*/20);
  tracker.RecordBatch(*set, items);
  EXPECT_EQ(tracker.items_seen(), items.size());
  EXPECT_GT(tracker.MatchCount("head"), 20u);

  auto alerts = tracker.PendingAlerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].rule_id, "head");

  tracker.MarkEvaluated("head");
  for (const auto& a : tracker.PendingAlerts()) {
    EXPECT_NE(a.rule_id, "head");
  }
}

TEST(ImpactTrackerTest, CountsAccumulateAcrossBatches) {
  auto set = MakeRuleSet("whitelist r: rugs? => area rugs\n");
  data::GeneratorConfig config;
  config.seed = 6;
  data::CatalogGenerator gen(config);
  size_t rug_index = gen.SpecIndexOf("area rugs");
  std::vector<data::ProductItem> batch;
  for (auto& li : gen.GenerateManyOfType(rug_index, 50)) {
    batch.push_back(li.item);
  }
  ImpactTracker tracker(1000);
  tracker.RecordBatch(*set, batch);
  size_t after_one = tracker.MatchCount("r");
  tracker.RecordBatch(*set, batch);
  EXPECT_EQ(tracker.MatchCount("r"), 2 * after_one);
  EXPECT_GT(after_one, 40u);
}

}  // namespace
}  // namespace rulekit::eval
