#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <unordered_map>

#include "src/data/catalog_generator.h"
#include "src/data/dataset.h"
#include "src/data/drift.h"
#include "src/data/product.h"
#include "src/data/taxonomy.h"

namespace rulekit::data {
namespace {

// ------------------------------------------------------------ ProductItem --

TEST(ProductItemTest, AttributeAccessors) {
  ProductItem item;
  item.SetAttribute("Brand", "apple");
  EXPECT_TRUE(item.HasAttribute("Brand"));
  EXPECT_EQ(*item.GetAttribute("Brand"), "apple");
  EXPECT_FALSE(item.GetAttribute("brand").has_value());  // case-sensitive
  item.SetAttribute("Brand", "dell");
  EXPECT_EQ(*item.GetAttribute("Brand"), "dell");
  EXPECT_EQ(item.attributes.size(), 1u);
}

TEST(ProductItemTest, PriceParsing) {
  ProductItem item;
  EXPECT_FALSE(item.Price().has_value());
  item.SetAttribute("Price", "59.99");
  ASSERT_TRUE(item.Price().has_value());
  EXPECT_DOUBLE_EQ(*item.Price(), 59.99);
  item.SetAttribute("Price", "not a number");
  EXPECT_FALSE(item.Price().has_value());
}

// --------------------------------------------------------------- Taxonomy --

TEST(TaxonomyTest, AddAndLookup) {
  Taxonomy tax;
  TypeId rings = tax.AddType("rings");
  EXPECT_EQ(tax.IdOf("rings"), rings);
  EXPECT_EQ(tax.AddType("rings"), rings);  // idempotent
  EXPECT_EQ(tax.IdOf("unknown"), kInvalidTypeId);
  EXPECT_EQ(tax.NameOf(rings), "rings");
  EXPECT_EQ(tax.size(), 1u);
}

TEST(TaxonomyTest, SplitRetiresAndAddsParts) {
  Taxonomy tax;
  tax.AddType("pants");
  ASSERT_TRUE(tax.SplitType("pants", {"work pants", "jeans"}).ok());
  EXPECT_FALSE(tax.IsActive(tax.IdOf("pants")));
  EXPECT_TRUE(tax.IsActive(tax.IdOf("work pants")));
  EXPECT_TRUE(tax.IsActive(tax.IdOf("jeans")));
  auto repl = tax.ReplacementsOf("pants");
  ASSERT_EQ(repl.size(), 2u);
  EXPECT_EQ(repl[0], "work pants");
}

TEST(TaxonomyTest, SplitErrors) {
  Taxonomy tax;
  EXPECT_EQ(tax.SplitType("nope", {"a"}).code(), StatusCode::kNotFound);
  tax.AddType("pants");
  EXPECT_EQ(tax.SplitType("pants", {}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(tax.SplitType("pants", {"jeans"}).ok());
  EXPECT_EQ(tax.SplitType("pants", {"x"}).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- CatalogGenerator --

TEST(CatalogGeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  config.seed = 99;
  CatalogGenerator g1(config), g2(config);
  auto a = g1.GenerateMany(50);
  auto b = g2.GenerateMany(50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.title, b[i].item.title);
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

TEST(CatalogGeneratorTest, RespectsNumTypes) {
  GeneratorConfig config;
  config.num_types = 60;
  CatalogGenerator gen(config);
  EXPECT_EQ(gen.specs().size(), 60u);
  EXPECT_EQ(gen.taxonomy().size(), 60u);
  // Synthetic specs beyond the curated set have distinct names.
  std::set<std::string> names;
  for (const auto& s : gen.specs()) names.insert(s.name);
  EXPECT_EQ(names.size(), 60u);
}

TEST(CatalogGeneratorTest, TruncatesToFewTypes) {
  GeneratorConfig config;
  config.num_types = 10;
  CatalogGenerator gen(config);
  EXPECT_EQ(gen.specs().size(), 10u);
}

TEST(CatalogGeneratorTest, TitlesMostlyContainHeadNoun) {
  GeneratorConfig config;
  config.omit_noun_prob = 0.0;
  config.typo_prob = 0.0;
  CatalogGenerator gen(config);
  size_t rug_index = gen.SpecIndexOf("area rugs");
  ASSERT_NE(rug_index, CatalogGenerator::kNpos);
  auto items = gen.GenerateManyOfType(rug_index, 100);
  for (const auto& li : items) {
    EXPECT_EQ(li.label, "area rugs");
    EXPECT_NE(li.item.title.find("rug"), std::string::npos) << li.item.title;
  }
}

TEST(CatalogGeneratorTest, ZipfSkewsTowardHeadTypes) {
  GeneratorConfig config;
  config.num_types = 40;
  config.zipf_skew = 1.1;
  CatalogGenerator gen(config);
  std::unordered_map<std::string, size_t> counts;
  for (const auto& li : gen.GenerateMany(5000)) counts[li.label]++;
  // The most popular type should dominate the least popular by a lot.
  size_t max_count = 0, min_count = 5000;
  for (const auto& [name, c] : counts) {
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  EXPECT_GT(max_count, 20 * std::max<size_t>(min_count, 1) / 10);
}

TEST(CatalogGeneratorTest, BooksCarryIsbn) {
  GeneratorConfig config;
  CatalogGenerator gen(config);
  size_t books = gen.SpecIndexOf("books");
  ASSERT_NE(books, CatalogGenerator::kNpos);
  auto items = gen.GenerateManyOfType(books, 200);
  size_t with_isbn = 0;
  for (const auto& li : items) {
    if (li.item.HasAttribute("ISBN")) ++with_isbn;
  }
  EXPECT_GT(with_isbn, 150u);  // ~95%
  // No other curated type gets ISBNs.
  size_t rugs = gen.SpecIndexOf("area rugs");
  for (const auto& li : gen.GenerateManyOfType(rugs, 50)) {
    EXPECT_FALSE(li.item.HasAttribute("ISBN"));
  }
}

TEST(CatalogGeneratorTest, OddVendorRenamesNouns) {
  GeneratorConfig config;
  config.omit_noun_prob = 0.0;
  config.typo_prob = 0.0;
  config.seed = 5;
  CatalogGenerator gen(config);
  VendorProfile vendor = gen.MakeOddVendor(gen.specs().size());
  ASSERT_EQ(vendor.noun_aliases.size(), gen.specs().size());
  auto batch = gen.GenerateVendorBatch(300, vendor);
  // With alias_prob 0.9, most items of a renamed type should not contain
  // any canonical head noun.
  size_t aliased = 0, considered = 0;
  for (const auto& li : batch) {
    size_t spec_idx = gen.SpecIndexOf(li.label);
    const auto& spec = gen.specs()[spec_idx];
    bool has_canonical = false;
    for (const auto& noun : spec.head_nouns) {
      if (li.item.title.find(noun) != std::string::npos) {
        has_canonical = true;
      }
    }
    ++considered;
    if (!has_canonical) ++aliased;
  }
  EXPECT_GT(aliased * 100, considered * 60);
}

TEST(CatalogGeneratorTest, FreshWordsAreUnique) {
  GeneratorConfig config;
  CatalogGenerator gen(config);
  std::set<std::string> words;
  for (int i = 0; i < 500; ++i) words.insert(gen.FreshWord());
  EXPECT_EQ(words.size(), 500u);
}

// ------------------------------------------------------------------ Drift --

TEST(DriftTest, AddsQualifiersAndReweights) {
  GeneratorConfig config;
  CatalogGenerator gen(config);
  size_t cables = gen.SpecIndexOf("computer cables");
  size_t before = gen.specs()[cables].qualifiers.size();

  DriftConfig dconfig;
  dconfig.concept_drift_types_per_era = gen.specs().size();  // drift all
  DriftInjector drift(gen, dconfig);
  DriftEvent event = drift.AdvanceEra();
  EXPECT_EQ(event.era, 1u);
  EXPECT_EQ(event.new_qualifiers.size(), gen.specs().size());
  EXPECT_EQ(gen.specs()[cables].qualifiers.size(), before + 1);
  EXPECT_EQ(event.reweighted.size(), dconfig.reweighted_types_per_era);
}

TEST(DriftTest, NewQualifierAppearsInGeneratedTitles) {
  GeneratorConfig config;
  config.seed = 11;
  CatalogGenerator gen(config);
  size_t rugs = gen.SpecIndexOf("area rugs");
  gen.AddQualifier(rugs, "zibblewash");
  bool seen = false;
  for (const auto& li : gen.GenerateManyOfType(rugs, 400)) {
    if (li.item.title.find("zibblewash") != std::string::npos) seen = true;
  }
  EXPECT_TRUE(seen);
}

// -------------------------------------------------------------- Dataset IO --

TEST(DatasetTest, TsvRoundTrip) {
  GeneratorConfig config;
  CatalogGenerator gen(config);
  auto items = gen.GenerateMany(200);
  std::string path = ::testing::TempDir() + "/rulekit_dataset_test.tsv";
  ASSERT_TRUE(SaveTsv(path, items).ok());
  auto loaded = LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ((*loaded)[i].label, items[i].label);
    EXPECT_EQ((*loaded)[i].item.id, items[i].item.id);
    EXPECT_EQ((*loaded)[i].item.title, items[i].item.title);
    EXPECT_EQ((*loaded)[i].item.attributes, items[i].item.attributes);
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, TsvEscapesControlCharacters) {
  std::vector<LabeledItem> items(1);
  items[0].label = "weird\ttype";
  items[0].item.id = "id\n1";
  items[0].item.title = "title with \\ backslash";
  items[0].item.SetAttribute("K", "v\tv");
  std::string path = ::testing::TempDir() + "/rulekit_escape_test.tsv";
  ASSERT_TRUE(SaveTsv(path, items).ok());
  auto loaded = LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].label, "weird\ttype");
  EXPECT_EQ((*loaded)[0].item.title, "title with \\ backslash");
  EXPECT_EQ((*loaded)[0].item.attributes, items[0].item.attributes);
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsMalformedLines) {
  std::string path = ::testing::TempDir() + "/rulekit_malformed_test.tsv";
  {
    std::ofstream out(path);
    out << "only\ttwo\n";
  }
  auto loaded = LoadTsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadMissingFileFails) {
  auto loaded = LoadTsv("/nonexistent/path/file.tsv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(DatasetTest, JsonlWritesOneLinePerItem) {
  GeneratorConfig config;
  CatalogGenerator gen(config);
  auto items = gen.GenerateMany(20);
  std::string path = ::testing::TempDir() + "/rulekit_jsonl_test.jsonl";
  ASSERT_TRUE(SaveJsonl(path, items).ok());
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"Item ID\""), std::string::npos);
  }
  EXPECT_EQ(lines, items.size());
  std::remove(path.c_str());
}

TEST(DatasetTest, JsonlRoundTrip) {
  GeneratorConfig config;
  config.seed = 77;
  CatalogGenerator gen(config);
  auto items = gen.GenerateMany(150);
  std::string path = ::testing::TempDir() + "/rulekit_jsonl_rt.jsonl";
  ASSERT_TRUE(SaveJsonl(path, items).ok());
  auto loaded = LoadJsonl(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ((*loaded)[i].label, items[i].label);
    EXPECT_EQ((*loaded)[i].item.id, items[i].item.id);
    EXPECT_EQ((*loaded)[i].item.title, items[i].item.title);
    EXPECT_EQ((*loaded)[i].item.attributes, items[i].item.attributes);
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, JsonlRoundTripsEscapes) {
  std::vector<LabeledItem> items(1);
  items[0].label = "type \"quoted\"";
  items[0].item.id = "id\\backslash";
  items[0].item.title = "title\twith\ncontrol chars";
  items[0].item.SetAttribute("K", "v\rv");
  std::string path = ::testing::TempDir() + "/rulekit_jsonl_esc.jsonl";
  ASSERT_TRUE(SaveJsonl(path, items).ok());
  auto loaded = LoadJsonl(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].label, items[0].label);
  EXPECT_EQ((*loaded)[0].item.id, items[0].item.id);
  EXPECT_EQ((*loaded)[0].item.title, items[0].item.title);
  EXPECT_EQ((*loaded)[0].item.attributes, items[0].item.attributes);
  std::remove(path.c_str());
}

TEST(DatasetTest, JsonlRejectsMalformed) {
  std::string path = ::testing::TempDir() + "/rulekit_jsonl_bad.jsonl";
  {
    std::ofstream out(path);
    out << "{\"Item ID\": \"x\" \"Title\": \"missing comma\"}\n";
  }
  auto loaded = LoadJsonl(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, SplitByHashIsDeterministicAndDisjoint) {
  GeneratorConfig config;
  CatalogGenerator gen(config);
  auto items = gen.GenerateMany(1000);
  auto [train1, test1] = SplitByHash(items, 0.3);
  auto [train2, test2] = SplitByHash(items, 0.3);
  EXPECT_EQ(train1.size(), train2.size());
  EXPECT_EQ(train1.size() + test1.size(), items.size());
  EXPECT_NEAR(static_cast<double>(test1.size()) / items.size(), 0.3, 0.06);
}

}  // namespace
}  // namespace rulekit::data
