// The serving front-end: wire-format round trips, the server's
// coalescing / admission-control / shutdown behaviour, and the unified
// ClassifyRequest entry point's error surface. The headline guarantee —
// responses byte-identical to a direct in-process Classify of the same
// items — is asserted directly (CoalescedResponsesMatchDirectClassify).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"
#include "src/common/random.h"
#include "src/rules/rule_parser.h"
#include "src/serving/client.h"
#include "src/serving/server.h"
#include "src/serving/wire.h"
#include "tests/seeded_test.h"

namespace rulekit::serving {
namespace {

data::ProductItem MakeItem(std::string title) {
  data::ProductItem item;
  item.title = std::move(title);
  return item;
}

/// A pipeline with enough rules that titles resolve deterministically.
chimera::ChimeraPipeline& SharedPipeline() {
  static chimera::ChimeraPipeline* pipeline = [] {
    auto* p = new chimera::ChimeraPipeline();
    auto rules = rules::ParseRules(R"(
whitelist rings1: (diamond | gold | silver) rings? => rings
whitelist oil1: (motor | engine) oils? => motor oil
whitelist books1: (novel | paperback | hardcover) => books
blacklist rings2: toe rings? => rings
)");
    EXPECT_TRUE(rules.ok()) << rules.status().ToString();
    EXPECT_TRUE(p->AddRules(std::move(rules).value(), "test").ok());
    return p;
  }();
  return *pipeline;
}

WireClassifyRequest OneTitle(uint64_t id, std::string title) {
  WireClassifyRequest request;
  request.request_id = id;
  request.items.push_back(MakeItem(std::move(title)));
  return request;
}

// ------------------------------------------------------------ wire format --

TEST(WireFormatTest, StatusCodeMappingIsPinned) {
  // These numeric values are the wire format; a renumbering is a
  // protocol break, not a refactor.
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kOk), 0);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kOverloaded), 2);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kDeadlineExceeded), 3);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kUnavailable), 4);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kInternal), 5);

  EXPECT_EQ(CodeFor(Status::OK()), WireCode::kOk);
  EXPECT_EQ(CodeFor(Status::ResourceExhausted("x")), WireCode::kOverloaded);
  EXPECT_EQ(CodeFor(Status::DeadlineExceeded("x")),
            WireCode::kDeadlineExceeded);
  EXPECT_EQ(CodeFor(Status::Unavailable("x")), WireCode::kUnavailable);
  EXPECT_EQ(CodeFor(Status::InvalidArgument("x")),
            WireCode::kInvalidArgument);
  EXPECT_EQ(CodeFor(Status::Internal("x")), WireCode::kInternal);
  EXPECT_EQ(CodeFor(Status::IOError("x")), WireCode::kInternal);

  // StatusFor round-trips every pinned code through CodeFor.
  for (uint8_t c = 0; c <= 5; ++c) {
    const WireCode code = static_cast<WireCode>(c);
    EXPECT_EQ(CodeFor(StatusFor(code, "msg")), code);
  }
}

TEST(WireFormatTest, RejectsUnknownFlagsAndTrailingBytes) {
  WireClassifyRequest request = OneTitle(1, "gold ring");
  Encoder enc;
  EncodeRequestPayload(request, enc);

  std::string with_trailing = enc.data() + "x";
  EXPECT_FALSE(DecodeRequestPayload(with_trailing).ok());

  // Flip an unknown flag bit (flags live after request_id varint,
  // tenant string, deadline varint — easier to just re-encode by hand).
  Encoder bad;
  bad.PutVarint(1);
  bad.PutString("");
  bad.PutVarint(0);
  bad.PutU8(0x80);  // unknown flag
  bad.PutVarint(0);
  EXPECT_FALSE(DecodeRequestPayload(bad.data()).ok());
}

TEST(WireFormatTest, RejectsCorruptCounts) {
  Encoder enc;
  enc.PutVarint(7);
  enc.PutString("tenant");
  enc.PutVarint(0);
  enc.PutU8(0);
  enc.PutVarint(1u << 30);  // item count far beyond the payload
  EXPECT_FALSE(DecodeRequestPayload(enc.data()).ok());
}

class WireRoundTripTest : public SeedAwareTest {};

TEST_P(WireRoundTripTest, RequestAndResponseSurviveEncodeDecode) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    WireClassifyRequest request;
    request.request_id = rng.Next();
    if (rng.Bernoulli(0.5)) {
      request.tenant = "tenant-" + std::to_string(rng.Uniform(5));
    }
    request.deadline_ms = rng.Bernoulli(0.3) ? rng.Uniform(10000) : 0;
    request.no_coalesce = rng.Bernoulli(0.2);
    request.require_durable = rng.Bernoulli(0.2);
    const size_t items = rng.Uniform(4) + 1;
    for (size_t i = 0; i < items; ++i) {
      data::ProductItem item;
      item.id = "id-" + std::to_string(rng.Next() % 1000);
      item.title = "title " + std::to_string(rng.Zipf(50, 1.1));
      const size_t attrs = rng.Uniform(3);
      for (size_t a = 0; a < attrs; ++a) {
        item.attributes.emplace_back("k" + std::to_string(a),
                                     "v" + std::to_string(rng.Uniform(9)));
      }
      request.items.push_back(std::move(item));
    }

    Encoder enc;
    EncodeRequestPayload(request, enc);
    auto decoded = DecodeRequestPayload(enc.data());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->request_id, request.request_id);
    EXPECT_EQ(decoded->tenant, request.tenant);
    EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
    EXPECT_EQ(decoded->no_coalesce, request.no_coalesce);
    EXPECT_EQ(decoded->require_durable, request.require_durable);
    ASSERT_EQ(decoded->items.size(), request.items.size());
    for (size_t i = 0; i < request.items.size(); ++i) {
      EXPECT_EQ(decoded->items[i].id, request.items[i].id);
      EXPECT_EQ(decoded->items[i].title, request.items[i].title);
      EXPECT_EQ(decoded->items[i].attributes, request.items[i].attributes);
    }

    WireClassifyResponse response;
    response.request_id = rng.Next();
    response.code = static_cast<WireCode>(rng.Uniform(6));
    if (response.code != WireCode::kOk) response.message = "because";
    response.total = rng.Uniform(100);
    response.classified = rng.Uniform(50);
    response.cache_hits = rng.Uniform(20);
    const size_t predictions = rng.Uniform(5);
    for (size_t i = 0; i < predictions; ++i) {
      if (rng.Bernoulli(0.6)) {
        response.predictions.emplace_back("type-" +
                                          std::to_string(rng.Uniform(9)));
      } else {
        response.predictions.push_back(std::nullopt);
      }
    }

    Encoder renc;
    EncodeResponsePayload(response, renc);
    auto rdecoded = DecodeResponsePayload(renc.data());
    ASSERT_TRUE(rdecoded.ok()) << rdecoded.status().ToString();
    EXPECT_EQ(rdecoded->request_id, response.request_id);
    EXPECT_EQ(rdecoded->code, response.code);
    EXPECT_EQ(rdecoded->message, response.message);
    EXPECT_EQ(rdecoded->total, response.total);
    EXPECT_EQ(rdecoded->classified, response.classified);
    EXPECT_EQ(rdecoded->cache_hits, response.cache_hits);
    EXPECT_EQ(rdecoded->predictions, response.predictions);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripTest,
                         ::testing::ValuesIn(SeedsOrOverride(
                             {11, 2026, 777777})));

// ----------------------------------------------------- unified entry point --

TEST(ClassifyRequestApiTest, DeadlineAlreadyPassedIsRefused) {
  auto& pipeline = SharedPipeline();
  std::vector<data::ProductItem> items = {MakeItem("gold ring")};
  chimera::ClassifyRequest request;
  request.items = items;
  request.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  auto response = pipeline.Classify(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.report.total, 1u);
  ASSERT_EQ(response.report.predictions.size(), 1u);
  EXPECT_FALSE(response.report.predictions[0].has_value());
}

TEST(ClassifyRequestApiTest, RequireDurableRefusedWithoutStorage) {
  auto& pipeline = SharedPipeline();  // in-memory: no storage_dir
  ASSERT_FALSE(pipeline.durable());
  std::vector<data::ProductItem> items = {MakeItem("gold ring")};
  chimera::ClassifyRequest request;
  request.items = items;
  request.options.require_durable = true;
  auto response = pipeline.Classify(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);

  request.options.require_durable = false;
  EXPECT_TRUE(pipeline.Classify(request).ok());
}

// ------------------------------------------------------------------ server --

TEST(RuleServerTest, ServesSingleRequests) {
  auto& pipeline = SharedPipeline();
  RuleServer server(pipeline, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto response = client->Call(OneTitle(42, "diamond ring"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->request_id, 42u);
  EXPECT_EQ(response->code, WireCode::kOk);
  EXPECT_EQ(response->total, 1u);
  ASSERT_EQ(response->predictions.size(), 1u);
  EXPECT_EQ(response->predictions[0].value_or(""), "rings");

  // Multi-item batches pass through undivided with full counters.
  WireClassifyRequest batch;
  batch.request_id = 43;
  batch.items.push_back(MakeItem("motor oil 5w30"));
  batch.items.push_back(MakeItem("paperback novel"));
  batch.items.push_back(MakeItem("qzx unknowable widget"));
  auto batch_response = client->Call(batch);
  ASSERT_TRUE(batch_response.ok());
  EXPECT_EQ(batch_response->total, 3u);
  ASSERT_EQ(batch_response->predictions.size(), 3u);
  EXPECT_EQ(batch_response->predictions[0].value_or(""), "motor oil");
  EXPECT_EQ(batch_response->predictions[1].value_or(""), "books");
  EXPECT_FALSE(batch_response->predictions[2].has_value());

  server.Stop();
}

TEST(RuleServerTest, RejectsMalformedRequests) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  config.max_items_per_request = 2;
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  WireClassifyRequest empty;
  empty.request_id = 1;
  auto response = client->Call(empty);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, WireCode::kInvalidArgument);

  WireClassifyRequest oversized;
  oversized.request_id = 2;
  for (int i = 0; i < 3; ++i) oversized.items.push_back(MakeItem("x"));
  response = client->Call(oversized);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, WireCode::kInvalidArgument);

  EXPECT_EQ(server.stats().invalid_requests, 2u);
  server.Stop();
}

// The acceptance-criteria test: N concurrent single-title clients get
// responses byte-identical to a direct in-process Classify of the same
// titles, and at least some of them actually shared a coalesced batch.
TEST(RuleServerTest, CoalescedResponsesMatchDirectClassify) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  config.io_threads = 8;
  config.coalesce_window = std::chrono::microseconds(10000);
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> titles = {
      "diamond ring",  "motor oil 5w30", "paperback novel", "gold ring",
      "engine oil 1l", "hardcover",      "toe ring",        "silver ring"};

  std::vector<std::optional<std::string>> direct(titles.size());
  for (size_t i = 0; i < titles.size(); ++i) {
    std::vector<data::ProductItem> one = {MakeItem(titles[i])};
    chimera::ClassifyRequest request;
    request.items = one;
    direct[i] = pipeline.Classify(request).report.predictions[0];
  }

  // Several rounds so the dispatcher's window reliably sees concurrent
  // arrivals at least once, even on a single-core machine.
  constexpr int kRounds = 5;
  std::vector<std::optional<std::string>> served(titles.size());
  std::atomic<int> failures{0};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> clients;
    clients.reserve(titles.size());
    for (size_t i = 0; i < titles.size(); ++i) {
      clients.emplace_back([&, i] {
        auto client = RuleClient::Connect(server.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        auto response = client->Call(OneTitle(i + 1, titles[i]));
        if (!response.ok() || response->code != WireCode::kOk ||
            response->predictions.size() != 1) {
          ++failures;
          return;
        }
        served[i] = response->predictions[0];
      });
    }
    for (auto& t : clients) t.join();
    ASSERT_EQ(failures.load(), 0);
    for (size_t i = 0; i < titles.size(); ++i) {
      EXPECT_EQ(served[i], direct[i]) << "title: " << titles[i];
    }
  }

  // Coalescing must have merged at least once across the rounds; the
  // batch-size histogram's mean is > 1 exactly when any merge happened.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_admitted, titles.size() * kRounds);
  EXPECT_GT(stats.coalesced_requests, 0u)
      << "no two concurrent single-title requests ever shared a batch";
  EXPECT_GT(stats.batch_size.Mean(), 1.0);
  EXPECT_LT(stats.batches_dispatched, titles.size() * kRounds);
  server.Stop();
}

TEST(RuleServerTest, NoCoalesceFlagDispatchesAlone) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  config.coalesce_window = std::chrono::microseconds(2000);
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 4; ++i) {
    WireClassifyRequest request = OneTitle(i + 1, "gold ring");
    request.no_coalesce = true;
    auto response = client->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, WireCode::kOk);
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches_dispatched, 4u);
  EXPECT_EQ(stats.coalesced_requests, 0u);
  server.Stop();
}

TEST(RuleServerTest, RateLimitRejectsNoisyClientOnly) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  // A tiny bucket: 4 requests of burst, then ~0 refill within the test.
  config.rate_limit_per_sec = 0.001;
  config.rate_limit_burst = 4;
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());

  auto noisy = RuleClient::Connect(server.port());
  ASSERT_TRUE(noisy.ok());
  int ok = 0, overloaded = 0;
  for (int i = 0; i < 10; ++i) {
    WireClassifyRequest request = OneTitle(i + 1, "gold ring");
    request.tenant = "noisy";
    auto response = noisy->Call(request);
    ASSERT_TRUE(response.ok());
    if (response->code == WireCode::kOk) ++ok;
    if (response->code == WireCode::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(overloaded, 6);

  // The quiet tenant's own bucket is untouched by the noisy flood.
  auto quiet = RuleClient::Connect(server.port());
  ASSERT_TRUE(quiet.ok());
  WireClassifyRequest request = OneTitle(99, "diamond ring");
  request.tenant = "quiet";
  auto response = quiet->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, WireCode::kOk);

  EXPECT_EQ(server.stats().rate_limit_rejects, 6u);
  server.Stop();
}

TEST(RuleServerTest, ShedsRequestsWhoseDeadlineExpiredInQueue) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  // A long window so a second request reliably queues behind the first
  // dispatch long enough for its 1ms deadline to lapse.
  config.coalesce_window = std::chrono::microseconds(50000);
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  WireClassifyRequest doomed = OneTitle(7, "gold ring");
  doomed.deadline_ms = 1;
  doomed.no_coalesce = true;  // must not merge into an earlier batch
  ASSERT_TRUE(client->Send(doomed).ok());
  auto response = client->Receive();
  ASSERT_TRUE(response.ok());
  // The dispatcher picked it up after >= 1ms (single dispatcher thread,
  // wakeup latency) — either outcome is legal in principle, but with a
  // 1ms budget on a loaded test machine the shed path is the expected
  // one; assert the code matches whichever happened.
  if (response->code == WireCode::kDeadlineExceeded) {
    EXPECT_EQ(server.stats().deadline_sheds, 1u);
  } else {
    EXPECT_EQ(response->code, WireCode::kOk);
  }

  // Deterministic shed: park the dispatcher inside the 50ms coalesce
  // window with a coalescable request FIRST, then queue a request whose
  // 1ms budget lapses while the dispatcher is still parked.
  ASSERT_TRUE(client->Send(OneTitle(9, "motor oil")).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  WireClassifyRequest expired = OneTitle(8, "gold ring");
  expired.deadline_ms = 1;
  expired.no_coalesce = true;  // must not merge into the parked batch
  ASSERT_TRUE(client->Send(expired).ok());
  for (int i = 0; i < 2; ++i) {
    auto r = client->Receive();
    ASSERT_TRUE(r.ok());
    if (r->request_id == 9) {
      EXPECT_EQ(r->code, WireCode::kOk);
    } else {
      ASSERT_EQ(r->request_id, 8u);
      EXPECT_EQ(r->code, WireCode::kDeadlineExceeded);
    }
  }
  EXPECT_GE(server.stats().deadline_sheds, 1u);
  server.Stop();
}

TEST(RuleServerTest, BoundedQueueRefusesFloodWithOverloaded) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  config.max_pending = 2;
  // Stall the dispatcher: a huge coalesce window holds the first
  // single-item request open, so later arrivals pile into the queue.
  config.coalesce_window = std::chrono::microseconds(200000);
  config.max_coalesce_batch = 1000;  // the window, not the cap, gates
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  // no_coalesce requests queue behind the window-parked dispatcher
  // without being absorbed into its batch.
  ASSERT_TRUE(client->Send(OneTitle(1, "gold ring")).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 6; ++i) {
    WireClassifyRequest request = OneTitle(i + 2, "motor oil");
    request.no_coalesce = true;
    ASSERT_TRUE(client->Send(request).ok());
  }

  int ok = 0, overloaded = 0;
  for (int i = 0; i < 7; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->code == WireCode::kOk) ++ok;
    if (response->code == WireCode::kOverloaded) ++overloaded;
  }
  // The dispatcher was parked on request 1; of the 6 no_coalesce
  // followers at most max_pending=2 fit the queue (a dispatch cycle can
  // free a slot mid-flood, so allow a little slack), and the rest were
  // refused as kOverloaded — backpressure, not buffering.
  EXPECT_GE(overloaded, 3);
  EXPECT_EQ(ok + overloaded, 7);
  EXPECT_EQ(server.stats().queue_full_rejects,
            static_cast<uint64_t>(overloaded));
  server.Stop();
}

TEST(RuleServerTest, CleanShutdownAnswersInFlightRequests) {
  auto& pipeline = SharedPipeline();
  ServerConfig config;
  config.coalesce_window = std::chrono::microseconds(100000);
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());

  // Park several admitted requests behind the coalesce window, then
  // Stop() while they are in flight: every one must still be answered
  // (the drain), and the sockets must close cleanly afterwards.
  auto a = RuleClient::Connect(server.port());
  auto b = RuleClient::Connect(server.port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Send(OneTitle(1, "gold ring")).ok());
  ASSERT_TRUE(b->Send(OneTitle(2, "motor oil")).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::thread stopper([&] { server.Stop(); });
  auto ra = a->Receive();
  auto rb = b->Receive();
  stopper.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra->code, WireCode::kOk);
  EXPECT_EQ(rb->code, WireCode::kOk);
  EXPECT_EQ(ra->predictions[0].value_or(""), "rings");
  EXPECT_EQ(rb->predictions[0].value_or(""), "motor oil");

  // After Stop the connection is gone: the next read sees EOF.
  auto after = a->Receive();
  EXPECT_FALSE(after.ok());
  EXPECT_FALSE(server.running());
}

TEST(RuleServerTest, StopIsIdempotentAndRestartable) {
  auto& pipeline = SharedPipeline();
  RuleServer server(pipeline, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  const uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();  // idempotent

  ASSERT_TRUE(server.Start().ok());  // restart on a fresh socket
  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call(OneTitle(1, "gold ring"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, WireCode::kOk);
  server.Stop();
}

TEST(RuleServerTest, RecordsServingActivityInMonitor) {
  auto& pipeline = SharedPipeline();
  chimera::QualityMonitor monitor;
  ServerConfig config;
  config.monitor = &monitor;
  RuleServer server(pipeline, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = RuleClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  WireClassifyRequest request = OneTitle(5, "gold ring");
  request.tenant = "acme";
  ASSERT_TRUE(client->Call(request).ok());
  server.Stop();

  auto history = monitor.serving_history("acme");
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].requests, 1u);
  EXPECT_EQ(history[0].batch_size, 1u);
  EXPECT_TRUE(monitor.serving_history().empty());  // default tenant clean
}

}  // namespace
}  // namespace rulekit::serving
