// Optimizer/serving race test: applying an offline optimization plan
// through the pipeline's transactional Mutate while classification traffic
// is in flight must be race-free (snapshot isolation) and must never
// change any item's prediction. Run under -DRULEKIT_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/maint/optimizer.h"
#include "src/rules/rule_parser.h"

#include "tests/classify_shims.h"

namespace rulekit::maint {
namespace {

TEST(OptimizerConcurrencyTest, OptimizeWhileServingIsRaceFree) {
  auto parsed = rules::ParseRules(R"(
whitelist narrow: denim.*jeans? => jeans
whitelist broad: jeans? => jeans
whitelist ring_a: rings? => rings
whitelist ring_b: ring|rings => rings
whitelist w1: (abrasive|sand(er|ing))[ -](wheels?|discs?) => abrasive wheels & discs
whitelist w2: abrasive.*(wheels?|discs?) => abrasive wheels & discs
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  chimera::ChimeraPipeline pipeline;
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "test").ok());

  data::GeneratorConfig config;
  config.seed = 23;
  data::CatalogGenerator gen(config);
  size_t wheels = gen.SpecIndexOf("abrasive wheels & discs");
  ASSERT_NE(wheels, data::CatalogGenerator::kNpos);
  std::vector<data::ProductItem> corpus;
  for (auto& li : gen.GenerateManyOfType(wheels, 200)) {
    corpus.push_back(li.item);
  }
  for (auto& li : gen.GenerateMany(200)) corpus.push_back(li.item);

  // The expected per-item answers, frozen before any concurrency: the
  // optimizer's conservative defaults guarantee they never change.
  auto expected = RunBatch(pipeline, corpus).predictions;
  ASSERT_EQ(expected.size(), corpus.size());

  std::atomic<bool> stop{false};
  std::atomic<size_t> batches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto report = RunBatch(pipeline, corpus);
        ASSERT_EQ(report.predictions.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          // Each batch sees one coherent snapshot: pre- or post-plan, the
          // predictions are identical.
          EXPECT_EQ(report.predictions[i], expected[i]) << corpus[i].title;
        }
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let traffic start, then plan and apply concurrently with it.
  while (batches.load(std::memory_order_relaxed) < 2) std::this_thread::yield();
  OptimizerOptions options;
  options.merge_min_jaccard = 0.2;
  auto plan = PlanOptimization(pipeline.rule_set(), corpus, options);
  EXPECT_FALSE(plan.empty());
  ASSERT_TRUE(pipeline.Mutate("optimizer",
                              [&](rules::RuleTransaction& txn) {
                                return StageOptimizationPlan(txn, plan);
                              })
                  .ok());

  // A few post-apply batches under load, then drain.
  size_t after_apply = batches.load(std::memory_order_relaxed);
  while (batches.load(std::memory_order_relaxed) < after_apply + 2) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // The optimized rule set serves the same answers, with fewer rules.
  auto final_report = RunBatch(pipeline, corpus);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(final_report.predictions[i], expected[i]);
  }
  EXPECT_LT(pipeline.rule_set().CountActive(), 6u);
}

}  // namespace
}  // namespace rulekit::maint
