// Concurrency tests for the snapshot-isolated serving core: parallel
// batch classification must be byte-identical to the sequential path, and rule
// maintenance (AddRules / ScaleDownType / Memoize / RetrainLearning) must
// never block or corrupt in-flight classification. Run these under
// -DRULEKIT_SANITIZE=thread to verify the reader/writer protocol is
// race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <filesystem>

#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/replication/follower.h"
#include "src/replication/shipper.h"
#include "src/rules/rule_parser.h"
#include "src/serving/client.h"
#include "src/serving/server.h"
#include "src/serving/wire.h"
#include "src/storage/codec.h"
#include "src/storage/rule_store.h"

#include "tests/classify_shims.h"

namespace rulekit::chimera {
namespace {

struct Corpus {
  data::GeneratorConfig config;
  std::unique_ptr<data::CatalogGenerator> gen;
  std::unique_ptr<SimulatedAnalyst> analyst;
  std::vector<data::ProductItem> items;

  explicit Corpus(size_t num_items, uint64_t seed = 1234,
                  size_t num_types = 24) {
    config.seed = seed;
    config.num_types = num_types;
    gen = std::make_unique<data::CatalogGenerator>(config);
    analyst = std::make_unique<SimulatedAnalyst>(*gen);
    for (auto& li : gen->GenerateMany(num_items)) {
      items.push_back(std::move(li.item));
    }
  }
};

/// Sets up rules + memo + suppression + trained learning identically on a
/// pipeline, so two pipelines configured this way serve the same model.
void Provision(ChimeraPipeline& pipeline, Corpus& corpus) {
  for (const auto& spec : corpus.gen->specs()) {
    ASSERT_TRUE(
        pipeline.AddRules(corpus.analyst->WriteRulesForType(spec.name), "a")
            .ok());
  }
  auto blacklist = rules::ParseRules(
      "blacklist bl-toe: toe rings? => rings\n");
  ASSERT_TRUE(blacklist.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(blacklist).value(), "a").ok());
  pipeline.Memoize(corpus.items[0].title, "memoized type");
  pipeline.ScaleDownType(corpus.gen->specs()[1].name, "oncall", "test");
  data::GeneratorConfig train_config = corpus.config;
  train_config.seed = corpus.config.seed + 1;
  data::CatalogGenerator train_gen(train_config);
  pipeline.AddTrainingData(train_gen.GenerateMany(1200));
  pipeline.RetrainLearning();
}

void ExpectReportsEqual(const BatchReport& a, const BatchReport& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.gate_classified, b.gate_classified);
  EXPECT_EQ(a.gate_rejected, b.gate_rejected);
  EXPECT_EQ(a.classified, b.classified);
  EXPECT_EQ(a.filtered, b.filtered);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.declined, b.declined);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_EQ(a.predictions[i], b.predictions[i]) << "item " << i;
  }
}

// The headline acceptance check: a 4-worker batch Classify over a 10k-item
// synthetic catalog produces predictions and counters identical to the
// single-threaded path.
TEST(SnapshotServingTest, ParallelBatchIdenticalToSequentialOn10k) {
  Corpus corpus(10000);

  PipelineConfig sequential_config;
  sequential_config.batch_threads = 0;
  ChimeraPipeline sequential(sequential_config);
  Provision(sequential, corpus);

  PipelineConfig parallel_config;
  parallel_config.batch_threads = 4;
  ChimeraPipeline parallel(parallel_config);
  Provision(parallel, corpus);

  BatchReport seq_report = RunBatch(sequential, corpus.items);
  BatchReport par_report = RunBatch(parallel, corpus.items);

  // Sanity: the batch exercises every stage.
  EXPECT_GT(seq_report.classified, 0u);
  EXPECT_GT(seq_report.gate_classified, 0u);
  EXPECT_GT(seq_report.suppressed, 0u);
  ExpectReportsEqual(seq_report, par_report);
}

// Batch classification agrees with the per-item path (same snapshot).
TEST(SnapshotServingTest, BatchAgreesWithPerItemClassify) {
  Corpus corpus(2000);
  PipelineConfig config;
  config.batch_threads = 4;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  BatchReport report = RunBatch(pipeline, corpus.items);
  for (size_t i = 0; i < corpus.items.size(); ++i) {
    EXPECT_EQ(report.predictions[i], ClassifyOne(pipeline, corpus.items[i]))
        << "item " << i;
  }
}

// Writers publish new snapshots; versions move forward and readers always
// see a fully-built state.
TEST(SnapshotServingTest, WritersBumpSnapshotVersion) {
  ChimeraPipeline pipeline;
  uint64_t v0 = pipeline.snapshot_version();
  auto parsed = rules::ParseRules("whitelist r1: rings? => rings\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(pipeline.AddRules(std::move(parsed).value(), "a").ok());
  uint64_t v1 = pipeline.snapshot_version();
  EXPECT_GT(v1, v0);
  pipeline.ScaleDownType("rings", "oncall", "test");
  EXPECT_GT(pipeline.snapshot_version(), v1);
  // Memoize is its own copy-on-write path; no snapshot republish needed,
  // but the memo is visible to the next decision.
  pipeline.Memoize("some known title", "books");
  data::ProductItem item;
  item.title = "some known title";
  EXPECT_EQ(ClassifyOne(pipeline, item).value_or(""), "books");
}

// The stress test from the issue: N threads run batch Classify in a loop
// while another thread interleaves AddRules / ScaleDownType / ScaleUpType
// / Memoize / RetrainLearning. Every in-flight report must stay
// internally consistent (counters partition the batch), and once writers
// quiesce, parallel output must be byte-identical to the sequential
// baseline. TSan-clean by construction: readers only touch immutable
// snapshots.
TEST(SnapshotServingTest, ConcurrentMaintenanceNeverCorruptsServing) {
  Corpus corpus(1000, 77, 16);
  PipelineConfig config;
  config.batch_threads = 4;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  constexpr int kReaders = 4;
  constexpr int kBatchesPerReader = 12;
  std::atomic<bool> writer_done{false};
  std::atomic<size_t> batches_served{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int b = 0; b < kBatchesPerReader; ++b) {
        BatchReport report = RunBatch(pipeline, corpus.items);
        ASSERT_EQ(report.total, corpus.items.size());
        ASSERT_EQ(report.predictions.size(), corpus.items.size());
        // The stage counters partition the batch exactly.
        ASSERT_EQ(report.gate_classified + report.gate_rejected +
                      report.classified + report.filtered +
                      report.suppressed + report.declined,
                  report.total);
        batches_served.fetch_add(1);
      }
    });
  }

  std::thread writer([&] {
    const auto& specs = corpus.gen->specs();
    for (int round = 0; round < 40; ++round) {
      switch (round % 4) {
        case 0: {
          auto rule = rules::Rule::Whitelist(
              "stress-" + std::to_string(round),
              "(zzz|stress)[a-z]*" + std::to_string(round),
              specs[round % specs.size()].name);
          ASSERT_TRUE(rule.ok());
          ASSERT_TRUE(pipeline.AddRules({*rule}, "writer").ok());
          break;
        }
        case 1:
          pipeline.ScaleDownType(specs[(round / 4) % specs.size()].name,
                                 "writer", "stress");
          break;
        case 2:
          pipeline.Memoize("stress title " + std::to_string(round),
                           specs[0].name);
          break;
        case 3:
          pipeline.ScaleUpType(specs[(round / 4) % specs.size()].name);
          break;
      }
      std::this_thread::yield();
    }
    writer_done.store(true);
  });

  for (auto& t : readers) t.join();
  writer.join();
  ASSERT_TRUE(writer_done.load());
  EXPECT_EQ(batches_served.load(),
            static_cast<size_t>(kReaders) * kBatchesPerReader);

  // Quiesced: parallel serving equals a fresh sequential baseline built
  // on the final repository state via the per-item path.
  BatchReport final_report = RunBatch(pipeline, corpus.items);
  for (size_t i = 0; i < corpus.items.size(); ++i) {
    EXPECT_EQ(final_report.predictions[i],
              ClassifyOne(pipeline, corpus.items[i]))
        << "item " << i;
  }
}

// Concurrent batches share the serving pool; each waits only on its own
// task group, so batches complete even when interleaved.
TEST(SnapshotServingTest, ConcurrentBatchesShareThePool) {
  Corpus corpus(600, 5, 12);
  PipelineConfig config;
  config.batch_threads = 2;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  BatchReport expected = RunBatch(pipeline, corpus.items);
  constexpr int kThreads = 6;
  std::vector<BatchReport> reports(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { reports[t] = RunBatch(pipeline, corpus.items); });
  }
  for (auto& t : threads) t.join();
  for (const auto& report : reports) {
    ExpectReportsEqual(expected, report);
  }
}

// Output must be invariant under the shard count: a 16-shard parallel
// pipeline and a 1-shard (historical monolithic) sequential pipeline
// provisioned identically produce byte-identical reports. This pins the
// propose/veto merge semantics of the sharded classifiers.
TEST(ShardedServingTest, ShardCountDoesNotChangeOutput) {
  Corpus corpus(4000, 99, 20);

  PipelineConfig mono_config;
  mono_config.batch_threads = 0;
  mono_config.rule_shards = 1;
  ChimeraPipeline monolithic(mono_config);
  Provision(monolithic, corpus);

  PipelineConfig sharded_config;
  sharded_config.batch_threads = 4;
  sharded_config.rule_shards = 16;
  ChimeraPipeline sharded(sharded_config);
  Provision(sharded, corpus);

  BatchReport mono_report = RunBatch(monolithic, corpus.items);
  BatchReport shard_report = RunBatch(sharded, corpus.items);
  EXPECT_GT(mono_report.classified, 0u);
  ExpectReportsEqual(mono_report, shard_report);
}

// Two writers mutating rules that live in different shards must be able
// to rebuild their shards at the same time. We prove actual overlap with
// a rendezvous in the publish probe (which fires while the rebuild runs
// outside every pipeline lock): each writer waits inside the probe until
// the other arrives. Timing-free, so it holds on a single-core box — a
// blocked prober yields the CPU to the other writer. If shard rebuilds
// were serialised by a shared lock, the rendezvous would never complete
// and the 5-second grace would fail the test.
TEST(ShardedServingTest, DisjointShardWritersOverlap) {
  constexpr size_t kShards = 16;
  // Two target types routed to different shards.
  const std::string type_a = "alpha";
  std::string type_b;
  for (char c = 'a'; c <= 'z'; ++c) {
    std::string candidate = std::string("beta-") + c;
    if (!(rules::ShardKey::ForType(candidate, kShards) ==
          rules::ShardKey::ForType(type_a, kShards))) {
      type_b = candidate;
      break;
    }
  }
  ASSERT_FALSE(type_b.empty());

  std::atomic<bool> armed{false};
  std::mutex mu;
  std::condition_variable cv;
  int inside = 0;
  bool met = false;

  PipelineConfig config;
  config.batch_threads = 0;
  config.use_learning = false;
  config.rule_shards = kShards;
  config.publish_probe = [&](uint32_t) {
    if (!armed.load()) return;  // ignore setup-phase publishes
    std::unique_lock<std::mutex> lock(mu);
    ++inside;
    if (inside >= 2) {
      met = true;
      cv.notify_all();
    } else {
      cv.wait_for(lock, std::chrono::seconds(5), [&] { return met; });
    }
    --inside;
  };
  ChimeraPipeline pipeline(config);

  armed.store(true);
  auto writer = [&](const std::string& type, const std::string& id) {
    auto rule = rules::Rule::Whitelist(id, "tok" + id + "[a-z]*", type);
    ASSERT_TRUE(rule.ok());
    ASSERT_TRUE(pipeline.AddRules({*rule}, "writer").ok());
  };
  std::thread wa(writer, type_a, "wa");
  std::thread wb(writer, type_b, "wb");
  wa.join();
  wb.join();
  armed.store(false);

  EXPECT_TRUE(met) << "shard rebuilds for " << type_a << " and " << type_b
                   << " never ran concurrently";
}

// Many writers on disjoint shards interleaved with readers: every commit
// must land (no lost updates between concurrent per-shard publishes and
// snapshot composition) and the final serving state must reflect all of
// them.
TEST(ShardedServingTest, MultiWriterDisjointShardsStress) {
  Corpus corpus(400, 31, 12);
  PipelineConfig config;
  config.batch_threads = 2;
  config.rule_shards = 16;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  constexpr int kWriters = 4;
  constexpr int kRoundsPerWriter = 10;
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Each writer owns one synthetic type => one shard; ids are
      // namespaced per writer so commits never conflict.
      const std::string type = "stress-type-" + std::to_string(w);
      for (int round = 0; round < kRoundsPerWriter; ++round) {
        const std::string id =
            "w" + std::to_string(w) + "-r" + std::to_string(round);
        Status status = pipeline.Mutate(
            "writer-" + std::to_string(w),
            [&](rules::RuleTransaction& txn) {
              auto rule = rules::Rule::Whitelist(
                  id, "stresstok" + id + "[a-z]*", type);
              if (!rule.ok()) return rule.status();
              if (auto st = txn.Add(std::move(rule).value()); !st.ok()) {
                return st;
              }
              if (round > 0) {
                return txn.Disable(
                    rules::RuleId("w" + std::to_string(w) + "-r" +
                                  std::to_string(round - 1)),
                    "superseded");
              }
              return Status::OK();
            });
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop_readers.load()) {
        BatchReport report = RunBatch(pipeline, corpus.items);
        ASSERT_EQ(report.total, corpus.items.size());
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_readers.store(true);
  for (auto& t : readers) t.join();

  // All 40 commits landed; exactly the last rule of each writer is active.
  const auto& repo = pipeline.repository();
  for (int w = 0; w < kWriters; ++w) {
    for (int round = 0; round < kRoundsPerWriter; ++round) {
      const std::string id =
          "w" + std::to_string(w) + "-r" + std::to_string(round);
      const rules::Rule* rule = pipeline.rule_set().Find(id);
      ASSERT_NE(rule, nullptr) << id;
      EXPECT_EQ(rule->is_active(), round == kRoundsPerWriter - 1) << id;
    }
    EXPECT_EQ(repo.HistoryOf("w" + std::to_string(w) + "-r0").size(), 2u);
  }
  // And the published snapshot agrees with the per-item path.
  BatchReport final_report = RunBatch(pipeline, corpus.items);
  for (size_t i = 0; i < corpus.items.size(); ++i) {
    ASSERT_EQ(final_report.predictions[i], ClassifyOne(pipeline, corpus.items[i]))
        << "item " << i;
  }
}

// The hot-result cache under fire: readers hammer batch Classify (warming
// and hitting the cache) while writers interleave every invalidation
// source — AddRules, ScaleDownType/ScaleUpType, RetrainLearning, Memoize.
// Every report must keep the counter partition (cache hits count as
// classified), and no batch may serve a type that was suppressed in the
// snapshot it pinned. Run under -DRULEKIT_SANITIZE=thread: the striped
// cache is the only shared mutable state on the read path.
TEST(HotCacheConcurrencyTest, CachedServingSurvivesConcurrentMaintenance) {
  Corpus corpus(800, 21, 12);
  PipelineConfig config;
  config.batch_threads = 4;
  config.hot_cache.enabled = true;
  config.hot_cache.capacity = 2048;
  config.hot_cache.stripes = 8;
  config.hot_cache.admit_after = 1;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);
  ASSERT_NE(pipeline.hot_cache(), nullptr);

  constexpr int kReaders = 4;
  constexpr int kBatchesPerReader = 10;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int b = 0; b < kBatchesPerReader; ++b) {
        BatchReport report = RunBatch(pipeline, corpus.items);
        ASSERT_EQ(report.total, corpus.items.size());
        ASSERT_EQ(report.gate_classified + report.gate_rejected +
                      report.classified + report.filtered +
                      report.suppressed + report.declined,
                  report.total);
        ASSERT_LE(report.cache_hits, report.classified);
      }
    });
  }

  std::thread writer([&] {
    const auto& specs = corpus.gen->specs();
    for (int round = 0; round < 30; ++round) {
      switch (round % 5) {
        case 0: {
          auto rule = rules::Rule::Whitelist(
              "cache-stress-" + std::to_string(round),
              "(qqq|cachestress)[a-z]*" + std::to_string(round),
              specs[round % specs.size()].name);
          ASSERT_TRUE(rule.ok());
          ASSERT_TRUE(pipeline.AddRules({*rule}, "writer").ok());
          break;
        }
        case 1:
          pipeline.ScaleDownType(specs[(round / 5) % specs.size()].name,
                                 "writer", "stress");
          break;
        case 2:
          pipeline.ScaleUpType(specs[(round / 5) % specs.size()].name);
          break;
        case 3:
          pipeline.Memoize("cache stress title " + std::to_string(round),
                           specs[0].name);
          break;
        case 4:
          pipeline.RetrainLearning();
          break;
      }
      std::this_thread::yield();
    }
  });

  for (auto& t : readers) t.join();
  writer.join();

  // Quiesced: the cache may hold winners from any superseded snapshot,
  // but every one of them is dropped on read — batch output equals the
  // per-item path against the final state.
  BatchReport final_report = RunBatch(pipeline, corpus.items);
  BatchReport again = RunBatch(pipeline, corpus.items);
  EXPECT_GT(again.cache_hits, 0u);
  for (size_t i = 0; i < corpus.items.size(); ++i) {
    ASSERT_EQ(final_report.predictions[i], again.predictions[i])
        << "item " << i;
    ASSERT_EQ(final_report.predictions[i], ClassifyOne(pipeline, corpus.items[i]))
        << "item " << i;
  }
}

// Background retraining under fire: readers batch-classify (with the hot
// cache on) while one writer commits rules/labels and another fires
// RequestRetrain continuously. Every reader asserts the published
// semantic_generation never moves backwards, every retrain future must
// resolve, and — because retrains bump the generation — no reader may be
// served a hot-cache winner computed under a superseded ensemble (the
// quiesced byte-identity check at the end would catch a stale serve).
TEST(BackgroundRetrainTest, RetrainUnderFireKeepsServingCoherent) {
  Corpus corpus(600, 97, 12);
  PipelineConfig config;
  config.batch_threads = 2;
  config.hot_cache.enabled = true;
  config.hot_cache.capacity = 2048;
  config.hot_cache.admit_after = 1;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  constexpr int kReaders = 2;
  constexpr int kBatchesPerReader = 12;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_gen = 0;
      for (int b = 0; b < kBatchesPerReader; ++b) {
        const uint64_t gen = pipeline.semantic_generation();
        ASSERT_GE(gen, last_gen) << "semantic_generation went backwards";
        last_gen = gen;
        BatchReport report = RunBatch(pipeline, corpus.items);
        ASSERT_EQ(report.total, corpus.items.size());
        ASSERT_EQ(report.gate_classified + report.gate_rejected +
                      report.classified + report.filtered +
                      report.suppressed + report.declined,
                  report.total);
      }
    });
  }

  std::thread rule_writer([&] {
    const auto& specs = corpus.gen->specs();
    data::GeneratorConfig label_config = corpus.config;
    label_config.seed = corpus.config.seed + 7;
    data::CatalogGenerator label_gen(label_config);
    for (int round = 0; round < 20; ++round) {
      if (round % 2 == 0) {
        auto rule = rules::Rule::Whitelist(
            "retrain-fire-" + std::to_string(round),
            "(zzz|retrainfire)[a-z]*" + std::to_string(round),
            specs[round % specs.size()].name);
        ASSERT_TRUE(rule.ok());
        ASSERT_TRUE(pipeline.AddRules({*rule}, "writer").ok());
      } else {
        pipeline.AddTrainingData(label_gen.GenerateMany(40));
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::shared_future<RetrainReport>> retrains;
  std::thread retrainer([&] {
    for (int i = 0; i < 15; ++i) {
      retrains.push_back(pipeline.RequestRetrain());
      std::this_thread::yield();
    }
  });

  rule_writer.join();
  retrainer.join();
  size_t published = 0;
  for (auto& f : retrains) {
    RetrainReport report = f.get();  // every future must resolve
    if (report.published) {
      ++published;
      EXPECT_GT(report.publish_generation, 0u);
      EXPECT_GT(report.trained_on, 0u);
    }
  }
  EXPECT_GE(published, 1u);
  for (auto& t : readers) t.join();

  // Quiesced: repeats now hit the cache, and everything served — cached
  // or computed — matches the per-item path against the final snapshot,
  // so no stale entry survived the retrain generation bumps.
  BatchReport final_report = RunBatch(pipeline, corpus.items);
  BatchReport again = RunBatch(pipeline, corpus.items);
  EXPECT_GT(again.cache_hits, 0u);
  for (size_t i = 0; i < corpus.items.size(); ++i) {
    ASSERT_EQ(final_report.predictions[i], again.predictions[i])
        << "item " << i;
    ASSERT_EQ(final_report.predictions[i], ClassifyOne(pipeline, corpus.items[i]))
        << "item " << i;
  }
}

// MemoizeAll publishes one memo version for a whole confirmed batch, and
// concurrent bulk memoizers never lose each other's entries.
TEST(HotCacheConcurrencyTest, ConcurrentMemoizeAllLosesNothing) {
  ChimeraPipeline pipeline;
  constexpr int kWriters = 4;
  constexpr int kPairsPerWriter = 50;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::vector<std::pair<std::string, std::string>> pairs;
      pairs.reserve(kPairsPerWriter);
      for (int i = 0; i < kPairsPerWriter; ++i) {
        pairs.emplace_back(
            "bulk title " + std::to_string(w) + "-" + std::to_string(i),
            "type-" + std::to_string(w));
      }
      pipeline.MemoizeAll(pairs);
    });
  }
  for (auto& t : writers) t.join();

  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPairsPerWriter; ++i) {
      data::ProductItem item;
      item.title = "Bulk Title " + std::to_string(w) + "-" + std::to_string(i);
      ASSERT_EQ(ClassifyOne(pipeline, item).value_or(""),
                "type-" + std::to_string(w));
    }
  }
}

// Multi-tenant serving under fire: per-tenant readers batch-classify
// through their own views (each with its own cache partition) while a
// writer commits tenant-scoped rules and flips tenant suppressions, and a
// third thread fires per-tenant retrains that drain round-robin on the
// trainer thread. Under TSan this verifies the tenant-partition protocol
// (per-tenant shard versions, composed views, cache partitions, trainer
// slots) is race-free; the quiesced checks verify isolation held.
TEST(MultiTenantConcurrencyTest, TenantViewsStayIsolatedUnderMaintenance) {
  Corpus corpus(600, 77, 12);
  PipelineConfig config;
  config.batch_threads = 2;
  config.hot_cache.enabled = true;
  config.hot_cache.capacity = 2048;
  config.hot_cache.admit_after = 1;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};
  data::GeneratorConfig tenant_train = corpus.config;
  for (size_t i = 0; i < tenants.size(); ++i) {
    const rules::TenantId id(tenants[i]);
    // A sentinel rule only this tenant's view may serve.
    auto sentinel = rules::Rule::Whitelist("sentinel-" + tenants[i],
                                           tenants[i] + "sentinels?",
                                           "sentinel of " + tenants[i]);
    ASSERT_TRUE(sentinel.ok());
    ASSERT_TRUE(pipeline.AddRules({*sentinel}, "seed", id).ok());
    tenant_train.seed = corpus.config.seed + 100 + i;
    data::CatalogGenerator gen(tenant_train);
    pipeline.AddTrainingData(gen.GenerateMany(400), id);
  }

  std::vector<std::thread> readers;
  for (const std::string& tenant : tenants) {
    readers.emplace_back([&, tenant] {
      const rules::TenantId id(tenant);
      for (int b = 0; b < 8; ++b) {
        BatchReport report = RunBatch(pipeline, corpus.items, id);
        ASSERT_EQ(report.total, corpus.items.size());
        ASSERT_EQ(report.gate_classified + report.gate_rejected +
                      report.classified + report.filtered +
                      report.suppressed + report.declined,
                  report.total);
        ASSERT_LE(report.cache_hits, report.classified);
      }
    });
  }
  // The default view serves concurrently with every tenant's.
  readers.emplace_back([&] {
    for (int b = 0; b < 8; ++b) {
      BatchReport report = RunBatch(pipeline, corpus.items);
      ASSERT_EQ(report.total, corpus.items.size());
    }
  });

  std::thread writer([&] {
    const auto& specs = corpus.gen->specs();
    for (int round = 0; round < 24; ++round) {
      const rules::TenantId id(tenants[round % tenants.size()]);
      switch (round % 3) {
        case 0: {
          auto rule = rules::Rule::Whitelist(
              "stress-" + std::to_string(round),
              "(zzz|tenantstress)[a-z]*" + std::to_string(round),
              specs[round % specs.size()].name);
          ASSERT_TRUE(rule.ok());
          ASSERT_TRUE(pipeline.AddRules({*rule}, "writer", id).ok());
          break;
        }
        case 1:
          pipeline.ScaleDownType(specs[(round / 3) % specs.size()].name,
                                 "writer", "stress", id);
          break;
        case 2:
          pipeline.ScaleUpType(specs[(round / 3) % specs.size()].name, id);
          break;
      }
      std::this_thread::yield();
    }
  });

  std::thread retrainer([&] {
    std::vector<std::shared_future<RetrainReport>> futures;
    futures.reserve(9);
    for (int round = 0; round < 9; ++round) {
      futures.push_back(pipeline.RequestRetrain(
          rules::TenantId(tenants[round % tenants.size()])));
    }
    for (auto& future : futures) {
      RetrainReport report = future.get();  // every future must resolve
      ASSERT_NE(report.outcome, RetrainReport::Outcome::kAbandoned);
    }
  });

  for (auto& t : readers) t.join();
  writer.join();
  retrainer.join();

  // Quiesced isolation: each tenant's sentinel classifies only in its
  // own view, and each view's batch path agrees with its per-item path.
  for (const std::string& tenant : tenants) {
    const rules::TenantId id(tenant);
    data::ProductItem probe;
    probe.title = tenant + "sentinel probe";
    EXPECT_EQ(ClassifyOne(pipeline, probe, id).value_or(""),
              "sentinel of " + tenant);
    EXPECT_NE(ClassifyOne(pipeline, probe).value_or(""),
              "sentinel of " + tenant);
    BatchReport report = RunBatch(pipeline, corpus.items, id);
    for (size_t i = 0; i < corpus.items.size(); ++i) {
      ASSERT_EQ(report.predictions[i],
                ClassifyOne(pipeline, corpus.items[i], id))
          << tenant << " item " << i;
    }
  }
}

// The network front-end under fire: concurrent clients stream requests
// over loopback while one thread churns rules and another runs
// background retrains. Exercises every cross-thread edge at once —
// reader tasks decoding and admitting, the dispatcher coalescing and
// running the pipeline against snapshots that are being republished
// beneath it, and the monitor absorbing ServingActivity records — so a
// TSan build proves the server shares the pipeline's reader/writer
// protocol. Every admitted request must be answered kOk (admission is
// disabled: no rate limit, roomy queue), and Stop() must drain cleanly
// with clients still connected.
TEST(ServingConcurrencyTest, ServerUnderRuleChurnAndRetrainStaysCoherent) {
  Corpus corpus(200, 4242, 8);
  PipelineConfig config;
  config.hot_cache.enabled = true;
  config.hot_cache.capacity = 1024;
  config.hot_cache.admit_after = 1;
  ChimeraPipeline pipeline(config);
  Provision(pipeline, corpus);

  QualityMonitor monitor;
  serving::ServerConfig server_config;
  server_config.io_threads = 4;
  server_config.coalesce_window = std::chrono::microseconds(1000);
  server_config.monitor = &monitor;
  serving::RuleServer server(pipeline, server_config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 15;
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = serving::RuleClient::Connect(server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (int r = 0; r < kRequestsPerClient; ++r) {
        serving::WireClassifyRequest request;
        request.request_id = static_cast<uint64_t>(c * 1000 + r);
        if (r % 5 == 4) {
          // An occasional multi-item batch rides the no-coalesce path.
          for (int i = 0; i < 3; ++i) {
            request.items.push_back(
                corpus.items[(c + r + i) % corpus.items.size()]);
          }
        } else {
          request.items.push_back(
              corpus.items[(c * 37 + r) % corpus.items.size()]);
        }
        auto response = client->Call(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        ASSERT_EQ(response->code, serving::WireCode::kOk)
            << response->message;
        ASSERT_EQ(response->predictions.size(), request.items.size());
        ASSERT_EQ(response->total, request.items.size());
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread rule_writer([&] {
    const auto& specs = corpus.gen->specs();
    for (int round = 0; round < 12; ++round) {
      auto rule = rules::Rule::Whitelist(
          "serve-churn-" + std::to_string(round),
          "(yyy|servechurn)[a-z]*" + std::to_string(round),
          specs[round % specs.size()].name);
      ASSERT_TRUE(rule.ok());
      ASSERT_TRUE(pipeline.AddRules({*rule}, "writer").ok());
      std::this_thread::yield();
    }
  });

  std::vector<std::shared_future<RetrainReport>> retrains;
  std::thread retrainer([&] {
    data::GeneratorConfig label_config = corpus.config;
    label_config.seed = corpus.config.seed + 11;
    data::CatalogGenerator label_gen(label_config);
    for (int i = 0; i < 6; ++i) {
      pipeline.AddTrainingData(label_gen.GenerateMany(30));
      retrains.push_back(pipeline.RequestRetrain());
      std::this_thread::yield();
    }
  });

  for (auto& t : clients) t.join();
  rule_writer.join();
  retrainer.join();
  for (auto& f : retrains) (void)f.get();  // every future must resolve

  // Stop with the clients' connections still open: the drain must not
  // lose or double-answer anything.
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(answered.load(), kClients * kRequestsPerClient);

  serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_admitted,
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.overload_rejects(), 0u);
  EXPECT_EQ(stats.invalid_requests, 0u);
  EXPECT_EQ(stats.latency_us.count(), stats.requests_admitted);

  // The monitor saw every dispatch: summing its per-dispatch request
  // counts reproduces the server's admitted total exactly.
  uint64_t monitored = 0;
  for (const auto& activity : monitor.serving_history()) {
    monitored += activity.requests;
  }
  EXPECT_EQ(monitored, stats.requests_admitted);

  // Quiesced, the served results must match the in-process entry point.
  auto client = serving::RuleClient::Connect(server.port());
  EXPECT_FALSE(client.ok());  // and the socket is really gone
  ASSERT_TRUE(server.Start().ok());
  auto verify = serving::RuleClient::Connect(server.port());
  ASSERT_TRUE(verify.ok());
  for (size_t i = 0; i < 20; ++i) {
    const auto& item = corpus.items[i * 7 % corpus.items.size()];
    serving::WireClassifyRequest request;
    request.request_id = i;
    request.items.push_back(item);
    auto response = verify->Call(request);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->code, serving::WireCode::kOk);
    EXPECT_EQ(response->predictions[0], ClassifyOne(pipeline, item))
        << "item " << i;
  }
  server.Stop();
}

// A follower streams the primary's commit log while writers churn rules
// and background retrains publish — the apply path (ApplyReplicated ->
// Replay -> RepublishAll) races the follower's own serving reads, and
// the shipper's per-follower cursor races the primary's journal
// appends. TSan runs this tier; the invariant checked after quiesce is
// byte-identical rule state.
TEST(ReplicationConcurrencyTest, StreamingUnderChurnConvergesByteIdentically) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "rulekit_replication_churn";
  fs::remove_all(dir);
  fs::create_directories(dir);

  Corpus corpus(400, 31, 12);
  PipelineConfig primary_config;
  primary_config.storage_dir = dir.string();
  ChimeraPipeline primary(primary_config);
  ASSERT_TRUE(primary.storage_status().ok());
  Provision(primary, corpus);

  replication::LogShipper shipper(*primary.storage(), {});
  ASSERT_TRUE(shipper.Start().ok());

  replication::FollowerConfig follower_config;
  follower_config.primary_port = shipper.port();
  follower_config.pipeline.use_learning = false;
  auto follower = replication::ReplicaFollower::Open(follower_config);
  ASSERT_TRUE(follower.ok()) << follower.status().message();
  (*follower)->Start();

  // Writers churn the primary's rules while the stream is live.
  constexpr int kWriters = 2;
  constexpr int kRoundsPerWriter = 25;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const auto& specs = corpus.gen->specs();
      for (int round = 0; round < kRoundsPerWriter; ++round) {
        auto rule = rules::Rule::Whitelist(
            "churn-" + std::to_string(w) + "-" + std::to_string(round),
            "(qqq|replchurn)[a-z]*" + std::to_string(w * 100 + round),
            specs[(w + round) % specs.size()].name);
        ASSERT_TRUE(rule.ok());
        ASSERT_TRUE(primary.AddRules({*rule}, "writer").ok());
        std::this_thread::yield();
      }
    });
  }

  // Retrains run on the primary concurrently (learned state does not
  // replicate; the race under test is retrain commits vs the journal
  // tail the shipper's cursor is reading).
  std::thread retrainer([&] {
    for (int i = 0; i < 6; ++i) {
      primary.RequestRetrain().wait();
      std::this_thread::yield();
    }
  });

  // The follower serves reads the whole time — racing ApplyReplicated's
  // snapshot republishes.
  std::atomic<bool> stop_reading{false};
  std::thread follower_reader([&] {
    while (!stop_reading.load(std::memory_order_acquire)) {
      BatchReport report = RunBatch((*follower)->pipeline(), corpus.items);
      ASSERT_EQ(report.total, corpus.items.size());
    }
  });

  for (auto& t : writers) t.join();
  retrainer.join();

  // Quiesce: everything committed on the primary must arrive.
  ASSERT_TRUE((*follower)->WaitForPosition(primary.storage()->position(),
                                           std::chrono::seconds(60)));
  stop_reading.store(true, std::memory_order_release);
  follower_reader.join();
  (*follower)->Stop();
  shipper.Stop();

  auto state_bytes = [](const rules::RuleRepository& repo) {
    Encoder enc;
    storage::EncodePersistedState(repo.ExportState(), enc);
    return enc.Release();
  };
  EXPECT_EQ(state_bytes(primary.repository()),
            state_bytes((*follower)->pipeline().repository()));
  EXPECT_TRUE((*follower)->stats().halt_error.empty());

  // And the served answers agree.
  BatchReport primary_rules_only = RunBatch(primary, corpus.items);
  BatchReport follower_report = RunBatch((*follower)->pipeline(), corpus.items);
  ASSERT_EQ(follower_report.total, primary_rules_only.total);
}

}  // namespace
}  // namespace rulekit::chimera
