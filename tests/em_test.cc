#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/data/catalog_generator.h"
#include "src/em/blocker.h"
#include "src/em/match_rule.h"
#include "src/em/matcher.h"

namespace rulekit::em {
namespace {

data::ProductItem MakeBook(std::string id, std::string title,
                           std::string isbn) {
  data::ProductItem item;
  item.id = std::move(id);
  item.title = std::move(title);
  item.SetAttribute("ISBN", std::move(isbn));
  return item;
}

EmRule PaperBookRule() {
  // §6: [a.isbn = b.isbn] ∧ [jaccard.3g(a.title, b.title) >= 0.8] => match.
  return EmRule("book-rule",
                {{"ISBN", EmOp::kExactEqual, 0.0},
                 {"Title", EmOp::kJaccard3Gram, 0.8}});
}

// --------------------------------------------------------------- EmRule --

TEST(EmRuleTest, PaperExampleMatches) {
  EmRule rule = PaperBookRule();
  auto a = MakeBook("a", "the silent patient hardcover", "9781250301697");
  auto b = MakeBook("b", "the silent patient hardcover!", "9781250301697");
  EXPECT_TRUE(rule.Matches(a, b));
  EXPECT_TRUE(rule.Matches(b, a));  // symmetric
}

TEST(EmRuleTest, SameIsbnDifferentTitleRejected) {
  // "two different books can still match on ISBNs" — the title conjunct
  // is what prevents that.
  EmRule rule = PaperBookRule();
  auto a = MakeBook("a", "the silent patient", "9781250301697");
  auto b = MakeBook("b", "introductory calculus volume two", "9781250301697");
  EXPECT_FALSE(rule.Matches(a, b));
}

TEST(EmRuleTest, MissingAttributeFailsCondition) {
  EmRule rule = PaperBookRule();
  auto a = MakeBook("a", "t", "123");
  data::ProductItem b;
  b.title = "t";
  EXPECT_FALSE(rule.Matches(a, b));
}

TEST(EmRuleTest, NumericTolerance) {
  EmRule rule("price-rule", {{"Price", EmOp::kNumericTolerance, 0.5}});
  data::ProductItem a, b;
  a.title = b.title = "x";
  a.SetAttribute("Price", "19.99");
  b.SetAttribute("Price", "20.25");
  EXPECT_TRUE(rule.Matches(a, b));
  b.SetAttribute("Price", "25.00");
  EXPECT_FALSE(rule.Matches(a, b));
  b.SetAttribute("Price", "n/a");
  EXPECT_FALSE(rule.Matches(a, b));
}

TEST(EmRuleTest, EmptyRuleNeverMatches) {
  EmRule rule("empty", {});
  data::ProductItem a, b;
  EXPECT_FALSE(rule.Matches(a, b));
}

TEST(EmRuleTest, ToStringIsReadable) {
  EXPECT_EQ(PaperBookRule().ToString(),
            "book-rule: [a.ISBN = b.ISBN] AND "
            "[jaccard.3g(a.Title, b.Title) >= 0.80] => match");
}

// --------------------------------------------------------------- Blocker --

TEST(BlockerTest, PairsShareTokens) {
  std::vector<data::ProductItem> records(3);
  records[0].title = "harry potter goblet";
  records[1].title = "harry potter chamber";
  records[2].title = "unrelated widget";
  TokenBlocker blocker;
  auto pairs = blocker.CandidatePairs(records);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0u, 1u));
}

TEST(BlockerTest, IsbnKeyBlocksEvenWithDisjointTitles) {
  std::vector<data::ProductItem> records(2);
  records[0] = MakeBook("a", "alpha", "9781");
  records[1] = MakeBook("b", "omega", "9781");
  TokenBlocker blocker;
  auto pairs = blocker.CandidatePairs(records);
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(BlockerTest, OversizedBlocksSkipped) {
  BlockerOptions options;
  options.max_block_size = 5;
  std::vector<data::ProductItem> records(10);
  for (auto& r : records) r.title = "common token";
  TokenBlocker blocker(options);
  EXPECT_TRUE(blocker.CandidatePairs(records).empty());
}

TEST(BlockerTest, CrossCollection) {
  std::vector<data::ProductItem> left(1), right(2);
  left[0].title = "quaker state motor oil";
  right[0].title = "motor oil 5qt";
  right[1].title = "paperback novel";
  TokenBlocker blocker;
  auto pairs = blocker.CandidatePairsAcross(left, right);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0u, 0u));
}

// --------------------------------------------------------------- Matcher --

TEST(MatcherTest, FindsPlantedDuplicates) {
  data::GeneratorConfig config;
  config.seed = 44;
  data::CatalogGenerator gen(config);
  Rng rng(7);

  auto originals = gen.GenerateMany(150);
  std::vector<data::ProductItem> records;
  std::set<std::pair<std::string, std::string>> truth;
  for (const auto& li : originals) records.push_back(li.item);
  for (size_t i = 0; i < originals.size(); i += 3) {
    data::ProductItem dup = PerturbItem(originals[i].item, rng,
                                        /*token_dropout=*/0.05,
                                        /*typo_prob=*/0.1,
                                        /*attr_dropout=*/0.2);
    truth.emplace(originals[i].item.id, dup.id);
    records.push_back(dup);
  }

  EmMatcher matcher({EmRule(
      "title-sim", {{"Title", EmOp::kJaccard3Gram, 0.75}})});
  TokenBlocker blocker;
  auto matches = matcher.MatchAll(records, blocker);

  size_t true_positives = 0;
  for (const auto& m : matches) {
    auto key = std::make_pair(records[m.left].id, records[m.right].id);
    auto rev = std::make_pair(records[m.right].id, records[m.left].id);
    if (truth.count(key) || truth.count(rev)) ++true_positives;
  }
  // Most planted duplicates are found, and precision is decent.
  EXPECT_GT(true_positives * 10, truth.size() * 6);
  EXPECT_GT(true_positives * 10, matches.size() * 5);
}

TEST(MatcherTest, OrderIndependenceOfRuleSet) {
  // §5.3: "would it be the case that executing these rules in any order
  // will give us the same matching result?" — yes, for disjunctive
  // positive rules, including the reported explanation.
  std::vector<EmRule> rule_pool = {
      EmRule("r1", {{"Title", EmOp::kJaccard3Gram, 0.9}}),
      EmRule("r2", {{"ISBN", EmOp::kExactEqual, 0.0},
                    {"Title", EmOp::kJaccard3Gram, 0.5}}),
      EmRule("r3", {{"Title", EmOp::kEditSimilarity, 0.95}}),
  };
  std::vector<data::ProductItem> records;
  records.push_back(MakeBook("a", "the silent patient", "978x"));
  records.push_back(MakeBook("b", "the silent patient.", "978x"));
  records.push_back(MakeBook("c", "calculus volume two", "978y"));
  records.push_back(MakeBook("d", "calculus volume twoo", "978z"));

  TokenBlocker blocker;
  Rng rng(3);
  std::vector<MatchDecision> reference;
  for (int perm = 0; perm < 6; ++perm) {
    EmMatcher matcher(rule_pool);
    auto matches = matcher.MatchAll(records, blocker);
    std::sort(matches.begin(), matches.end(),
              [](const MatchDecision& x, const MatchDecision& y) {
                return std::tie(x.left, x.right) < std::tie(y.left, y.right);
              });
    if (perm == 0) {
      reference = matches;
      ASSERT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(matches.size(), reference.size());
      for (size_t i = 0; i < matches.size(); ++i) {
        EXPECT_EQ(matches[i].left, reference[i].left);
        EXPECT_EQ(matches[i].right, reference[i].right);
        EXPECT_EQ(matches[i].rule_id, reference[i].rule_id);
      }
    }
    rng.Shuffle(rule_pool);
  }
}

TEST(MatcherTest, RejectRulesVetoMatches) {
  // A reject rule fires on a condition that disproves the match; here:
  // the pair is vetoed whenever both records carry a parsable Price (a
  // degenerate-but-deterministic reject condition for the test).
  EmMatcher price_guard(
      {EmRule("title", {{"Title", EmOp::kJaccard3Gram, 0.8}})},
      {EmRule("price-reject", {{"Price", EmOp::kNumericTolerance, 1e9}})});
  data::ProductItem a, b;
  a.title = b.title = "mainstays braided rug 5x7";
  a.SetAttribute("Price", "20.00");
  b.SetAttribute("Price", "21.00");
  EXPECT_FALSE(price_guard.Matches(a, b));
  // Without prices the reject rule cannot fire, so the match stands.
  data::ProductItem c, d;
  c.title = d.title = "mainstays braided rug 5x7";
  EXPECT_TRUE(price_guard.Matches(c, d));
}

TEST(MatcherTest, RejectRulesAreOrderIndependent) {
  std::vector<EmRule> rejects = {
      EmRule("r1", {{"Price", EmOp::kNumericTolerance, 1e9}}),
      EmRule("r2", {{"ISBN", EmOp::kExactEqual, 0.0}}),
  };
  data::ProductItem a = MakeBook("a", "same title", "1");
  data::ProductItem b = MakeBook("b", "same title", "1");
  for (int perm = 0; perm < 2; ++perm) {
    EmMatcher matcher(
        {EmRule("title", {{"Title", EmOp::kJaccard3Gram, 0.9}})}, rejects);
    EXPECT_FALSE(matcher.Matches(a, b));
    std::swap(rejects[0], rejects[1]);
  }
}

TEST(MatcherTest, ExplainsWhichRuleFired) {
  EmMatcher matcher({PaperBookRule()});
  auto a = MakeBook("a", "identical title", "1");
  auto b = MakeBook("b", "identical title", "1");
  std::string rule_id;
  ASSERT_TRUE(matcher.Matches(a, b, &rule_id));
  EXPECT_EQ(rule_id, "book-rule");
}

TEST(PerturbItemTest, KeepsIsbnAndChangesId) {
  Rng rng(5);
  auto a = MakeBook("orig", "some long book title here", "978123");
  auto dup = PerturbItem(a, rng);
  EXPECT_EQ(dup.id, "orig-dup");
  EXPECT_EQ(dup.GetAttribute("ISBN").value_or(""), "978123");
  EXPECT_FALSE(dup.title.empty());
}

}  // namespace
}  // namespace rulekit::em
