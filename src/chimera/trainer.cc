#include "src/chimera/trainer.h"

#include <algorithm>
#include <utility>

namespace rulekit::chimera {

BackgroundTrainer::BackgroundTrainer(
    RetrainPolicy policy, RunFn run_fn,
    std::map<std::string, RetrainPolicy> tenant_policies)
    : policy_(std::move(policy)),
      run_fn_(std::move(run_fn)),
      tenant_policies_(std::move(tenant_policies)),
      thread_([this] { ThreadMain(); }) {}

BackgroundTrainer::~BackgroundTrainer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();  // drains the in-flight run; pendings abandoned inside
}

const RetrainPolicy& BackgroundTrainer::PolicyFor(
    const std::string& tenant) const {
  auto it = tenant_policies_.find(tenant);
  return it == tenant_policies_.end() ? policy_ : it->second;
}

std::shared_future<RetrainReport> BackgroundTrainer::Request(
    const std::string& tenant, bool urgent) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    // Shutdown already began: resolve immediately instead of handing out
    // a future no thread will ever fulfil.
    lock.unlock();
    std::promise<RetrainReport> promise;
    std::shared_future<RetrainReport> future = promise.get_future().share();
    RetrainReport report;
    report.outcome = RetrainReport::Outcome::kAbandoned;
    report.status =
        Status::FailedPrecondition("trainer is shut down; retrain abandoned");
    report.coalesced_requests = 1;
    report.tenant = tenant;
    promise.set_value(std::move(report));
    return future;
  }
  TenantSlot& slot = slots_[tenant];
  if (!slot.pending.has_value()) {
    slot.pending.emplace();
    slot.pending->future = slot.pending->promise.get_future().share();
    slot.pending->enqueued = Clock::now();
  }
  ++slot.pending->coalesced;
  if (urgent) slot.pending->urgent = true;
  std::shared_future<RetrainReport> future = slot.pending->future;
  lock.unlock();
  cv_.notify_all();
  return future;
}

void BackgroundTrainer::NotifyDataSize(const std::string& tenant,
                                       size_t total_examples) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantSlot& slot = slots_[tenant];
    slot.data_size = std::max(slot.data_size, total_examples);
  }
  cv_.notify_all();  // a deferring min_new_examples gate may now pass
}

size_t BackgroundTrainer::runs_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_started_;
}

void BackgroundTrainer::Deliver(Pending& batch, RetrainReport report) {
  if (policy_.report_sink) policy_.report_sink(report);
  batch.promise.set_value(std::move(report));
}

void BackgroundTrainer::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto any_pending = [this] {
    for (const auto& [tenant, slot] : slots_) {
      if (slot.pending.has_value()) return true;
    }
    return false;
  };
  while (true) {
    cv_.wait(lock, [&] { return stop_ || any_pending(); });
    if (stop_) break;

    // Round-robin scan over armed slots, resuming just past the tenant
    // served last, so one chatty tenant cannot starve the others. The
    // first actionable slot wins: runnable (gates pass or forced by
    // max_queue_age) or immediately skippable (gated, non-defer). Slots
    // whose gates defer contribute their earliest reopening time instead.
    const Clock::time_point now = Clock::now();
    std::string serve_tenant;
    bool serve_is_run = false;
    RetrainReport::Outcome skip_outcome = RetrainReport::Outcome::kPublished;
    bool found = false;
    bool any_deferred = false;
    Clock::time_point earliest_wake = now + std::chrono::hours(24);

    auto scan_at = slots_.upper_bound(cursor_);
    for (size_t visited = 0; visited < slots_.size(); ++visited, ++scan_at) {
      if (scan_at == slots_.end()) scan_at = slots_.begin();
      const std::string& tenant = scan_at->first;
      TenantSlot& slot = scan_at->second;
      if (!slot.pending.has_value()) continue;

      // Policy gates, evaluated against this tenant's own history. A
      // forced batch (oldest request older than max_queue_age) bypasses
      // them entirely.
      const RetrainPolicy& policy = PolicyFor(tenant);
      const bool defer_mode = policy.max_queue_age.count() > 0;
      const Clock::time_point hard_at =
          slot.pending->enqueued + policy.max_queue_age;
      std::optional<RetrainReport::Outcome> gated;
      Clock::time_point gate_opens_at = hard_at;
      // An urgent batch (severe-alarm escalation) bypasses the gates the
      // same way a hard-aged one does.
      if (!slot.pending->urgent && !(defer_mode && now >= hard_at)) {
        if (policy.min_interval.count() > 0 && slot.has_last_run &&
            now < slot.last_run_done + policy.min_interval) {
          gated = RetrainReport::Outcome::kSkippedMinInterval;
          gate_opens_at = slot.last_run_done + policy.min_interval;
        } else if (policy.min_new_examples > 0 &&
                   slot.data_size <
                       slot.last_trained_on + policy.min_new_examples) {
          // No timed reopening for this gate — only new data (which
          // notifies) or the hard age can unblock it.
          gated = RetrainReport::Outcome::kSkippedMinNewExamples;
          gate_opens_at = hard_at;
        }
      }
      if (!gated.has_value()) {
        serve_tenant = tenant;
        serve_is_run = true;
        found = true;
        break;
      }
      if (!defer_mode) {
        serve_tenant = tenant;
        serve_is_run = false;
        skip_outcome = *gated;
        found = true;
        break;
      }
      // Deferring: leave the batch armed (still coalescing) and note when
      // this slot may become actionable.
      any_deferred = true;
      earliest_wake =
          std::min(earliest_wake, std::min(gate_opens_at, hard_at));
    }

    if (!found) {
      if (any_deferred) {
        // Every armed slot is deferring: sleep until the earliest gate
        // may open, new data arrives, a new request lands, or shutdown.
        cv_.wait_until(lock, earliest_wake);
      }
      continue;
    }

    cursor_ = serve_tenant;
    TenantSlot& slot = slots_[serve_tenant];
    Pending batch = std::move(*slot.pending);
    slot.pending.reset();

    if (!serve_is_run) {
      lock.unlock();
      RetrainReport report;
      report.outcome = skip_outcome;
      report.coalesced_requests = batch.coalesced;
      report.tenant = serve_tenant;
      Deliver(batch, std::move(report));
      lock.lock();
      continue;
    }

    ++runs_started_;
    lock.unlock();
    RetrainReport report = run_fn_(serve_tenant, batch.coalesced);
    report.coalesced_requests = batch.coalesced;
    report.tenant = serve_tenant;
    report.urgent = batch.urgent;
    lock.lock();
    TenantSlot& done_slot = slots_[serve_tenant];
    done_slot.has_last_run = true;
    done_slot.last_run_done = Clock::now();
    if (report.published) done_slot.last_trained_on = report.trained_on;
    lock.unlock();
    Deliver(batch, std::move(report));
    lock.lock();
  }

  // Shutdown: the in-flight run (if any) already completed above; batches
  // that never started are abandoned, never run — no late publishes.
  for (auto& [tenant, slot] : slots_) {
    if (!slot.pending.has_value()) continue;
    Pending batch = std::move(*slot.pending);
    slot.pending.reset();
    lock.unlock();
    RetrainReport report;
    report.outcome = RetrainReport::Outcome::kAbandoned;
    report.status = Status::FailedPrecondition(
        "trainer shut down before the queued retrain started");
    report.coalesced_requests = batch.coalesced;
    report.tenant = tenant;
    Deliver(batch, std::move(report));
    lock.lock();
  }
}

}  // namespace rulekit::chimera
