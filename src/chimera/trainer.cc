#include "src/chimera/trainer.h"

#include <algorithm>
#include <utility>

namespace rulekit::chimera {

BackgroundTrainer::BackgroundTrainer(RetrainPolicy policy, RunFn run_fn)
    : policy_(std::move(policy)),
      run_fn_(std::move(run_fn)),
      thread_([this] { ThreadMain(); }) {}

BackgroundTrainer::~BackgroundTrainer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();  // drains the in-flight run; pending abandoned inside
}

std::shared_future<RetrainReport> BackgroundTrainer::Request() {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    // Shutdown already began: resolve immediately instead of handing out
    // a future no thread will ever fulfil.
    lock.unlock();
    std::promise<RetrainReport> promise;
    std::shared_future<RetrainReport> future = promise.get_future().share();
    RetrainReport report;
    report.outcome = RetrainReport::Outcome::kAbandoned;
    report.status =
        Status::FailedPrecondition("trainer is shut down; retrain abandoned");
    report.coalesced_requests = 1;
    promise.set_value(std::move(report));
    return future;
  }
  if (!pending_.has_value()) {
    pending_.emplace();
    pending_->future = pending_->promise.get_future().share();
    pending_->enqueued = Clock::now();
  }
  ++pending_->coalesced;
  std::shared_future<RetrainReport> future = pending_->future;
  lock.unlock();
  cv_.notify_all();
  return future;
}

void BackgroundTrainer::NotifyDataSize(size_t total_examples) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    data_size_ = std::max(data_size_, total_examples);
  }
  cv_.notify_all();  // a deferring min_new_examples gate may now pass
}

size_t BackgroundTrainer::runs_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_started_;
}

void BackgroundTrainer::Deliver(Pending& batch, RetrainReport report) {
  if (policy_.report_sink) policy_.report_sink(report);
  batch.promise.set_value(std::move(report));
}

void BackgroundTrainer::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || pending_.has_value(); });
    if (stop_) break;

    // Policy gates. A forced batch (oldest request older than
    // max_queue_age) bypasses them entirely.
    const Clock::time_point now = Clock::now();
    const bool defer_mode = policy_.max_queue_age.count() > 0;
    const Clock::time_point hard_at = pending_->enqueued + policy_.max_queue_age;
    std::optional<RetrainReport::Outcome> gated;
    Clock::time_point gate_opens_at = hard_at;
    if (!(defer_mode && now >= hard_at)) {
      if (policy_.min_interval.count() > 0 && has_last_run_ &&
          now < last_run_done_ + policy_.min_interval) {
        gated = RetrainReport::Outcome::kSkippedMinInterval;
        gate_opens_at = last_run_done_ + policy_.min_interval;
      } else if (policy_.min_new_examples > 0 &&
                 data_size_ < last_trained_on_ + policy_.min_new_examples) {
        // No timed reopening for this gate — only new data (which
        // notifies) or the hard age can unblock it.
        gated = RetrainReport::Outcome::kSkippedMinNewExamples;
        gate_opens_at = hard_at;
      }
    }
    if (gated.has_value()) {
      if (defer_mode) {
        // Keep the batch armed (still coalescing new requests) and
        // re-evaluate when the gate may have opened, new data arrives,
        // or shutdown begins.
        cv_.wait_until(lock, std::min(gate_opens_at, hard_at));
        continue;
      }
      Pending batch = std::move(*pending_);
      pending_.reset();
      lock.unlock();
      RetrainReport report;
      report.outcome = *gated;
      report.coalesced_requests = batch.coalesced;
      Deliver(batch, std::move(report));
      lock.lock();
      continue;
    }

    Pending batch = std::move(*pending_);
    pending_.reset();
    ++runs_started_;
    lock.unlock();
    RetrainReport report = run_fn_(batch.coalesced);
    report.coalesced_requests = batch.coalesced;
    lock.lock();
    has_last_run_ = true;
    last_run_done_ = Clock::now();
    if (report.published) last_trained_on_ = report.trained_on;
    lock.unlock();
    Deliver(batch, std::move(report));
    lock.lock();
  }

  // Shutdown: the in-flight run (if any) already completed above; a batch
  // that never started is abandoned, never run — no late publishes.
  if (pending_.has_value()) {
    Pending batch = std::move(*pending_);
    pending_.reset();
    lock.unlock();
    RetrainReport report;
    report.outcome = RetrainReport::Outcome::kAbandoned;
    report.status = Status::FailedPrecondition(
        "trainer shut down before the queued retrain started");
    report.coalesced_requests = batch.coalesced;
    Deliver(batch, std::move(report));
    lock.lock();
  }
}

}  // namespace rulekit::chimera
