#ifndef RULEKIT_CHIMERA_REQUEST_H_
#define RULEKIT_CHIMERA_REQUEST_H_

#include <chrono>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/product.h"
#include "src/rules/ids.h"

namespace rulekit::chimera {

/// Where each item of a batch ended up.
struct BatchReport {
  size_t total = 0;
  size_t gate_classified = 0;  // classified by the Gate Keeper memo
  size_t gate_rejected = 0;    // unprocessable -> manual queue
  size_t classified = 0;       // classified by voting (net of filtering),
                               // including repeats served from the hot
                               // result cache (see cache_hits)
  size_t filtered = 0;         // voting winner vetoed by the Filter
  size_t suppressed = 0;       // type currently scaled down
  size_t declined = 0;         // low confidence -> manual queue

  // Hot-result-cache activity for this batch (all zero when the cache is
  // disabled). cache_hits is a subset of `classified`; a stale drop also
  // counts as a miss (the item then runs the full stack).
  size_t cache_hits = 0;        // repeats served from the cache
  size_t cache_misses = 0;      // looked up, not served (incl. stale drops)
  size_t cache_stale_drops = 0; // entries invalidated on read (tag mismatch)
  size_t cache_promotions = 0;  // winners admitted into the cache
  size_t cache_evictions = 0;   // entries evicted to admit new winners

  // Rule-execution cost for this batch: how many regex evaluations the
  // rule executors actually performed (post-index pruning) over how many
  // items reached them (items the gate keeper and hot cache did not
  // absorb). The ratio is the §4 executed-rules-per-item optimization
  // target; the offline rule-set optimizer exists to shrink it.
  size_t rules_executed = 0;
  size_t rule_items = 0;

  /// Final prediction per item (nullopt = unclassified).
  std::vector<std::optional<std::string>> predictions;

  /// Fraction of the batch that ended with a prediction (gate memo hits +
  /// voting winners that survived the filter). 0 for an empty batch — the
  /// guard matters because sparse streams legitimately deliver empty
  /// batches and every merge path must agree on the ratio.
  double ClassifiedFraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(gate_classified + classified) /
                            static_cast<double>(total);
  }

  double coverage() const { return ClassifiedFraction(); }

  /// Average regex evaluations per item that reached the rule executors.
  /// 0 when the whole batch was absorbed before rule execution.
  double ExecutedRulesPerItem() const {
    return rule_items == 0 ? 0.0
                           : static_cast<double>(rules_executed) /
                                 static_cast<double>(rule_items);
  }
};

/// Per-request knobs, honored identically by the in-process entry point
/// and the serving front-end (which carries them on the wire).
struct ClassifyOptions {
  /// A single-item request the server may merge with concurrent
  /// single-item requests into one pipeline batch (the coalescing path;
  /// see DESIGN.md "Serving front-end"). False forces a dedicated
  /// dispatch. Meaningless in-process — the caller already chose its
  /// batch.
  bool allow_coalesce = true;
  /// When true the request fails kUnavailable unless the pipeline's
  /// durable journal is live: a pipeline that was asked for storage but
  /// is serving in-memory (open failure, or a severed WAL after an I/O
  /// error) refuses rather than classify against state that would not
  /// survive a crash. False (default) keeps the historical emergency
  /// lever: in-memory serving continues through storage trouble.
  bool require_durable = false;
};

/// The one classification entry point's argument: what to classify, for
/// whom, under which constraints. The wire protocol encodes exactly these
/// fields, so a request that arrived over TCP and one built in-process
/// are indistinguishable by the time the pipeline sees them.
///
/// `items` is a non-owning view: in-process callers pass their existing
/// vector with zero copies, and the server keeps its decoded items alive
/// for the duration of the dispatch.
struct ClassifyRequest {
  rules::TenantId tenant;
  std::span<const data::ProductItem> items;
  ClassifyOptions options;
  /// Absolute deadline. A request whose deadline has already passed is
  /// answered kDeadlineExceeded without touching the pipeline; the server
  /// additionally sheds queued requests whose deadline expires before
  /// dispatch. nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// What classification returned: a Status (OK, or one of the typed
/// failure codes the wire format pins — see serving::WireCode) and the
/// full per-batch accounting. On a non-OK status the report carries
/// `total` and empty predictions; nothing was classified.
struct ClassifyResponse {
  Status status;
  BatchReport report;

  bool ok() const { return status.ok(); }
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_REQUEST_H_
