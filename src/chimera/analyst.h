#ifndef RULEKIT_CHIMERA_ANALYST_H_
#define RULEKIT_CHIMERA_ANALYST_H_

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/data/catalog_generator.h"
#include "src/data/event_stream.h"
#include "src/data/product.h"
#include "src/rules/rule.h"

namespace rulekit::chimera {

/// Configuration of the simulated analyst.
struct AnalystConfig {
  uint64_t seed = 77;
  /// Accuracy of manual labels (domain analysts are good but not perfect).
  double labeling_accuracy = 0.97;
};

/// A confirmed misclassification handed to the analyst: the item, what the
/// system said, and the correct type (established via crowd/manual review).
struct Misclassification {
  data::ProductItem item;
  std::string predicted;
  std::string correct;
};

/// Simulated domain analyst (DESIGN.md substitution table). Domain
/// analysts "can be trained to understand the domain, detect patterns ...
/// and write rules" (§2.2); this stand-in consults the catalog generator's
/// type vocabularies — the analog of a human's domain knowledge — to write
/// the same kinds of rules WalmartLabs analysts write.
class SimulatedAnalyst {
 public:
  SimulatedAnalyst(const data::CatalogGenerator& generator,
                   AnalystConfig config = {});

  /// Whitelist rules for a type: one head-noun rule ("(rug|rugs) =>
  /// area rugs") plus up to `max_qualifier_rules` qualifier rules
  /// ("braided.*(rug|rugs) => area rugs").
  std::vector<rules::Rule> WriteRulesForType(const std::string& type,
                                             size_t max_qualifier_rules = 3);

  /// Blacklist rules reacting to confirmed errors: for each distinct
  /// (predicted, correct) confusion, a blacklist on the predicted type
  /// keyed to the correct type's head nouns.
  std::vector<rules::Rule> WriteBlacklistsForErrors(
      const std::vector<Misclassification>& errors);

  /// Attribute rules derivable from domain knowledge: has(ISBN) => books
  /// (for every ISBN-bearing type).
  std::vector<rules::Rule> WriteAttributeRules();

  /// Brand knowledge-base rules: Brand = "apple" => {every type selling
  /// that brand} (§3.2 "Other Considerations": brand KBs are applied via
  /// rules).
  std::vector<rules::Rule> WriteBrandRules();

  /// Manually (re)labels items — ground truth with labeling noise.
  /// Mislabels draw a random other type.
  std::vector<data::LabeledItem> LabelItems(
      const std::vector<data::LabeledItem>& items);

  size_t rules_written() const { return rules_written_; }

 private:
  std::string FreshRuleId(const std::string& prefix);
  /// "(rug|rugs)" with plural forms collapsed to "rugs?" where possible.
  static std::string NounAlternation(
      const std::vector<std::string>& nouns);

  const data::CatalogGenerator& generator_;
  AnalystConfig config_;
  Rng rng_;
  size_t rules_written_ = 0;
  uint64_t next_id_ = 0;
};

/// Decoder-style whitelist rules for the event-stream workload: one rule
/// per (event type, signature keyword phrase), exactly what a SIEM
/// ruleset's prematch patterns encode. Since keywords are exclusive
/// across types, the set classifies the undrifted stream perfectly —
/// drift is what breaks it, which is the point of the exercise.
std::vector<rules::Rule> WriteEventRules(
    const data::EventStreamGenerator& stream);

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_ANALYST_H_
