#ifndef RULEKIT_CHIMERA_TRAINER_H_
#define RULEKIT_CHIMERA_TRAINER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace rulekit::chimera {

/// What one retrain request (or the run it coalesced into) came to.
/// Every future handed out by BackgroundTrainer::Request resolves with
/// one of these — including skipped, abandoned, and empty-data requests,
/// so callers never hang on a request that will not run.
struct RetrainReport {
  enum class Outcome {
    kPublished,            // trained and swapped in a new ensemble
    kNoTrainingData,       // ran, but there was nothing to train on
    kSkippedMinInterval,   // gated: last run finished too recently
    kSkippedMinNewExamples,// gated: not enough new labels since last run
    kAbandoned,            // trainer shut down before the run started
  };
  Outcome outcome = Outcome::kPublished;
  /// OK unless publishing hit a durability error (the in-memory ensemble
  /// is still live — see DESIGN.md on journal-failure semantics) or the
  /// request was abandoned at shutdown.
  Status status;
  bool published = false;
  /// Labeled examples the run trained on (0 when it never ran).
  size_t trained_on = 0;
  /// Requests folded into this run (>= 1 for anything that ran; a burst
  /// of N requests during one in-flight run yields one follow-up run
  /// with coalesced_requests == N).
  size_t coalesced_requests = 0;
  /// The pipeline's semantic_generation after the publish (0 otherwise).
  uint64_t publish_generation = 0;
  double duration_ms = 0.0;
  /// Tenant the run (or skip) was for; empty = the default tenant.
  std::string tenant;
  /// True when any request folded into this run was urgent (severe-alarm
  /// escalation): the policy gates were bypassed for it.
  bool urgent = false;
};

/// When the trainer actually runs a requested retrain. All gates default
/// to off, so the default policy runs every request — which is what keeps
/// the synchronous RetrainLearning() wrapper byte-identical to the
/// historical blocking call.
struct RetrainPolicy {
  /// Minimum time between the *end* of one training run and the start of
  /// the next. 0 = no throttle. The first run is never interval-gated.
  std::chrono::milliseconds min_interval{0};
  /// Minimum labeled examples accumulated beyond the last published
  /// run's training-set size before another run is worthwhile. 0 = off.
  size_t min_new_examples = 0;
  /// What happens to a gated request. 0 (default): it resolves
  /// immediately as skipped — fire-and-forget callers get cheap
  /// throttling. > 0: the request *defers* (still coalescing later
  /// requests) until the gates pass, but is force-run once the oldest
  /// coalesced request has waited this long, so no request waits
  /// unboundedly for a gate that data drift may never satisfy.
  std::chrono::milliseconds max_queue_age{0};
  /// Test hook, fired on the trainer thread at the start of every
  /// training run (after the data snapshot is copied, before fitting).
  /// Tests block in it to hold a run in flight; leave unset in
  /// production.
  std::function<void()> train_probe;
  /// Fired on the trainer thread with every delivered report — published,
  /// skipped, or abandoned — *before* the request's future resolves, so a
  /// waiter observes its own report already sunk. Typically bound to
  /// QualityMonitor::RecordRetrain. Must be thread-safe.
  std::function<void(const RetrainReport&)> report_sink;
};

/// A dedicated training thread with per-tenant one-slot coalescing
/// request queues, drained fairly.
///
/// Each tenant has its own slot with the historical states: idle (no
/// pending request), armed (one pending batch, about to be picked up or
/// deferring on a policy gate), and running. Request(tenant) in idle
/// arms that tenant's slot; Request(tenant) while armed or running folds
/// into the existing pending batch (same future, coalesced count + 1) —
/// so any one tenant's burst collapses to at most one in-flight run plus
/// one pending run, and the pending run copies its data snapshot only
/// when it starts: latest data wins.
///
/// Fairness: the single training thread serves armed slots round-robin
/// (a cursor remembers the last tenant served), and every policy gate —
/// min_interval, min_new_examples, max_queue_age — evaluates against the
/// requesting tenant's own history. A bursty feed therefore queues
/// behind its own slot, never ahead of another tenant's, and a tenant
/// rate-limited by its min_interval cannot block a different tenant from
/// being admitted.
///
/// Shutdown (destructor) drains the in-flight run to completion — its
/// publish happens-before the destructor returns — and abandons every
/// armed batch, resolving their futures with kAbandoned instead of
/// running them. Nothing is ever published after shutdown returns.
///
/// Lock discipline: the trainer's mutex is never held while `run_fn`
/// executes (it takes pipeline locks), and pipeline locks are never held
/// while calling into the trainer (ChimeraPipeline notifies after
/// unlocking), so the two lock domains never nest in either order.
class BackgroundTrainer {
 public:
  using RunFn = std::function<RetrainReport(const std::string& tenant,
                                            size_t coalesced_requests)>;

  /// `run_fn` performs one full train-and-publish cycle for one tenant;
  /// it runs on the trainer thread with no trainer lock held.
  /// `tenant_policies` overrides the gate knobs (min_interval,
  /// min_new_examples, max_queue_age) per tenant; the hooks
  /// (train_probe, report_sink) always come from the base `policy`.
  BackgroundTrainer(RetrainPolicy policy, RunFn run_fn,
                    std::map<std::string, RetrainPolicy> tenant_policies = {});

  /// Drains the in-flight run (if any), abandons every pending batch,
  /// and joins the thread. Safe to call with requests outstanding.
  ~BackgroundTrainer();

  BackgroundTrainer(const BackgroundTrainer&) = delete;
  BackgroundTrainer& operator=(const BackgroundTrainer&) = delete;

  /// Enqueue-or-coalesce into `tenant`'s slot; returns immediately (a
  /// mutex-protected pointer update — never waits on training). After
  /// shutdown began, resolves immediately as kAbandoned.
  ///
  /// An `urgent` request — the DriftResponder's severe-alarm escalation —
  /// bypasses the min_interval / min_new_examples gates: the batch it
  /// lands in (it still coalesces normally) runs as soon as the thread
  /// reaches it. max_queue_age never applies since the batch never
  /// defers. Urgency is sticky per batch: once any folded request was
  /// urgent, the batch is.
  std::shared_future<RetrainReport> Request(const std::string& tenant = {},
                                            bool urgent = false);

  /// Informs `tenant`'s policy gates of its current labeled-example
  /// count. Called by the pipeline after releasing its own locks; wakes
  /// a deferring trainer so a min_new_examples gate re-evaluates.
  void NotifyDataSize(size_t total_examples) {
    NotifyDataSize(std::string(), total_examples);
  }
  void NotifyDataSize(const std::string& tenant, size_t total_examples);

  /// Training runs started since construction, all tenants (skips and
  /// abandons do not count). Test observability for coalescing.
  size_t runs_started() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::promise<RetrainReport> promise;
    std::shared_future<RetrainReport> future;
    Clock::time_point enqueued;  // oldest coalesced request's arrival
    size_t coalesced = 0;
    bool urgent = false;  // any folded request demanded a gate bypass
  };

  /// One tenant's queue slot plus its private gate history.
  struct TenantSlot {
    std::optional<Pending> pending;
    size_t data_size = 0;        // latest NotifyDataSize value
    size_t last_trained_on = 0;  // last *published* run's data size
    bool has_last_run = false;
    Clock::time_point last_run_done{};
  };

  void ThreadMain();
  /// Sinks the report and resolves the batch's future. No locks held.
  void Deliver(Pending& batch, RetrainReport report);
  /// The gate knobs for one tenant (override or base). The returned
  /// reference is stable (maps never mutate after construction).
  const RetrainPolicy& PolicyFor(const std::string& tenant) const;

  const RetrainPolicy policy_;
  const RunFn run_fn_;
  const std::map<std::string, RetrainPolicy> tenant_policies_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<std::string, TenantSlot> slots_;  // keyed by tenant ("" = default)
  std::string cursor_;  // last tenant served; round-robin resumes after it
  size_t runs_started_ = 0;

  std::thread thread_;  // last: started after all state above exists
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_TRAINER_H_
