#ifndef RULEKIT_CHIMERA_VOTING_H_
#define RULEKIT_CHIMERA_VOTING_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/engine/sharded_classifier.h"
#include "src/ml/classifier.h"
#include "src/rules/rule_set.h"

namespace rulekit::chimera {

/// Voting-master knobs. Defaults are tuned for "high precision first":
/// decline rather than guess (§2.2: precision >= 92% at all times, recall
/// can start low).
struct VotingOptions {
  /// Minimum combined score of the winner; below it the master declines.
  double confidence_threshold = 0.45;
  /// Minimum lead of the winner over the runner-up.
  double min_margin = 0.05;
};

/// Combines the classifiers' weighted predictions into a final type or a
/// decline (Figure 2's Voting Master). Immutable after the members are
/// added, so a const master is safe for concurrent voting.
class VotingMaster {
 public:
  explicit VotingMaster(VotingOptions options = {});

  /// Adds a voting member. Rule-based members typically get weight >= 1,
  /// learning members < 1, mirroring Chimera's trust in analyst rules.
  void AddMember(std::shared_ptr<ml::Classifier> member, double weight);

  /// The combined decision; nullopt = low confidence, item stays
  /// unclassified.
  std::optional<ml::ScoredLabel> Vote(const data::ProductItem& item) const;

  /// Batch voting: asks every member for batch predictions (each member
  /// may parallelize over `pool`), then combines per item. When the
  /// caller already ran one member's batch prediction (the serving
  /// pipeline precomputes the rule-based member through the indexed
  /// executor), pass that member and its per-item scores to avoid
  /// recomputation. Per-item results are identical to Vote().
  std::vector<std::optional<ml::ScoredLabel>> VoteBatch(
      const std::vector<const data::ProductItem*>& items, ThreadPool* pool,
      const ml::Classifier* precomputed_member = nullptr,
      const std::vector<std::vector<ml::ScoredLabel>>* precomputed_scores =
          nullptr) const;

  /// The full combined ranking (for diagnostics).
  std::vector<ml::ScoredLabel> CombinedScores(
      const data::ProductItem& item) const;

 private:
  /// Weighted-average combination of one scored list per member (weights
  /// of abstaining members do not dilute the result).
  std::vector<ml::ScoredLabel> CombineLists(
      const std::vector<const std::vector<ml::ScoredLabel>*>& per_member)
      const;

  /// Threshold + margin decision on a combined ranking.
  std::optional<ml::ScoredLabel> DecideFromCombined(
      const std::vector<ml::ScoredLabel>& combined) const;

  VotingOptions options_;
  std::vector<std::pair<std::shared_ptr<ml::Classifier>, double>> members_;
};

/// Figure 2's Filter: last-line vetoes on the voting master's choice.
/// Applies active blacklist rules ("here the analysts use mostly blacklist
/// rules") and attribute-value consistency (a Brand->candidate-set rule
/// that fires must contain the final type).
///
/// The relevant active rules are gathered once at construction (veto cost
/// scales with the number of blacklist/attrval/predicate rules, not the
/// whole repository); build a fresh Filter per rule-set snapshot.
class Filter {
 public:
  explicit Filter(std::shared_ptr<const rules::RuleSet> rules);

  /// True if `predicted` survives the vetoes for this item.
  bool Admit(const data::ProductItem& item,
             const std::string& predicted) const;

  /// Batch-path variant: `matched_regex` holds the indices of the active
  /// regex rules whose pattern matched this item's title (from the
  /// executor run the rule stage already performed), so blacklist vetoes
  /// need no further regex evaluation. Same result as Admit().
  bool AdmitWithMatches(const data::ProductItem& item,
                        const std::string& predicted,
                        const std::vector<size_t>& matched_regex) const;

 private:
  bool NonRegexVetoes(const data::ProductItem& item,
                      const std::string& predicted) const;

  std::shared_ptr<const rules::RuleSet> rules_;
  std::vector<size_t> blacklist_;  // active kBlacklist rules
  std::vector<size_t> attrval_;    // active kAttributeValue rules
  std::vector<size_t> negpred_;    // active negative kPredicate rules
};

/// Filter over a sharded repository: admits only when every shard's Filter
/// admits. A veto is a veto no matter which shard hosts the rule, so the
/// conjunction is exactly the monolithic Filter over the union of shards.
/// Per-shard Filters are built against the same pinned snapshots as the
/// classifiers and reused across publishes when their shard is unchanged.
class ShardedFilter {
 public:
  explicit ShardedFilter(std::vector<std::shared_ptr<const Filter>> shards)
      : shards_(std::move(shards)) {}

  bool Admit(const data::ProductItem& item,
             const std::string& predicted) const {
    for (const auto& shard : shards_) {
      if (!shard->Admit(item, predicted)) return false;
    }
    return true;
  }

  /// Batch-path variant; each shard's Filter gets that shard's regex
  /// matches for item `index` of `exec`.
  bool AdmitWithMatches(const data::ProductItem& item,
                        const std::string& predicted,
                        const engine::ShardedExecution& exec,
                        size_t index) const {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s]->AdmitWithMatches(
              item, predicted, exec.per_shard[s].matches_per_item[index])) {
        return false;
      }
    }
    return true;
  }

  size_t shard_count() const { return shards_.size(); }

 private:
  std::vector<std::shared_ptr<const Filter>> shards_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_VOTING_H_
