#ifndef RULEKIT_CHIMERA_VOTING_H_
#define RULEKIT_CHIMERA_VOTING_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ml/classifier.h"
#include "src/rules/rule_set.h"

namespace rulekit::chimera {

/// Voting-master knobs. Defaults are tuned for "high precision first":
/// decline rather than guess (§2.2: precision >= 92% at all times, recall
/// can start low).
struct VotingOptions {
  /// Minimum combined score of the winner; below it the master declines.
  double confidence_threshold = 0.45;
  /// Minimum lead of the winner over the runner-up.
  double min_margin = 0.05;
};

/// Combines the classifiers' weighted predictions into a final type or a
/// decline (Figure 2's Voting Master).
class VotingMaster {
 public:
  explicit VotingMaster(VotingOptions options = {});

  /// Adds a voting member. Rule-based members typically get weight >= 1,
  /// learning members < 1, mirroring Chimera's trust in analyst rules.
  void AddMember(std::shared_ptr<ml::Classifier> member, double weight);

  /// The combined decision; nullopt = low confidence, item stays
  /// unclassified.
  std::optional<ml::ScoredLabel> Vote(const data::ProductItem& item) const;

  /// The full combined ranking (for diagnostics).
  std::vector<ml::ScoredLabel> CombinedScores(
      const data::ProductItem& item) const;

 private:
  VotingOptions options_;
  std::vector<std::pair<std::shared_ptr<ml::Classifier>, double>> members_;
};

/// Figure 2's Filter: last-line vetoes on the voting master's choice.
/// Applies active blacklist rules ("here the analysts use mostly blacklist
/// rules") and attribute-value consistency (a Brand->candidate-set rule
/// that fires must contain the final type).
class Filter {
 public:
  explicit Filter(std::shared_ptr<const rules::RuleSet> rules);

  /// True if `predicted` survives the vetoes for this item.
  bool Admit(const data::ProductItem& item,
             const std::string& predicted) const;

 private:
  std::shared_ptr<const rules::RuleSet> rules_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_VOTING_H_
