#include "src/chimera/monitor.h"

namespace rulekit::chimera {

void QualityMonitor::Record(const BatchQuality& quality) {
  history_.push_back(quality);
}

void QualityMonitor::RecordCache(const CacheActivity& activity) {
  cache_history_.push_back(activity);
}

double QualityMonitor::CacheHitRate(size_t window) const {
  size_t begin = 0;
  if (window != 0 && window < cache_history_.size()) {
    begin = cache_history_.size() - window;
  }
  size_t lookups = 0, hits = 0;
  for (size_t i = begin; i < cache_history_.size(); ++i) {
    lookups += cache_history_[i].lookups;
    hits += cache_history_[i].hits;
  }
  return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
}

bool QualityMonitor::DegradationAlarm() const {
  if (history_.empty()) return false;
  return history_.back().precision.estimate < threshold_;
}

bool QualityMonitor::SevereDegradationAlarm() const {
  if (history_.empty()) return false;
  return history_.back().precision.upper < threshold_;
}

}  // namespace rulekit::chimera
