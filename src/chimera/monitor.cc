#include "src/chimera/monitor.h"

namespace rulekit::chimera {

void QualityMonitor::Record(const BatchQuality& quality) {
  history_.push_back(quality);
}

bool QualityMonitor::DegradationAlarm() const {
  if (history_.empty()) return false;
  return history_.back().precision.estimate < threshold_;
}

bool QualityMonitor::SevereDegradationAlarm() const {
  if (history_.empty()) return false;
  return history_.back().precision.upper < threshold_;
}

}  // namespace rulekit::chimera
