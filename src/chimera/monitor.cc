#include "src/chimera/monitor.h"

#include <algorithm>

namespace rulekit::chimera {

namespace {

/// A shared empty buffer so tenant accessors can return a reference for
/// tenants that were never recorded against.
template <typename T>
const RingBuffer<T>& EmptyBuffer() {
  static const RingBuffer<T> kEmpty(1);
  return kEmpty;
}

}  // namespace

void QualityMonitor::Record(const BatchQuality& quality,
                            const std::string& tenant) {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = history_.find(tenant);
  if (it == history_.end()) {
    it = history_.emplace(tenant, RingBuffer<BatchQuality>(max_history_))
             .first;
  }
  it->second.push_back(quality);
}

void QualityMonitor::RecordCache(const CacheActivity& activity,
                                 const std::string& tenant) {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = cache_history_.find(tenant);
  if (it == cache_history_.end()) {
    it = cache_history_
             .emplace(tenant, RingBuffer<CacheActivity>(max_history_))
             .first;
  }
  it->second.push_back(activity);
}

void QualityMonitor::RecordRetrain(const RetrainReport& report) {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  retrain_history_.push_back(report);
}

void QualityMonitor::RecordResponder(const ResponderDecision& decision,
                                     const std::string& tenant) {
  std::lock_guard<std::mutex> lock(responder_mu_);
  auto it = responder_history_.find(tenant);
  if (it == responder_history_.end()) {
    it = responder_history_
             .emplace(tenant, RingBuffer<ResponderDecision>(max_history_))
             .first;
  }
  it->second.push_back(decision);
}

std::vector<ResponderDecision> QualityMonitor::responder_history(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(responder_mu_);
  std::vector<ResponderDecision> out;
  auto it = responder_history_.find(tenant);
  if (it == responder_history_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i = 0; i < it->second.size(); ++i) {
    out.push_back(it->second[i]);
  }
  return out;
}

size_t QualityMonitor::responder_fires(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(responder_mu_);
  auto it = responder_history_.find(tenant);
  if (it == responder_history_.end()) return 0;
  size_t fires = 0;
  for (size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i].fired) ++fires;
  }
  return fires;
}

void QualityMonitor::RecordServing(const ServingActivity& activity,
                                   const std::string& tenant) {
  std::lock_guard<std::mutex> lock(serving_mu_);
  auto it = serving_history_.find(tenant);
  if (it == serving_history_.end()) {
    it = serving_history_
             .emplace(tenant, RingBuffer<ServingActivity>(max_history_))
             .first;
  }
  it->second.push_back(activity);
}

std::vector<ServingActivity> QualityMonitor::serving_history(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(serving_mu_);
  std::vector<ServingActivity> out;
  auto it = serving_history_.find(tenant);
  if (it == serving_history_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i = 0; i < it->second.size(); ++i) {
    out.push_back(it->second[i]);
  }
  return out;
}

void QualityMonitor::RecordReplication(const ReplicationActivity& activity,
                                       const std::string& tenant) {
  std::lock_guard<std::mutex> lock(replication_mu_);
  auto it = replication_history_.find(tenant);
  if (it == replication_history_.end()) {
    it = replication_history_
             .emplace(tenant, RingBuffer<ReplicationActivity>(max_history_))
             .first;
  }
  it->second.push_back(activity);
}

std::vector<ReplicationActivity> QualityMonitor::replication_history(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(replication_mu_);
  std::vector<ReplicationActivity> out;
  auto it = replication_history_.find(tenant);
  if (it == replication_history_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i = 0; i < it->second.size(); ++i) {
    out.push_back(it->second[i]);
  }
  return out;
}

const RingBuffer<BatchQuality>& QualityMonitor::history(
    const std::string& tenant) const {
  auto it = history_.find(tenant);
  return it == history_.end() ? EmptyBuffer<BatchQuality>() : it->second;
}

const RingBuffer<CacheActivity>& QualityMonitor::cache_history(
    const std::string& tenant) const {
  auto it = cache_history_.find(tenant);
  return it == cache_history_.end() ? EmptyBuffer<CacheActivity>()
                                    : it->second;
}

std::vector<RetrainReport> QualityMonitor::retrain_history() const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  std::vector<RetrainReport> out;
  out.reserve(retrain_history_.size());
  for (size_t i = 0; i < retrain_history_.size(); ++i) {
    out.push_back(retrain_history_[i]);
  }
  return out;
}

std::vector<RetrainReport> QualityMonitor::retrain_history(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  std::vector<RetrainReport> out;
  for (size_t i = 0; i < retrain_history_.size(); ++i) {
    if (retrain_history_[i].tenant == tenant) {
      out.push_back(retrain_history_[i]);
    }
  }
  return out;
}

size_t QualityMonitor::retrains_published() const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  size_t published = 0;
  for (size_t i = 0; i < retrain_history_.size(); ++i) {
    if (retrain_history_[i].published) ++published;
  }
  return published;
}

size_t QualityMonitor::retrains_published(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  size_t published = 0;
  for (size_t i = 0; i < retrain_history_.size(); ++i) {
    if (retrain_history_[i].published &&
        retrain_history_[i].tenant == tenant) {
      ++published;
    }
  }
  return published;
}

double QualityMonitor::CacheHitRate(const std::string& tenant,
                                    size_t window) const {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = cache_history_.find(tenant);
  if (it == cache_history_.end()) return 0.0;
  const RingBuffer<CacheActivity>& buffer = it->second;
  size_t begin = 0;
  if (window != 0 && window < buffer.size()) {
    begin = buffer.size() - window;
  }
  size_t lookups = 0, hits = 0;
  for (size_t i = begin; i < buffer.size(); ++i) {
    lookups += buffer[i].lookups;
    hits += buffer[i].hits;
  }
  return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
}

double QualityMonitor::StaleDropRate(const std::string& tenant,
                                     size_t window) const {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = cache_history_.find(tenant);
  if (it == cache_history_.end()) return 0.0;
  const RingBuffer<CacheActivity>& buffer = it->second;
  size_t begin = 0;
  if (window != 0 && window < buffer.size()) {
    begin = buffer.size() - window;
  }
  size_t lookups = 0, stale = 0;
  for (size_t i = begin; i < buffer.size(); ++i) {
    lookups += buffer[i].lookups;
    stale += buffer[i].stale_drops;
  }
  return lookups == 0 ? 0.0 : static_cast<double>(stale) / lookups;
}

std::optional<BatchQuality> QualityMonitor::LatestQuality(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = history_.find(tenant);
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<CacheActivity> QualityMonitor::LatestCache(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = cache_history_.find(tenant);
  if (it == cache_history_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

double QualityMonitor::ExecutedRulesPerItem(const std::string& tenant,
                                            size_t window) const {
  std::lock_guard<std::mutex> lock(serving_mu_);
  auto it = serving_history_.find(tenant);
  if (it == serving_history_.end()) return 0.0;
  const RingBuffer<ServingActivity>& buffer = it->second;
  size_t begin = 0;
  if (window != 0 && window < buffer.size()) {
    begin = buffer.size() - window;
  }
  size_t executed = 0, items = 0;
  for (size_t i = begin; i < buffer.size(); ++i) {
    executed += buffer[i].rules_executed;
    items += buffer[i].rule_items;
  }
  return items == 0 ? 0.0 : static_cast<double>(executed) / items;
}

bool QualityMonitor::DegradationAlarm(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = history_.find(tenant);
  if (it == history_.end() || it->second.empty()) return false;
  return it->second.back().precision.estimate < threshold_;
}

bool QualityMonitor::SevereDegradationAlarm(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(quality_mu_);
  auto it = history_.find(tenant);
  if (it == history_.end() || it->second.empty()) return false;
  return it->second.back().precision.upper < threshold_;
}

std::vector<std::string> QualityMonitor::Tenants() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(quality_mu_);
    for (const auto& [tenant, buffer] : history_) {
      if (!buffer.empty() || tenant.empty()) out.push_back(tenant);
    }
    for (const auto& [tenant, buffer] : cache_history_) {
      if (buffer.empty() && !tenant.empty()) continue;
      if (std::find(out.begin(), out.end(), tenant) == out.end()) {
        out.push_back(tenant);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(responder_mu_);
    for (const auto& [tenant, buffer] : responder_history_) {
      if (buffer.empty() && !tenant.empty()) continue;
      if (std::find(out.begin(), out.end(), tenant) == out.end()) {
        out.push_back(tenant);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(retrain_mu_);
    for (size_t i = 0; i < retrain_history_.size(); ++i) {
      const std::string& tenant = retrain_history_[i].tenant;
      if (std::find(out.begin(), out.end(), tenant) == out.end()) {
        out.push_back(tenant);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    for (const auto& [tenant, buffer] : serving_history_) {
      if (buffer.empty() && !tenant.empty()) continue;
      if (std::find(out.begin(), out.end(), tenant) == out.end()) {
        out.push_back(tenant);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(replication_mu_);
    for (const auto& [tenant, buffer] : replication_history_) {
      if (buffer.empty() && !tenant.empty()) continue;
      if (std::find(out.begin(), out.end(), tenant) == out.end()) {
        out.push_back(tenant);
      }
    }
  }
  std::sort(out.begin(), out.end());  // "" sorts first: default leads
  return out;
}

}  // namespace rulekit::chimera
