#include "src/chimera/monitor.h"

namespace rulekit::chimera {

void QualityMonitor::Record(const BatchQuality& quality) {
  history_.push_back(quality);
}

void QualityMonitor::RecordCache(const CacheActivity& activity) {
  cache_history_.push_back(activity);
}

void QualityMonitor::RecordRetrain(const RetrainReport& report) {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  retrain_history_.push_back(report);
}

std::vector<RetrainReport> QualityMonitor::retrain_history() const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  return retrain_history_;
}

size_t QualityMonitor::retrains_published() const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  size_t published = 0;
  for (const RetrainReport& r : retrain_history_) {
    if (r.published) ++published;
  }
  return published;
}

double QualityMonitor::CacheHitRate(size_t window) const {
  size_t begin = 0;
  if (window != 0 && window < cache_history_.size()) {
    begin = cache_history_.size() - window;
  }
  size_t lookups = 0, hits = 0;
  for (size_t i = begin; i < cache_history_.size(); ++i) {
    lookups += cache_history_[i].lookups;
    hits += cache_history_[i].hits;
  }
  return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
}

bool QualityMonitor::DegradationAlarm() const {
  if (history_.empty()) return false;
  return history_.back().precision.estimate < threshold_;
}

bool QualityMonitor::SevereDegradationAlarm() const {
  if (history_.empty()) return false;
  return history_.back().precision.upper < threshold_;
}

}  // namespace rulekit::chimera
