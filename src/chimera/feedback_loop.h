#ifndef RULEKIT_CHIMERA_FEEDBACK_LOOP_H_
#define RULEKIT_CHIMERA_FEEDBACK_LOOP_H_

#include <vector>

#include "src/chimera/analyst.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/crowd/crowd.h"
#include "src/ml/metrics.h"

namespace rulekit::chimera {

/// Knobs of the crowd-evaluate / analyst-patch / rerun loop.
struct FeedbackLoopConfig {
  size_t sample_size = 200;
  size_t max_iterations = 4;
  double precision_threshold = 0.92;
  /// How many flagged errors the analyst reviews per iteration.
  size_t max_errors_reviewed = 50;
  /// How many declined items the analyst labels per iteration (they become
  /// training data AND drive new whitelist rules for uncovered types).
  size_t max_declined_labeled = 200;
  /// When true (default), each iteration waits for its retrain to publish
  /// before re-running the batch — the historical behaviour, and what the
  /// loop's convergence story assumes. False = fire-and-forget: the
  /// request is issued (coalescing with any in-flight run under the
  /// pipeline's retrain policy) and the loop proceeds on the ensemble it
  /// has; `last_retrain()` exposes the pending future.
  bool wait_for_retrain = true;
};

/// One loop iteration's record (the Figure 2 cycle).
struct IterationTrace {
  size_t iteration = 0;
  crowd::PrecisionEstimate sampled_precision;  // what the crowd saw
  ml::EvalSummary true_quality;  // against ground truth, for reporting
  size_t rules_added = 0;
  size_t labels_added = 0;
  size_t crowd_questions = 0;
  bool accepted = false;  // batch passed the precision bar
};

/// Result of running a batch through the loop.
struct FeedbackLoopResult {
  std::vector<IterationTrace> iterations;
  bool accepted = false;
  ml::EvalSummary final_quality;
};

/// Drives the §3.3 evaluation loop: classify the batch, crowd-verify a
/// sample, and — while the sampled precision is below the bar — hand the
/// flagged pairs to the analyst (who writes rules and relabels), fold the
/// feedback into the pipeline, and rerun the batch.
class FeedbackLoop {
 public:
  FeedbackLoop(ChimeraPipeline& pipeline, SimulatedAnalyst& analyst,
               crowd::CrowdSimulator& crowd,
               FeedbackLoopConfig config = {});

  /// Processes one batch (with ground truth attached for the crowd oracle
  /// and for the true-quality trace).
  FeedbackLoopResult RunBatch(const std::vector<data::LabeledItem>& batch);

  /// The most recent retrain request's future (invalid before the first
  /// request). With `wait_for_retrain` false this is how callers join the
  /// in-flight training, e.g. at end of stream.
  std::shared_future<RetrainReport> last_retrain() const {
    return last_retrain_;
  }

 private:
  ChimeraPipeline& pipeline_;
  SimulatedAnalyst& analyst_;
  crowd::CrowdSimulator& crowd_;
  FeedbackLoopConfig config_;
  Rng rng_{991};
  std::shared_future<RetrainReport> last_retrain_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_FEEDBACK_LOOP_H_
