#ifndef RULEKIT_CHIMERA_PIPELINE_H_
#define RULEKIT_CHIMERA_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/chimera/gate_keeper.h"
#include "src/chimera/voting.h"
#include "src/data/product.h"
#include "src/engine/rule_classifier.h"
#include "src/ml/ensemble.h"
#include "src/ml/features.h"
#include "src/ml/knn.h"
#include "src/ml/logreg.h"
#include "src/ml/naive_bayes.h"
#include "src/rules/repository.h"

namespace rulekit::chimera {

/// Pipeline composition knobs (also the ablation switches for the
/// benchmarks: learning-only vs rules-only vs both).
struct PipelineConfig {
  bool use_rules = true;
  bool use_learning = true;
  double rule_weight = 1.0;      // analysts' rules are trusted most
  double attr_weight = 0.9;
  double learning_weight = 0.7;
  VotingOptions voting;
};

/// Where each item of a batch ended up.
struct BatchReport {
  size_t total = 0;
  size_t gate_classified = 0;  // classified by the Gate Keeper memo
  size_t gate_rejected = 0;    // unprocessable -> manual queue
  size_t classified = 0;       // classified by voting (net of filtering)
  size_t filtered = 0;         // voting winner vetoed by the Filter
  size_t suppressed = 0;       // type currently scaled down
  size_t declined = 0;         // low confidence -> manual queue
  /// Final prediction per item (nullopt = unclassified).
  std::vector<std::optional<std::string>> predictions;

  double coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(gate_classified + classified) /
                            static_cast<double>(total);
  }
};

/// The Chimera system (Figure 2): Gate Keeper -> {rule-based,
/// attribute/value, learning ensemble} classifiers -> Voting Master ->
/// Filter -> Result, with scale-down/scale-up controls and a versioned
/// rule repository underneath.
class ChimeraPipeline {
 public:
  explicit ChimeraPipeline(PipelineConfig config = {});

  // ---- rules -------------------------------------------------------------

  /// Adds rules through the repository (audited) and rebuilds the rule
  /// index.
  Status AddRules(std::vector<rules::Rule> new_rules,
                  std::string_view author);

  rules::RuleRepository& repository() { return *repo_; }
  const rules::RuleSet& rule_set() const { return repo_->rules(); }

  /// Re-derives classifier state after direct rule-set mutations.
  void RebuildRules();

  // ---- learning ----------------------------------------------------------

  /// Accumulates labeled training data.
  void AddTrainingData(std::vector<data::LabeledItem> labeled);

  /// Retrains the learning ensemble from scratch on all accumulated data.
  void RetrainLearning();

  size_t training_size() const { return training_data_.size(); }

  // ---- scale down / up (§2.2 requirement 3) -------------------------------

  /// Suppresses all predictions of one type (and disables its rules).
  void ScaleDownType(const std::string& type, std::string_view author,
                     std::string_view reason);

  /// Lifts a suppression (rules must be re-enabled via the repository or a
  /// checkpoint restore).
  void ScaleUpType(const std::string& type);

  const std::unordered_set<std::string>& suppressed_types() const {
    return suppressed_;
  }

  // ---- classification ----------------------------------------------------

  /// Classifies one item.
  std::optional<std::string> Classify(const data::ProductItem& item) const;

  /// Classifies a batch with full stage accounting.
  BatchReport ProcessBatch(const std::vector<data::ProductItem>& items) const;

  GateKeeper& gate_keeper() { return gate_; }
  const PipelineConfig& config() const { return config_; }

 private:
  void RebuildVoting();

  PipelineConfig config_;
  std::shared_ptr<rules::RuleRepository> repo_;
  std::shared_ptr<const rules::RuleSet> rules_view_;  // aliases repo_
  GateKeeper gate_;
  std::shared_ptr<engine::RuleBasedClassifier> rule_classifier_;
  std::shared_ptr<engine::AttrValueClassifier> attr_classifier_;
  std::shared_ptr<ml::FeatureExtractor> features_;
  std::shared_ptr<ml::EnsembleClassifier> ensemble_;
  std::unique_ptr<VotingMaster> voting_;
  std::unique_ptr<Filter> filter_;
  std::unordered_set<std::string> suppressed_;
  std::vector<data::LabeledItem> training_data_;
  bool learning_trained_ = false;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_PIPELINE_H_
