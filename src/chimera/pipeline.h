#ifndef RULEKIT_CHIMERA_PIPELINE_H_
#define RULEKIT_CHIMERA_PIPELINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/chimera/gate_keeper.h"
#include "src/chimera/voting.h"
#include "src/common/thread_pool.h"
#include "src/data/product.h"
#include "src/engine/rule_classifier.h"
#include "src/ml/ensemble.h"
#include "src/ml/features.h"
#include "src/ml/knn.h"
#include "src/ml/logreg.h"
#include "src/ml/naive_bayes.h"
#include "src/rules/repository.h"

namespace rulekit::chimera {

/// Pipeline composition knobs (also the ablation switches for the
/// benchmarks: learning-only vs rules-only vs both).
struct PipelineConfig {
  bool use_rules = true;
  bool use_learning = true;
  double rule_weight = 1.0;      // analysts' rules are trusted most
  double attr_weight = 0.9;
  double learning_weight = 0.7;
  VotingOptions voting;
  /// Worker threads for ProcessBatch (0 or 1 = sequential). The pool is
  /// shared by concurrent batches; each batch waits only on its own work.
  size_t batch_threads = 0;
};

/// Where each item of a batch ended up.
struct BatchReport {
  size_t total = 0;
  size_t gate_classified = 0;  // classified by the Gate Keeper memo
  size_t gate_rejected = 0;    // unprocessable -> manual queue
  size_t classified = 0;       // classified by voting (net of filtering)
  size_t filtered = 0;         // voting winner vetoed by the Filter
  size_t suppressed = 0;       // type currently scaled down
  size_t declined = 0;         // low confidence -> manual queue
  /// Final prediction per item (nullopt = unclassified).
  std::vector<std::optional<std::string>> predictions;

  double coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(gate_classified + classified) /
                            static_cast<double>(total);
  }
};

/// Everything one classification needs, bound to one immutable rule-set
/// version: classifiers, voting master, filter, and the suppressed-type
/// set. Writers build a fresh snapshot and swap the pipeline's pointer
/// atomically; readers acquire the pointer once per batch (or per item)
/// and keep the whole bundle alive via shared_ptr for as long as they
/// need it. Rule updates therefore never block or corrupt in-flight
/// classification — a batch finishes on the version it started with.
struct PipelineSnapshot {
  std::shared_ptr<const rules::RuleSet> rules;
  std::shared_ptr<engine::RuleBasedClassifier> rule_classifier;
  std::shared_ptr<engine::AttrValueClassifier> attr_classifier;
  std::shared_ptr<ml::EnsembleClassifier> ensemble;  // null until trained
  std::shared_ptr<const VotingMaster> voting;
  std::shared_ptr<const Filter> filter;
  std::unordered_set<std::string> suppressed;
  uint64_t version = 0;
};

/// The Chimera system (Figure 2): Gate Keeper -> {rule-based,
/// attribute/value, learning ensemble} classifiers -> Voting Master ->
/// Filter -> Result, with scale-down/scale-up controls and a versioned
/// rule repository underneath.
///
/// Concurrency model (snapshot-isolated serving core):
///  - Readers (Classify, ProcessBatch) are lock-free apart from two
///    pointer loads: they pin the current PipelineSnapshot and the gate
///    keeper's memo version, then classify against those. They never see
///    a half-applied rule update.
///  - Writers (AddRules, RetrainLearning, ScaleDownType/UpType,
///    RebuildRules, direct repository edits + RebuildRules) serialize on
///    a writer mutex, mutate the repository/writer state, rebuild the
///    derived classifiers against a fresh immutable rule-set copy, and
///    publish the new snapshot with one pointer swap.
///  - GateKeeper::Memoize is its own (copy-on-write) writer path and
///    needs no snapshot republish.
/// ProcessBatch additionally fans work out over a shared ThreadPool when
/// `config.batch_threads > 1`: gate decisions, the indexed regex batch
/// executor, member voting, and the finalize stage all run on sharded
/// item ranges, with per-chunk partial BatchReports merged in chunk
/// order, so parallel output is identical to the sequential path.
class ChimeraPipeline {
 public:
  explicit ChimeraPipeline(PipelineConfig config = {});

  // ---- rules -------------------------------------------------------------

  /// Adds rules through the repository (audited) and publishes a new
  /// snapshot. In-flight batches keep classifying on the old one.
  Status AddRules(std::vector<rules::Rule> new_rules,
                  std::string_view author);

  /// The underlying repository. Direct mutations (checkpoint restore,
  /// retire, ...) must be followed by RebuildRules() to become visible to
  /// serving.
  rules::RuleRepository& repository() { return *repo_; }
  const rules::RuleSet& rule_set() const { return repo_->rules(); }

  /// Re-derives classifier state after direct rule-set mutations and
  /// publishes it as a new snapshot.
  void RebuildRules();

  /// Version of the currently served snapshot (bumps on every publish).
  uint64_t snapshot_version() const;

  // ---- learning ----------------------------------------------------------

  /// Accumulates labeled training data.
  void AddTrainingData(std::vector<data::LabeledItem> labeled);

  /// Retrains the learning ensemble from scratch on all accumulated data
  /// and publishes the result as a new snapshot.
  void RetrainLearning();

  size_t training_size() const;

  // ---- scale down / up (§2.2 requirement 3) -------------------------------

  /// Suppresses all predictions of one type (and disables its rules).
  void ScaleDownType(const std::string& type, std::string_view author,
                     std::string_view reason);

  /// Lifts a suppression (rules must be re-enabled via the repository or a
  /// checkpoint restore).
  void ScaleUpType(const std::string& type);

  /// Writer-side view; safe when no writer is concurrently scaling.
  const std::unordered_set<std::string>& suppressed_types() const {
    return suppressed_;
  }

  // ---- gate keeper -------------------------------------------------------

  /// Records a confirmed (title -> type) pair; visible to batches that
  /// start after the call.
  void Memoize(const std::string& title, const std::string& type);

  GateKeeper& gate_keeper() { return gate_; }

  // ---- classification ----------------------------------------------------

  /// Classifies one item against the current snapshot.
  std::optional<std::string> Classify(const data::ProductItem& item) const;

  /// Classifies a batch with full stage accounting. Acquires one snapshot
  /// for the whole batch; parallel over `config.batch_threads` workers.
  BatchReport ProcessBatch(const std::vector<data::ProductItem>& items) const;

  const PipelineConfig& config() const { return config_; }

 private:
  /// Builds classifiers/voting/filter for the repository's current rules
  /// and swaps the published snapshot. Caller holds mu_.
  void RepublishLocked();

  std::shared_ptr<const PipelineSnapshot> CurrentSnapshot() const;

  PipelineConfig config_;
  std::shared_ptr<rules::RuleRepository> repo_;
  GateKeeper gate_;

  /// Serializes writers (rule/learning/suppression mutations).
  mutable std::mutex mu_;
  /// Writer-side state folded into each published snapshot.
  std::unordered_set<std::string> suppressed_;
  std::vector<data::LabeledItem> training_data_;
  std::shared_ptr<ml::EnsembleClassifier> ensemble_;  // null until trained
  uint64_t version_ = 0;

  /// The published snapshot; guarded by snapshot_mu_ (pointer swap only).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const PipelineSnapshot> snapshot_;

  /// Shared worker pool for batch serving (null when sequential).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_PIPELINE_H_
