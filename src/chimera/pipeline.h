#ifndef RULEKIT_CHIMERA_PIPELINE_H_
#define RULEKIT_CHIMERA_PIPELINE_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/chimera/gate_keeper.h"
#include "src/chimera/request.h"
#include "src/chimera/trainer.h"
#include "src/chimera/voting.h"
#include "src/common/thread_pool.h"
#include "src/data/product.h"
#include "src/engine/hot_cache.h"
#include "src/engine/rule_classifier.h"
#include "src/engine/sharded_classifier.h"
#include "src/ml/ensemble.h"
#include "src/ml/features.h"
#include "src/ml/knn.h"
#include "src/ml/logreg.h"
#include "src/ml/naive_bayes.h"
#include "src/rules/repository.h"
#include "src/storage/rule_store.h"

namespace rulekit::chimera {

/// Pipeline composition knobs (also the ablation switches for the
/// benchmarks: learning-only vs rules-only vs both).
struct PipelineConfig {
  bool use_rules = true;
  bool use_learning = true;
  double rule_weight = 1.0;      // analysts' rules are trusted most
  double attr_weight = 0.9;
  double learning_weight = 0.7;
  VotingOptions voting;
  /// Worker threads for batch classification (0 or 1 = sequential). The pool is
  /// shared by concurrent batches; each batch waits only on its own work.
  size_t batch_threads = 0;
  /// Rule repository shards. An edit republishes only the shards it
  /// touched (index rebuild cost scales with the shard, not the rule
  /// base), and writers to disjoint shards proceed concurrently. 1 =
  /// historical monolithic behaviour. Output is byte-identical for any
  /// value.
  size_t rule_shards = 8;
  /// Diagnostic hook, fired once per shard rebuild (with the shard index)
  /// while the rebuild runs outside every pipeline lock. Tests use it to
  /// prove disjoint-shard writers overlap; leave unset in production.
  std::function<void(uint32_t)> publish_probe;
  /// When non-empty, the pipeline opens a durable rule store rooted here:
  /// existing state is recovered before the first snapshot is composed,
  /// and from then on every committed rule mutation is written ahead to
  /// the store's log before it is published. Empty = in-memory only
  /// (historical behaviour). Open failures do not abort construction —
  /// the pipeline falls back to in-memory and storage_status() reports
  /// the error.
  std::string storage_dir;
  /// Storage tuning (fsync policy, compaction threshold, dictionaries).
  /// `storage.shard_count` is ignored: `rule_shards` governs.
  storage::StoreOptions storage;
  /// When the background trainer runs a requested retrain (min-interval /
  /// min-new-examples gates, max-queue-age deferral — see trainer.h). The
  /// default gates nothing, so every request trains: that is what keeps
  /// the synchronous RetrainLearning() wrapper byte-identical to the
  /// historical blocking call. FeedbackLoop / FirstResponder callers that
  /// fire-and-forget set real gates here.
  RetrainPolicy retrain;
  /// Hot-title result cache: automatic cross-batch memoization of
  /// confident voting winners (admitted after `hot_cache.admit_after`
  /// sightings, striped LRU eviction, version-tag invalidation — see
  /// DESIGN.md §6). Off by default, like `batch_threads`: enabling it
  /// serves repeats of a hot title from the cached winner, so items that
  /// share a title but differ in attributes collapse to one result
  /// (exactly the Gate Keeper memo semantics). First-sight output is
  /// byte-identical with the cache on or off. When enabled, each tenant
  /// gets its own independently-bounded cache partition built from this
  /// config (or its override below).
  engine::HotCacheConfig hot_cache;
  /// Per-tenant knobs (see DESIGN.md "Multi-tenancy"). A tenant listed
  /// here gets its own hot-cache bounds/TTL and/or retrain gates; absent
  /// fields (and absent tenants) inherit the pipeline-wide `hot_cache` /
  /// `retrain` above. Keys are tenant ids ("" = the default tenant).
  struct TenantOverrides {
    std::optional<engine::HotCacheConfig> hot_cache;
    /// Only the gate knobs (min_interval, min_new_examples,
    /// max_queue_age) are honored; the hooks always come from `retrain`.
    std::optional<RetrainPolicy> retrain;
  };
  std::map<std::string, TenantOverrides> tenants;
  /// Optional title sample for corpus-aware rule-index builds, typically
  /// the offline optimizer's `OptimizationPlan::index_sample`: every shard
  /// republish re-buckets rules onto the required-literal set that is
  /// rarest on these titles (see RuleIndex's corpus-aware Build).
  /// Classification output is identical with or without it — only the
  /// per-item candidate sets shrink. Null = structural index build.
  std::shared_ptr<const std::vector<std::string>> index_sample_titles;
};

/// One shard's serving state, bound to one immutable shard snapshot: the
/// shard's rules plus the classifiers/filter built against them (index
/// construction included). Rebuilt only when its shard's version moves;
/// the other shards' servings are reused pointer-for-pointer across
/// publishes.
struct ShardServing {
  uint32_t shard_index = 0;
  uint64_t rule_version = 0;
  /// Per-tenant version counters pinned with the rules (key "" is the
  /// default tenant). Tenant-scoped cache tags hash these instead of
  /// `rule_version`, so one tenant's edits never invalidate another's
  /// cached results.
  std::map<std::string, uint64_t> tenant_versions;
  /// The full pinned shard rule set, all tenants mixed (audit/diagnostic
  /// view; serving goes through the partitions below).
  std::shared_ptr<const rules::RuleSet> rules;
  /// Default-tenant build: classifiers/filter over the shard's shared
  /// ("" tenant) rules only. When the shard hosts no foreign-tenant
  /// rules these are built over `rules` itself — no extra copy, and
  /// byte-identical single-tenant serving.
  std::shared_ptr<const engine::RuleBasedClassifier> rule_classifier;
  std::shared_ptr<const engine::AttrValueClassifier> attr_classifier;
  std::shared_ptr<const Filter> filter;
  /// One partition per non-default tenant owning rules in this shard.
  /// A tenant's serving view stacks its partitions after every shard's
  /// default build (shared rules serve everyone; a tenant's own rules
  /// serve only it).
  struct TenantPartition {
    std::shared_ptr<const rules::RuleSet> rules;
    std::shared_ptr<const engine::RuleBasedClassifier> rule_classifier;
    std::shared_ptr<const engine::AttrValueClassifier> attr_classifier;
    std::shared_ptr<const Filter> filter;
  };
  std::map<std::string, TenantPartition> tenants;
};

/// Everything one classification needs, pinned coherently: a vector of
/// per-shard servings (each at its own shard version), the sharded
/// classifier/filter wrappers that merge them, the learning ensemble,
/// voting master, and the suppressed-type set. Writers compose a fresh
/// snapshot (reusing unchanged shards' servings) and swap the pipeline's
/// pointer atomically; readers acquire the pointer once per batch (or per
/// item) and keep the whole bundle alive via shared_ptr for as long as
/// they need it. Rule updates therefore never block or corrupt in-flight
/// classification — a batch finishes on the version it started with.
struct PipelineSnapshot {
  std::vector<std::shared_ptr<const ShardServing>> shards;
  std::shared_ptr<engine::ShardedRuleClassifier> rule_classifier;
  std::shared_ptr<engine::ShardedAttrValueClassifier> attr_classifier;
  std::shared_ptr<ml::EnsembleClassifier> ensemble;  // null until trained
  std::shared_ptr<const VotingMaster> voting;
  std::shared_ptr<const ShardedFilter> filter;
  std::unordered_set<std::string> suppressed;
  /// Publish sequence number (bumps on every snapshot swap).
  uint64_t version = 0;
  /// Sum of the pinned shard rule versions (the repository's composite
  /// version this snapshot serves).
  uint64_t composite_rule_version = 0;
  /// Order-sensitive hash of every shard's pinned rule version. Unlike
  /// the sum above, two different shard-version vectors cannot (in
  /// practice) fingerprint alike — concurrent writers to disjoint shards
  /// can publish {A=2,B=1} and {A=1,B=2}, which sum identically but must
  /// not validate each other's cache entries.
  uint64_t rule_state_fingerprint = 0;
  /// Generation of the non-rule serving inputs: bumps on every ensemble
  /// install (RetrainLearning) and every suppressed-type edit
  /// (ScaleDownType / ScaleUpType), which change classification without
  /// necessarily committing a rule mutation.
  uint64_t semantic_generation = 0;

  /// The tag hot-result-cache entries computed against this snapshot are
  /// stored (and validated) under: any rule commit, retrain, or
  /// suppression edit changes it, so stale entries drop on read.
  engine::VersionTag result_tag() const {
    return {rule_state_fingerprint, semantic_generation};
  }

  /// One non-default tenant's composed serving view: every shard's
  /// default build (shared rules) plus the tenant's own partitions,
  /// positionally aligned across classifier/filter so the batch
  /// executors line up, with the tenant's ensemble (falling back to the
  /// shared one), merged suppression set, and a tenant-scoped version
  /// tag hashed from per-shard ("" , tenant) version-counter pairs — so
  /// a foreign tenant's commits never stale-drop this tenant's cache
  /// entries, while shared-rule commits invalidate everyone's.
  struct TenantView {
    std::shared_ptr<engine::ShardedRuleClassifier> rule_classifier;
    std::shared_ptr<engine::ShardedAttrValueClassifier> attr_classifier;
    std::shared_ptr<const ShardedFilter> filter;
    std::shared_ptr<const VotingMaster> voting;
    std::shared_ptr<ml::EnsembleClassifier> ensemble;  // may equal shared
    std::unordered_set<std::string> suppressed;  // platform-wide ∪ own
    engine::VersionTag tag;
  };
  /// Views for every tenant with rules, training state, or suppressions.
  /// A tenant absent here serves the default view (plus its own cache
  /// partition) — correct, since it has no tenant-specific state yet.
  std::map<std::string, TenantView> tenant_views;
};

/// The Chimera system (Figure 2): Gate Keeper -> {rule-based,
/// attribute/value, learning ensemble} classifiers -> Voting Master ->
/// Filter -> Result, with scale-down/scale-up controls and a versioned,
/// sharded rule repository underneath.
///
/// Concurrency model (sharded snapshot-isolated serving core):
///  - Readers (Classify) are lock-free apart from two
///    pointer loads: they pin the current PipelineSnapshot and the gate
///    keeper's memo version, then classify against those. They never see
///    a half-applied rule update.
///  - Writers serialize per *shard*, not globally: a mutation locks only
///    the repository shards it touches, then rebuilds only those shards'
///    classifiers/indices (outside every lock) and composes a new
///    snapshot from the refreshed cache. Edits to disjoint shards
///    proceed concurrently end to end.
///  - Mutations go through the transactional API (Mutate / AddRules /
///    ScaleDownType / Checkpoint+RestoreCheckpoint), which publishes
///    exactly once per commit — and, when `config.storage_dir` is set,
///    write-ahead-logs every commit before publication, so any state a
///    reader observes survives a crash.
///  - Retraining runs on a dedicated background trainer thread:
///    RequestRetrain() returns a future immediately, bursts coalesce
///    into at most one pending run (latest data wins), and the run
///    trains outside all locks against a copied data snapshot — so
///    training blocks neither the caller nor rule writers. The
///    synchronous RetrainLearning() wrapper just requests and waits.
///  - GateKeeper::Memoize is its own (copy-on-write) writer path and
///    needs no snapshot republish.
/// Batch classification additionally fans work out over a shared ThreadPool when
/// `config.batch_threads > 1`: gate decisions, the per-shard indexed
/// regex batch executors, member voting, and the finalize stage all run
/// on sharded item ranges, with per-chunk partial BatchReports merged in
/// chunk order, so parallel output is identical to the sequential path —
/// and identical for any shard count.
class ChimeraPipeline {
 public:
  explicit ChimeraPipeline(PipelineConfig config = {});

  /// Stops the background trainer first (drains an in-flight run,
  /// abandons a queued one — its futures resolve as kAbandoned), so no
  /// training publish can touch the pipeline during member teardown.
  ~ChimeraPipeline();

  // ---- rules -------------------------------------------------------------

  /// Adds rules through the repository (one audited transaction, scoped
  /// to `tenant` — added rules are stamped as that tenant's and serve
  /// only its view unless `tenant` is the default) and publishes the
  /// touched shards once. In-flight batches keep classifying on the old
  /// snapshot. On failure the already-applied prefix is still published
  /// (matching the historical loop semantics).
  Status AddRules(std::vector<rules::Rule> new_rules, std::string_view author,
                  const rules::TenantId& tenant = {});

  /// The transactional edit path: stages edits through `fn`, commits them
  /// as one repository transaction (scoped to `tenant`: a non-default
  /// tenant may only touch its own rules), and republishes exactly the
  /// shards the commit touched — once, regardless of how many edits rode
  /// along. If `fn` returns an error nothing is applied or published.
  Status Mutate(std::string_view author,
                const std::function<Status(rules::RuleTransaction&)>& fn,
                const rules::TenantId& tenant = {});

  /// Checkpoints all rule states (see RuleRepository::Checkpoint); no
  /// republish needed since rules are unchanged. Fails — with no
  /// checkpoint registered — when the durable journal rejects the append.
  Result<uint64_t> Checkpoint(std::string_view author);

  /// Restores a checkpoint and republishes every shard.
  Status RestoreCheckpoint(uint64_t version, std::string_view author);

  /// Read-only repository access (audit log, history, persistence).
  /// All mutation flows through Mutate() / AddRules() / Checkpoint() /
  /// RestoreCheckpoint() / ScaleDownType() — the historical deprecated
  /// writer accessors are gone.
  const rules::RuleRepository& repository() const { return *repo_; }

  /// Merged view of all shards' rules (writer-side; re-fetch after edits).
  const rules::RuleSet& rule_set() const { return repo_->rules(); }

  /// Version of the currently served snapshot (bumps on every publish).
  uint64_t snapshot_version() const;

  // ---- durability --------------------------------------------------------

  /// The durable store backing this pipeline; null when storage_dir was
  /// empty or the open failed (see storage_status()).
  storage::DurableRuleStore* storage() const { return store_.get(); }

  /// OK when no storage was requested or the store opened cleanly; the
  /// open/recovery error otherwise (the pipeline then runs in-memory).
  const Status& storage_status() const { return storage_status_; }

  /// True when every committed mutation is currently journaled: storage
  /// was requested, opened cleanly, and its WAL is still alive. The
  /// admission check behind ClassifyOptions::require_durable.
  bool durable() const {
    return store_ != nullptr && storage_status_.ok() && store_->journal_live();
  }

  // ---- learning ----------------------------------------------------------

  /// Accumulates labeled training data into `tenant`'s pool. A
  /// non-default tenant's pool trains that tenant's own ensemble; until
  /// it has trained one, its view votes with the shared ensemble.
  void AddTrainingData(std::vector<data::LabeledItem> labeled,
                       const rules::TenantId& tenant = {});

  /// Asks the background trainer to retrain `tenant`'s ensemble and
  /// returns immediately — the future resolves when the request's run
  /// (or skip, per `config.retrain` / the tenant's override) completes.
  /// Requests arriving while a run is in flight coalesce per tenant into
  /// at most one pending run that snapshots its data when it *starts*
  /// (latest data wins); tenants drain round-robin, each gated only by
  /// its own history. The run trains outside every pipeline lock, then
  /// installs the ensemble, bumps the tenant's semantic generation, and
  /// publishes exactly as the historical synchronous path did.
  ///
  /// `urgent` is the DriftResponder's severe-alarm escalation: the
  /// request bypasses the tenant's min_interval / min_new_examples gates
  /// (it still coalesces into the tenant's one slot), so an
  /// unambiguously degraded tenant retrains now instead of waiting out
  /// its throttle.
  std::shared_future<RetrainReport> RequestRetrain(
      const rules::TenantId& tenant = {}, bool urgent = false);

  /// Synchronous wrapper: request + wait. With the default (ungated)
  /// retrain policy this is observably identical to the historical
  /// blocking RetrainLearning — same data, same deterministic learners,
  /// same publish — just executed on the trainer thread.
  void RetrainLearning(const rules::TenantId& tenant = {});

  size_t training_size(const rules::TenantId& tenant = {}) const;

  /// Generation of the non-rule serving inputs currently published
  /// (bumps on ensemble installs and suppression edits). Monotone
  /// non-decreasing across snapshot swaps.
  uint64_t semantic_generation() const;

  // ---- scale down / up (§2.2 requirement 3) -------------------------------

  /// Suppresses all predictions of one type (and disables its rules),
  /// republishing only the shards that hosted them. Scoped to `tenant`:
  /// the default tenant's scale-down is the platform-wide emergency
  /// lever (suppresses the type for every tenant and disables every
  /// tenant's rules, the historical behaviour); a non-default tenant's
  /// suppresses the type in its own view only and disables only its own
  /// rules. A non-OK status means the scale-down took effect in memory
  /// but could not be journaled (the suppression and disables are still
  /// live and published).
  Status ScaleDownType(const std::string& type, std::string_view author,
                       std::string_view reason,
                       const rules::TenantId& tenant = {});

  /// Lifts a suppression in `tenant`'s scope (rules must be re-enabled
  /// via a transaction or a checkpoint restore).
  void ScaleUpType(const std::string& type,
                   const rules::TenantId& tenant = {});

  /// Writer-side view; safe when no writer is concurrently scaling.
  const std::unordered_set<std::string>& suppressed_types() const {
    return suppressed_;
  }

  // ---- gate keeper -------------------------------------------------------

  /// Records a confirmed (title -> type) pair; visible to batches that
  /// start after the call.
  void Memoize(const std::string& title, const std::string& type);

  /// Bulk Memoize: one memo clone + one publish for the whole span (the
  /// feedback-loop / first-responder confirmation paths).
  void MemoizeAll(
      std::span<const std::pair<std::string, std::string>> pairs);

  GateKeeper& gate_keeper() { return gate_; }

  // ---- hot result cache --------------------------------------------------

  /// The default tenant's hot-title result cache; null when
  /// `config.hot_cache.enabled` is false. Counters aggregate across
  /// batches (per-batch numbers live in BatchReport).
  engine::HotResultCache* hot_cache() const {
    return caches_ == nullptr ? nullptr : &caches_->defaults();
  }

  /// All tenants' cache partitions; null when the cache is disabled.
  engine::TenantCacheSet* tenant_caches() const { return caches_.get(); }

  // ---- classification ----------------------------------------------------

  /// THE classification entry point: every path into the pipeline — the
  /// serving front-end's wire requests and in-process batches alike —
  /// funnels through this one method, so local and remote callers are
  /// byte-identical by construction. Classifies `request.items` through
  /// `request.tenant`'s
  /// serving view (shared rules + the tenant's own rules/ensemble/
  /// suppressions) and its cache partition, against one pinned snapshot;
  /// parallel over `config.batch_threads` workers.
  ///
  /// Status codes (the serving wire format pins their mapping):
  ///   OK                — classified; see report
  ///   kDeadlineExceeded — request.deadline passed before we started
  ///   kUnavailable      — options.require_durable and the journal is
  ///                       severed (open failure or a dead WAL)
  /// On any non-OK status the report carries total + empty predictions.
  ClassifyResponse Classify(const ClassifyRequest& request) const;

  // ---- replication ------------------------------------------------------

  /// Applies commit records shipped from a primary's log, in order, and
  /// publishes one fresh snapshot for the whole batch. The follower-side
  /// apply path: each record goes through RuleRepository::Replay (which
  /// never fires the journal hook — a follower's own mirror WAL, when it
  /// keeps one, is written by the replication layer, not here), so a
  /// follower that replays the primary's full log converges to the exact
  /// rule state, audit log, logical clock, and shard versions. Fails on
  /// the first inconsistent record; earlier records in the span stay
  /// applied (mirroring recovery semantics).
  Status ApplyReplicated(const rules::CommitRecord& record);
  Status ApplyReplicated(std::span<const rules::CommitRecord> records);

  /// Every tenant known to any layer — rule ownership, training/serving
  /// runtime, or a live cache partition. Default ("") first, the rest
  /// sorted.
  std::vector<std::string> Tenants() const;

  const PipelineConfig& config() const { return config_; }

 private:
  /// Rebuilds the serving state of the given shards if their repository
  /// versions moved (classifier/index construction runs outside every
  /// pipeline lock), then composes and swaps a new snapshot. Always
  /// publishes, even when no shard changed (suppression edits and the
  /// historical always-republish semantics rely on it).
  void RepublishShards(const std::vector<rules::ShardKey>& dirty);

  /// RepublishShards over every shard.
  void RepublishAll();

  /// The classification engine behind Classify(ClassifyRequest): one
  /// pinned snapshot, staged batch execution, full accounting. Factored
  /// out so the public entry point is exactly admission (deadline /
  /// durability checks) + this.
  BatchReport RunBatch(std::span<const data::ProductItem> items,
                       const rules::TenantId& tenant) const;

  /// Composes a snapshot from shard_cache_ + writer state and swaps it
  /// in. Caller holds state_mu_.
  void ComposeAndSwapLocked();

  std::shared_ptr<const PipelineSnapshot> CurrentSnapshot() const;

  /// One full train-and-publish cycle (the historical RetrainLearning
  /// body) for one tenant, executed on the trainer thread. Copies the
  /// tenant's data under state_mu_, trains outside all locks, installs +
  /// publishes under state_mu_, then syncs the durable store so a
  /// journaling failure is surfaced in the report instead of swallowed.
  RetrainReport RetrainNow(const std::string& tenant);

  PipelineConfig config_;
  /// Owns the repository when storage is enabled; its journal hook stays
  /// installed for the repository's whole life, so it is declared before
  /// repo_ (destroyed after it).
  std::unique_ptr<storage::DurableRuleStore> store_;
  Status storage_status_;
  std::shared_ptr<rules::RuleRepository> repo_;
  GateKeeper gate_;
  /// Null when disabled. Per-tenant partitions, each internally
  /// synchronized (striped mutexes); entries self-invalidate against the
  /// serving view's tag, so no writer path ever touches them.
  std::unique_ptr<engine::TenantCacheSet> caches_;

  /// One non-default tenant's writer-side learning/suppression state
  /// (guarded by state_mu_ with the rest). The default tenant's lives in
  /// the historical members below — unchanged layout, unchanged
  /// single-tenant behaviour.
  struct TenantRuntime {
    std::vector<data::LabeledItem> training_data;
    std::shared_ptr<ml::EnsembleClassifier> ensemble;  // null until trained
    std::unordered_set<std::string> suppressed;
    uint64_t semantic_gen = 0;
  };

  /// Guards the writer-side composition state below (NOT the repository —
  /// shard mutations serialize inside RuleRepository per shard).
  mutable std::mutex state_mu_;
  std::vector<std::shared_ptr<const ShardServing>> shard_cache_;
  std::map<std::string, TenantRuntime> tenant_runtime_;  // non-default only
  std::unordered_set<std::string> suppressed_;
  std::vector<data::LabeledItem> training_data_;
  std::shared_ptr<ml::EnsembleClassifier> ensemble_;  // null until trained
  uint64_t version_ = 0;
  /// Bumped (under state_mu_) on every suppression edit and ensemble
  /// install; composed into the snapshot's semantic_generation.
  uint64_t semantic_gen_ = 0;

  /// The published snapshot; guarded by snapshot_mu_ (pointer swap only).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const PipelineSnapshot> snapshot_;

  /// Shared worker pool for batch serving (null when sequential).
  std::unique_ptr<ThreadPool> pool_;

  /// The background trainer. Declared LAST so it is destroyed FIRST:
  /// its destructor drains/abandons all training work while every other
  /// member (repo, store, caches, pool) is still alive, and nothing can
  /// publish once it returns.
  std::unique_ptr<BackgroundTrainer> trainer_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_PIPELINE_H_
