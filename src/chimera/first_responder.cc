#include "src/chimera/first_responder.h"

#include <map>

namespace rulekit::chimera {

FirstResponder::FirstResponder(ChimeraPipeline& pipeline,
                               crowd::CrowdSimulator& crowd,
                               FirstResponderConfig config)
    : pipeline_(pipeline), crowd_(crowd), config_(config),
      rng_(config.seed) {}

IncidentReport FirstResponder::Triage(
    const std::vector<data::LabeledItem>& batch, const BatchReport& report) {
  IncidentReport incident;
  const size_t questions_before = crowd_.num_tasks();

  std::vector<size_t> classified;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (report.predictions[i].has_value()) classified.push_back(i);
  }
  auto sample = rng_.SampleWithoutReplacement(
      classified.size(), std::min(config_.sample_size, classified.size()));

  size_t positives = 0;
  std::map<std::string, std::pair<size_t, size_t>> per_type;  // yes, total
  std::vector<std::pair<std::string, std::string>> confirmed;
  for (size_t si : sample) {
    size_t i = classified[si];
    const std::string& predicted = *report.predictions[i];
    bool verdict = crowd_.AskYesNo(predicted == batch[i].label);
    auto& [yes, total] = per_type[predicted];
    ++total;
    if (verdict) {
      ++yes;
      ++positives;
      confirmed.emplace_back(batch[i].item.title, predicted);
    }
  }
  // One memo publish for every crowd-confirmed pair in the sample.
  pipeline_.MemoizeAll(confirmed);
  incident.batch_precision = crowd::WilsonEstimate(positives, sample.size());
  incident.crowd_questions = crowd_.num_tasks() - questions_before;

  if (sample.empty() ||
      incident.batch_precision.estimate >=
          config_.batch_precision_threshold) {
    return incident;  // healthy batch
  }

  incident.incident = true;
  auto checkpoint = pipeline_.Checkpoint("first-responder");
  if (!checkpoint.ok()) {
    // The checkpoint could not be journaled, so no restorable
    // pre-intervention state exists. Scaling down anyway would strand
    // the rules in the disabled state; report the incident and leave
    // them alone (checkpoint stays 0 — Resolve has nothing to undo).
    return incident;
  }
  incident.checkpoint = *checkpoint;
  for (const auto& [type, counts] : per_type) {
    const auto& [yes, total] = counts;
    if (total < config_.min_type_verdicts) continue;
    double precision = static_cast<double>(yes) /
                       static_cast<double>(total);
    if (precision < config_.type_precision_floor) {
      // A journal failure here still scales the type down in memory
      // (emergency lever); record it so Resolve lifts the suppression.
      (void)pipeline_.ScaleDownType(type, "first-responder",
                                    "triage: sampled precision below floor");
      incident.scaled_down_types.push_back(type);
    }
  }
  return incident;
}

Status FirstResponder::Resolve(const IncidentReport& incident) {
  if (!incident.incident) return Status::OK();
  // checkpoint == 0: Triage raised the incident but could not take a
  // restorable checkpoint, so it intervened in nothing — no restore due.
  if (incident.checkpoint == 0) return Status::OK();
  // RestoreCheckpoint republishes every shard; ScaleUpType recomposes the
  // suppression set — no manual rebuild needed.
  RULEKIT_RETURN_IF_ERROR(
      pipeline_.RestoreCheckpoint(incident.checkpoint, "first-responder"));
  for (const auto& type : incident.scaled_down_types) {
    pipeline_.ScaleUpType(type);
  }
  if (config_.retrain_on_resolve) {
    // Fire-and-forget: the responder's job is done once serving is
    // restored; the ensemble refresh coalesces behind any in-flight run.
    last_retrain_ = pipeline_.RequestRetrain();
  }
  return Status::OK();
}

}  // namespace rulekit::chimera
