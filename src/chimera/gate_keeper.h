#ifndef RULEKIT_CHIMERA_GATE_KEEPER_H_
#define RULEKIT_CHIMERA_GATE_KEEPER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/data/product.h"

namespace rulekit::chimera {

/// What the gate keeper decides about an incoming item.
struct GateDecision {
  enum class Kind {
    kPass,       // forward to the classifiers
    kClassified, // immediately classified (memo hit)
    kRejected,   // unprocessable (e.g. empty title) -> manual queue
  };
  Kind kind = Kind::kPass;
  std::string type;  // kClassified only
};

/// The confirmed (lowercased title -> type) memo, published as an
/// immutable snapshot so concurrent batch readers never race with
/// Memoize.
using GateMemo = std::unordered_map<std::string, std::string>;

/// The first stage of Figure 2: "does preliminary processing, and under
/// certain conditions can immediately classify an item". This
/// implementation rejects unprocessable items and short-circuits items
/// whose exact title was already confirmed earlier (a memo of curated
/// results), which is how re-sent catalog items bypass the classifiers.
///
/// Thread-safe: the memo is copy-on-write. Memoize/MemoizeAll (the writer
/// paths) copy the current memo, insert, and atomically publish the new
/// version; Decide and snapshot() read whatever version is current.
/// Batch readers acquire one snapshot per batch so every item in a batch
/// sees the same memo.
class GateKeeper {
 public:
  GateKeeper() : memo_(std::make_shared<const GateMemo>()) {}

  /// Decision against the current memo version.
  GateDecision Decide(const data::ProductItem& item) const;

  /// Decision against a pinned memo snapshot (the per-batch path).
  static GateDecision DecideWith(const GateMemo& memo,
                                 const data::ProductItem& item);

  /// DecideWith when the caller already lowercased the title (the batch
  /// path computes it once and reuses it for the hot-result cache key).
  /// `lowered_title` must be ToLowerAscii(item.title).
  static GateDecision DecideLowered(const GateMemo& memo,
                                    const data::ProductItem& item,
                                    const std::string& lowered_title);

  /// Records a confirmed (title -> type) pair for future short-circuiting.
  /// Publishes a fresh memo version; in-flight readers keep the old one.
  void Memoize(const std::string& title, const std::string& type);

  /// Batched Memoize: clones the memo once for the whole span instead of
  /// once per pair, then publishes one new version. The bulk feedback
  /// paths (crowd-confirmed batches) go through here — memoizing n pairs
  /// costs one copy of the memo, not n.
  void MemoizeAll(std::span<const std::pair<std::string, std::string>> pairs);

  /// The current immutable memo version.
  std::shared_ptr<const GateMemo> snapshot() const;

  size_t memo_size() const { return snapshot()->size(); }

 private:
  mutable std::mutex mu_;            // guards publication of memo_
  std::shared_ptr<const GateMemo> memo_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_GATE_KEEPER_H_
