#ifndef RULEKIT_CHIMERA_GATE_KEEPER_H_
#define RULEKIT_CHIMERA_GATE_KEEPER_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "src/data/product.h"

namespace rulekit::chimera {

/// What the gate keeper decides about an incoming item.
struct GateDecision {
  enum class Kind {
    kPass,       // forward to the classifiers
    kClassified, // immediately classified (memo hit)
    kRejected,   // unprocessable (e.g. empty title) -> manual queue
  };
  Kind kind = Kind::kPass;
  std::string type;  // kClassified only
};

/// The first stage of Figure 2: "does preliminary processing, and under
/// certain conditions can immediately classify an item". This
/// implementation rejects unprocessable items and short-circuits items
/// whose exact title was already confirmed earlier (a memo of curated
/// results), which is how re-sent catalog items bypass the classifiers.
class GateKeeper {
 public:
  GateDecision Decide(const data::ProductItem& item) const;

  /// Records a confirmed (title -> type) pair for future short-circuiting.
  void Memoize(const std::string& title, const std::string& type);

  size_t memo_size() const { return memo_.size(); }

 private:
  std::unordered_map<std::string, std::string> memo_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_GATE_KEEPER_H_
