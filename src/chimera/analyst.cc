#include "src/chimera/analyst.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace rulekit::chimera {

SimulatedAnalyst::SimulatedAnalyst(const data::CatalogGenerator& generator,
                                   AnalystConfig config)
    : generator_(generator), config_(config), rng_(config.seed) {}

std::string SimulatedAnalyst::FreshRuleId(const std::string& prefix) {
  return prefix + "-" + std::to_string(next_id_++);
}

std::string SimulatedAnalyst::NounAlternation(
    const std::vector<std::string>& nouns) {
  // Collapse {x, xs} pairs to "xs?" and escape the rest.
  std::set<std::string> pool(nouns.begin(), nouns.end());
  std::vector<std::string> branches;
  for (const auto& noun : nouns) {
    if (pool.count(noun) == 0) continue;  // consumed by a pair
    std::string plural = noun + "s";
    if (pool.count(plural) > 0) {
      pool.erase(plural);
      branches.push_back(RegexEscape(noun) + "s?");
    } else if (!noun.empty() && noun.back() == 's' &&
               pool.count(noun.substr(0, noun.size() - 1)) > 0) {
      continue;  // singular present; the pair is handled there
    } else {
      branches.push_back(RegexEscape(noun));
    }
    pool.erase(noun);
  }
  return "(" + Join(branches, "|") + ")";
}

std::vector<rules::Rule> SimulatedAnalyst::WriteRulesForType(
    const std::string& type, size_t max_qualifier_rules) {
  std::vector<rules::Rule> out;
  size_t spec_index = generator_.SpecIndexOf(type);
  if (spec_index == data::CatalogGenerator::kNpos) return out;
  const data::TypeSpec& spec = generator_.specs()[spec_index];
  if (spec.head_nouns.empty()) return out;

  std::string nouns = NounAlternation(spec.head_nouns);
  auto head_rule =
      rules::Rule::Whitelist(FreshRuleId("wl-" + type), nouns, type);
  if (head_rule.ok()) {
    ++rules_written_;
    out.push_back(std::move(head_rule).value());
  } else {
    RULEKIT_LOG(kWarning) << "analyst rule failed to compile: "
                          << head_rule.status().ToString();
  }

  size_t qualifier_rules = std::min(max_qualifier_rules,
                                    spec.qualifiers.size());
  for (size_t q = 0; q < qualifier_rules; ++q) {
    std::string pattern = RegexEscape(spec.qualifiers[q]) + ".*" + nouns;
    auto rule = rules::Rule::Whitelist(FreshRuleId("wl-" + type), pattern,
                                       type);
    if (rule.ok()) {
      ++rules_written_;
      out.push_back(std::move(rule).value());
    }
  }
  return out;
}

std::vector<rules::Rule> SimulatedAnalyst::WriteBlacklistsForErrors(
    const std::vector<Misclassification>& errors) {
  std::vector<rules::Rule> out;
  std::set<std::pair<std::string, std::string>> confusions;
  for (const auto& e : errors) {
    if (e.predicted == e.correct) continue;
    confusions.emplace(e.predicted, e.correct);
  }
  for (const auto& [predicted, correct] : confusions) {
    size_t spec_index = generator_.SpecIndexOf(correct);
    if (spec_index == data::CatalogGenerator::kNpos) continue;
    const data::TypeSpec& spec = generator_.specs()[spec_index];
    if (spec.head_nouns.empty()) continue;
    // "items that are really <correct> must not be labeled <predicted>".
    auto rule = rules::Rule::Blacklist(FreshRuleId("bl-" + predicted),
                                       NounAlternation(spec.head_nouns),
                                       predicted);
    if (rule.ok()) {
      ++rules_written_;
      out.push_back(std::move(rule).value());
    }
  }
  return out;
}

std::vector<rules::Rule> SimulatedAnalyst::WriteAttributeRules() {
  std::vector<rules::Rule> out;
  for (const auto& spec : generator_.specs()) {
    if (!spec.has_isbn) continue;
    ++rules_written_;
    out.push_back(rules::Rule::AttributeExists(
        FreshRuleId("attr-" + spec.name), "ISBN", spec.name));
  }
  return out;
}

std::vector<rules::Rule> SimulatedAnalyst::WriteBrandRules() {
  std::unordered_map<std::string, std::set<std::string>> brand_types;
  for (const auto& spec : generator_.specs()) {
    for (const auto& brand : spec.brands) {
      brand_types[brand].insert(spec.name);
    }
  }
  std::vector<rules::Rule> out;
  for (const auto& [brand, types] : brand_types) {
    out.push_back(rules::Rule::AttributeValue(
        FreshRuleId("brand-" + brand), "Brand", brand,
        std::vector<std::string>(types.begin(), types.end())));
    ++rules_written_;
  }
  return out;
}

std::vector<data::LabeledItem> SimulatedAnalyst::LabelItems(
    const std::vector<data::LabeledItem>& items) {
  std::vector<data::LabeledItem> out;
  out.reserve(items.size());
  const auto& specs = generator_.specs();
  for (const auto& li : items) {
    data::LabeledItem labeled = li;
    if (!rng_.Bernoulli(config_.labeling_accuracy) && specs.size() > 1) {
      // A labeling mistake: a random different type.
      for (int attempt = 0; attempt < 4; ++attempt) {
        const auto& wrong = specs[rng_.Uniform(specs.size())].name;
        if (wrong != li.label) {
          labeled.label = wrong;
          break;
        }
      }
    }
    out.push_back(std::move(labeled));
  }
  return out;
}

std::vector<rules::Rule> WriteEventRules(
    const data::EventStreamGenerator& stream) {
  std::vector<rules::Rule> out;
  for (const auto& spec : stream.specs()) {
    for (size_t k = 0; k < spec.keywords.size(); ++k) {
      auto rule = rules::Rule::Whitelist(
          "evt-" + spec.name + "-" + std::to_string(k),
          RegexEscape(spec.keywords[k]), spec.name);
      if (rule.ok()) {
        out.push_back(std::move(rule).value());
      } else {
        RULEKIT_LOG(kWarning) << "event rule failed to compile: "
                              << rule.status().ToString();
      }
    }
  }
  return out;
}

}  // namespace rulekit::chimera
