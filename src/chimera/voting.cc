#include "src/chimera/voting.h"

#include <algorithm>
#include <unordered_map>

namespace rulekit::chimera {

VotingMaster::VotingMaster(VotingOptions options) : options_(options) {}

void VotingMaster::AddMember(std::shared_ptr<ml::Classifier> member,
                             double weight) {
  members_.emplace_back(std::move(member), weight);
}

std::vector<ml::ScoredLabel> VotingMaster::CombineLists(
    const std::vector<const std::vector<ml::ScoredLabel>*>& per_member)
    const {
  std::unordered_map<std::string, double> sums;
  double participating_weight = 0.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    const auto& scored = *per_member[m];
    if (scored.empty()) continue;
    participating_weight += members_[m].second;
    for (const auto& s : scored) {
      sums[s.label] += members_[m].second * s.score;
    }
  }
  std::vector<ml::ScoredLabel> out;
  if (participating_weight <= 0.0) return out;
  out.reserve(sums.size());
  for (const auto& [label, sum] : sums) {
    out.push_back({label, sum / participating_weight});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
  return out;
}

std::optional<ml::ScoredLabel> VotingMaster::DecideFromCombined(
    const std::vector<ml::ScoredLabel>& combined) const {
  if (combined.empty()) return std::nullopt;
  if (combined[0].score < options_.confidence_threshold) return std::nullopt;
  if (combined.size() > 1 &&
      combined[0].score - combined[1].score < options_.min_margin) {
    return std::nullopt;
  }
  return combined[0];
}

std::vector<ml::ScoredLabel> VotingMaster::CombinedScores(
    const data::ProductItem& item) const {
  std::vector<std::vector<ml::ScoredLabel>> scored;
  scored.reserve(members_.size());
  for (const auto& [member, weight] : members_) {
    scored.push_back(member->Predict(item));
  }
  std::vector<const std::vector<ml::ScoredLabel>*> ptrs;
  ptrs.reserve(scored.size());
  for (const auto& s : scored) ptrs.push_back(&s);
  return CombineLists(ptrs);
}

std::optional<ml::ScoredLabel> VotingMaster::Vote(
    const data::ProductItem& item) const {
  return DecideFromCombined(CombinedScores(item));
}

std::vector<std::optional<ml::ScoredLabel>> VotingMaster::VoteBatch(
    const std::vector<const data::ProductItem*>& items, ThreadPool* pool,
    const ml::Classifier* precomputed_member,
    const std::vector<std::vector<ml::ScoredLabel>>* precomputed_scores)
    const {
  std::vector<std::optional<ml::ScoredLabel>> votes(items.size());
  if (items.empty()) return votes;

  // One batch prediction per member (members parallelize internally).
  std::vector<std::vector<std::vector<ml::ScoredLabel>>> owned;
  owned.reserve(members_.size());
  std::vector<const std::vector<std::vector<ml::ScoredLabel>>*> member_scores;
  member_scores.reserve(members_.size());
  for (const auto& [member, weight] : members_) {
    if (precomputed_member != nullptr && member.get() == precomputed_member) {
      member_scores.push_back(precomputed_scores);
    } else {
      owned.push_back(member->PredictBatch(items, pool));
      member_scores.push_back(&owned.back());
    }
  }

  // Combine per item; same arithmetic (member order, weighted average) as
  // the per-item Vote path.
  auto combine = [&](size_t begin, size_t end) {
    std::vector<const std::vector<ml::ScoredLabel>*> ptrs(members_.size());
    for (size_t i = begin; i < end; ++i) {
      for (size_t m = 0; m < members_.size(); ++m) {
        ptrs[m] = &(*member_scores[m])[i];
      }
      votes[i] = DecideFromCombined(CombineLists(ptrs));
    }
  };
  if (pool != nullptr && items.size() > 1) {
    pool->ParallelFor(items.size(), combine);
  } else {
    combine(0, items.size());
  }
  return votes;
}

Filter::Filter(std::shared_ptr<const rules::RuleSet> rules)
    : rules_(std::move(rules)) {
  const auto& all = rules_->rules();
  for (size_t i = 0; i < all.size(); ++i) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    switch (rule.kind()) {
      case rules::RuleKind::kBlacklist:
        blacklist_.push_back(i);
        break;
      case rules::RuleKind::kAttributeValue:
        attrval_.push_back(i);
        break;
      case rules::RuleKind::kPredicate:
        if (!rule.is_positive()) negpred_.push_back(i);
        break;
      default:
        break;
    }
  }
}

bool Filter::NonRegexVetoes(const data::ProductItem& item,
                            const std::string& predicted) const {
  const auto& all = rules_->rules();
  for (size_t i : attrval_) {
    const rules::Rule& rule = all[i];
    if (!rule.Applies(item)) continue;
    const auto& candidates = rule.candidate_types();
    if (std::find(candidates.begin(), candidates.end(), predicted) ==
        candidates.end()) {
      return true;  // prediction inconsistent with the narrowed set
    }
  }
  for (size_t i : negpred_) {
    const rules::Rule& rule = all[i];
    if (rule.target_type() == predicted && rule.Applies(item)) return true;
  }
  return false;
}

bool Filter::Admit(const data::ProductItem& item,
                   const std::string& predicted) const {
  const auto& all = rules_->rules();
  for (size_t i : blacklist_) {
    const rules::Rule& rule = all[i];
    if (rule.target_type() == predicted && rule.Applies(item)) return false;
  }
  return !NonRegexVetoes(item, predicted);
}

bool Filter::AdmitWithMatches(const data::ProductItem& item,
                              const std::string& predicted,
                              const std::vector<size_t>& matched_regex) const {
  const auto& all = rules_->rules();
  for (size_t i : matched_regex) {
    const rules::Rule& rule = all[i];
    if (rule.kind() == rules::RuleKind::kBlacklist &&
        rule.target_type() == predicted) {
      return false;
    }
  }
  return !NonRegexVetoes(item, predicted);
}

}  // namespace rulekit::chimera
