#include "src/chimera/voting.h"

#include <algorithm>
#include <unordered_map>

namespace rulekit::chimera {

VotingMaster::VotingMaster(VotingOptions options) : options_(options) {}

void VotingMaster::AddMember(std::shared_ptr<ml::Classifier> member,
                             double weight) {
  members_.emplace_back(std::move(member), weight);
}

std::vector<ml::ScoredLabel> VotingMaster::CombinedScores(
    const data::ProductItem& item) const {
  std::unordered_map<std::string, double> sums;
  double participating_weight = 0.0;
  for (const auto& [member, weight] : members_) {
    auto scored = member->Predict(item);
    if (scored.empty()) continue;
    participating_weight += weight;
    for (const auto& s : scored) sums[s.label] += weight * s.score;
  }
  std::vector<ml::ScoredLabel> out;
  if (participating_weight <= 0.0) return out;
  out.reserve(sums.size());
  for (const auto& [label, sum] : sums) {
    out.push_back({label, sum / participating_weight});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
  return out;
}

std::optional<ml::ScoredLabel> VotingMaster::Vote(
    const data::ProductItem& item) const {
  auto combined = CombinedScores(item);
  if (combined.empty()) return std::nullopt;
  if (combined[0].score < options_.confidence_threshold) return std::nullopt;
  if (combined.size() > 1 &&
      combined[0].score - combined[1].score < options_.min_margin) {
    return std::nullopt;
  }
  return combined[0];
}

Filter::Filter(std::shared_ptr<const rules::RuleSet> rules)
    : rules_(std::move(rules)) {}

bool Filter::Admit(const data::ProductItem& item,
                   const std::string& predicted) const {
  for (const auto& rule : rules_->rules()) {
    if (!rule.is_active()) continue;
    switch (rule.kind()) {
      case rules::RuleKind::kBlacklist:
        if (rule.target_type() == predicted && rule.Applies(item)) {
          return false;
        }
        break;
      case rules::RuleKind::kAttributeValue: {
        if (!rule.Applies(item)) break;
        const auto& candidates = rule.candidate_types();
        if (std::find(candidates.begin(), candidates.end(), predicted) ==
            candidates.end()) {
          return false;  // prediction inconsistent with the narrowed set
        }
        break;
      }
      case rules::RuleKind::kPredicate:
        if (!rule.is_positive() && rule.target_type() == predicted &&
            rule.Applies(item)) {
          return false;
        }
        break;
      default:
        break;
    }
  }
  return true;
}

}  // namespace rulekit::chimera
