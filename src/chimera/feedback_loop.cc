#include "src/chimera/feedback_loop.h"

#include <algorithm>
#include <set>

namespace rulekit::chimera {

FeedbackLoop::FeedbackLoop(ChimeraPipeline& pipeline,
                           SimulatedAnalyst& analyst,
                           crowd::CrowdSimulator& crowd,
                           FeedbackLoopConfig config)
    : pipeline_(pipeline), analyst_(analyst), crowd_(crowd),
      config_(config) {}

FeedbackLoopResult FeedbackLoop::RunBatch(
    const std::vector<data::LabeledItem>& batch) {
  FeedbackLoopResult result;

  std::vector<data::ProductItem> items;
  items.reserve(batch.size());
  for (const auto& li : batch) items.push_back(li.item);

  for (size_t iteration = 1; iteration <= config_.max_iterations;
       ++iteration) {
    IterationTrace trace;
    trace.iteration = iteration;
    const size_t questions_before = crowd_.num_tasks();

    ClassifyRequest classify_request;
    classify_request.items = items;
    BatchReport report = pipeline_.Classify(classify_request).report;

    // True quality for the trace (ground truth is available here because
    // the generator produced the batch; the production system never sees
    // it).
    std::vector<ml::Observation> observations;
    observations.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      observations.push_back({batch[i].label, report.predictions[i]});
    }
    trace.true_quality = ml::Summarize(observations);

    // Crowd-evaluate a sample of the classified items.
    std::vector<size_t> classified_idx;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (report.predictions[i].has_value()) classified_idx.push_back(i);
    }
    std::vector<size_t> flagged;  // crowd says the prediction is wrong
    std::vector<std::pair<std::string, std::string>> confirmed;
    size_t sample_positives = 0, sample_size = 0;
    {
      auto sample = rng_.SampleWithoutReplacement(
          classified_idx.size(),
          std::min(config_.sample_size, classified_idx.size()));
      for (size_t si : sample) {
        size_t i = classified_idx[si];
        bool verdict =
            crowd_.AskYesNo(*report.predictions[i] == batch[i].label);
        ++sample_size;
        if (verdict) {
          ++sample_positives;
          confirmed.emplace_back(batch[i].item.title,
                                 *report.predictions[i]);
        } else {
          flagged.push_back(i);
        }
      }
    }
    // Crowd-confirmed pairs become Gate Keeper memo entries: one memo
    // clone for the whole batch, and re-sent titles skip the classifiers.
    pipeline_.MemoizeAll(confirmed);
    trace.sampled_precision =
        crowd::WilsonEstimate(sample_positives, sample_size);
    trace.crowd_questions = crowd_.num_tasks() - questions_before;

    const bool passes =
        sample_size == 0 ||
        trace.sampled_precision.estimate >= config_.precision_threshold;
    if (passes) {
      trace.accepted = true;
      result.iterations.push_back(trace);
      result.accepted = true;
      result.final_quality = trace.true_quality;
      return result;
    }

    // Analyst reviews flagged pairs -> blacklist rules + relabeled
    // training data.
    std::vector<Misclassification> errors;
    std::vector<data::LabeledItem> to_relabel;
    for (size_t i : flagged) {
      if (errors.size() >= config_.max_errors_reviewed) break;
      errors.push_back({batch[i].item, *report.predictions[i],
                        batch[i].label});
      to_relabel.push_back(batch[i]);
    }
    auto blacklists = analyst_.WriteBlacklistsForErrors(errors);

    // Analyst also writes whitelist rules for the true types behind the
    // errors, and labels a slice of the declined items (new training data
    // + coverage for unhandled types).
    std::set<std::string> error_types;
    for (const auto& e : errors) error_types.insert(e.correct);
    std::vector<rules::Rule> whitelists;
    for (const auto& type : error_types) {
      auto rules_for_type = analyst_.WriteRulesForType(type);
      whitelists.insert(whitelists.end(),
                        std::make_move_iterator(rules_for_type.begin()),
                        std::make_move_iterator(rules_for_type.end()));
    }
    std::vector<data::LabeledItem> declined_labeled;
    {
      std::vector<size_t> declined_idx;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!report.predictions[i].has_value()) declined_idx.push_back(i);
      }
      auto sample = rng_.SampleWithoutReplacement(
          declined_idx.size(),
          std::min(config_.max_declined_labeled, declined_idx.size()));
      std::vector<data::LabeledItem> picked;
      for (size_t si : sample) picked.push_back(batch[declined_idx[si]]);
      declined_labeled = analyst_.LabelItems(picked);
      // Types the analyst saw while labeling also get whitelist rules.
      std::set<std::string> seen_types;
      for (const auto& li : declined_labeled) seen_types.insert(li.label);
      for (const auto& type : seen_types) {
        if (error_types.count(type)) continue;
        auto rules_for_type = analyst_.WriteRulesForType(type);
        whitelists.insert(whitelists.end(),
                          std::make_move_iterator(rules_for_type.begin()),
                          std::make_move_iterator(rules_for_type.end()));
      }
    }

    // Fold the feedback into the system. Duplicate rule ids cannot occur
    // (the analyst numbers its rules), but AddRules surfaces any failure.
    size_t rules_added = 0;
    std::vector<rules::Rule> new_rules;
    for (auto& r : blacklists) new_rules.push_back(std::move(r));
    for (auto& r : whitelists) new_rules.push_back(std::move(r));
    rules_added = new_rules.size();
    (void)pipeline_.AddRules(std::move(new_rules), "analyst");

    auto relabeled = analyst_.LabelItems(to_relabel);
    size_t labels_added = relabeled.size() + declined_labeled.size();
    pipeline_.AddTrainingData(std::move(relabeled));
    pipeline_.AddTrainingData(std::move(declined_labeled));
    last_retrain_ = pipeline_.RequestRetrain();
    if (config_.wait_for_retrain) last_retrain_.wait();

    trace.rules_added = rules_added;
    trace.labels_added = labels_added;
    result.iterations.push_back(trace);
    result.final_quality = trace.true_quality;
  }
  return result;
}

}  // namespace rulekit::chimera
