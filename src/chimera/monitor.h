#ifndef RULEKIT_CHIMERA_MONITOR_H_
#define RULEKIT_CHIMERA_MONITOR_H_

#include <deque>
#include <string>
#include <vector>

#include "src/crowd/estimator.h"

namespace rulekit::chimera {

/// One batch-level quality observation (from crowd-sampled evaluation).
struct BatchQuality {
  size_t batch_index = 0;
  crowd::PrecisionEstimate precision;
  double recall = 0.0;     // classified-and-correct / batch size (est.)
  double coverage = 0.0;   // classified / batch size
};

/// Tracks batch-level precision and raises a degradation alarm when the
/// estimate falls below the business threshold (§2.2 requirement 3:
/// "detect such quality problems quickly").
class QualityMonitor {
 public:
  explicit QualityMonitor(double precision_threshold = 0.92)
      : threshold_(precision_threshold) {}

  void Record(const BatchQuality& quality);

  const std::vector<BatchQuality>& history() const { return history_; }

  /// True if the most recent batch's precision point estimate is below
  /// threshold.
  bool DegradationAlarm() const;

  /// True if even the Wilson upper bound is below threshold — i.e. the
  /// degradation is statistically unambiguous.
  bool SevereDegradationAlarm() const;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
  std::vector<BatchQuality> history_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_MONITOR_H_
