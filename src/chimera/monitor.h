#ifndef RULEKIT_CHIMERA_MONITOR_H_
#define RULEKIT_CHIMERA_MONITOR_H_

#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/chimera/trainer.h"
#include "src/crowd/estimator.h"

namespace rulekit::chimera {

/// One batch-level quality observation (from crowd-sampled evaluation).
struct BatchQuality {
  size_t batch_index = 0;
  crowd::PrecisionEstimate precision;
  double recall = 0.0;     // classified-and-correct / batch size (est.)
  double coverage = 0.0;   // classified / batch size
};

/// One batch's hot-result-cache activity (from BatchReport counters).
/// lookups = hits + misses; stale_drops are the subset of misses caused
/// by a version-tag mismatch (an invalidation observed on read).
struct CacheActivity {
  size_t batch_index = 0;
  size_t lookups = 0;
  size_t hits = 0;
  size_t stale_drops = 0;
  size_t promotions = 0;
  size_t evictions = 0;
};

/// Tracks batch-level precision and raises a degradation alarm when the
/// estimate falls below the business threshold (§2.2 requirement 3:
/// "detect such quality problems quickly").
class QualityMonitor {
 public:
  explicit QualityMonitor(double precision_threshold = 0.92)
      : threshold_(precision_threshold) {}

  void Record(const BatchQuality& quality);

  /// Folds one batch's cache counters into the cache history.
  void RecordCache(const CacheActivity& activity);

  /// Records one background-retrain report (published, skipped, or
  /// abandoned). Unlike the other Record* methods this one is
  /// thread-safe: it is the natural `RetrainPolicy::report_sink` target
  /// and thus runs on the trainer thread.
  void RecordRetrain(const RetrainReport& report);

  const std::vector<BatchQuality>& history() const { return history_; }

  const std::vector<CacheActivity>& cache_history() const {
    return cache_history_;
  }

  /// Copy of the retrain history (a copy because the trainer thread may
  /// append concurrently).
  std::vector<RetrainReport> retrain_history() const;

  /// How many recorded retrain runs actually published an ensemble.
  size_t retrains_published() const;

  /// Hit rate over the last `window` recorded batches (all of them when
  /// window == 0). 0.0 when no lookups were recorded.
  double CacheHitRate(size_t window = 0) const;

  /// True if the most recent batch's precision point estimate is below
  /// threshold.
  bool DegradationAlarm() const;

  /// True if even the Wilson upper bound is below threshold — i.e. the
  /// degradation is statistically unambiguous.
  bool SevereDegradationAlarm() const;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
  std::vector<BatchQuality> history_;
  std::vector<CacheActivity> cache_history_;
  /// Guards retrain_history_ only — the one history fed from another
  /// thread.
  mutable std::mutex retrain_mu_;
  std::vector<RetrainReport> retrain_history_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_MONITOR_H_
