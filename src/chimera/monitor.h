#ifndef RULEKIT_CHIMERA_MONITOR_H_
#define RULEKIT_CHIMERA_MONITOR_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/chimera/trainer.h"
#include "src/common/ring_buffer.h"
#include "src/crowd/estimator.h"

namespace rulekit::chimera {

/// One batch-level quality observation (from crowd-sampled evaluation).
struct BatchQuality {
  size_t batch_index = 0;
  crowd::PrecisionEstimate precision;
  double recall = 0.0;     // classified-and-correct / batch size (est.)
  double coverage = 0.0;   // classified / batch size
};

/// One batch's hot-result-cache activity (from BatchReport counters).
/// lookups = hits + misses; stale_drops are the subset of misses caused
/// by a version-tag mismatch (an invalidation observed on read).
struct CacheActivity {
  size_t batch_index = 0;
  size_t lookups = 0;
  size_t hits = 0;
  size_t stale_drops = 0;
  size_t promotions = 0;
  size_t evictions = 0;
};

/// One dispatched serving batch's admission and latency accounting, as
/// reported by serving::RuleServer. `requests` is how many wire requests
/// were folded into this dispatch (> 1 when coalescing merged concurrent
/// single-item requests); reject/shed counters are the admission failures
/// observed since the previous dispatch, so summing a tenant's history
/// reproduces the server totals.
struct ServingActivity {
  size_t batch_index = 0;
  size_t requests = 0;         // wire requests folded into this dispatch
  size_t batch_size = 0;       // items handed to the pipeline
  size_t overload_rejects = 0; // kOverloaded since the previous dispatch
  size_t deadline_sheds = 0;   // kDeadlineExceeded sheds since previous
  double queue_wait_ms = 0.0;  // oldest request's admission->dispatch wait
  double service_ms = 0.0;     // pipeline execution time
  // Rule-execution cost of the dispatch (BatchReport::rules_executed /
  // rule_items): regex evaluations performed over items that reached the
  // rule executors. The serving-visible executed-rules-per-item signal
  // the offline rule-set optimizer is judged by.
  size_t rules_executed = 0;
  size_t rule_items = 0;
};

/// One follower replay observation, as reported by the replication
/// follower after applying a batch of shipped records (or on a
/// heartbeat at an idle tail). Lag has two axes: how many records the
/// follower has received but not yet applied, and how far behind the
/// primary's wall clock the most recent apply ran (ship -> apply).
struct ReplicationActivity {
  size_t records_applied = 0;   // records applied in this observation
  size_t records_pending = 0;   // received, not yet applied
  double lag_ms = 0.0;          // ship-time -> apply-time, wall clock
  uint64_t epoch = 0;           // applied-through position
  uint64_t offset = 0;
};

/// One drift-responder evaluation of one tenant: which trigger (if any)
/// was active, whether a retrain was fired, and why not when it wasn't.
/// maint::DriftResponder records every decision — fired or suppressed —
/// so the self-healing loop leaves a complete audit trail.
struct ResponderDecision {
  enum class Trigger {
    kNone,               // no signal this evaluation
    kDegradation,        // DegradationAlarm: point estimate below threshold
    kSevereDegradation,  // SevereDegradationAlarm: Wilson upper bound below
    kStaleSpike,         // hot-cache stale-drop-rate spike
    kRuleFlags,          // RulePrecisionMonitor flagged rules
  };
  Trigger trigger = Trigger::kNone;
  bool fired = false;   // a RequestRetrain was issued
  bool urgent = false;  // severe escalation: trainer policy gates bypassed
  /// The hysteresis counter: consecutive evaluations that saw an alarmed
  /// window, at the time of this decision.
  size_t consecutive_alarms = 0;
  /// > 0 when an active trigger was suppressed by the cooldown.
  double cooldown_remaining_ms = 0.0;
  /// Failure-backoff multiplier in force (1.0 = none; grows after fired
  /// retrains whose reports came back failed).
  double backoff = 1.0;
  std::string reason;
};

/// Tracks batch-level precision and raises a degradation alarm when the
/// estimate falls below the business threshold (§2.2 requirement 3:
/// "detect such quality problems quickly").
///
/// All histories are partitioned by tenant (tenant "" is the default and
/// always exists) and capped at `max_history` entries each — a ring
/// buffer overwrites the oldest observation, so a monitor embedded in a
/// long-running pipeline has bounded memory no matter how many batches
/// flow through. Degradation alarms and cache hit rates evaluate one
/// tenant's window in isolation: a degraded tenant alarms without its
/// neighbours' healthy batches diluting the signal.
class QualityMonitor {
 public:
  explicit QualityMonitor(double precision_threshold = 0.92,
                          size_t max_history = 4096)
      : threshold_(precision_threshold),
        max_history_(max_history == 0 ? 1 : max_history),
        retrain_history_(max_history_) {
    // The default tenant's buffers exist from construction so the
    // reference-returning accessors below are always valid.
    history_.emplace(std::string(), RingBuffer<BatchQuality>(max_history_));
    cache_history_.emplace(std::string(),
                           RingBuffer<CacheActivity>(max_history_));
  }

  /// Records one batch-quality observation. Thread-safe: the stream
  /// window runner records from its caller's thread while a
  /// DriftResponder polls alarms from its own.
  void Record(const BatchQuality& quality, const std::string& tenant = {});

  /// Folds one batch's cache counters into the cache history.
  /// Thread-safe, same reason as Record (and the serving dispatcher
  /// thread records cache activity too).
  void RecordCache(const CacheActivity& activity,
                   const std::string& tenant = {});

  /// Records one serving dispatch, filed under `tenant`. Thread-safe for
  /// the same reason as RecordRetrain: the natural caller is the serving
  /// front-end's dispatcher thread.
  void RecordServing(const ServingActivity& activity,
                     const std::string& tenant = {});

  /// Records one follower replay observation. Thread-safe like
  /// RecordServing: the natural caller is the follower's replication
  /// thread.
  void RecordReplication(const ReplicationActivity& activity,
                         const std::string& tenant = {});

  /// Records one background-retrain report (published, skipped, or
  /// abandoned), filed under `report.tenant`. Thread-safe: it is the
  /// natural `RetrainPolicy::report_sink` target and thus runs on the
  /// trainer thread.
  void RecordRetrain(const RetrainReport& report);

  /// Records one drift-responder trigger decision. Thread-safe: the
  /// responder's poll thread is the natural caller.
  void RecordResponder(const ResponderDecision& decision,
                       const std::string& tenant = {});

  /// Copy of one tenant's responder decisions, oldest first (a copy
  /// because the responder thread may append concurrently).
  std::vector<ResponderDecision> responder_history(
      const std::string& tenant = {}) const;

  /// How many recorded responder decisions actually fired a retrain.
  size_t responder_fires(const std::string& tenant = {}) const;

  /// The default tenant's quality history (capped; oldest first).
  /// The reference-returning history accessors are writer-thread views:
  /// safe only when no other thread is concurrently recording (the
  /// single-threaded test/experiment pattern). Concurrent readers use
  /// the alarm predicates and Latest*/rate queries, which lock.
  const RingBuffer<BatchQuality>& history() const {
    return history_.at(std::string());
  }
  /// `tenant`'s quality history (empty buffer if never recorded for).
  const RingBuffer<BatchQuality>& history(const std::string& tenant) const;

  const RingBuffer<CacheActivity>& cache_history() const {
    return cache_history_.at(std::string());
  }
  const RingBuffer<CacheActivity>& cache_history(
      const std::string& tenant) const;

  /// Copy of the default tenant's serving history, oldest first (a copy
  /// because the server's dispatcher thread may append concurrently).
  std::vector<ServingActivity> serving_history() const {
    return serving_history(std::string());
  }
  /// Copy of one tenant's serving history, oldest first.
  std::vector<ServingActivity> serving_history(
      const std::string& tenant) const;

  /// Copy of the default tenant's replication history, oldest first.
  std::vector<ReplicationActivity> replication_history() const {
    return replication_history(std::string());
  }
  /// Copy of one tenant's replication history, oldest first.
  std::vector<ReplicationActivity> replication_history(
      const std::string& tenant) const;

  /// Copy of the retrain history, all tenants in delivery order (a copy
  /// because the trainer thread may append concurrently).
  std::vector<RetrainReport> retrain_history() const;
  /// Copy of one tenant's retrain reports, in delivery order.
  std::vector<RetrainReport> retrain_history(const std::string& tenant) const;

  /// How many recorded retrain runs actually published an ensemble
  /// (across all tenants).
  size_t retrains_published() const;
  size_t retrains_published(const std::string& tenant) const;

  /// Hit rate over the default tenant's last `window` recorded batches
  /// (all of them when window == 0). 0.0 when no lookups were recorded.
  double CacheHitRate(size_t window = 0) const {
    return CacheHitRate(std::string(), window);
  }
  double CacheHitRate(const std::string& tenant, size_t window) const;

  /// Stale drops / lookups over the tenant's last `window` recorded cache
  /// batches (all of them when window == 0). 0.0 when no lookups were
  /// recorded. A spike here means cached winners keep invalidating —
  /// either heavy rule churn or a drifting feed — and is one of the
  /// DriftResponder's trigger signals.
  double StaleDropRate(size_t window = 0) const {
    return StaleDropRate(std::string(), window);
  }
  double StaleDropRate(const std::string& tenant, size_t window) const;

  /// Copy of the tenant's most recent quality / cache observation, under
  /// lock — the thread-safe "did a new window arrive?" probes the
  /// DriftResponder clocks itself by.
  std::optional<BatchQuality> LatestQuality(
      const std::string& tenant = {}) const;
  std::optional<CacheActivity> LatestCache(
      const std::string& tenant = {}) const;

  /// Average regex evaluations per rule-executed item over the default
  /// tenant's last `window` serving dispatches (all of them when
  /// window == 0). 0.0 when no rule items were recorded.
  double ExecutedRulesPerItem(size_t window = 0) const {
    return ExecutedRulesPerItem(std::string(), window);
  }
  double ExecutedRulesPerItem(const std::string& tenant,
                              size_t window) const;

  /// True if the default tenant's most recent batch precision point
  /// estimate is below threshold.
  bool DegradationAlarm() const { return DegradationAlarm(std::string()); }
  bool DegradationAlarm(const std::string& tenant) const;

  /// True if even the Wilson upper bound is below threshold — i.e. the
  /// degradation is statistically unambiguous.
  bool SevereDegradationAlarm() const {
    return SevereDegradationAlarm(std::string());
  }
  bool SevereDegradationAlarm(const std::string& tenant) const;

  /// Tenants with any recorded observation, default ("") first, the rest
  /// sorted.
  std::vector<std::string> Tenants() const;

  double threshold() const { return threshold_; }
  size_t max_history() const { return max_history_; }

 private:
  double threshold_;
  size_t max_history_;
  /// Guards history_ and cache_history_ for the *locking* entry points
  /// (Record, RecordCache, the alarm predicates, rate queries, Tenants).
  /// The reference-returning accessors bypass it by design — see their
  /// comment above.
  mutable std::mutex quality_mu_;
  std::map<std::string, RingBuffer<BatchQuality>> history_;
  std::map<std::string, RingBuffer<CacheActivity>> cache_history_;
  /// Guards responder_history_ — fed from the responder's poll thread.
  mutable std::mutex responder_mu_;
  std::map<std::string, RingBuffer<ResponderDecision>> responder_history_;
  /// Guards retrain_history_ only — a history fed from another thread.
  mutable std::mutex retrain_mu_;
  RingBuffer<RetrainReport> retrain_history_;
  /// Guards serving_history_ — fed from the server's dispatcher thread.
  mutable std::mutex serving_mu_;
  std::map<std::string, RingBuffer<ServingActivity>> serving_history_;
  /// Guards replication_history_ — fed from the follower's replication
  /// thread.
  mutable std::mutex replication_mu_;
  std::map<std::string, RingBuffer<ReplicationActivity>> replication_history_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_MONITOR_H_
