#include "src/chimera/pipeline.h"

namespace rulekit::chimera {

ChimeraPipeline::ChimeraPipeline(PipelineConfig config)
    : config_(config), repo_(std::make_shared<rules::RuleRepository>()) {
  // Classifiers view the repository's rule set through an aliasing
  // shared_ptr, so repository mutations are visible after RebuildRules().
  rules_view_ =
      std::shared_ptr<const rules::RuleSet>(repo_, &repo_->rules());
  rule_classifier_ =
      std::make_shared<engine::RuleBasedClassifier>(rules_view_);
  attr_classifier_ =
      std::make_shared<engine::AttrValueClassifier>(rules_view_);
  filter_ = std::make_unique<Filter>(rules_view_);
  RebuildVoting();
}

void ChimeraPipeline::RebuildVoting() {
  voting_ = std::make_unique<VotingMaster>(config_.voting);
  if (config_.use_rules) {
    voting_->AddMember(rule_classifier_, config_.rule_weight);
    voting_->AddMember(attr_classifier_, config_.attr_weight);
  }
  if (config_.use_learning && learning_trained_) {
    voting_->AddMember(ensemble_, config_.learning_weight);
  }
}

Status ChimeraPipeline::AddRules(std::vector<rules::Rule> new_rules,
                                 std::string_view author) {
  for (auto& rule : new_rules) {
    RULEKIT_RETURN_IF_ERROR(repo_->Add(std::move(rule), author));
  }
  RebuildRules();
  return Status::OK();
}

void ChimeraPipeline::RebuildRules() { rule_classifier_->Rebuild(); }

void ChimeraPipeline::AddTrainingData(
    std::vector<data::LabeledItem> labeled) {
  training_data_.insert(training_data_.end(),
                        std::make_move_iterator(labeled.begin()),
                        std::make_move_iterator(labeled.end()));
}

void ChimeraPipeline::RetrainLearning() {
  if (training_data_.empty()) return;
  // Fresh extractor + learners: the simplest correct retraining story
  // (incremental learners accumulate state across Train calls).
  features_ = std::make_shared<ml::FeatureExtractor>();
  auto nb = std::make_shared<ml::NaiveBayesClassifier>(features_);
  nb->Train(training_data_);
  auto knn = std::make_shared<ml::KnnClassifier>(features_, 7);
  knn->Train(training_data_);
  auto logreg = std::make_shared<ml::LogRegClassifier>(features_);
  logreg->Train(training_data_);
  ensemble_ = std::make_shared<ml::EnsembleClassifier>();
  ensemble_->AddMember(std::move(nb));
  ensemble_->AddMember(std::move(knn));
  ensemble_->AddMember(std::move(logreg));
  learning_trained_ = true;
  RebuildVoting();
}

void ChimeraPipeline::ScaleDownType(const std::string& type,
                                    std::string_view author,
                                    std::string_view reason) {
  suppressed_.insert(type);
  repo_->DisableRulesForType(type, author, reason);
  RebuildRules();
}

void ChimeraPipeline::ScaleUpType(const std::string& type) {
  suppressed_.erase(type);
  RebuildRules();
}

std::optional<std::string> ChimeraPipeline::Classify(
    const data::ProductItem& item) const {
  GateDecision gate = gate_.Decide(item);
  if (gate.kind == GateDecision::Kind::kRejected) return std::nullopt;
  if (gate.kind == GateDecision::Kind::kClassified) {
    if (suppressed_.count(gate.type)) return std::nullopt;
    return gate.type;
  }
  auto vote = voting_->Vote(item);
  if (!vote.has_value()) return std::nullopt;
  if (suppressed_.count(vote->label)) return std::nullopt;
  if (!filter_->Admit(item, vote->label)) return std::nullopt;
  return vote->label;
}

BatchReport ChimeraPipeline::ProcessBatch(
    const std::vector<data::ProductItem>& items) const {
  BatchReport report;
  report.total = items.size();
  report.predictions.reserve(items.size());
  for (const auto& item : items) {
    GateDecision gate = gate_.Decide(item);
    if (gate.kind == GateDecision::Kind::kRejected) {
      ++report.gate_rejected;
      report.predictions.emplace_back(std::nullopt);
      continue;
    }
    if (gate.kind == GateDecision::Kind::kClassified) {
      if (suppressed_.count(gate.type)) {
        ++report.suppressed;
        report.predictions.emplace_back(std::nullopt);
      } else {
        ++report.gate_classified;
        report.predictions.emplace_back(gate.type);
      }
      continue;
    }
    auto vote = voting_->Vote(item);
    if (!vote.has_value()) {
      ++report.declined;
      report.predictions.emplace_back(std::nullopt);
      continue;
    }
    if (suppressed_.count(vote->label)) {
      ++report.suppressed;
      report.predictions.emplace_back(std::nullopt);
      continue;
    }
    if (!filter_->Admit(item, vote->label)) {
      ++report.filtered;
      report.predictions.emplace_back(std::nullopt);
      continue;
    }
    ++report.classified;
    report.predictions.emplace_back(vote->label);
  }
  return report;
}

}  // namespace rulekit::chimera
