#include "src/chimera/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <span>

#include "src/common/hash.h"
#include "src/common/string_util.h"

namespace rulekit::chimera {

ChimeraPipeline::ChimeraPipeline(PipelineConfig config)
    : config_(std::move(config)) {
  const size_t shards = config_.rule_shards == 0 ? 1 : config_.rule_shards;
  if (config_.hot_cache.enabled && config_.hot_cache.capacity > 0) {
    caches_ = std::make_unique<engine::TenantCacheSet>(config_.hot_cache);
    for (const auto& [tenant, overrides] : config_.tenants) {
      if (overrides.hot_cache.has_value()) {
        caches_->SetConfig(tenant, *overrides.hot_cache);
      }
    }
  }
  if (!config_.storage_dir.empty()) {
    storage::StoreOptions opts = config_.storage;
    opts.shard_count = shards;
    auto store = storage::DurableRuleStore::Open(config_.storage_dir, opts);
    if (store.ok()) {
      store_ = std::move(store).value();
      repo_ = store_->repository();
    } else {
      storage_status_ = store.status();  // serve in-memory, surface why
    }
  }
  if (repo_ == nullptr) {
    repo_ = std::make_shared<rules::RuleRepository>(shards);
  }
  if (config_.batch_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.batch_threads);
  }
  shard_cache_.resize(repo_->shard_count());
  RepublishAll();
  // Started last: the thread's run function touches the members above.
  std::map<std::string, RetrainPolicy> tenant_policies;
  for (const auto& [tenant, overrides] : config_.tenants) {
    if (overrides.retrain.has_value()) {
      tenant_policies[tenant] = *overrides.retrain;
    }
  }
  trainer_ = std::make_unique<BackgroundTrainer>(
      config_.retrain,
      [this](const std::string& tenant, size_t) { return RetrainNow(tenant); },
      std::move(tenant_policies));
}

ChimeraPipeline::~ChimeraPipeline() {
  // Explicit for emphasis (member order already guarantees it): stop the
  // trainer before any other member dies. An in-flight run completes its
  // publish; a queued run is abandoned — nothing trains or publishes
  // after this line.
  trainer_.reset();
}

void ChimeraPipeline::RepublishShards(
    const std::vector<rules::ShardKey>& dirty) {
  // Rebuild stale shards outside every pipeline lock: the index build is
  // the expensive part, and two writers refreshing disjoint shards must
  // be able to run it concurrently.
  std::vector<std::shared_ptr<const ShardServing>> built;
  for (rules::ShardKey key : dirty) {
    uint64_t cached_version = 0;
    bool have_cached = false;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      const auto& slot = shard_cache_[key.index()];
      if (slot != nullptr) {
        have_cached = true;
        cached_version = slot->rule_version;
      }
    }
    rules::ShardSnapshot shard_snap = repo_->ShardSnapshotOf(key);
    if (have_cached && cached_version >= shard_snap.version) continue;
    if (config_.publish_probe) config_.publish_probe(key.index());
    auto serving = std::make_shared<ShardServing>();
    serving->shard_index = key.index();
    serving->rule_version = shard_snap.version;
    serving->tenant_versions = shard_snap.tenant_versions;
    serving->rules = shard_snap.rules;
    // Partition the shard's rules by owning tenant. The common case — no
    // foreign-tenant rules — reuses the pinned set wholesale, so
    // single-tenant serving builds exactly what it always built.
    bool has_foreign = false;
    for (const rules::Rule& rule : shard_snap.rules->rules()) {
      if (!rule.metadata().tenant.empty()) {
        has_foreign = true;
        break;
      }
    }
    std::shared_ptr<const rules::RuleSet> shared_rules = shard_snap.rules;
    if (has_foreign) {
      auto defaults = std::make_shared<rules::RuleSet>();
      std::map<std::string, std::shared_ptr<rules::RuleSet>> tenant_sets;
      for (const rules::Rule& rule : shard_snap.rules->rules()) {
        const std::string& owner = rule.metadata().tenant;
        if (owner.empty()) {
          (void)defaults->Add(rule);
          continue;
        }
        auto& set = tenant_sets[owner];
        if (set == nullptr) set = std::make_shared<rules::RuleSet>();
        (void)set->Add(rule);
      }
      shared_rules = std::move(defaults);
      for (auto& [tenant, set] : tenant_sets) {
        ShardServing::TenantPartition partition;
        partition.rules = set;
        partition.rule_classifier = std::make_shared<
            engine::RuleBasedClassifier>(
            set, engine::RuleClassifierOptions{
                     .index_sample = config_.index_sample_titles});
        partition.attr_classifier =
            std::make_shared<engine::AttrValueClassifier>(set);
        partition.filter = std::make_shared<Filter>(set);
        serving->tenants.emplace(tenant, std::move(partition));
      }
    }
    serving->rule_classifier = std::make_shared<engine::RuleBasedClassifier>(
        shared_rules, engine::RuleClassifierOptions{
                          .index_sample = config_.index_sample_titles});
    serving->attr_classifier =
        std::make_shared<engine::AttrValueClassifier>(shared_rules);
    serving->filter = std::make_shared<Filter>(shared_rules);
    built.push_back(std::move(serving));
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  for (auto& serving : built) {
    auto& slot = shard_cache_[serving->shard_index];
    // A concurrent writer may have installed a newer build; never regress.
    if (slot == nullptr || serving->rule_version > slot->rule_version) {
      slot = std::move(serving);
    }
  }
  ComposeAndSwapLocked();
}

void ChimeraPipeline::RepublishAll() {
  std::vector<rules::ShardKey> all;
  all.reserve(repo_->shard_count());
  for (size_t i = 0; i < repo_->shard_count(); ++i) {
    all.push_back(rules::ShardKey(static_cast<uint32_t>(i)));
  }
  RepublishShards(all);
}

void ChimeraPipeline::ComposeAndSwapLocked() {
  const auto tenant_version_of = [](const ShardServing& serving,
                                    const std::string& tenant) -> uint64_t {
    auto it = serving.tenant_versions.find(tenant);
    return it == serving.tenant_versions.end() ? 0 : it->second;
  };

  auto snap = std::make_shared<PipelineSnapshot>();
  snap->shards = shard_cache_;
  std::vector<std::shared_ptr<const engine::RuleBasedClassifier>> rule_shards;
  std::vector<std::shared_ptr<const engine::AttrValueClassifier>> attr_shards;
  std::vector<std::shared_ptr<const Filter>> filter_shards;
  rule_shards.reserve(shard_cache_.size());
  attr_shards.reserve(shard_cache_.size());
  filter_shards.reserve(shard_cache_.size());
  for (const auto& serving : shard_cache_) {
    rule_shards.push_back(serving->rule_classifier);
    attr_shards.push_back(serving->attr_classifier);
    filter_shards.push_back(serving->filter);
    snap->composite_rule_version += serving->rule_version;
    // Order-sensitive: shard index is implicit in iteration order, so
    // distinct per-shard version vectors get distinct fingerprints. The
    // default tag hashes the default tenant's counters — identical to
    // the shard versions in single-tenant histories, but insensitive to
    // foreign tenants' commits, so a noisy tenant's edits never
    // stale-drop the default partition's cache entries.
    snap->rule_state_fingerprint = HashCombine(
        snap->rule_state_fingerprint, tenant_version_of(*serving, {}));
  }
  snap->semantic_generation = semantic_gen_;
  snap->rule_classifier = std::make_shared<engine::ShardedRuleClassifier>(
      std::move(rule_shards));
  snap->attr_classifier = std::make_shared<engine::ShardedAttrValueClassifier>(
      std::move(attr_shards));
  snap->filter = std::make_shared<ShardedFilter>(std::move(filter_shards));
  snap->ensemble = ensemble_;
  snap->suppressed = suppressed_;

  auto voting = std::make_shared<VotingMaster>(config_.voting);
  if (config_.use_rules) {
    voting->AddMember(snap->rule_classifier, config_.rule_weight);
    voting->AddMember(snap->attr_classifier, config_.attr_weight);
  }
  if (config_.use_learning && snap->ensemble != nullptr) {
    voting->AddMember(snap->ensemble, config_.learning_weight);
  }
  snap->voting = std::move(voting);
  snap->version = ++version_;

  // Tenant views: one per tenant with rules or runtime state. Each view
  // stacks the tenant's shard partitions after every shard's default
  // build; classifier and filter share one positional order, so the
  // batch executors' per-shard results line up.
  std::set<std::string> view_tenants;
  for (const auto& [tenant, runtime] : tenant_runtime_) {
    view_tenants.insert(tenant);
  }
  for (const auto& serving : shard_cache_) {
    for (const auto& [tenant, partition] : serving->tenants) {
      view_tenants.insert(tenant);
    }
  }
  for (const std::string& tenant : view_tenants) {
    PipelineSnapshot::TenantView view;
    std::vector<std::shared_ptr<const engine::RuleBasedClassifier>> rules_v;
    std::vector<std::shared_ptr<const engine::AttrValueClassifier>> attrs_v;
    std::vector<std::shared_ptr<const Filter>> filters_v;
    uint64_t fingerprint = 0;
    for (const auto& serving : shard_cache_) {
      rules_v.push_back(serving->rule_classifier);
      attrs_v.push_back(serving->attr_classifier);
      filters_v.push_back(serving->filter);
      // Pair the shared counter with the tenant's own, in shard order:
      // a shared-rule commit re-tags every tenant's view, a tenant-rule
      // commit re-tags only that tenant's.
      fingerprint = HashCombine(fingerprint, tenant_version_of(*serving, {}));
      fingerprint =
          HashCombine(fingerprint, tenant_version_of(*serving, tenant));
    }
    for (const auto& serving : shard_cache_) {
      auto it = serving->tenants.find(tenant);
      if (it == serving->tenants.end()) continue;
      rules_v.push_back(it->second.rule_classifier);
      attrs_v.push_back(it->second.attr_classifier);
      filters_v.push_back(it->second.filter);
    }
    view.rule_classifier =
        std::make_shared<engine::ShardedRuleClassifier>(std::move(rules_v));
    view.attr_classifier =
        std::make_shared<engine::ShardedAttrValueClassifier>(
            std::move(attrs_v));
    view.filter = std::make_shared<ShardedFilter>(std::move(filters_v));
    view.suppressed = suppressed_;
    uint64_t tenant_gen = 0;
    auto rt = tenant_runtime_.find(tenant);
    if (rt != tenant_runtime_.end()) {
      view.ensemble = rt->second.ensemble;
      view.suppressed.insert(rt->second.suppressed.begin(),
                             rt->second.suppressed.end());
      tenant_gen = rt->second.semantic_gen;
    }
    if (view.ensemble == nullptr) view.ensemble = ensemble_;
    view.tag = {fingerprint, HashCombine(semantic_gen_, tenant_gen)};
    auto tenant_voting = std::make_shared<VotingMaster>(config_.voting);
    if (config_.use_rules) {
      tenant_voting->AddMember(view.rule_classifier, config_.rule_weight);
      tenant_voting->AddMember(view.attr_classifier, config_.attr_weight);
    }
    if (config_.use_learning && view.ensemble != nullptr) {
      tenant_voting->AddMember(view.ensemble, config_.learning_weight);
    }
    view.voting = std::move(tenant_voting);
    snap->tenant_views.emplace(tenant, std::move(view));
  }

  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const PipelineSnapshot> ChimeraPipeline::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t ChimeraPipeline::snapshot_version() const {
  return CurrentSnapshot()->version;
}

Status ChimeraPipeline::AddRules(std::vector<rules::Rule> new_rules,
                                 std::string_view author,
                                 const rules::TenantId& tenant) {
  rules::RuleTransaction txn = repo_->Begin(author, tenant);
  for (auto& rule : new_rules) {
    (void)txn.Add(std::move(rule));
  }
  Status status = txn.Commit();
  // Publish whatever made it in, even on failure part-way through.
  RepublishShards(txn.touched());
  return status;
}

Status ChimeraPipeline::Mutate(
    std::string_view author,
    const std::function<Status(rules::RuleTransaction&)>& fn,
    const rules::TenantId& tenant) {
  rules::RuleTransaction txn = repo_->Begin(author, tenant);
  Status status = fn(txn);
  if (!status.ok()) return status;  // nothing applied, nothing published
  status = txn.Commit();
  RepublishShards(txn.touched());
  return status;
}

Result<uint64_t> ChimeraPipeline::Checkpoint(std::string_view author) {
  return repo_->Checkpoint(author);
}

Status ChimeraPipeline::RestoreCheckpoint(uint64_t version,
                                          std::string_view author) {
  RULEKIT_RETURN_IF_ERROR(repo_->RestoreCheckpoint(version, author));
  RepublishAll();
  return Status::OK();
}

void ChimeraPipeline::AddTrainingData(std::vector<data::LabeledItem> labeled,
                                      const rules::TenantId& tenant) {
  size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    std::vector<data::LabeledItem>& pool =
        tenant.is_default() ? training_data_
                            : tenant_runtime_[tenant.value()].training_data;
    pool.insert(pool.end(), std::make_move_iterator(labeled.begin()),
                std::make_move_iterator(labeled.end()));
    total = pool.size();
  }
  // Outside state_mu_: the trainer's and the pipeline's lock domains
  // never nest (see trainer.h). Null only during construction.
  if (trainer_ != nullptr) trainer_->NotifyDataSize(tenant.value(), total);
}

size_t ChimeraPipeline::training_size(const rules::TenantId& tenant) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (tenant.is_default()) return training_data_.size();
  auto it = tenant_runtime_.find(tenant.value());
  return it == tenant_runtime_.end() ? 0 : it->second.training_data.size();
}

std::shared_future<RetrainReport> ChimeraPipeline::RequestRetrain(
    const rules::TenantId& tenant, bool urgent) {
  return trainer_->Request(tenant.value(), urgent);
}

void ChimeraPipeline::RetrainLearning(const rules::TenantId& tenant) {
  RequestRetrain(tenant).wait();
}

RetrainReport ChimeraPipeline::RetrainNow(const std::string& tenant) {
  // Train against a copied data snapshot, outside every pipeline lock:
  // rule writers and readers proceed while the learners fit. Fresh
  // extractor + learners are the simplest correct retraining story
  // (incremental learners accumulate state across Train calls). Serving
  // keeps voting with the previous ensemble until the publish below.
  RetrainReport report;
  const auto started = std::chrono::steady_clock::now();
  std::vector<data::LabeledItem> data;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (tenant.empty()) {
      data = training_data_;
    } else {
      auto it = tenant_runtime_.find(tenant);
      if (it != tenant_runtime_.end()) data = it->second.training_data;
    }
  }
  if (data.empty()) {
    report.outcome = RetrainReport::Outcome::kNoTrainingData;
    return report;
  }
  report.trained_on = data.size();
  if (config_.retrain.train_probe) config_.retrain.train_probe();
  auto features = std::make_shared<ml::FeatureExtractor>();
  auto nb = std::make_shared<ml::NaiveBayesClassifier>(features);
  nb->Train(data);
  auto knn = std::make_shared<ml::KnnClassifier>(features, 7);
  knn->Train(data);
  auto logreg = std::make_shared<ml::LogRegClassifier>(features);
  logreg->Train(data);
  auto ensemble = std::make_shared<ml::EnsembleClassifier>();
  ensemble->AddMember(std::move(nb));
  ensemble->AddMember(std::move(knn));
  ensemble->AddMember(std::move(logreg));

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (tenant.empty()) {
      ensemble_ = std::move(ensemble);
      ++semantic_gen_;  // new ensemble => cached voting winners are stale
      report.publish_generation = semantic_gen_;
    } else {
      TenantRuntime& runtime = tenant_runtime_[tenant];
      runtime.ensemble = std::move(ensemble);
      ++runtime.semantic_gen;  // re-tags only this tenant's cached winners
      report.publish_generation = runtime.semantic_gen;
    }
    ComposeAndSwapLocked();
  }
  report.published = true;
  report.outcome = RetrainReport::Outcome::kPublished;
  if (store_ != nullptr) {
    // The new ensemble was trained against the rule state the journal
    // should already hold; flush the WAL so a severed or failing journal
    // is surfaced in the report rather than swallowed. The publish above
    // stands either way (in-memory serving is the emergency lever — same
    // semantics as ScaleDownType's journal failures).
    report.status = store_->Sync();
  }
  report.duration_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  return report;
}

uint64_t ChimeraPipeline::semantic_generation() const {
  return CurrentSnapshot()->semantic_generation;
}

Status ChimeraPipeline::ScaleDownType(const std::string& type,
                                      std::string_view author,
                                      std::string_view reason,
                                      const rules::TenantId& tenant) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    // Even a scale-down that disables no rules (so no shard version
    // moves) must invalidate cached winners of the suppressed type. The
    // default tenant's suppression applies to every view (emergency
    // lever); a tenant's applies to its own view only.
    if (tenant.is_default()) {
      suppressed_.insert(type);
      ++semantic_gen_;
    } else {
      TenantRuntime& runtime = tenant_runtime_[tenant.value()];
      runtime.suppressed.insert(type);
      ++runtime.semantic_gen;
    }
  }
  auto disabled = repo_->DisableRulesForType(type, author, reason, tenant);
  if (!disabled.ok()) {
    // The disables applied and bumped their shards but (some) could not
    // be journaled; the touched set is unknown, so republish everything
    // and surface the durability failure to the operator.
    RepublishAll();
    return disabled.status();
  }
  std::vector<rules::ShardKey> touched;
  for (const rules::RuleId& id : *disabled) {
    auto shard = repo_->ShardOfRule(id);
    if (!shard.ok()) continue;
    if (std::find(touched.begin(), touched.end(), *shard) == touched.end()) {
      touched.push_back(*shard);
    }
  }
  RepublishShards(touched);  // composes the suppression in even if empty
  return Status::OK();
}

void ChimeraPipeline::ScaleUpType(const std::string& type,
                                  const rules::TenantId& tenant) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (tenant.is_default()) {
    suppressed_.erase(type);
    ++semantic_gen_;
  } else {
    TenantRuntime& runtime = tenant_runtime_[tenant.value()];
    runtime.suppressed.erase(type);
    ++runtime.semantic_gen;
  }
  ComposeAndSwapLocked();
}

void ChimeraPipeline::Memoize(const std::string& title,
                              const std::string& type) {
  gate_.Memoize(title, type);
}

void ChimeraPipeline::MemoizeAll(
    std::span<const std::pair<std::string, std::string>> pairs) {
  gate_.MemoizeAll(pairs);
}

std::vector<std::string> ChimeraPipeline::Tenants() const {
  std::set<std::string> all;
  all.insert(std::string());  // the default tenant always exists
  for (const rules::TenantId& tenant : repo_->Tenants()) {
    all.insert(tenant.value());
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& [tenant, runtime] : tenant_runtime_) all.insert(tenant);
  }
  if (caches_ != nullptr) {
    for (const std::string& tenant : caches_->ActiveTenants()) {
      all.insert(tenant);
    }
  }
  return {all.begin(), all.end()};  // std::set order: "" sorts first
}

ClassifyResponse ChimeraPipeline::Classify(
    const ClassifyRequest& request) const {
  ClassifyResponse response;
  response.report.total = request.items.size();
  response.report.predictions.assign(request.items.size(), std::nullopt);
  if (request.options.require_durable && !durable()) {
    response.status = Status::Unavailable(
        config_.storage_dir.empty()
            ? "require_durable on an in-memory pipeline (no storage_dir)"
            : "durable journal severed; serving in-memory only");
    return response;
  }
  if (request.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *request.deadline) {
    response.status =
        Status::DeadlineExceeded("deadline passed before classification");
    return response;
  }
  response.report = RunBatch(request.items, request.tenant);
  return response;
}

Status ChimeraPipeline::ApplyReplicated(const rules::CommitRecord& record) {
  return ApplyReplicated(std::span(&record, 1));
}

Status ChimeraPipeline::ApplyReplicated(
    std::span<const rules::CommitRecord> records) {
  if (records.empty()) return Status::OK();
  // Like Mutate, the repository is internally synchronized — no pipeline
  // lock wraps the applies. Replay never fires the journal hook, so a
  // follower with its own mirror WAL never double-writes what the
  // primary already made durable.
  for (const rules::CommitRecord& record : records) {
    RULEKIT_RETURN_IF_ERROR(repo_->Replay(record));
  }
  // One publish for the whole batch: a follower catching up applies at
  // shipping speed, not at snapshot-composition speed.
  RepublishAll();
  return Status::OK();
}

namespace {

/// Runs fn(begin, end) over [0, n), chunked on the pool when available.
void RunChunked(ThreadPool* pool, size_t n,
                const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    fn(0, n);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace

BatchReport ChimeraPipeline::RunBatch(
    std::span<const data::ProductItem> items,
    const rules::TenantId& tenant) const {
  // Pin one snapshot (and one memo version) for the whole batch: writers
  // may publish new versions while we run, but this batch is classified
  // entirely against the state it started with — every shard at the
  // version the snapshot pinned.
  auto snap = CurrentSnapshot();
  auto memo = gate_.snapshot();
  ThreadPool* pool = pool_.get();
  // Resolve the tenant's serving view once for the whole batch (see
  // Classify). The default tenant resolves to the snapshot's own fields
  // and the default cache partition — the historical path exactly.
  const PipelineSnapshot::TenantView* view = nullptr;
  if (!tenant.is_default()) {
    auto it = snap->tenant_views.find(tenant.value());
    if (it != snap->tenant_views.end()) view = &it->second;
  }
  const auto& suppressed = view != nullptr ? view->suppressed : snap->suppressed;
  const VotingMaster& voting = view != nullptr ? *view->voting : *snap->voting;
  const ShardedFilter& filter = view != nullptr ? *view->filter : *snap->filter;
  const engine::ShardedRuleClassifier* rule_classifier =
      view != nullptr ? view->rule_classifier.get()
                      : snap->rule_classifier.get();
  engine::HotResultCache* cache =
      caches_ == nullptr ? nullptr : &caches_->For(tenant.value());
  const engine::VersionTag tag =
      view != nullptr ? view->tag : snap->result_tag();

  BatchReport report;
  report.total = items.size();
  report.predictions.assign(items.size(), std::nullopt);
  if (items.empty()) return report;  // ClassifiedFraction() guards total==0

  // ---- Stage 1: gate decisions + hot-cache probes (sharded) --------------
  // The lowered title is computed once per item and reused as the cache
  // key (and later, for classified winners, as the Record key). Cache
  // lookups happen only for items the gate passed; a hit is a voting
  // winner from an earlier batch under the *same* version tag, so it is
  // served exactly as stage 4 would have served it.
  enum : uint8_t {
    kPass = 0, kRejected, kGateClassified, kGateSuppressed, kCacheHit
  };
  std::vector<uint8_t> gate_outcome(items.size(), kPass);
  std::vector<std::string> lowered(items.size());
  std::atomic<size_t> cache_hits{0}, cache_misses{0}, cache_stale{0};
  RunChunked(pool, items.size(), [&](size_t begin, size_t end) {
    size_t hits = 0, misses = 0, stale = 0;
    for (size_t i = begin; i < end; ++i) {
      std::string low = ToLowerAscii(items[i].title);
      GateDecision d = GateKeeper::DecideLowered(*memo, items[i], low);
      if (d.kind == GateDecision::Kind::kRejected) {
        gate_outcome[i] = kRejected;
        continue;
      }
      if (d.kind == GateDecision::Kind::kClassified) {
        if (suppressed.count(d.type)) {
          gate_outcome[i] = kGateSuppressed;
        } else {
          gate_outcome[i] = kGateClassified;
          report.predictions[i] = std::move(d.type);
        }
        continue;
      }
      if (cache != nullptr) {
        engine::CacheLookup cached = cache->Lookup(low, tag);
        if (cached.hit) {
          gate_outcome[i] = kCacheHit;
          report.predictions[i] = std::move(cached.type);
          ++hits;
          continue;
        }
        ++misses;
        if (cached.stale_dropped) ++stale;
      }
      lowered[i] = std::move(low);
    }
    if (cache != nullptr) {
      cache_hits.fetch_add(hits, std::memory_order_relaxed);
      cache_misses.fetch_add(misses, std::memory_order_relaxed);
      cache_stale.fetch_add(stale, std::memory_order_relaxed);
    }
  });
  report.cache_hits = cache_hits.load();
  report.cache_misses = cache_misses.load();
  report.cache_stale_drops = cache_stale.load();

  std::vector<size_t> pass_idx;
  std::vector<const data::ProductItem*> pass_ptrs;
  std::vector<std::string> pass_lowered;
  for (size_t i = 0; i < items.size(); ++i) {
    switch (gate_outcome[i]) {
      case kRejected: ++report.gate_rejected; break;
      case kGateClassified: ++report.gate_classified; break;
      case kGateSuppressed: ++report.suppressed; break;
      case kCacheHit: ++report.classified; break;
      default:
        pass_idx.push_back(i);
        pass_ptrs.push_back(&items[i]);
        if (cache != nullptr) pass_lowered.push_back(std::move(lowered[i]));
        break;
    }
  }
  if (pass_ptrs.empty()) return report;

  // ---- Stage 2: regex rule matches, once per batch per shard -------------
  engine::ShardedExecution exec = rule_classifier->MatchBatch(pass_ptrs, pool);
  report.rules_executed = exec.total_evaluations();
  report.rule_items = pass_ptrs.size();

  // ---- Stage 3: voting (rule member scored from the stage-2 matches) -----
  std::vector<std::vector<ml::ScoredLabel>> rule_scored;
  const ml::Classifier* precomputed = nullptr;
  if (config_.use_rules) {
    rule_scored.resize(pass_ptrs.size());
    RunChunked(pool, pass_ptrs.size(), [&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        rule_scored[j] = rule_classifier->ScoreMatches(exec, j);
      }
    });
    precomputed = rule_classifier;
  }
  auto votes = voting.VoteBatch(pass_ptrs, pool, precomputed, &rule_scored);

  // ---- Stage 4: suppression + filter + accounting ------------------------
  // Per-chunk partial reports, merged in chunk order: counters are sums,
  // predictions are written by disjoint index, so the merged result is
  // identical to the sequential path (and the counter merge never
  // divides — ratios are computed once, by BatchReport, with the
  // total==0 guard).
  struct Partial {
    size_t declined = 0, suppressed = 0, filtered = 0, classified = 0;
    size_t promotions = 0, evictions = 0;
  };
  const size_t n_pass = pass_ptrs.size();
  const size_t chunks =
      pool == nullptr ? 1 : std::min(n_pass, pool->num_threads() * 4);
  const size_t chunk_size = (n_pass + chunks - 1) / chunks;
  std::vector<Partial> partials(chunks);
  auto finalize = [&](Partial& p, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      if (!votes[j].has_value()) {
        ++p.declined;
        continue;
      }
      const std::string& label = votes[j]->label;
      if (suppressed.count(label)) {
        ++p.suppressed;
        continue;
      }
      if (!filter.AdmitWithMatches(*pass_ptrs[j], label, exec, j)) {
        ++p.filtered;
        continue;
      }
      ++p.classified;
      report.predictions[pass_idx[j]] = label;
      // Offer the confident winner to the cache. Every stage-1 lookup
      // already completed (stage barriers), so records never change what
      // this batch serves — only future batches.
      if (cache != nullptr) {
        engine::CacheRecord rec = cache->Record(pass_lowered[j], label, tag);
        p.promotions += rec.admitted;
        p.evictions += rec.evicted;
      }
    }
  };
  if (pool == nullptr) {
    finalize(partials[0], 0, n_pass);
  } else {
    TaskGroup group;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n_pass, begin + chunk_size);
      pool->Submit(&group,
                   [&finalize, &partials, c, begin, end] {
                     finalize(partials[c], begin, end);
                   });
    }
    group.Wait();
  }
  for (const Partial& p : partials) {
    report.declined += p.declined;
    report.suppressed += p.suppressed;
    report.filtered += p.filtered;
    report.classified += p.classified;
    report.cache_promotions += p.promotions;
    report.cache_evictions += p.evictions;
  }
  return report;
}

}  // namespace rulekit::chimera
