#include "src/chimera/pipeline.h"

#include <algorithm>

namespace rulekit::chimera {

ChimeraPipeline::ChimeraPipeline(PipelineConfig config)
    : config_(config), repo_(std::make_shared<rules::RuleRepository>()) {
  if (config_.batch_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.batch_threads);
  }
  std::lock_guard<std::mutex> lock(mu_);
  RepublishLocked();
}

void ChimeraPipeline::RepublishLocked() {
  auto snap = std::make_shared<PipelineSnapshot>();
  snap->rules = repo_->snapshot();
  snap->rule_classifier =
      std::make_shared<engine::RuleBasedClassifier>(snap->rules);
  snap->attr_classifier =
      std::make_shared<engine::AttrValueClassifier>(snap->rules);
  snap->filter = std::make_shared<Filter>(snap->rules);
  snap->ensemble = ensemble_;
  snap->suppressed = suppressed_;

  auto voting = std::make_shared<VotingMaster>(config_.voting);
  if (config_.use_rules) {
    voting->AddMember(snap->rule_classifier, config_.rule_weight);
    voting->AddMember(snap->attr_classifier, config_.attr_weight);
  }
  if (config_.use_learning && snap->ensemble != nullptr) {
    voting->AddMember(snap->ensemble, config_.learning_weight);
  }
  snap->voting = std::move(voting);
  snap->version = ++version_;

  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const PipelineSnapshot> ChimeraPipeline::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t ChimeraPipeline::snapshot_version() const {
  return CurrentSnapshot()->version;
}

Status ChimeraPipeline::AddRules(std::vector<rules::Rule> new_rules,
                                 std::string_view author) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status = Status::OK();
  for (auto& rule : new_rules) {
    status = repo_->Add(std::move(rule), author);
    if (!status.ok()) break;
  }
  // Publish whatever made it in, even on failure part-way through.
  RepublishLocked();
  return status;
}

void ChimeraPipeline::RebuildRules() {
  std::lock_guard<std::mutex> lock(mu_);
  RepublishLocked();
}

void ChimeraPipeline::AddTrainingData(
    std::vector<data::LabeledItem> labeled) {
  std::lock_guard<std::mutex> lock(mu_);
  training_data_.insert(training_data_.end(),
                        std::make_move_iterator(labeled.begin()),
                        std::make_move_iterator(labeled.end()));
}

size_t ChimeraPipeline::training_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return training_data_.size();
}

void ChimeraPipeline::RetrainLearning() {
  std::lock_guard<std::mutex> lock(mu_);
  if (training_data_.empty()) return;
  // Fresh extractor + learners: the simplest correct retraining story
  // (incremental learners accumulate state across Train calls). Serving
  // keeps voting with the previous ensemble until the new one is
  // published below.
  auto features = std::make_shared<ml::FeatureExtractor>();
  auto nb = std::make_shared<ml::NaiveBayesClassifier>(features);
  nb->Train(training_data_);
  auto knn = std::make_shared<ml::KnnClassifier>(features, 7);
  knn->Train(training_data_);
  auto logreg = std::make_shared<ml::LogRegClassifier>(features);
  logreg->Train(training_data_);
  ensemble_ = std::make_shared<ml::EnsembleClassifier>();
  ensemble_->AddMember(std::move(nb));
  ensemble_->AddMember(std::move(knn));
  ensemble_->AddMember(std::move(logreg));
  RepublishLocked();
}

void ChimeraPipeline::ScaleDownType(const std::string& type,
                                    std::string_view author,
                                    std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  suppressed_.insert(type);
  repo_->DisableRulesForType(type, author, reason);
  RepublishLocked();
}

void ChimeraPipeline::ScaleUpType(const std::string& type) {
  std::lock_guard<std::mutex> lock(mu_);
  suppressed_.erase(type);
  RepublishLocked();
}

void ChimeraPipeline::Memoize(const std::string& title,
                              const std::string& type) {
  gate_.Memoize(title, type);
}

std::optional<std::string> ChimeraPipeline::Classify(
    const data::ProductItem& item) const {
  auto snap = CurrentSnapshot();
  auto memo = gate_.snapshot();
  GateDecision gate = GateKeeper::DecideWith(*memo, item);
  if (gate.kind == GateDecision::Kind::kRejected) return std::nullopt;
  if (gate.kind == GateDecision::Kind::kClassified) {
    if (snap->suppressed.count(gate.type)) return std::nullopt;
    return gate.type;
  }
  auto vote = snap->voting->Vote(item);
  if (!vote.has_value()) return std::nullopt;
  if (snap->suppressed.count(vote->label)) return std::nullopt;
  if (!snap->filter->Admit(item, vote->label)) return std::nullopt;
  return vote->label;
}

namespace {

/// Runs fn(begin, end) over [0, n), chunked on the pool when available.
void RunChunked(ThreadPool* pool, size_t n,
                const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    fn(0, n);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace

BatchReport ChimeraPipeline::ProcessBatch(
    const std::vector<data::ProductItem>& items) const {
  // Pin one snapshot (and one memo version) for the whole batch: writers
  // may publish new versions while we run, but this batch is classified
  // entirely against the state it started with.
  auto snap = CurrentSnapshot();
  auto memo = gate_.snapshot();
  ThreadPool* pool = pool_.get();

  BatchReport report;
  report.total = items.size();
  report.predictions.assign(items.size(), std::nullopt);
  if (items.empty()) return report;

  // ---- Stage 1: gate decisions (sharded; writes are index-disjoint) ------
  enum : uint8_t { kPass = 0, kRejected, kGateClassified, kGateSuppressed };
  std::vector<uint8_t> gate_outcome(items.size(), kPass);
  RunChunked(pool, items.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      GateDecision d = GateKeeper::DecideWith(*memo, items[i]);
      if (d.kind == GateDecision::Kind::kRejected) {
        gate_outcome[i] = kRejected;
      } else if (d.kind == GateDecision::Kind::kClassified) {
        if (snap->suppressed.count(d.type)) {
          gate_outcome[i] = kGateSuppressed;
        } else {
          gate_outcome[i] = kGateClassified;
          report.predictions[i] = std::move(d.type);
        }
      }
    }
  });

  std::vector<size_t> pass_idx;
  std::vector<const data::ProductItem*> pass_ptrs;
  for (size_t i = 0; i < items.size(); ++i) {
    switch (gate_outcome[i]) {
      case kRejected: ++report.gate_rejected; break;
      case kGateClassified: ++report.gate_classified; break;
      case kGateSuppressed: ++report.suppressed; break;
      default:
        pass_idx.push_back(i);
        pass_ptrs.push_back(&items[i]);
        break;
    }
  }
  if (pass_ptrs.empty()) return report;

  // ---- Stage 2: regex rule matches, once per batch (indexed executor) ----
  engine::ExecutionResult exec =
      snap->rule_classifier->MatchBatch(pass_ptrs, pool);

  // ---- Stage 3: voting (rule member scored from the stage-2 matches) -----
  std::vector<std::vector<ml::ScoredLabel>> rule_scored;
  const ml::Classifier* precomputed = nullptr;
  if (config_.use_rules) {
    rule_scored.resize(pass_ptrs.size());
    RunChunked(pool, pass_ptrs.size(), [&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        rule_scored[j] =
            snap->rule_classifier->ScoreMatches(exec.matches_per_item[j]);
      }
    });
    precomputed = snap->rule_classifier.get();
  }
  auto votes =
      snap->voting->VoteBatch(pass_ptrs, pool, precomputed, &rule_scored);

  // ---- Stage 4: suppression + filter + accounting ------------------------
  // Per-chunk partial reports, merged in chunk order: counters are sums,
  // predictions are written by disjoint index, so the merged result is
  // identical to the sequential path.
  struct Partial {
    size_t declined = 0, suppressed = 0, filtered = 0, classified = 0;
  };
  const size_t n_pass = pass_ptrs.size();
  const size_t chunks =
      pool == nullptr ? 1 : std::min(n_pass, pool->num_threads() * 4);
  const size_t chunk_size = (n_pass + chunks - 1) / chunks;
  std::vector<Partial> partials(chunks);
  auto finalize = [&](Partial& p, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      if (!votes[j].has_value()) {
        ++p.declined;
        continue;
      }
      const std::string& label = votes[j]->label;
      if (snap->suppressed.count(label)) {
        ++p.suppressed;
        continue;
      }
      if (!snap->filter->AdmitWithMatches(*pass_ptrs[j], label,
                                          exec.matches_per_item[j])) {
        ++p.filtered;
        continue;
      }
      ++p.classified;
      report.predictions[pass_idx[j]] = label;
    }
  };
  if (pool == nullptr) {
    finalize(partials[0], 0, n_pass);
  } else {
    TaskGroup group;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n_pass, begin + chunk_size);
      pool->Submit(&group,
                   [&finalize, &partials, c, begin, end] {
                     finalize(partials[c], begin, end);
                   });
    }
    group.Wait();
  }
  for (const Partial& p : partials) {
    report.declined += p.declined;
    report.suppressed += p.suppressed;
    report.filtered += p.filtered;
    report.classified += p.classified;
  }
  return report;
}

}  // namespace rulekit::chimera
