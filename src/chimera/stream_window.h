#ifndef RULEKIT_CHIMERA_STREAM_WINDOW_H_
#define RULEKIT_CHIMERA_STREAM_WINDOW_H_

#include <cstddef>
#include <map>
#include <span>
#include <string>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"
#include "src/common/random.h"
#include "src/data/product.h"
#include "src/rules/ids.h"

namespace rulekit::chimera {

/// Knobs of the sliding-window stream driver.
struct StreamWindowOptions {
  /// Classified items crowd-verified per window for the precision
  /// estimate (capped at the window's classified count).
  size_t sample_size = 150;
  /// Wilson interval confidence (1.96 = 95%).
  double z = 1.96;
  /// Feed the verified sample back as labeled training data — the
  /// operational crowd-labeling loop the self-healing retrain draws on.
  /// Without it an alarm-triggered retrain has nothing new to learn from.
  bool feed_training = true;
  /// Also label (up to sample_size of) the window's *unclassified* items
  /// into the training pool: the paper's manual queue. This is how a
  /// retrain learns vocabulary the entire stack abstained on.
  bool label_declined = true;
  uint64_t seed = 4242;  // verification-sampling RNG
};

/// One window's outcome: the batch accounting, the quality observation
/// that was recorded, and the window's true accuracy over classified
/// items (experiment-side reporting; the monitor only ever sees the
/// sampled estimate, like production would).
struct WindowResult {
  Status status;
  BatchReport report;
  BatchQuality quality;
  double true_accuracy = 0.0;  // correct / classified, vs ground truth
  double coverage = 0.0;
};

/// Drives a labeled event stream through the pipeline in sliding
/// windows — the streaming analog of batch experiment loops. Per window
/// it classifies through the one ClassifyRequest entry point,
/// crowd-samples the predictions against the items' labels for a Wilson
/// precision estimate, records BatchQuality + CacheActivity into the
/// QualityMonitor (which is what the DriftResponder's alarms read), and
/// optionally feeds the verified sample back as training data.
///
/// Windows are numbered per tenant, monotonically — the responder uses
/// the recorded batch_index to tell a new window from a re-poll.
class StreamWindowRunner {
 public:
  StreamWindowRunner(ChimeraPipeline& pipeline, QualityMonitor& monitor,
                     StreamWindowOptions options = {});

  /// Classifies one window of labeled stream items for `tenant`,
  /// records quality + cache activity, and (optionally) feeds the
  /// verified sample to the tenant's training pool.
  WindowResult RunWindow(std::span<const data::LabeledItem> window,
                         const rules::TenantId& tenant = {});

  /// Windows run so far for `tenant`.
  size_t windows(const rules::TenantId& tenant = {}) const;

 private:
  ChimeraPipeline& pipeline_;
  QualityMonitor& monitor_;
  StreamWindowOptions options_;
  Rng rng_;
  std::map<std::string, size_t> window_index_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_STREAM_WINDOW_H_
