#include "src/chimera/stream_window.h"

#include <algorithm>
#include <vector>

#include "src/crowd/estimator.h"

namespace rulekit::chimera {

StreamWindowRunner::StreamWindowRunner(ChimeraPipeline& pipeline,
                                       QualityMonitor& monitor,
                                       StreamWindowOptions options)
    : pipeline_(pipeline), monitor_(monitor), options_(options),
      rng_(options.seed) {}

size_t StreamWindowRunner::windows(const rules::TenantId& tenant) const {
  auto it = window_index_.find(tenant.value());
  return it == window_index_.end() ? 0 : it->second;
}

WindowResult StreamWindowRunner::RunWindow(
    std::span<const data::LabeledItem> window, const rules::TenantId& tenant) {
  WindowResult result;

  std::vector<data::ProductItem> items;
  items.reserve(window.size());
  for (const auto& labeled : window) items.push_back(labeled.item);

  ClassifyRequest request;
  request.tenant = tenant;
  request.items = items;
  ClassifyResponse response = pipeline_.Classify(request);
  result.status = response.status;
  result.report = std::move(response.report);
  const BatchReport& report = result.report;
  if (!result.status.ok()) return result;

  // The classified items (prediction present), for verification sampling
  // and ground-truth accuracy.
  std::vector<size_t> classified;
  classified.reserve(report.predictions.size());
  size_t correct = 0;
  for (size_t i = 0; i < report.predictions.size(); ++i) {
    if (!report.predictions[i].has_value()) continue;
    classified.push_back(i);
    if (*report.predictions[i] == window[i].label) ++correct;
  }
  result.coverage = report.coverage();
  result.true_accuracy =
      classified.empty() ? 0.0
                         : static_cast<double>(correct) / classified.size();

  // Crowd-verify a sample of the classified items: the labels stand in
  // for crowdsourced verdicts (DESIGN.md substitution table), so the
  // monitor sees a sampled Wilson estimate, not the ground truth.
  size_t sample_size = std::min(options_.sample_size, classified.size());
  std::vector<size_t> sampled_positions =
      rng_.SampleWithoutReplacement(classified.size(), sample_size);
  size_t positives = 0;
  std::vector<data::LabeledItem> verified;
  verified.reserve(sample_size);
  for (size_t pos : sampled_positions) {
    size_t i = classified[pos];
    if (*report.predictions[i] == window[i].label) ++positives;
    verified.push_back(window[i]);
  }

  size_t index = window_index_[tenant.value()]++;
  BatchQuality quality;
  quality.batch_index = index;
  quality.precision = sample_size == 0
                          ? crowd::PrecisionEstimate{}
                          : crowd::WilsonEstimate(positives, sample_size,
                                                  options_.z);
  quality.coverage = result.coverage;
  quality.recall = quality.precision.estimate * result.coverage;
  monitor_.Record(quality, tenant.value());
  result.quality = quality;

  CacheActivity cache;
  cache.batch_index = index;
  cache.lookups = report.cache_hits + report.cache_misses;
  cache.hits = report.cache_hits;
  cache.stale_drops = report.cache_stale_drops;
  cache.promotions = report.cache_promotions;
  cache.evictions = report.cache_evictions;
  if (cache.lookups > 0) monitor_.RecordCache(cache, tenant.value());

  if (options_.feed_training) {
    if (options_.label_declined) {
      // The unclassified remainder flows to the manual queue; a sample
      // of it comes back labeled.
      std::vector<size_t> unclassified;
      for (size_t i = 0; i < report.predictions.size(); ++i) {
        if (!report.predictions[i].has_value()) unclassified.push_back(i);
      }
      size_t manual = std::min(options_.sample_size, unclassified.size());
      for (size_t pos :
           rng_.SampleWithoutReplacement(unclassified.size(), manual)) {
        verified.push_back(window[unclassified[pos]]);
      }
    }
    if (!verified.empty()) {
      pipeline_.AddTrainingData(std::move(verified), tenant);
    }
  }
  return result;
}

}  // namespace rulekit::chimera
