#include "src/chimera/gate_keeper.h"

#include "src/common/string_util.h"

namespace rulekit::chimera {

GateDecision GateKeeper::DecideWith(const GateMemo& memo,
                                    const data::ProductItem& item) {
  if (Trim(item.title).empty()) {
    return {GateDecision::Kind::kRejected, ""};
  }
  auto it = memo.find(ToLowerAscii(item.title));
  if (it != memo.end()) {
    return {GateDecision::Kind::kClassified, it->second};
  }
  return {GateDecision::Kind::kPass, ""};
}

GateDecision GateKeeper::Decide(const data::ProductItem& item) const {
  return DecideWith(*snapshot(), item);
}

void GateKeeper::Memoize(const std::string& title, const std::string& type) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<GateMemo>(*memo_);
  (*next)[ToLowerAscii(title)] = type;
  memo_ = std::move(next);
}

std::shared_ptr<const GateMemo> GateKeeper::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_;
}

}  // namespace rulekit::chimera
