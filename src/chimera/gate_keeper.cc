#include "src/chimera/gate_keeper.h"

#include "src/common/string_util.h"

namespace rulekit::chimera {

GateDecision GateKeeper::DecideLowered(const GateMemo& memo,
                                       const data::ProductItem& item,
                                       const std::string& lowered_title) {
  if (Trim(item.title).empty()) {
    return {GateDecision::Kind::kRejected, ""};
  }
  auto it = memo.find(lowered_title);
  if (it != memo.end()) {
    return {GateDecision::Kind::kClassified, it->second};
  }
  return {GateDecision::Kind::kPass, ""};
}

GateDecision GateKeeper::DecideWith(const GateMemo& memo,
                                    const data::ProductItem& item) {
  return DecideLowered(memo, item, ToLowerAscii(item.title));
}

GateDecision GateKeeper::Decide(const data::ProductItem& item) const {
  return DecideWith(*snapshot(), item);
}

void GateKeeper::Memoize(const std::string& title, const std::string& type) {
  const std::pair<std::string, std::string> one[] = {{title, type}};
  MemoizeAll(one);
}

void GateKeeper::MemoizeAll(
    std::span<const std::pair<std::string, std::string>> pairs) {
  if (pairs.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<GateMemo>(*memo_);
  for (const auto& [title, type] : pairs) {
    (*next)[ToLowerAscii(title)] = type;
  }
  memo_ = std::move(next);
}

std::shared_ptr<const GateMemo> GateKeeper::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_;
}

}  // namespace rulekit::chimera
