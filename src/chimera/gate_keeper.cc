#include "src/chimera/gate_keeper.h"

#include "src/common/string_util.h"

namespace rulekit::chimera {

GateDecision GateKeeper::Decide(const data::ProductItem& item) const {
  if (Trim(item.title).empty()) {
    return {GateDecision::Kind::kRejected, ""};
  }
  auto it = memo_.find(ToLowerAscii(item.title));
  if (it != memo_.end()) {
    return {GateDecision::Kind::kClassified, it->second};
  }
  return {GateDecision::Kind::kPass, ""};
}

void GateKeeper::Memoize(const std::string& title, const std::string& type) {
  memo_[ToLowerAscii(title)] = type;
}

}  // namespace rulekit::chimera
