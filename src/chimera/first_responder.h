#ifndef RULEKIT_CHIMERA_FIRST_RESPONDER_H_
#define RULEKIT_CHIMERA_FIRST_RESPONDER_H_

#include <string>
#include <vector>

#include "src/chimera/pipeline.h"
#include "src/common/random.h"
#include "src/crowd/crowd.h"
#include "src/crowd/estimator.h"

namespace rulekit::chimera {

/// Triage policy knobs.
struct FirstResponderConfig {
  uint64_t seed = 4242;
  /// Crowd verdicts sampled per triaged batch.
  size_t sample_size = 300;
  /// Batch-level precision below this is an incident.
  double batch_precision_threshold = 0.92;
  /// Types whose sampled precision falls below this (with enough
  /// verdicts) get scaled down.
  double type_precision_floor = 0.85;
  size_t min_type_verdicts = 10;
  /// When true, Resolve() fires a fire-and-forget retrain after restoring
  /// the checkpoint: the incident's crowd-confirmed labels are already in
  /// the training pool, and the post-incident ensemble should reflect
  /// them without blocking the responder. Off by default (historical
  /// behaviour); gate the frequency via PipelineConfig::retrain.
  bool retrain_on_resolve = false;
};

/// What the responder did about one batch.
struct IncidentReport {
  bool incident = false;
  crowd::PrecisionEstimate batch_precision;
  /// Pre-intervention restore handle. 0 when no incident was raised —
  /// or when the checkpoint could not be journaled, in which case no
  /// intervention was attempted either.
  uint64_t checkpoint = 0;
  std::vector<std::string> scaled_down_types;
  size_t crowd_questions = 0;
};

/// The §2.2 first-responder workflow as a policy object: crowd-sample a
/// processed batch, raise an incident when precision breaks the bar,
/// checkpoint the rule repository, and scale down the misbehaving types —
/// then restore everything once the underlying problem is fixed. Analysts
/// are the first responders; this encodes their standard playbook.
class FirstResponder {
 public:
  FirstResponder(ChimeraPipeline& pipeline, crowd::CrowdSimulator& crowd,
                 FirstResponderConfig config = {});

  /// Samples the batch's predictions via the crowd and intervenes if
  /// needed. `batch` carries ground truth only for the crowd oracle.
  IncidentReport Triage(const std::vector<data::LabeledItem>& batch,
                        const BatchReport& report);

  /// Restores the checkpoint taken by Triage and lifts its suppressions.
  /// With `retrain_on_resolve` set, also requests a background retrain
  /// (non-blocking; see last_retrain()).
  Status Resolve(const IncidentReport& incident);

  /// Future of the retrain Resolve() last requested (invalid until then).
  std::shared_future<RetrainReport> last_retrain() const {
    return last_retrain_;
  }

 private:
  ChimeraPipeline& pipeline_;
  crowd::CrowdSimulator& crowd_;
  FirstResponderConfig config_;
  Rng rng_;
  std::shared_future<RetrainReport> last_retrain_;
};

}  // namespace rulekit::chimera

#endif  // RULEKIT_CHIMERA_FIRST_RESPONDER_H_
