#ifndef RULEKIT_COMMON_BINARY_CODEC_H_
#define RULEKIT_COMMON_BINARY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace rulekit {

/// CRC-32 (IEEE 802.3, the zlib polynomial) over a byte span. Every WAL
/// record, snapshot payload, and wire frame carries one so a reader can
/// tell a torn write from a corrupted one.
uint32_t Crc32(std::string_view data);

/// Append-only binary encoder. Integers are little-endian; variable-length
/// quantities use LEB128 varints; strings are varint-length-prefixed bytes.
/// Shared by the durable store's record formats (src/storage) and the
/// serving wire protocol (src/serving).
class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutDouble(double v);  // IEEE-754 bits, little-endian
  void PutString(std::string_view s);

  const std::string& data() const { return out_; }
  std::string Release() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over one encoded buffer. Errors are sticky:
/// after the first short read every accessor returns a zero value and
/// ok() stays false, so call sites read a whole struct and check once.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  uint64_t Varint();
  double F64();
  std::string String();

  bool ok() const { return ok_; }
  /// InvalidArgument naming the failing byte offset; OK while ok().
  Status status() const;
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  /// Marks the decode failed with a caller-detected inconsistency (bad
  /// enum value, impossible count); subsequent reads return zero values.
  void Fail(std::string reason);

 private:
  bool Ensure(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_BINARY_CODEC_H_
