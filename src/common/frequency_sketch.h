#ifndef RULEKIT_COMMON_FREQUENCY_SKETCH_H_
#define RULEKIT_COMMON_FREQUENCY_SKETCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace rulekit {

/// Compact approximate frequency counter (count-min sketch with periodic
/// aging, the TinyLFU admission idea). The hot-result cache asks it "how
/// often has this key been seen lately?" to decide whether a title has
/// earned a cache slot, without storing the keys themselves.
///
/// Counters saturate at 255 and are halved every `width * 8` increments,
/// so the estimate tracks recent popularity rather than all-time counts.
/// Estimates can only over-count (hash collisions), never under-count
/// relative to the aged true frequency — exactly the safe direction for
/// an admission policy. Not thread-safe; callers stripe and lock.
class FrequencySketch {
 public:
  /// `capacity_hint` is the number of distinct hot keys the caller cares
  /// about (the owning cache stripe's capacity); the sketch sizes itself
  /// ~4x wider to keep collision noise low.
  explicit FrequencySketch(size_t capacity_hint) {
    size_t width = 64;
    while (width < capacity_hint * 4) width <<= 1;
    mask_ = width - 1;
    table_.assign(width * kDepth, 0);
    sample_period_ = width * 8;
  }

  /// Bumps the frequency of `hash` and returns the new estimate.
  uint32_t IncrementAndEstimate(uint64_t hash) {
    if (++ops_ >= sample_period_) Age();
    uint32_t estimate = 255;
    for (size_t d = 0; d < kDepth; ++d) {
      uint8_t& counter = table_[d * (mask_ + 1) + Index(hash, d)];
      if (counter < 255) ++counter;
      estimate = std::min<uint32_t>(estimate, counter);
    }
    return estimate;
  }

  /// Read-only estimate (no increment, no aging tick).
  uint32_t Estimate(uint64_t hash) const {
    uint32_t estimate = 255;
    for (size_t d = 0; d < kDepth; ++d) {
      estimate = std::min<uint32_t>(
          estimate, table_[d * (mask_ + 1) + Index(hash, d)]);
    }
    return estimate;
  }

  void Clear() {
    std::fill(table_.begin(), table_.end(), 0);
    ops_ = 0;
  }

 private:
  static constexpr size_t kDepth = 4;

  size_t Index(uint64_t hash, size_t depth) const {
    // Derive kDepth independent row hashes from the one key hash.
    return static_cast<size_t>(Mix64(hash + depth * 0x9e3779b97f4a7c15ULL)) &
           mask_;
  }

  void Age() {
    for (uint8_t& counter : table_) counter = static_cast<uint8_t>(counter >> 1);
    ops_ = 0;
  }

  std::vector<uint8_t> table_;  // kDepth rows of (mask_ + 1) counters
  size_t mask_ = 0;
  size_t ops_ = 0;
  size_t sample_period_ = 0;
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_FREQUENCY_SKETCH_H_
