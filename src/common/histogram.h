#ifndef RULEKIT_COMMON_HISTOGRAM_H_
#define RULEKIT_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace rulekit {

/// Lock-free log-linear histogram of non-negative integer samples
/// (latencies in microseconds, coalesced batch sizes, queue depths).
///
/// Buckets are exact below 8 and then split each power of two into 8
/// sub-buckets (HdrHistogram's scheme at 3 significant bits), so the
/// relative quantile error is bounded at ~12.5% while the whole table
/// stays ~2.5 KB of atomics. Record() is a single relaxed fetch_add on
/// the bucket plus count/sum upkeep — cheap enough for the serving
/// fast path — and Snapshot() copies the counters into a plain value
/// type that quantile queries run against, so a percentile read never
/// blocks a writer.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;                     // 8 sub-buckets
  static constexpr uint64_t kSub = 1ull << kSubBits;
  static constexpr int kMaxExp = 40;                     // ~13 days in us
  static constexpr size_t kBuckets =
      kSub + static_cast<size_t>(kMaxExp - kSubBits + 1) * kSub;

  /// An immutable copy of the counters, safe to query at leisure.
  class Snapshot {
   public:
    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t max() const { return max_; }
    double Mean() const {
      return count_ == 0 ? 0.0
                         : static_cast<double>(sum_) /
                               static_cast<double>(count_);
    }

    /// Value at quantile `q` in [0, 1] (bucket midpoint; 0 when empty).
    uint64_t Quantile(double q) const {
      if (count_ == 0) return 0;
      if (q < 0) q = 0;
      if (q > 1) q = 1;
      uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
      if (target >= count_) target = count_ - 1;
      uint64_t seen = 0;
      for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen > target) return Midpoint(i);
      }
      return Midpoint(kBuckets - 1);
    }

    uint64_t P50() const { return Quantile(0.50); }
    uint64_t P95() const { return Quantile(0.95); }
    uint64_t P99() const { return Quantile(0.99); }

   private:
    friend class LogHistogram;
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
  };

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Copies the counters. Buckets are read individually (relaxed), so a
  /// snapshot taken under concurrent Record()s is approximately — not
  /// transactionally — consistent, which is fine for percentiles.
  Snapshot TakeSnapshot() const {
    Snapshot snap;
    for (size_t i = 0; i < kBuckets; ++i) {
      snap.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
      snap.count_ += snap.buckets_[i];
    }
    snap.sum_ = sum_.load(std::memory_order_relaxed);
    snap.max_ = max_.load(std::memory_order_relaxed);
    return snap;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  static size_t BucketOf(uint64_t v) {
    if (v < kSub) return static_cast<size_t>(v);
    int e = std::bit_width(v) - 1;  // v in [2^e, 2^(e+1))
    if (e > kMaxExp) {
      e = kMaxExp;
      v = (1ull << (kMaxExp + 1)) - 1;
    }
    const uint64_t sub = (v >> (e - kSubBits)) & (kSub - 1);
    return kSub + static_cast<size_t>(e - kSubBits) * kSub +
           static_cast<size_t>(sub);
  }

  /// Midpoint of bucket `i`'s value range (exact for the first 8).
  static uint64_t Midpoint(size_t i) {
    if (i < kSub) return i;
    const size_t rel = i - kSub;
    const int e = static_cast<int>(rel / kSub) + kSubBits;
    const uint64_t sub = rel % kSub;
    const uint64_t width = 1ull << (e - kSubBits);
    return (1ull << e) + sub * width + width / 2;
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_HISTOGRAM_H_
