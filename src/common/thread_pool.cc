#include "src/common/thread_pool.h"

#include <algorithm>

namespace rulekit {

void TaskGroup::Add() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_;
}

void TaskGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  group->Add();
  Submit([group, task = std::move(task)] {
    task();
    group->Done();
  });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  TaskGroup group;
  const size_t chunks = std::min(n, threads_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    const size_t end = std::min(n, begin + chunk_size);
    Submit(&group, [&fn, begin, end] { fn(begin, end); });
  }
  group.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rulekit
