#ifndef RULEKIT_COMMON_RESULT_H_
#define RULEKIT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace rulekit {

/// Either a value of type T or a non-OK Status explaining why the value
/// could not be produced. Accessing value() on an error result aborts in
/// debug builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return parsed_regex;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("empty result");
};

}  // namespace rulekit

/// Evaluate `expr` (a Result<T>), propagate its error, else bind the value.
#define RULEKIT_ASSIGN_OR_RETURN(lhs, expr)      \
  auto RULEKIT_CONCAT_(_res_, __LINE__) = (expr);\
  if (!RULEKIT_CONCAT_(_res_, __LINE__).ok())    \
    return RULEKIT_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(RULEKIT_CONCAT_(_res_, __LINE__)).value()

#define RULEKIT_CONCAT_(a, b) RULEKIT_CONCAT_IMPL_(a, b)
#define RULEKIT_CONCAT_IMPL_(a, b) a##b

#endif  // RULEKIT_COMMON_RESULT_H_
