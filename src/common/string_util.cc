#include "src/common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace rulekit {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  ToLowerAsciiInPlace(out);
  return out;
}

void ToLowerAsciiInPlace(std::string& s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string EscapeControl(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeControl(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\': out += '\\'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        default:
          out += '\\';
          out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string RegexEscape(std::string_view s) {
  static const char kMeta[] = "\\^$.|?*+()[]{}";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::strchr(kMeta, c) != nullptr && c != '\0') out += '\\';
    out += c;
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace rulekit
