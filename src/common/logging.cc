#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>
#include <mutex>

namespace rulekit {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
  (void)level_;
}

}  // namespace internal_logging
}  // namespace rulekit
