#ifndef RULEKIT_COMMON_HASH_H_
#define RULEKIT_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace rulekit {

/// 64-bit finalizer (splitmix64). Turns a weakly-mixed value into one
/// whose low bits are usable as a table index; also the base step for
/// deriving several independent hashes from one (seed ^ Mix64 chains).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over the bytes, finalized through Mix64. Deterministic across
/// runs and platforms (unlike std::hash), which version fingerprints and
/// the hot-cache stripe/sketch partitioning rely on.
inline uint64_t HashBytes(std::string_view bytes,
                          uint64_t seed = 1469598103934665603ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

/// Order-sensitive combination of a running hash with the next value.
/// HashCombine(HashCombine(0, a), b) differs from the (b, a) order, so a
/// sequence of per-shard versions fingerprints to a value that (unlike a
/// sum) cannot collide between different version vectors in practice.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

}  // namespace rulekit

#endif  // RULEKIT_COMMON_HASH_H_
