#include "src/common/random.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace rulekit {

namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling would be overkill here;
  // plain rejection keeps the distribution exact.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; one value per call is fine at our scales.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Rejection sampling against the integral bound of x^-s
  // (see "Rejection sampling of the Zipf distribution", J. Crease).
  const double t = (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
  for (;;) {
    const double inv =
        [&](double p) {  // inverse of the bounding CDF
          if (p * t <= 1.0) return p * t;
          return std::pow(p * t * (1.0 - s) + s, 1.0 / (1.0 - s));
        }(NextDouble());
    const uint64_t k = static_cast<uint64_t>(inv);  // in [0, n)
    const double x = static_cast<double>(k) + 1.0;
    const double ratio = std::pow(x, -s) /
                         (inv <= 1.0 ? 1.0 : std::pow(inv, -s));
    if (NextDouble() < ratio) return k < n ? k : n - 1;
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  // Floyd's algorithm: k iterations, set membership checks.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = Uniform(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace rulekit
