#ifndef RULEKIT_COMMON_LOGGING_H_
#define RULEKIT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rulekit {

/// Severity levels for the minimal logging facility. Benchmarks and
/// examples default to kInfo; tests typically raise the threshold to
/// kWarning to keep output clean.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rulekit

#define RULEKIT_LOG(level)                                              \
  if (::rulekit::LogLevel::level < ::rulekit::GetLogLevel()) {          \
  } else                                                                \
    ::rulekit::internal_logging::LogMessage(::rulekit::LogLevel::level, \
                                            __FILE__, __LINE__)         \
        .stream()

#endif  // RULEKIT_COMMON_LOGGING_H_
