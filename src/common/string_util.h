#ifndef RULEKIT_COMMON_STRING_UTIL_H_
#define RULEKIT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rulekit {

/// ASCII lowercase copy. The library normalizes all product text to ASCII
/// lowercase before matching, mirroring Chimera's title preprocessing.
std::string ToLowerAscii(std::string_view s);

/// In-place ASCII lowercase.
void ToLowerAsciiInPlace(std::string& s);

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Split on any run of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `needle` occurs in `haystack` (byte-wise).
bool Contains(std::string_view haystack, std::string_view needle);

/// Escape a string for embedding in our TSV/JSONL formats: backslash,
/// tab, newline, carriage return.
std::string EscapeControl(std::string_view s);

/// Inverse of EscapeControl.
std::string UnescapeControl(std::string_view s);

/// Escape regex metacharacters so the result matches `s` literally.
std::string RegexEscape(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rulekit

#endif  // RULEKIT_COMMON_STRING_UTIL_H_
