#ifndef RULEKIT_COMMON_RING_BUFFER_H_
#define RULEKIT_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rulekit {

/// A bounded append-only history: the last `capacity` pushed values in
/// push order, oldest first. Once full, each push overwrites the oldest
/// element in place — no allocation, no shifting — so a long-running
/// pipeline can record per-batch observations forever without leaking.
/// Indexing is logical: [0] is the oldest retained element, back() the
/// newest. `dropped()` counts overwritten elements, so callers can tell
/// a short history from a truncated one.
///
/// Not thread-safe; guard externally where writers race readers.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push_back(T value) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(value));
      return;
    }
    items_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  size_t capacity() const { return capacity_; }
  /// Elements overwritten since construction (0 until the buffer fills).
  uint64_t dropped() const { return dropped_; }

  const T& operator[](size_t i) const {
    return items_[(head_ + i) % items_.size()];
  }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[items_.size() - 1]; }

  void clear() {
    items_.clear();
    head_ = 0;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;  // physical index of the oldest element once full
  std::vector<T> items_;
  uint64_t dropped_ = 0;
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_RING_BUFFER_H_
