#ifndef RULEKIT_COMMON_STATUS_H_
#define RULEKIT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rulekit {

/// Error category for a failed operation. Mirrors the small set of failure
/// modes that appear across the library; keep this list short.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (e.g. a bad regex)
  kNotFound,          // a referenced entity does not exist
  kAlreadyExists,     // uniqueness violated (e.g. duplicate rule id)
  kFailedPrecondition,// object not in the right state for the call
  kResourceExhausted, // a budget or cap was hit (e.g. DFA state cap)
  kInternal,          // invariant violation inside the library
  kIOError,           // filesystem problem
  kDeadlineExceeded,  // the caller's deadline passed before completion
  kUnavailable,       // the service cannot take the request right now
};

/// Value-semantic success/error carrier, used instead of exceptions across
/// all public API boundaries (RocksDB idiom). A default-constructed Status
/// is OK and carries no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

}  // namespace rulekit

/// Propagate a non-OK Status to the caller. Statement form, usable only in
/// functions returning Status.
#define RULEKIT_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::rulekit::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // RULEKIT_COMMON_STATUS_H_
