#include "src/common/binary_codec.h"

#include <array>
#include <cstring>

#include "src/common/string_util.h"

namespace rulekit {

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char b : data) {
    crc = kTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- Encoder ---------------------------------------------------------------

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  out_.append(s.data(), s.size());
}

// ---- Decoder ---------------------------------------------------------------

bool Decoder::Ensure(size_t n) {
  if (!ok_) return false;
  if (data_.size() - pos_ < n) {
    ok_ = false;
    error_ = StrFormat("short read at offset %zu (need %zu bytes, have %zu)",
                       pos_, n, data_.size() - pos_);
    return false;
  }
  return true;
}

void Decoder::Fail(std::string reason) {
  if (!ok_) return;
  ok_ = false;
  error_ = StrFormat("at offset %zu: %s", pos_, reason.c_str());
}

Status Decoder::status() const {
  if (ok_) return Status::OK();
  return Status::InvalidArgument("decode failed " + error_);
}

uint8_t Decoder::U8() {
  if (!Ensure(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Decoder::U32() {
  if (!Ensure(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Decoder::U64() {
  if (!Ensure(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

uint64_t Decoder::Varint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!Ensure(1)) return 0;
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
  }
  Fail("varint longer than 64 bits");
  return 0;
}

double Decoder::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::String() {
  uint64_t len = Varint();
  if (!ok_) return "";
  if (!Ensure(len)) return "";
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

}  // namespace rulekit
