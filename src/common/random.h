#ifndef RULEKIT_COMMON_RANDOM_H_
#define RULEKIT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rulekit {

/// Deterministic pseudo-random number generator (xoshiro256**). All
/// randomized components of the library (catalog generation, crowd noise,
/// sampling) take a Rng so every experiment is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Zipf-distributed value in [0, n) with skew parameter s. Used to model
  /// the heavy head/long tail of product-type popularity.
  /// Implemented by inverse-CDF over precomputed weights is too slow for
  /// large n, so this uses rejection sampling (Jason Crease method).
  uint64_t Zipf(uint64_t n, double s);

  /// Sample k distinct indices from [0, n) (Floyd's algorithm). If k >= n
  /// returns all of [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick an index according to non-negative weights. Requires a positive
  /// total weight.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_RANDOM_H_
