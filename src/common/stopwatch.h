#ifndef RULEKIT_COMMON_STOPWATCH_H_
#define RULEKIT_COMMON_STOPWATCH_H_

#include <chrono>

namespace rulekit {

/// Wall-clock stopwatch for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_STOPWATCH_H_
