#ifndef RULEKIT_COMMON_THREAD_POOL_H_
#define RULEKIT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rulekit {

/// Tracks completion of one logical batch of tasks submitted to a
/// ThreadPool. Several TaskGroups can be in flight on the same pool at
/// once (e.g. concurrent batch Classify calls sharing the serving pool);
/// each group's Wait() only blocks on its own tasks, unlike
/// ThreadPool::Wait() which drains the whole pool.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until every task submitted with this group has finished.
  void Wait();

 private:
  friend class ThreadPool;
  void Add();
  void Done();

  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

/// Fixed-size worker pool used by the parallel rule executor and the
/// Chimera batch serving path. Stands in for the Hadoop cluster the paper
/// mentions for scaling rule execution; the indexing-vs-scan and
/// parallel-speedup claims are machine-local.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Enqueue a task tracked by `group` (as well as by the pool itself).
  void Submit(TaskGroup* group, std::function<void()> task);

  /// Block until every submitted task has finished (all groups).
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Partition [0, n) into roughly equal chunks and run `fn(begin, end)` on
  /// the pool, blocking until all chunks complete. Safe to call from
  /// several threads concurrently: each call waits on its own TaskGroup.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rulekit

#endif  // RULEKIT_COMMON_THREAD_POOL_H_
