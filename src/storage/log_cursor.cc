#include "src/storage/log_cursor.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/common/string_util.h"
#include "src/storage/codec.h"
#include "src/storage/wal.h"

namespace rulekit::storage {

namespace fs = std::filesystem;

namespace {

using wal_format::kFrameBytes;
using wal_format::kHeaderBytes;
using wal_format::kMagic;

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

/// pread the full span or report how much was there. Returns bytes read
/// (short at EOF), or -1 with errno set.
ssize_t PreadFully(int fd, char* buf, size_t size, uint64_t offset) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::pread(fd, buf + got, size - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

StoreLogCursor::StoreLogCursor(std::string dir, LogPosition start)
    : dir_(std::move(dir)), pos_(start) {
  if (pos_.offset < kHeaderBytes) pos_.offset = kHeaderBytes;
}

StoreLogCursor::~StoreLogCursor() { CloseSegment(); }

std::string StoreLogCursor::WalPath(uint64_t epoch) const {
  return (fs::path(dir_) / ("wal-" + std::to_string(epoch))).string();
}

bool StoreLogCursor::SegmentExists(uint64_t epoch) const {
  std::error_code ec;
  return fs::exists(WalPath(epoch), ec);
}

void StoreLogCursor::CloseSegment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status StoreLogCursor::EnsureSegmentOpen() {
  if (fd_ >= 0) return Status::OK();
  const std::string path = WalPath(pos_.epoch);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(StrFormat("%s: cannot open log segment: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  char hdr[kHeaderBytes];
  ssize_t got = PreadFully(fd, hdr, kHeaderBytes, 0);
  if (got != static_cast<ssize_t>(kHeaderBytes) ||
      std::memcmp(hdr, kMagic, 4) != 0) {
    ::close(fd);
    return Status::IOError("not a rulekit WAL file: " + path);
  }
  if (std::memcmp(hdr, kMagic, kHeaderBytes) != 0) {
    ::close(fd);
    return Status::IOError(StrFormat(
        "%s: unsupported WAL format version %u (this build reads version %u)",
        path.c_str(), static_cast<unsigned>(static_cast<unsigned char>(hdr[4])),
        static_cast<unsigned>(kMagic[4])));
  }
  fd_ = fd;
  return Status::OK();
}

Result<std::optional<LogRecord>> StoreLogCursor::Next() {
  for (;;) {
    if (fd_ < 0) {
      if (!SegmentExists(pos_.epoch)) {
        if (SegmentExists(pos_.epoch + 1)) {
          // Retention pruned our segment out from under the position:
          // history from here is only available via a snapshot re-seed.
          return Status::NotFound(StrFormat(
              "log position (epoch %llu, offset %llu) was compacted away",
              static_cast<unsigned long long>(pos_.epoch),
              static_cast<unsigned long long>(pos_.offset)));
        }
        // Segment not created yet (rotation in flight, or a subscriber
        // parked exactly at the next epoch boundary): caught up.
        return std::optional<LogRecord>{};
      }
      Status st = EnsureSegmentOpen();
      // The open can still race the writer laying down the file header;
      // only a *sealed* unreadable segment is real damage.
      if (!st.ok()) {
        if (!SegmentExists(pos_.epoch + 1)) return std::optional<LogRecord>{};
        return st;
      }
    }

    // Order matters: observe the seal *before* sizing the file. Once
    // wal-<epoch+1> exists no more bytes land in wal-<epoch>, so a size
    // read after the seal check is final when sealed is true; the other
    // order could miss records appended between the two observations.
    bool sealed = SegmentExists(pos_.epoch + 1);
    struct stat st_buf;
    if (::fstat(fd_, &st_buf) != 0) {
      return Status::IOError(StrFormat("%s: fstat: %s",
                                       WalPath(pos_.epoch).c_str(),
                                       std::strerror(errno)));
    }
    uint64_t size = static_cast<uint64_t>(st_buf.st_size);

    if (size <= pos_.offset) {
      if (sealed) {
        CloseSegment();
        pos_ = LogPosition{pos_.epoch + 1, kHeaderBytes};
        continue;
      }
      return std::optional<LogRecord>{};  // caught up with the live tail
    }
    if (size < pos_.offset + kFrameBytes) {
      if (sealed) {
        return Status::IOError(StrFormat(
            "%s: torn record frame at offset %llu in a sealed segment",
            WalPath(pos_.epoch).c_str(),
            static_cast<unsigned long long>(pos_.offset)));
      }
      return std::optional<LogRecord>{};  // frame header still landing
    }

    char frame[kFrameBytes];
    if (PreadFully(fd_, frame, kFrameBytes, pos_.offset) !=
        static_cast<ssize_t>(kFrameBytes)) {
      return Status::IOError(StrFormat("%s: pread: %s",
                                       WalPath(pos_.epoch).c_str(),
                                       std::strerror(errno)));
    }
    uint32_t len = ReadU32(frame);
    uint32_t want_crc = ReadU32(frame + 4);
    if (size < pos_.offset + kFrameBytes + len) {
      if (sealed) {
        return Status::IOError(StrFormat(
            "%s: record at offset %llu extends past the end of a sealed "
            "segment",
            WalPath(pos_.epoch).c_str(),
            static_cast<unsigned long long>(pos_.offset)));
      }
      return std::optional<LogRecord>{};  // payload still landing
    }

    LogRecord rec;
    rec.payload.resize(len);
    if (len > 0 && PreadFully(fd_, rec.payload.data(), len,
                              pos_.offset + kFrameBytes) !=
                       static_cast<ssize_t>(len)) {
      return Status::IOError(StrFormat("%s: pread payload: %s",
                                       WalPath(pos_.epoch).c_str(),
                                       std::strerror(errno)));
    }
    if (Crc32(rec.payload) != want_crc) {
      if (sealed) {
        return Status::IOError(StrFormat(
            "%s: corrupt record at offset %llu (CRC mismatch) in a sealed "
            "segment",
            WalPath(pos_.epoch).c_str(),
            static_cast<unsigned long long>(pos_.offset)));
      }
      // A reader can observe a concurrent write(2) part-done: length
      // words present, payload bytes still in flight. Not yet a record.
      return std::optional<LogRecord>{};
    }
    rec.crc = want_crc;
    pos_.offset += kFrameBytes + len;
    rec.end = pos_;
    return std::optional<LogRecord>(std::move(rec));
  }
}

}  // namespace rulekit::storage
