#ifndef RULEKIT_STORAGE_CODEC_H_
#define RULEKIT_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/binary_codec.h"
#include "src/common/result.h"
#include "src/rules/dictionary_registry.h"
#include "src/rules/repository.h"

namespace rulekit::storage {

/// The byte-level codec (CRC-framed little-endian integers, LEB128
/// varints, length-prefixed strings) lives in src/common/binary_codec.h
/// so the serving wire protocol shares it; the historical storage::
/// names stay valid for every record format and test written against
/// them.
using rulekit::Crc32;
using rulekit::Decoder;
using rulekit::Encoder;

// ---- rule-domain records ---------------------------------------------------
// Regexes and predicates are stored as their canonical DSL text and
// recompiled on decode (the compiled automata are derived state); every
// other field — including all metadata — round-trips bit-exactly.

void EncodeRule(const rules::Rule& rule, Encoder& enc);

/// `dictionaries` resolves `... anyof dict(Name)` predicates; rules that
/// reference a dictionary fail to decode (with a precise error) when it
/// is absent.
Result<rules::Rule> DecodeRule(
    Decoder& dec, const rules::DictionaryRegistry* dictionaries = nullptr);

void EncodeAuditEntry(const rules::AuditEntry& entry, Encoder& enc);
Result<rules::AuditEntry> DecodeAuditEntry(Decoder& dec);

/// A WAL record payload: one applied mutation batch.
void EncodeCommitRecord(const rules::CommitRecord& record, Encoder& enc);
Result<rules::CommitRecord> DecodeCommitRecord(
    Decoder& dec, const rules::DictionaryRegistry* dictionaries = nullptr);

/// Reads only the tenant tag out of an encoded commit record, skipping
/// every other field structurally — no predicate re-parse, no dictionary
/// lookup, no rule construction. The log shipper filters tenant-scoped
/// subscriptions with this on the hot shipping path, where fully decoding
/// (and then discarding) each record would dominate.
Result<std::string> PeekCommitTenant(std::string_view payload);

/// A snapshot payload: the full repository state.
void EncodePersistedState(const rules::PersistedState& state, Encoder& enc);
Result<rules::PersistedState> DecodePersistedState(
    Decoder& dec, const rules::DictionaryRegistry* dictionaries = nullptr);

}  // namespace rulekit::storage

#endif  // RULEKIT_STORAGE_CODEC_H_
