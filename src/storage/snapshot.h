#ifndef RULEKIT_STORAGE_SNAPSHOT_H_
#define RULEKIT_STORAGE_SNAPSHOT_H_

#include <string>

#include "src/common/result.h"
#include "src/rules/dictionary_registry.h"
#include "src/rules/repository.h"

namespace rulekit::storage {

/// Writes a compacted snapshot — the full repository state: rules with
/// metadata, the audit log, the logical clock, per-shard versions, and
/// in-memory checkpoints — to `path` atomically: the bytes land in
/// `path + ".tmp"`, are fsync'd, and are then renamed over `path` (with a
/// best-effort fsync of the parent directory). A crash at any point
/// leaves either the previous snapshot or the complete new one, never a
/// half-written file.
Status WriteSnapshotFile(const std::string& path,
                         const rules::PersistedState& state);

/// Reads a snapshot written by WriteSnapshotFile, verifying magic, length
/// framing, and the payload CRC before decoding. Errors are precise
/// enough to distinguish "not a snapshot", "truncated", and "corrupted".
Result<rules::PersistedState> ReadSnapshotFile(
    const std::string& path,
    const rules::DictionaryRegistry* dictionaries = nullptr);

}  // namespace rulekit::storage

#endif  // RULEKIT_STORAGE_SNAPSHOT_H_
