#include "src/storage/rule_store.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <vector>

#include "src/common/string_util.h"
#include "src/storage/codec.h"
#include "src/storage/snapshot.h"

namespace rulekit::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kWalPrefix[] = "wal-";
constexpr char kSnapshotPrefix[] = "snapshot-";

/// Epoch-numbered files of one kind present in the store directory,
/// ascending. Files whose suffix is not a plain decimal are ignored
/// (e.g. leftover `snapshot-7.tmp` from an interrupted compaction).
std::vector<uint64_t> ScanEpochs(const fs::path& dir, std::string_view prefix) {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
      continue;
    }
    std::string_view digits = std::string_view(name).substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string_view::npos) {
      continue;
    }
    epochs.push_back(std::strtoull(std::string(digits).c_str(), nullptr, 10));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status ReplayWalInto(const std::string& path, rules::RuleRepository& repo,
                     const rules::DictionaryRegistry* dictionaries,
                     bool truncate_torn_tail, WalReplayStats* stats) {
  return WriteAheadLog::Replay(
      path,
      [&](std::string_view payload) -> Status {
        Decoder dec(payload);
        auto record = DecodeCommitRecord(dec, dictionaries);
        if (!record.ok()) {
          return Status::IOError(StrFormat(
              "%s: undecodable commit record: %s", path.c_str(),
              record.status().message().c_str()));
        }
        RULEKIT_RETURN_IF_ERROR(repo.Replay(*record));
        return Status::OK();
      },
      stats, truncate_torn_tail);
}

}  // namespace

std::string DurableRuleStore::SnapshotPath(uint64_t epoch) const {
  return (fs::path(dir_) / (kSnapshotPrefix + std::to_string(epoch))).string();
}

std::string DurableRuleStore::WalPath(uint64_t epoch) const {
  return (fs::path(dir_) / (kWalPrefix + std::to_string(epoch))).string();
}

Result<std::unique_ptr<DurableRuleStore>> DurableRuleStore::Open(
    const std::string& dir, StoreOptions options) {
  if (options.shard_count == 0) options.shard_count = 1;
  {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IOError(
          StrFormat("cannot create store directory %s: %s", dir.c_str(),
                    ec.message().c_str()));
    }
  }
  // unique_ptr: the journal hook captures `this`, so the store's address
  // must be stable for the repository's lifetime.
  std::unique_ptr<DurableRuleStore> store(new DurableRuleStore(dir, options));

  std::vector<uint64_t> snapshots = ScanEpochs(dir, kSnapshotPrefix);
  std::vector<uint64_t> wals = ScanEpochs(dir, kWalPrefix);

  // Seed from the newest readable snapshot; an unreadable newest one
  // falls back to the previous generation (which is retained for exactly
  // this case) as long as the WAL chain covering the gap still exists.
  auto repo =
      std::make_shared<rules::RuleRepository>(options.shard_count);
  uint64_t base = 0;
  bool from_snapshot = false;
  Status snapshot_error;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto state = ReadSnapshotFile(store->SnapshotPath(*it),
                                  options.dictionaries);
    Status st = state.ok()
                    ? repo->ImportState(*std::move(state))
                    : state.status();
    if (st.ok()) {
      base = *it;
      from_snapshot = true;
      break;
    }
    if (snapshot_error.ok()) snapshot_error = st;  // report the newest
    bool chain_intact =
        std::find(wals.begin(), wals.end(),
                  it + 1 == snapshots.rend() ? 0 : *(it + 1)) != wals.end();
    if (!chain_intact && it + 1 != snapshots.rend()) {
      // The older snapshot's WAL suffix was already compacted away;
      // falling back would silently lose the gap.
      return snapshot_error;
    }
  }
  if (!from_snapshot && !snapshots.empty()) {
    // Every snapshot unreadable: only recoverable if wal-0 onward still
    // exists (never the case after a compaction has pruned).
    if (wals.empty() || wals.front() != 0) return snapshot_error;
  }

  // Replay the WAL suffix in epoch order. Only the newest log may carry
  // a torn tail (older ones were synced and closed before rotation).
  size_t segments = 0;
  size_t records = 0;
  bool truncated = false;
  for (size_t i = 0; i < wals.size(); ++i) {
    if (wals[i] < base) continue;
    if (segments == 0 && from_snapshot && wals[i] != base) {
      return Status::IOError(StrFormat(
          "%s: snapshot epoch %llu has no matching WAL; oldest remaining "
          "log is epoch %llu",
          dir.c_str(), static_cast<unsigned long long>(base),
          static_cast<unsigned long long>(wals[i])));
    }
    if (segments > 0 && wals[i] != wals[i - 1] + 1) {
      return Status::IOError(StrFormat(
          "%s: WAL epoch gap: %llu is followed by %llu", dir.c_str(),
          static_cast<unsigned long long>(wals[i - 1]),
          static_cast<unsigned long long>(wals[i])));
    }
    WalReplayStats stats;
    bool is_last = (i + 1 == wals.size());
    RULEKIT_RETURN_IF_ERROR(ReplayWalInto(store->WalPath(wals[i]), *repo,
                                          options.dictionaries, is_last,
                                          &stats));
    ++segments;
    records += stats.records;
    truncated = truncated || stats.truncated_tail;
  }

  // Normally the newest log's epoch; `base` wins only when a crash
  // landed between writing snapshot-<base> and opening its fresh log.
  uint64_t epoch = wals.empty() ? base : std::max(base, wals.back());
  RULEKIT_ASSIGN_OR_RETURN(
      store->wal_, WriteAheadLog::Open(store->WalPath(epoch),
                                       options.fsync_policy,
                                       options.fsync_interval_commits));
  store->epoch_ = epoch;
  store->base_epoch_ = base;
  store->has_snapshot_ = from_snapshot;
  store->repo_ = std::move(repo);
  store->recovery_ = {from_snapshot, base, segments, records, truncated};

  DurableRuleStore* raw = store.get();
  store->repo_->SetJournal([raw](const rules::CommitRecord& record) {
    return raw->OnCommit(record);
  });
  return store;
}

DurableRuleStore::~DurableRuleStore() {
  if (repo_ != nullptr) repo_->SetJournal(nullptr);
  std::unique_lock<std::shared_mutex> lock(mu_);
  wal_.Close();  // syncs
}

Status DurableRuleStore::OnCommit(const rules::CommitRecord& record) {
  Encoder enc;
  EncodeCommitRecord(record, enc);
  {
    // Shared: commits on disjoint shards run this hook concurrently, and
    // the WAL coalesces them (one write+fsync per batch under kGroup).
    std::shared_lock<std::shared_mutex> lock(mu_);
    RULEKIT_RETURN_IF_ERROR(wal_.Append(enc.data()));
    if (options_.compact_wal_bytes == 0 ||
        wal_.bytes() < options_.compact_wal_bytes) {
      return Status::OK();
    }
  }
  // Compaction rotates the log and needs the store exclusively. Re-check
  // the threshold once we hold it: a racing committer may have already
  // compacted while we waited.
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (wal_.bytes() >= options_.compact_wal_bytes) {
    // The append above already made this commit durable; a compaction
    // failure must not turn a durable commit into a reported failure.
    compaction_error_ = CompactLocked();
  }
  return Status::OK();
}

Status DurableRuleStore::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CompactLocked();
}

Status DurableRuleStore::CompactLocked() {
  // The WAL may already be closed (a previous compaction failed AND its
  // old-epoch reopen failed); a retry must still attempt the compaction
  // below — succeeding re-establishes journaling on a fresh epoch.
  if (wal_.is_open()) {
    RULEKIT_RETURN_IF_ERROR(wal_.Sync());
    wal_.Close();
  }
  Status st = CompactClosedLocked();
  if (!st.ok() && !wal_.is_open()) {
    // The failure left no live log (auto-compaction runs inside OnCommit,
    // so a closed WAL would fail every later commit's append while the
    // in-memory repository keeps applying and publishing). Reopen the old
    // epoch's log so one transient error — ENOSPC, say — costs only this
    // compaction, not all journaling until restart.
    auto reopened =
        WriteAheadLog::Open(WalPath(epoch_), options_.fsync_policy,
                            options_.fsync_interval_commits);
    if (reopened.ok()) {
      wal_ = std::move(reopened).value();
    } else {
      st = Status::IOError(StrFormat(
          "%s; additionally failed to reopen WAL epoch %llu: %s",
          st.message().c_str(), static_cast<unsigned long long>(epoch_),
          reopened.status().message().c_str()));
    }
  }
  return st;
}

Status DurableRuleStore::CompactClosedLocked() {
  // Offline scratch replay: the hook that calls this runs under the live
  // repository's shard locks, so rebuilding state from the closed files
  // (rather than ExportState() on repo_) is not just cleaner — it is the
  // only deadlock-free option.
  rules::RuleRepository scratch(options_.shard_count);
  if (has_snapshot_) {
    auto state =
        ReadSnapshotFile(SnapshotPath(base_epoch_), options_.dictionaries);
    if (!state.ok()) return state.status();
    RULEKIT_RETURN_IF_ERROR(scratch.ImportState(*std::move(state)));
  }
  for (uint64_t e = base_epoch_; e <= epoch_; ++e) {
    // All inputs are synced, closed logs: a torn record here is real
    // damage, not an in-flight write, so never truncate.
    RULEKIT_RETURN_IF_ERROR(ReplayWalInto(WalPath(e), scratch,
                                          options_.dictionaries,
                                          /*truncate_torn_tail=*/false,
                                          nullptr));
  }

  uint64_t next = epoch_ + 1;
  RULEKIT_RETURN_IF_ERROR(
      WriteSnapshotFile(SnapshotPath(next), scratch.ExportState()));

  auto fresh = WriteAheadLog::Open(WalPath(next), options_.fsync_policy,
                                   options_.fsync_interval_commits);
  if (!fresh.ok()) {
    // The new snapshot landed but its log could not be opened. Later
    // commits will go to the reopened old-epoch log, which recovery
    // would skip if it seeded from snapshot-<next> — so take the new
    // snapshot back out before failing.
    std::error_code ec;
    fs::remove(SnapshotPath(next), ec);
    return fresh.status();
  }
  wal_ = std::move(fresh).value();
  uint64_t previous_base = has_snapshot_ ? base_epoch_ : 0;
  epoch_ = next;
  base_epoch_ = next;
  has_snapshot_ = true;

  // Retention: the new snapshot, the previous generation (fallback if
  // the new one proves unreadable), and the WAL chain from the previous
  // generation forward. Everything older is garbage.
  std::error_code ec;
  for (uint64_t e : ScanEpochs(dir_, kSnapshotPrefix)) {
    if (e < previous_base) fs::remove(SnapshotPath(e), ec);
  }
  for (uint64_t e : ScanEpochs(dir_, kWalPrefix)) {
    if (e < previous_base) fs::remove(WalPath(e), ec);
  }
  return Status::OK();
}

Status DurableRuleStore::Sync() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return wal_.Sync();
}

bool DurableRuleStore::journal_live() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return wal_.is_open();
}

uint64_t DurableRuleStore::epoch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return epoch_;
}

uint64_t DurableRuleStore::wal_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return wal_.bytes();
}

LogPosition DurableRuleStore::position() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return LogPosition{epoch_, wal_.bytes()};
}

Status DurableRuleStore::last_compaction_error() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return compaction_error_;
}

}  // namespace rulekit::storage
