#include "src/storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"
#include "src/storage/codec.h"

namespace rulekit::storage {

namespace {

// "RKSN" + format version. Version 2 added per-rule tenants and
// per-shard tenant version counters (multi-tenant partitioning).
constexpr char kMagic[8] = {'R', 'K', 'S', 'N', 2, 0, 0, 0};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 8 + 4;  // magic, len, crc

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(StrFormat("%s: %s: %s", path.c_str(), what.c_str(),
                                   std::strerror(errno)));
}

void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);  // best effort: the rename itself is already atomic
    ::close(fd);
  }
}

}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         const rules::PersistedState& state) {
  Encoder enc;
  EncodePersistedState(state, enc);
  const std::string& payload = enc.data();

  std::string header(kMagic, sizeof(kMagic));
  uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) header.push_back(static_cast<char>(len >> (8 * i)));
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) header.push_back(static_cast<char>(crc >> (8 * i)));

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create snapshot temp file", tmp);
  Status st;
  for (const std::string* part :
       std::initializer_list<const std::string*>{&header, &payload}) {
    const char* data = part->data();
    size_t size = part->size();
    while (st.ok() && size > 0) {
      ssize_t n = ::write(fd, data, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        st = Errno("write failed", tmp);
        break;
      }
      data += n;
      size -= static_cast<size_t>(n);
    }
  }
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync failed", tmp);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status rename_st = Errno("rename failed", path);
    ::unlink(tmp.c_str());
    return rename_st;
  }
  SyncParentDir(path);
  return Status::OK();
}

Result<rules::PersistedState> ReadSnapshotFile(
    const std::string& path, const rules::DictionaryRegistry* dictionaries) {
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open snapshot: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = std::move(buf).str();
  }
  if (data.size() < kHeaderBytes) {
    return Status::IOError(
        StrFormat("%s: truncated snapshot header (%zu bytes)", path.c_str(),
                  data.size()));
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::IOError("not a rulekit snapshot file: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError(StrFormat(
        "%s: unsupported snapshot format version %u (this build reads "
        "version %u)",
        path.c_str(),
        static_cast<unsigned>(static_cast<unsigned char>(data[4])),
        static_cast<unsigned>(kMagic[4])));
  }
  uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[sizeof(kMagic) + i]))
           << (8 * i);
  }
  uint32_t want_crc = 0;
  for (int i = 0; i < 4; ++i) {
    want_crc |= static_cast<uint32_t>(
                    static_cast<unsigned char>(data[sizeof(kMagic) + 8 + i]))
                << (8 * i);
  }
  if (data.size() - kHeaderBytes != len) {
    return Status::IOError(
        StrFormat("%s: snapshot payload truncated (header says %llu bytes, "
                  "file has %zu)",
                  path.c_str(), static_cast<unsigned long long>(len),
                  data.size() - kHeaderBytes));
  }
  std::string_view payload(data.data() + kHeaderBytes, len);
  if (Crc32(payload) != want_crc) {
    return Status::IOError(
        StrFormat("%s: snapshot payload corrupt (CRC mismatch over %llu "
                  "bytes)",
                  path.c_str(), static_cast<unsigned long long>(len)));
  }
  Decoder dec(payload);
  auto state = DecodePersistedState(dec, dictionaries);
  if (!state.ok()) {
    return Status::IOError(StrFormat("%s: snapshot decode failed: %s",
                                     path.c_str(),
                                     state.status().message().c_str()));
  }
  return state;
}

}  // namespace rulekit::storage
