#ifndef RULEKIT_STORAGE_WAL_H_
#define RULEKIT_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace rulekit::storage {

/// When appended records reach the disk platter. The paper's maintenance
/// story (years of analyst edits) wants every commit durable; bulk
/// loaders and migration jobs can trade the fsync-per-commit for a
/// bounded window of re-doable work.
enum class FsyncPolicy {
  kEveryCommit,  // fsync after every Append — a committed edit survives
                 // any crash
  kInterval,     // fsync every `fsync_interval_commits` appends — commits
                 // in the unsynced window may be lost (never corrupted)
  kGroup,        // group commit: concurrent appenders batch into a single
                 // write+fsync (one thread leads, the rest resolve on the
                 // shared sync) — per-commit durability at a fraction of
                 // the per-commit fsync cost under multi-writer load
};

/// WAL file-format constants, shared between the writer (wal.cc), the
/// recovery replayer, and the incremental segment cursor
/// (log_cursor.cc). "RKWL" + format version, little-endian padded to 8
/// bytes. Version 2 added the tenant to every rule and commit record
/// (multi-tenant partitioning); v1 logs predate tenancy and need a
/// text-format re-export to migrate.
namespace wal_format {
inline constexpr char kMagic[8] = {'R', 'K', 'W', 'L', 2, 0, 0, 0};
inline constexpr size_t kHeaderBytes = sizeof(kMagic);
inline constexpr size_t kFrameBytes = 8;  // u32 length + u32 crc
}  // namespace wal_format

/// What replay found in one log file.
struct WalReplayStats {
  size_t records = 0;        // complete, CRC-valid records delivered
  bool truncated_tail = false;  // a torn final record was cut off
  uint64_t valid_bytes = 0;  // file size after any truncation
};

/// An append-only record log. Framing per record:
///
///   [u32 payload length][u32 CRC-32 of payload][payload bytes]
///
/// preceded by one 8-byte file header (magic + format version). The
/// length field bounds the read; the CRC decides whether the bytes that
/// arrived are the bytes that were written. A record is the unit of
/// atomicity: recovery either replays all of it or none of it.
///
/// Append/Sync are internally synchronized: concurrent appenders may
/// call Append on one log object without external locking. Under
/// FsyncPolicy::kGroup the first appender to arrive becomes the batch
/// leader, queued appenders hand it their payloads, and the leader
/// writes the whole batch with one write(2) + one fsync; everyone's
/// Append resolves with the shared sync status. Close() and move
/// assignment must still be externally quiesced (no in-flight Appends).
class WriteAheadLog {
 public:
  WriteAheadLog();
  ~WriteAheadLog();  // closes (SyncState is complete only in wal.cc)

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending, creating it (with a fresh header) if
  /// missing. An existing file is appended to as-is; run Replay() first
  /// if it may end in a torn record.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    FsyncPolicy policy,
                                    size_t fsync_interval_commits = 64);

  /// Appends one framed record and applies the fsync policy. Safe to
  /// call from multiple threads; under kGroup concurrent calls coalesce
  /// into one write+fsync.
  Status Append(std::string_view payload);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Closes the file (syncing any unsynced tail first — interval-mode
  /// records appended since the last boundary are flushed, not lost);
  /// further Appends fail.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes() const { return bytes_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

  /// Observability for the group-commit path: total fsync(2) calls,
  /// total leader-led batches, and the largest batch so far. In kGroup
  /// mode `records appended / sync_count()` is the effective batching
  /// factor.
  uint64_t sync_count() const;
  uint64_t group_batches() const;
  uint64_t max_group_batch() const;

  /// Reads `path` and invokes `fn` with each record's payload in order.
  ///
  /// Recovery semantics (the §4 maintenance log must survive crashes):
  ///  - a final record cut short by a crash — the header or payload
  ///    extends past end-of-file, or the last complete record fails its
  ///    CRC — is a *torn tail*: when `truncate_torn_tail` is true the
  ///    file is truncated back to the last good record and replay
  ///    succeeds; when false, replay fails (a torn record anywhere but
  ///    the newest log segment means lost history).
  ///  - a CRC mismatch on any record that is *not* the last is
  ///    corruption, not a torn write: replay fails with the byte offset
  ///    so the operator knows exactly what is damaged.
  ///  - an error returned by `fn` aborts replay with that error.
  static Status Replay(const std::string& path,
                       const std::function<Status(std::string_view)>& fn,
                       WalReplayStats* stats = nullptr,
                       bool truncate_torn_tail = true);

 private:
  struct SyncState;  // mutex/cv + group-commit queue, heap-allocated so
                     // the log object stays movable

  Status AppendLocked(std::string_view payload);
  Status AppendGroup(std::string_view payload);
  Status SyncLocked();

  int fd_ = -1;
  std::string path_;
  std::atomic<uint64_t> bytes_{0};
  FsyncPolicy policy_ = FsyncPolicy::kEveryCommit;
  size_t fsync_interval_commits_ = 64;
  size_t appends_since_sync_ = 0;
  std::unique_ptr<SyncState> sync_;
};

}  // namespace rulekit::storage

#endif  // RULEKIT_STORAGE_WAL_H_
