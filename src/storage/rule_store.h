#ifndef RULEKIT_STORAGE_RULE_STORE_H_
#define RULEKIT_STORAGE_RULE_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "src/common/result.h"
#include "src/rules/dictionary_registry.h"
#include "src/rules/repository.h"
#include "src/storage/log_cursor.h"
#include "src/storage/wal.h"

namespace rulekit::storage {

/// Tuning for one durable store directory.
struct StoreOptions {
  /// Shard count of the recovered repository. Must match across reopens
  /// of the same directory for per-shard versions to restore exactly
  /// (a mismatch still recovers; the composite version is preserved).
  size_t shard_count = 1;
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryCommit;
  size_t fsync_interval_commits = 64;
  /// WAL size that triggers a compaction (snapshot + log rotation) on
  /// the next commit. 0 disables automatic compaction.
  uint64_t compact_wal_bytes = 8ull << 20;
  /// Resolves `anyof dict(Name)` predicates during recovery; may be null
  /// when no persisted rule references a dictionary.
  const rules::DictionaryRegistry* dictionaries = nullptr;
};

/// What recovery found when the store was opened.
struct RecoveryStats {
  bool from_snapshot = false;   // a snapshot seeded the state
  uint64_t snapshot_epoch = 0;  // its epoch, when from_snapshot
  size_t wal_segments = 0;      // log files replayed on top
  size_t records_replayed = 0;  // commit records re-applied
  bool truncated_tail = false;  // a torn final record was cut off
};

/// The durable rule store: a directory of epoch-numbered files
///
///   wal-<N>       append-only commit log for epoch N
///   snapshot-<N>  full repository state covering every epoch < N
///
/// layered under the repository's transactional API via the commit
/// journal. Every successful transaction commit (and checkpoint/restore)
/// appends its ops and audit entries to the current WAL *before* the
/// touched shards republish, so any state a reader can observe is
/// already recoverable. When the WAL outgrows
/// `StoreOptions::compact_wal_bytes`, the store writes a compacted
/// snapshot (atomically: temp file, fsync, rename) and rotates to a
/// fresh log; the previous snapshot generation is retained so a corrupt
/// newest snapshot still recovers.
///
/// Open() recovers: newest readable snapshot + replay of every WAL
/// epoch at or after it. A torn final record (crash mid-append) is
/// truncated and recovery succeeds; a corrupt record with valid history
/// after it fails recovery with the exact offset.
///
/// Thread safety: the journal hook runs under the repository's shard
/// locks and takes a *shared* lock on the store, so committers touching
/// disjoint shards reach the WAL concurrently — under
/// FsyncPolicy::kGroup they batch into a single write+fsync (the WAL is
/// internally synchronized). Compaction, Sync-after-severed-journal
/// recovery, and Close take the lock exclusively. The store must outlive
/// no one — it owns the repository; clear ownership is
/// `store->repository()`.
class DurableRuleStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir` and recovers
  /// the repository state persisted there.
  static Result<std::unique_ptr<DurableRuleStore>> Open(
      const std::string& dir, StoreOptions options = {});

  ~DurableRuleStore();

  DurableRuleStore(const DurableRuleStore&) = delete;
  DurableRuleStore& operator=(const DurableRuleStore&) = delete;

  /// The recovered repository; mutations through it are journaled here.
  const std::shared_ptr<rules::RuleRepository>& repository() const {
    return repo_;
  }

  /// Forces a compaction now (snapshot + WAL rotation), regardless of
  /// the size threshold.
  Status Compact();

  /// Flushes any unsynced WAL appends (meaningful under kInterval).
  Status Sync();

  /// True while the commit journal is alive (the current epoch's WAL is
  /// open for appends). False once an I/O error severed it: serving
  /// continues in memory, but new commits are no longer durable until a
  /// successful Compact() re-establishes the log. Cheap enough for
  /// request admission (one mutex acquire, no I/O).
  bool journal_live() const;

  const RecoveryStats& recovery_stats() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  const StoreOptions& options() const { return options_; }
  uint64_t epoch() const;
  uint64_t wal_bytes() const;
  /// The current end of the commit log — every record committed so far
  /// lies strictly before this position. A log shipper that has streamed
  /// up to here has streamed everything.
  LogPosition position() const;
  /// Last automatic-compaction failure, if any (a failed compaction
  /// never fails the commit that triggered it — the append already
  /// made the commit durable).
  Status last_compaction_error() const;

 private:
  DurableRuleStore(std::string dir, StoreOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// The CommitJournal hook. Runs under the affected shard locks.
  Status OnCommit(const rules::CommitRecord& record);

  /// Snapshot + rotate. Caller holds mu_. Never touches repo_ (the
  /// journal hook runs under its shard locks): the snapshot state is
  /// rebuilt offline from the base snapshot plus the closed logs. On
  /// failure the old epoch's WAL is reopened so journaling continues.
  Status CompactLocked();

  /// The body of CompactLocked, entered with wal_ synced and closed.
  /// May return with wal_ closed; CompactLocked handles reopening.
  Status CompactClosedLocked();

  std::string SnapshotPath(uint64_t epoch) const;
  std::string WalPath(uint64_t epoch) const;

  const std::string dir_;
  const StoreOptions options_;
  std::shared_ptr<rules::RuleRepository> repo_;
  RecoveryStats recovery_;

  // Shared: append path (the WAL serializes internally). Exclusive:
  // compaction/rotation (wal_ is replaced), close, and epoch_ writes.
  mutable std::shared_mutex mu_;
  WriteAheadLog wal_;          // guarded by mu_
  uint64_t epoch_ = 0;         // current WAL epoch, guarded by mu_
  uint64_t base_epoch_ = 0;    // newest snapshot epoch, guarded by mu_
  bool has_snapshot_ = false;  // guarded by mu_
  Status compaction_error_;    // guarded by mu_
};

}  // namespace rulekit::storage

#endif  // RULEKIT_STORAGE_RULE_STORE_H_
