#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"
#include "src/storage/codec.h"

namespace rulekit::storage {

namespace {

// "RKWL" + format version, little-endian padded to 8 bytes. Version 2
// added the tenant to every rule and commit record (multi-tenant
// partitioning); v1 logs predate tenancy and need a text-format
// re-export to migrate.
constexpr char kMagic[8] = {'R', 'K', 'W', 'L', 2, 0, 0, 0};
constexpr size_t kHeaderBytes = sizeof(kMagic);
constexpr size_t kFrameBytes = 8;  // u32 length + u32 crc

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(
      StrFormat("%s: %s: %s", path.c_str(), what.c_str(),
                std::strerror(errno)));
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status WriteFully(int fd, const char* data, size_t size,
                  const std::string& path) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    bytes_ = other.bytes_;
    policy_ = other.policy_;
    fsync_interval_commits_ = other.fsync_interval_commits_;
    appends_since_sync_ = other.appends_since_sync_;
    other.fd_ = -1;
    other.bytes_ = 0;
  }
  return *this;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          FsyncPolicy policy,
                                          size_t fsync_interval_commits) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open WAL", path);

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Errno("cannot seek WAL", path);
  }
  WriteAheadLog wal;
  wal.fd_ = fd;
  wal.path_ = path;
  wal.policy_ = policy;
  wal.fsync_interval_commits_ =
      fsync_interval_commits == 0 ? 1 : fsync_interval_commits;
  if (size == 0) {
    Status st = WriteFully(fd, kMagic, kHeaderBytes, path);
    if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync failed", path);
    if (!st.ok()) return st;
    wal.bytes_ = kHeaderBytes;
  } else {
    wal.bytes_ = static_cast<uint64_t>(size);
  }
  return wal;
}

Status WriteAheadLog::Append(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL is closed: " + path_);
  }
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("WAL record too large");
  }
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(len >> (8 * i)));
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(crc >> (8 * i)));
  frame.append(payload.data(), payload.size());
  RULEKIT_RETURN_IF_ERROR(WriteFully(fd_, frame.data(), frame.size(), path_));
  bytes_ += frame.size();
  ++appends_since_sync_;
  if (policy_ == FsyncPolicy::kEveryCommit ||
      appends_since_sync_ >= fsync_interval_commits_) {
    return Sync();
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  // A closed log cannot make anything durable — callers that reach here
  // (e.g. DurableRuleStore::Sync after a doubly-failed compaction severed
  // journaling) must hear about it, not get a silent OK.
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL is closed: " + path_);
  }
  appends_since_sync_ = 0;
  if (::fsync(fd_) != 0) return Errno("fsync failed", path_);
  return Status::OK();
}

void WriteAheadLog::Close() {
  if (fd_ < 0) return;
  (void)Sync();
  ::close(fd_);
  fd_ = -1;
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(std::string_view)>& fn, WalReplayStats* stats,
    bool truncate_torn_tail) {
  WalReplayStats local;
  if (stats == nullptr) stats = &local;
  *stats = WalReplayStats{};

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open WAL for replay: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = std::move(buf).str();
  }

  auto torn = [&](size_t good_offset, const char* what) -> Status {
    if (!truncate_torn_tail) {
      return Status::IOError(
          StrFormat("%s: torn record at offset %zu (%s) is not at the log "
                    "tail — refusing to truncate history",
                    path.c_str(), good_offset, what));
    }
    if (::truncate(path.c_str(), static_cast<off_t>(good_offset)) != 0) {
      return Errno("cannot truncate torn tail", path);
    }
    stats->truncated_tail = true;
    stats->valid_bytes = good_offset;
    return Status::OK();
  };

  if (data.size() < kHeaderBytes) {
    // A crash while writing the very first header: nothing was ever
    // committed, so an empty log is the correct recovered state.
    return torn(0, "incomplete file header");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::IOError("not a rulekit WAL file: " + path);
  }
  if (std::memcmp(data.data(), kMagic, kHeaderBytes) != 0) {
    return Status::IOError(StrFormat(
        "%s: unsupported WAL format version %u (this build reads "
        "version %u)",
        path.c_str(),
        static_cast<unsigned>(static_cast<unsigned char>(data[4])),
        static_cast<unsigned>(kMagic[4])));
  }

  size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameBytes) {
      return torn(pos, "incomplete record header");
    }
    uint32_t len = ReadU32(data.data() + pos);
    uint32_t want_crc = ReadU32(data.data() + pos + 4);
    if (data.size() - pos - kFrameBytes < len) {
      return torn(pos, "record payload extends past end of file");
    }
    std::string_view payload(data.data() + pos + kFrameBytes, len);
    if (Crc32(payload) != want_crc) {
      bool is_last = pos + kFrameBytes + len == data.size();
      if (is_last) {
        // The bytes of the final record exist but do not checksum: a
        // crash mid-write persisted a partial/garbled tail. Cut it off.
        return torn(pos, "final record failed its checksum");
      }
      return Status::IOError(
          StrFormat("%s: corrupt WAL record at offset %zu (CRC mismatch, "
                    "%u bytes) with valid records after it",
                    path.c_str(), pos, len));
    }
    RULEKIT_RETURN_IF_ERROR(fn(payload));
    ++stats->records;
    pos += kFrameBytes + len;
  }
  stats->valid_bytes = pos;
  return Status::OK();
}

}  // namespace rulekit::storage
