#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/common/string_util.h"
#include "src/storage/codec.h"

namespace rulekit::storage {

namespace {

using wal_format::kFrameBytes;
using wal_format::kHeaderBytes;
using wal_format::kMagic;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(
      StrFormat("%s: %s: %s", path.c_str(), what.c_str(),
                std::strerror(errno)));
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status WriteFully(int fd, const char* data, size_t size,
                  const std::string& path) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

void AppendFrame(std::string& buf, std::string_view payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<char>(len >> (8 * i)));
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<char>(crc >> (8 * i)));
  buf.append(payload.data(), payload.size());
}

}  // namespace

// One mutex serializes the file descriptor; under kGroup the leader
// releases it for the write+fsync so arriving appenders can queue their
// payloads instead of blocking behind the disk.
struct WriteAheadLog::SyncState {
  std::mutex mu;
  std::condition_variable cv;

  struct Waiter {
    std::string_view payload;  // caller's buffer — alive while it waits
    bool done = false;
    Status status;
  };
  std::vector<Waiter*> queue;  // appenders waiting for the next batch
  bool leader_active = false;  // a leader is writing outside the lock

  // Stats (guarded by mu).
  uint64_t syncs = 0;
  uint64_t group_batches = 0;
  uint64_t max_batch = 0;
};

WriteAheadLog::WriteAheadLog() = default;

WriteAheadLog::~WriteAheadLog() { Close(); }

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept {
  *this = std::move(other);
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    bytes_.store(other.bytes_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    policy_ = other.policy_;
    fsync_interval_commits_ = other.fsync_interval_commits_;
    appends_since_sync_ = other.appends_since_sync_;
    sync_ = std::move(other.sync_);
    other.fd_ = -1;
    other.bytes_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          FsyncPolicy policy,
                                          size_t fsync_interval_commits) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open WAL", path);

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Errno("cannot seek WAL", path);
  }
  WriteAheadLog wal;
  wal.fd_ = fd;
  wal.path_ = path;
  wal.policy_ = policy;
  wal.fsync_interval_commits_ =
      fsync_interval_commits == 0 ? 1 : fsync_interval_commits;
  wal.sync_ = std::make_unique<SyncState>();
  if (size == 0) {
    Status st = WriteFully(fd, kMagic, kHeaderBytes, path);
    if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync failed", path);
    if (!st.ok()) return st;
    wal.bytes_.store(kHeaderBytes, std::memory_order_relaxed);
  } else {
    wal.bytes_.store(static_cast<uint64_t>(size), std::memory_order_relaxed);
  }
  return wal;
}

Status WriteAheadLog::Append(std::string_view payload) {
  if (fd_ < 0 || !sync_) {
    return Status::FailedPrecondition("WAL is closed: " + path_);
  }
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("WAL record too large");
  }
  if (policy_ == FsyncPolicy::kGroup) return AppendGroup(payload);
  std::lock_guard<std::mutex> lk(sync_->mu);
  return AppendLocked(payload);
}

Status WriteAheadLog::AppendLocked(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL is closed: " + path_);
  }
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  AppendFrame(frame, payload);
  RULEKIT_RETURN_IF_ERROR(WriteFully(fd_, frame.data(), frame.size(), path_));
  bytes_.fetch_add(frame.size(), std::memory_order_acq_rel);
  ++appends_since_sync_;
  if (policy_ == FsyncPolicy::kEveryCommit ||
      appends_since_sync_ >= fsync_interval_commits_) {
    return SyncLocked();
  }
  return Status::OK();
}

Status WriteAheadLog::AppendGroup(std::string_view payload) {
  SyncState& s = *sync_;
  std::unique_lock<std::mutex> lk(s.mu);
  for (;;) {
    if (fd_ < 0) {
      return Status::FailedPrecondition("WAL is closed: " + path_);
    }
    if (!s.leader_active) {
      // Lead: take everything queued so far plus our own payload, write
      // it as one contiguous buffer, fsync once, and resolve the batch.
      s.leader_active = true;
      std::vector<SyncState::Waiter*> batch;
      batch.swap(s.queue);
      int fd = fd_;
      const std::string path = path_;
      lk.unlock();

      std::string buf;
      size_t total = kFrameBytes + payload.size();
      for (const auto* w : batch) total += kFrameBytes + w->payload.size();
      buf.reserve(total);
      AppendFrame(buf, payload);
      for (const auto* w : batch) AppendFrame(buf, w->payload);

      Status st = WriteFully(fd, buf.data(), buf.size(), path);
      if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync failed", path);

      lk.lock();
      if (st.ok()) {
        bytes_.fetch_add(buf.size(), std::memory_order_acq_rel);
      }
      ++s.syncs;
      ++s.group_batches;
      uint64_t n = batch.size() + 1;
      if (n > s.max_batch) s.max_batch = n;
      for (auto* w : batch) {
        w->done = true;
        w->status = st;
      }
      s.leader_active = false;
      s.cv.notify_all();
      return st;
    }
    // A leader is writing: queue our payload for its successor (or for
    // ourselves if we wake first and take the lead).
    SyncState::Waiter w;
    w.payload = payload;
    s.queue.push_back(&w);
    s.cv.wait(lk, [&] { return w.done || !s.leader_active; });
    if (w.done) return w.status;
    // The leader retired without taking us (we raced in after its
    // snapshot). Remove ourselves and loop to lead the next batch —
    // another waker may have already taken the queue, including us, in
    // which case `done` would be set and we'd have returned above.
    for (auto it = s.queue.begin(); it != s.queue.end(); ++it) {
      if (*it == &w) {
        s.queue.erase(it);
        break;
      }
    }
  }
}

Status WriteAheadLog::Sync() {
  // A closed log cannot make anything durable — callers that reach here
  // (e.g. DurableRuleStore::Sync after a doubly-failed compaction severed
  // journaling) must hear about it, not get a silent OK.
  if (fd_ < 0 || !sync_) {
    return Status::FailedPrecondition("WAL is closed: " + path_);
  }
  std::unique_lock<std::mutex> lk(sync_->mu);
  // Let any in-flight group batch land before syncing, so "Sync returned
  // OK" covers every Append that returned before Sync was called.
  sync_->cv.wait(lk, [&] { return !sync_->leader_active; });
  return SyncLocked();
}

Status WriteAheadLog::SyncLocked() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL is closed: " + path_);
  }
  if (::fsync(fd_) != 0) return Errno("fsync failed", path_);
  // Reset only after a *successful* fsync: a failed sync leaves the
  // counter high so the next interval boundary retries instead of
  // silently starting a fresh window over unsynced records.
  appends_since_sync_ = 0;
  ++sync_->syncs;
  return Status::OK();
}

void WriteAheadLog::Close() {
  if (fd_ < 0) return;
  if (sync_) {
    std::unique_lock<std::mutex> lk(sync_->mu);
    sync_->cv.wait(lk, [&] { return !sync_->leader_active; });
    (void)SyncLocked();
    ::close(fd_);
    fd_ = -1;
    sync_->cv.notify_all();
    return;
  }
  ::close(fd_);
  fd_ = -1;
}

uint64_t WriteAheadLog::sync_count() const {
  if (!sync_) return 0;
  std::lock_guard<std::mutex> lk(sync_->mu);
  return sync_->syncs;
}

uint64_t WriteAheadLog::group_batches() const {
  if (!sync_) return 0;
  std::lock_guard<std::mutex> lk(sync_->mu);
  return sync_->group_batches;
}

uint64_t WriteAheadLog::max_group_batch() const {
  if (!sync_) return 0;
  std::lock_guard<std::mutex> lk(sync_->mu);
  return sync_->max_batch;
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(std::string_view)>& fn, WalReplayStats* stats,
    bool truncate_torn_tail) {
  WalReplayStats local;
  if (stats == nullptr) stats = &local;
  *stats = WalReplayStats{};

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open WAL for replay: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = std::move(buf).str();
  }

  auto torn = [&](size_t good_offset, const char* what) -> Status {
    if (!truncate_torn_tail) {
      return Status::IOError(
          StrFormat("%s: torn record at offset %zu (%s) is not at the log "
                    "tail — refusing to truncate history",
                    path.c_str(), good_offset, what));
    }
    if (::truncate(path.c_str(), static_cast<off_t>(good_offset)) != 0) {
      return Errno("cannot truncate torn tail", path);
    }
    stats->truncated_tail = true;
    stats->valid_bytes = good_offset;
    return Status::OK();
  };

  if (data.size() < kHeaderBytes) {
    // A crash while writing the very first header: nothing was ever
    // committed, so an empty log is the correct recovered state.
    return torn(0, "incomplete file header");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::IOError("not a rulekit WAL file: " + path);
  }
  if (std::memcmp(data.data(), kMagic, kHeaderBytes) != 0) {
    return Status::IOError(StrFormat(
        "%s: unsupported WAL format version %u (this build reads "
        "version %u)",
        path.c_str(),
        static_cast<unsigned>(static_cast<unsigned char>(data[4])),
        static_cast<unsigned>(kMagic[4])));
  }

  size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameBytes) {
      return torn(pos, "incomplete record header");
    }
    uint32_t len = ReadU32(data.data() + pos);
    uint32_t want_crc = ReadU32(data.data() + pos + 4);
    if (data.size() - pos - kFrameBytes < len) {
      return torn(pos, "record payload extends past end of file");
    }
    std::string_view payload(data.data() + pos + kFrameBytes, len);
    if (Crc32(payload) != want_crc) {
      bool is_last = pos + kFrameBytes + len == data.size();
      if (is_last) {
        // The bytes of the final record exist but do not checksum: a
        // crash mid-write persisted a partial/garbled tail. Cut it off.
        return torn(pos, "final record failed its checksum");
      }
      return Status::IOError(
          StrFormat("%s: corrupt WAL record at offset %zu (CRC mismatch, "
                    "%u bytes) with valid records after it",
                    path.c_str(), pos, len));
    }
    RULEKIT_RETURN_IF_ERROR(fn(payload));
    ++stats->records;
    pos += kFrameBytes + len;
  }
  stats->valid_bytes = pos;
  return Status::OK();
}

}  // namespace rulekit::storage
