#include "src/storage/codec.h"

#include <array>
#include <cstring>

#include "src/common/string_util.h"
#include "src/rules/rule_parser.h"

namespace rulekit::storage {

// ---- rules -----------------------------------------------------------------

namespace {

using rules::AuditAction;
using rules::AuditEntry;
using rules::CheckpointRecord;
using rules::CommitRecord;
using rules::PersistedState;
using rules::Rule;
using rules::RuleKind;
using rules::RuleMetadata;
using rules::RuleOrigin;
using rules::RuleState;

constexpr uint8_t kMaxRuleKind = static_cast<uint8_t>(RuleKind::kPredicate);
constexpr uint8_t kMaxRuleState = static_cast<uint8_t>(RuleState::kRetired);
constexpr uint8_t kMaxOrigin = static_cast<uint8_t>(RuleOrigin::kImported);
constexpr uint8_t kMaxAuditAction =
    static_cast<uint8_t>(AuditAction::kRestore);
constexpr uint8_t kMaxOpKind =
    static_cast<uint8_t>(CommitRecord::OpKind::kRestoreCheckpoint);

}  // namespace

void EncodeRule(const Rule& rule, Encoder& enc) {
  enc.PutU8(static_cast<uint8_t>(rule.kind()));
  enc.PutString(rule.id());
  enc.PutVarint(rule.candidate_types().size());
  for (const std::string& type : rule.candidate_types()) {
    enc.PutString(type);
  }
  enc.PutU8(rule.is_positive() ? 1 : 0);
  enc.PutString(rule.pattern_text());
  enc.PutString(rule.attribute());
  enc.PutString(rule.attribute_value());
  enc.PutString(rule.predicate() ? rule.predicate()->ToString() : "");
  const RuleMetadata& m = rule.metadata();
  enc.PutString(m.author);
  enc.PutU8(static_cast<uint8_t>(m.origin));
  enc.PutU64(m.created_at);
  enc.PutDouble(m.confidence);
  enc.PutU8(static_cast<uint8_t>(m.state));
  enc.PutString(m.note);
  enc.PutString(m.tenant);
}

Result<Rule> DecodeRule(Decoder& dec,
                        const rules::DictionaryRegistry* dictionaries) {
  uint8_t kind_byte = dec.U8();
  std::string id = dec.String();
  uint64_t num_types = dec.Varint();
  if (dec.ok() && (num_types == 0 || num_types > (1u << 20))) {
    dec.Fail(StrFormat("rule '%s': implausible type count", id.c_str()));
  }
  std::vector<std::string> types;
  for (uint64_t i = 0; dec.ok() && i < num_types; ++i) {
    types.push_back(dec.String());
  }
  bool positive = dec.U8() != 0;
  std::string pattern = dec.String();
  std::string attribute = dec.String();
  std::string attribute_value = dec.String();
  std::string predicate_dsl = dec.String();
  RuleMetadata meta;
  meta.author = dec.String();
  uint8_t origin_byte = dec.U8();
  meta.created_at = dec.U64();
  meta.confidence = dec.F64();
  uint8_t state_byte = dec.U8();
  meta.note = dec.String();
  meta.tenant = dec.String();
  if (dec.ok() && kind_byte > kMaxRuleKind) {
    dec.Fail(StrFormat("rule '%s': bad kind %u", id.c_str(), kind_byte));
  }
  if (dec.ok() && origin_byte > kMaxOrigin) {
    dec.Fail(StrFormat("rule '%s': bad origin %u", id.c_str(), origin_byte));
  }
  if (dec.ok() && state_byte > kMaxRuleState) {
    dec.Fail(StrFormat("rule '%s': bad state %u", id.c_str(), state_byte));
  }
  RULEKIT_RETURN_IF_ERROR(dec.status());
  meta.origin = static_cast<RuleOrigin>(origin_byte);
  meta.state = static_cast<RuleState>(state_byte);

  Result<Rule> rebuilt = Status::Internal("unreachable");
  switch (static_cast<RuleKind>(kind_byte)) {
    case RuleKind::kWhitelist:
      rebuilt = Rule::Whitelist(std::move(id), pattern, std::move(types[0]));
      break;
    case RuleKind::kBlacklist:
      rebuilt = Rule::Blacklist(std::move(id), pattern, std::move(types[0]));
      break;
    case RuleKind::kAttributeExists:
      rebuilt = Rule::AttributeExists(std::move(id), std::move(attribute),
                                      std::move(types[0]));
      break;
    case RuleKind::kAttributeValue:
      rebuilt = Rule::AttributeValue(std::move(id), std::move(attribute),
                                     std::move(attribute_value),
                                     std::move(types));
      break;
    case RuleKind::kPredicate: {
      auto pred = rules::ParsePredicate(predicate_dsl, dictionaries);
      if (!pred.ok()) {
        return Status::InvalidArgument(
            StrFormat("rule '%s': cannot rebuild predicate \"%s\": %s",
                      id.c_str(), predicate_dsl.c_str(),
                      pred.status().message().c_str()));
      }
      rebuilt = Rule::FromPredicate(std::move(id), std::move(pred).value(),
                                    std::move(types[0]), positive);
      break;
    }
  }
  if (!rebuilt.ok()) return rebuilt.status();
  rebuilt->metadata() = std::move(meta);
  return rebuilt;
}

void EncodeAuditEntry(const AuditEntry& entry, Encoder& enc) {
  enc.PutU64(entry.timestamp);
  enc.PutU8(static_cast<uint8_t>(entry.action));
  enc.PutString(entry.rule_id.value());
  enc.PutString(entry.author);
  enc.PutString(entry.detail);
}

Result<AuditEntry> DecodeAuditEntry(Decoder& dec) {
  AuditEntry entry;
  entry.timestamp = dec.U64();
  uint8_t action = dec.U8();
  entry.rule_id = rules::RuleId(dec.String());
  entry.author = dec.String();
  entry.detail = dec.String();
  if (dec.ok() && action > kMaxAuditAction) {
    dec.Fail(StrFormat("bad audit action %u", action));
  }
  RULEKIT_RETURN_IF_ERROR(dec.status());
  entry.action = static_cast<AuditAction>(action);
  return entry;
}

void EncodeCommitRecord(const CommitRecord& record, Encoder& enc) {
  enc.PutVarint(record.ops.size());
  for (const CommitRecord::Op& op : record.ops) {
    enc.PutU8(static_cast<uint8_t>(op.kind));
    switch (op.kind) {
      case CommitRecord::OpKind::kAdd:
        EncodeRule(*op.rule, enc);
        break;
      case CommitRecord::OpKind::kDisable:
      case CommitRecord::OpKind::kEnable:
      case CommitRecord::OpKind::kRetire:
        enc.PutString(op.id.value());
        break;
      case CommitRecord::OpKind::kSetConfidence:
        enc.PutString(op.id.value());
        enc.PutDouble(op.confidence);
        break;
      case CommitRecord::OpKind::kCheckpoint:
        break;
      case CommitRecord::OpKind::kRestoreCheckpoint:
        enc.PutU64(op.checkpoint_version);
        break;
    }
  }
  enc.PutVarint(record.entries.size());
  for (const AuditEntry& entry : record.entries) {
    EncodeAuditEntry(entry, enc);
  }
  enc.PutString(record.tenant);
}

Result<CommitRecord> DecodeCommitRecord(
    Decoder& dec, const rules::DictionaryRegistry* dictionaries) {
  CommitRecord record;
  uint64_t num_ops = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_ops; ++i) {
    uint8_t kind = dec.U8();
    if (dec.ok() && kind > kMaxOpKind) {
      dec.Fail(StrFormat("bad commit op kind %u", kind));
    }
    if (!dec.ok()) break;
    CommitRecord::Op op;
    op.kind = static_cast<CommitRecord::OpKind>(kind);
    switch (op.kind) {
      case CommitRecord::OpKind::kAdd: {
        auto rule = DecodeRule(dec, dictionaries);
        if (!rule.ok()) return rule.status();
        op.rule = std::move(rule).value();
        break;
      }
      case CommitRecord::OpKind::kDisable:
      case CommitRecord::OpKind::kEnable:
      case CommitRecord::OpKind::kRetire:
        op.id = rules::RuleId(dec.String());
        break;
      case CommitRecord::OpKind::kSetConfidence:
        op.id = rules::RuleId(dec.String());
        op.confidence = dec.F64();
        break;
      case CommitRecord::OpKind::kCheckpoint:
        break;
      case CommitRecord::OpKind::kRestoreCheckpoint:
        op.checkpoint_version = dec.U64();
        break;
    }
    record.ops.push_back(std::move(op));
  }
  uint64_t num_entries = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_entries; ++i) {
    auto entry = DecodeAuditEntry(dec);
    if (!entry.ok()) return entry.status();
    record.entries.push_back(std::move(entry).value());
  }
  record.tenant = dec.String();
  RULEKIT_RETURN_IF_ERROR(dec.status());
  if (record.entries.size() != record.ops.size()) {
    return Status::InvalidArgument(
        StrFormat("commit record: %zu ops but %zu audit entries",
                  record.ops.size(), record.entries.size()));
  }
  return record;
}

namespace {

// Structural skip of one encoded rule — field-for-field mirror of
// DecodeRule minus validation and reconstruction.
void SkipRule(Decoder& dec) {
  dec.U8();                        // kind
  dec.String();                    // id
  uint64_t num_types = dec.Varint();
  if (dec.ok() && num_types > (1u << 20)) {
    dec.Fail("implausible type count while skipping rule");
    return;
  }
  for (uint64_t i = 0; dec.ok() && i < num_types; ++i) dec.String();
  dec.U8();                        // positive
  dec.String();                    // pattern
  dec.String();                    // attribute
  dec.String();                    // attribute value
  dec.String();                    // predicate DSL
  dec.String();                    // author
  dec.U8();                        // origin
  dec.U64();                       // created_at
  dec.F64();                       // confidence
  dec.U8();                        // state
  dec.String();                    // note
  dec.String();                    // tenant
}

void SkipAuditEntry(Decoder& dec) {
  dec.U64();                       // timestamp
  dec.U8();                        // action
  dec.String();                    // rule id
  dec.String();                    // author
  dec.String();                    // detail
}

}  // namespace

Result<std::string> PeekCommitTenant(std::string_view payload) {
  Decoder dec(payload);
  uint64_t num_ops = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_ops; ++i) {
    uint8_t kind = dec.U8();
    if (dec.ok() && kind > kMaxOpKind) {
      dec.Fail(StrFormat("bad commit op kind %u", kind));
    }
    if (!dec.ok()) break;
    switch (static_cast<CommitRecord::OpKind>(kind)) {
      case CommitRecord::OpKind::kAdd:
        SkipRule(dec);
        break;
      case CommitRecord::OpKind::kDisable:
      case CommitRecord::OpKind::kEnable:
      case CommitRecord::OpKind::kRetire:
        dec.String();
        break;
      case CommitRecord::OpKind::kSetConfidence:
        dec.String();
        dec.F64();
        break;
      case CommitRecord::OpKind::kCheckpoint:
        break;
      case CommitRecord::OpKind::kRestoreCheckpoint:
        dec.U64();
        break;
    }
  }
  uint64_t num_entries = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_entries; ++i) SkipAuditEntry(dec);
  std::string tenant = dec.String();
  RULEKIT_RETURN_IF_ERROR(dec.status());
  return tenant;
}

void EncodePersistedState(const PersistedState& state, Encoder& enc) {
  enc.PutVarint(state.rules.size());
  for (const Rule& rule : state.rules) EncodeRule(rule, enc);
  enc.PutVarint(state.audit.size());
  for (const AuditEntry& entry : state.audit) EncodeAuditEntry(entry, enc);
  enc.PutU64(state.clock);
  enc.PutVarint(state.shard_versions.size());
  for (uint64_t v : state.shard_versions) enc.PutU64(v);
  enc.PutVarint(state.tenant_versions.size());
  for (const auto& per_shard : state.tenant_versions) {
    enc.PutVarint(per_shard.size());
    for (const auto& [tenant, version] : per_shard) {
      enc.PutString(tenant);
      enc.PutU64(version);
    }
  }
  enc.PutVarint(state.checkpoints.size());
  for (const CheckpointRecord& cp : state.checkpoints) {
    enc.PutU64(cp.version);
    enc.PutVarint(cp.entries.size());
    for (const CheckpointRecord::Entry& e : cp.entries) {
      enc.PutString(e.id.value());
      enc.PutU8(static_cast<uint8_t>(e.state));
      enc.PutDouble(e.confidence);
    }
  }
}

Result<PersistedState> DecodePersistedState(
    Decoder& dec, const rules::DictionaryRegistry* dictionaries) {
  PersistedState state;
  uint64_t num_rules = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_rules; ++i) {
    auto rule = DecodeRule(dec, dictionaries);
    if (!rule.ok()) return rule.status();
    state.rules.push_back(std::move(rule).value());
  }
  uint64_t num_audit = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_audit; ++i) {
    auto entry = DecodeAuditEntry(dec);
    if (!entry.ok()) return entry.status();
    state.audit.push_back(std::move(entry).value());
  }
  state.clock = dec.U64();
  uint64_t num_shards = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_shards; ++i) {
    state.shard_versions.push_back(dec.U64());
  }
  uint64_t num_tenant_shards = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_tenant_shards; ++i) {
    std::map<std::string, uint64_t> per_shard;
    uint64_t num_tenants = dec.Varint();
    for (uint64_t j = 0; dec.ok() && j < num_tenants; ++j) {
      std::string tenant = dec.String();
      uint64_t version = dec.U64();
      per_shard.emplace(std::move(tenant), version);
    }
    state.tenant_versions.push_back(std::move(per_shard));
  }
  uint64_t num_checkpoints = dec.Varint();
  for (uint64_t i = 0; dec.ok() && i < num_checkpoints; ++i) {
    CheckpointRecord cp;
    cp.version = dec.U64();
    uint64_t num_entries = dec.Varint();
    for (uint64_t j = 0; dec.ok() && j < num_entries; ++j) {
      CheckpointRecord::Entry e;
      e.id = rules::RuleId(dec.String());
      uint8_t st = dec.U8();
      e.confidence = dec.F64();
      if (dec.ok() && st > kMaxRuleState) {
        dec.Fail(StrFormat("checkpoint: bad rule state %u", st));
      }
      if (!dec.ok()) break;
      e.state = static_cast<RuleState>(st);
      cp.entries.push_back(std::move(e));
    }
    state.checkpoints.push_back(std::move(cp));
  }
  RULEKIT_RETURN_IF_ERROR(dec.status());
  return state;
}

}  // namespace rulekit::storage
