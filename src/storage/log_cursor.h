#ifndef RULEKIT_STORAGE_LOG_CURSOR_H_
#define RULEKIT_STORAGE_LOG_CURSOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>

#include "src/common/result.h"

namespace rulekit::storage {

/// A durable position in a store's commit log: byte `offset` inside the
/// `wal-<epoch>` segment. Offsets point at record-frame boundaries; the
/// smallest valid offset in any segment is the 8-byte file header.
/// Positions order lexicographically — (epoch, offset) — which is also
/// commit order, because the store rotates to epoch N+1 only after
/// sealing epoch N.
struct LogPosition {
  uint64_t epoch = 0;
  uint64_t offset = 0;

  friend bool operator==(const LogPosition& a, const LogPosition& b) {
    return a.epoch == b.epoch && a.offset == b.offset;
  }
  friend bool operator!=(const LogPosition& a, const LogPosition& b) {
    return !(a == b);
  }
  friend bool operator<(const LogPosition& a, const LogPosition& b) {
    return std::tie(a.epoch, a.offset) < std::tie(b.epoch, b.offset);
  }
  friend bool operator<=(const LogPosition& a, const LogPosition& b) {
    return !(b < a);
  }
};

/// One commit record read off the log, with the position *after* it (the
/// resume point once this record has been applied) and the CRC the
/// primary wrote — shipped alongside the payload so a follower can
/// re-verify end-to-end without trusting the TCP checksum.
struct LogRecord {
  std::string payload;
  LogPosition end;
  uint32_t crc = 0;
};

/// Incremental reader over a store directory's WAL chain. Unlike
/// WriteAheadLog::Replay (whole-file, recovery-time), the cursor tails a
/// *live* log: it reads complete CRC-valid records as they appear,
/// reports "caught up" at a growing tail, and follows the epoch rotation
/// a compaction performs. The shipper runs one cursor per follower.
///
/// Tail semantics: a record at the newest segment's tail that is still
/// incomplete — short frame, short payload, or CRC mismatch (a reader
/// can observe a concurrent write(2) part-done) — is "not yet", not
/// corruption. The same bytes in a *sealed* segment (one whose successor
/// exists; the store syncs and closes a log before rotating past it) are
/// permanent damage and fail the read.
///
/// Not thread-safe; one cursor per consumer.
class StoreLogCursor {
 public:
  /// `start.offset` of 0 is normalized to the first record of `start.epoch`.
  StoreLogCursor(std::string dir, LogPosition start);
  ~StoreLogCursor();

  StoreLogCursor(const StoreLogCursor&) = delete;
  StoreLogCursor& operator=(const StoreLogCursor&) = delete;

  /// Next complete record at the cursor, or nullopt when caught up with
  /// the live tail. NotFound means the position was compacted away
  /// (retention deleted the segment) — the consumer must re-seed from a
  /// snapshot; IOError means a sealed segment is damaged.
  Result<std::optional<LogRecord>> Next();

  LogPosition position() const { return pos_; }

 private:
  Status EnsureSegmentOpen();
  bool SegmentExists(uint64_t epoch) const;
  std::string WalPath(uint64_t epoch) const;
  void CloseSegment();

  std::string dir_;
  LogPosition pos_;
  int fd_ = -1;  // open read fd for wal-<pos_.epoch>, or -1
};

}  // namespace rulekit::storage

#endif  // RULEKIT_STORAGE_LOG_CURSOR_H_
