#include "src/rules/rule_set.h"

#include <algorithm>

namespace rulekit::rules {

Status RuleSet::Add(Rule rule) {
  if (index_.count(rule.id()) > 0) {
    return Status::AlreadyExists("duplicate rule id: " + rule.id());
  }
  index_.emplace(rule.id(), rules_.size());
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status RuleSet::AddAll(std::vector<Rule> rules) {
  for (auto& r : rules) {
    RULEKIT_RETURN_IF_ERROR(Add(std::move(r)));
  }
  return Status::OK();
}

const Rule* RuleSet::Find(std::string_view id) const {
  auto it = index_.find(std::string(id));
  return it == index_.end() ? nullptr : &rules_[it->second];
}

Rule* RuleSet::FindMutable(std::string_view id) {
  auto it = index_.find(std::string(id));
  return it == index_.end() ? nullptr : &rules_[it->second];
}

namespace {
Status SetState(RuleSet& set, std::string_view id, RuleState state,
                bool allow_from_retired) {
  Rule* rule = set.FindMutable(id);
  if (rule == nullptr) {
    return Status::NotFound("no such rule: " + std::string(id));
  }
  if (!allow_from_retired && rule->metadata().state == RuleState::kRetired) {
    return Status::FailedPrecondition("rule is retired: " + std::string(id));
  }
  rule->metadata().state = state;
  return Status::OK();
}
}  // namespace

Status RuleSet::Disable(std::string_view id) {
  return SetState(*this, id, RuleState::kDisabled, false);
}

Status RuleSet::Enable(std::string_view id) {
  return SetState(*this, id, RuleState::kActive, false);
}

Status RuleSet::Retire(std::string_view id) {
  return SetState(*this, id, RuleState::kRetired, true);
}

std::vector<const Rule*> RuleSet::ActiveOfKind(RuleKind kind) const {
  std::vector<const Rule*> out;
  for (const auto& r : rules_) {
    if (r.is_active() && r.kind() == kind) out.push_back(&r);
  }
  return out;
}

std::vector<const Rule*> RuleSet::ActiveForType(std::string_view type) const {
  std::vector<const Rule*> out;
  for (const auto& r : rules_) {
    if (!r.is_active()) continue;
    const auto& types = r.candidate_types();
    if (std::find(types.begin(), types.end(), type) != types.end()) {
      out.push_back(&r);
    }
  }
  return out;
}

size_t RuleSet::CountActive() const {
  return static_cast<size_t>(
      std::count_if(rules_.begin(), rules_.end(),
                    [](const Rule& r) { return r.is_active(); }));
}

size_t RuleSet::CountActiveOfKind(RuleKind kind) const {
  return static_cast<size_t>(std::count_if(
      rules_.begin(), rules_.end(), [kind](const Rule& r) {
        return r.is_active() && r.kind() == kind;
      }));
}

RuleSetStats ComputeStats(const RuleSet& set) {
  RuleSetStats stats;
  std::unordered_map<std::string, bool> types;
  double confidence_sum = 0.0;
  for (const auto& rule : set.rules()) {
    ++stats.total;
    switch (rule.metadata().state) {
      case RuleState::kActive: ++stats.active; break;
      case RuleState::kDisabled: ++stats.disabled; break;
      case RuleState::kRetired: ++stats.retired; break;
    }
    if (!rule.is_active()) continue;
    confidence_sum += rule.metadata().confidence;
    switch (rule.kind()) {
      case RuleKind::kWhitelist: ++stats.whitelist; break;
      case RuleKind::kBlacklist: ++stats.blacklist; break;
      case RuleKind::kAttributeExists:
      case RuleKind::kAttributeValue:
        ++stats.attribute_rules;
        break;
      case RuleKind::kPredicate: ++stats.predicate_rules; break;
    }
    switch (rule.metadata().origin) {
      case RuleOrigin::kMined: ++stats.mined_rules; break;
      default: ++stats.analyst_rules; break;
    }
    for (const auto& type : rule.candidate_types()) {
      types.emplace(type, true);
    }
  }
  stats.types_covered = types.size();
  stats.mean_confidence =
      stats.active == 0 ? 0.0
                        : confidence_sum / static_cast<double>(stats.active);
  return stats;
}

std::string RuleSet::ToDsl() const {
  std::string out;
  for (const auto& r : rules_) {
    if (!r.is_active()) continue;
    out += r.ToDsl();
    out += '\n';
  }
  return out;
}

}  // namespace rulekit::rules
