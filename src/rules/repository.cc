#include "src/rules/repository.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "src/common/string_util.h"
#include "src/rules/rule_parser.h"

namespace rulekit::rules {

namespace {

const char* OriginName(RuleOrigin origin) {
  switch (origin) {
    case RuleOrigin::kAnalyst: return "analyst";
    case RuleOrigin::kMined: return "mined";
    case RuleOrigin::kCurated: return "curated";
    case RuleOrigin::kImported: return "imported";
  }
  return "analyst";
}

RuleOrigin OriginFromName(std::string_view name) {
  if (name == "mined") return RuleOrigin::kMined;
  if (name == "curated") return RuleOrigin::kCurated;
  if (name == "imported") return RuleOrigin::kImported;
  return RuleOrigin::kAnalyst;
}

const char* StateName(RuleState state) {
  switch (state) {
    case RuleState::kActive: return "active";
    case RuleState::kDisabled: return "disabled";
    case RuleState::kRetired: return "retired";
  }
  return "active";
}

RuleState StateFromName(std::string_view name) {
  if (name == "disabled") return RuleState::kDisabled;
  if (name == "retired") return RuleState::kRetired;
  return RuleState::kActive;
}

const char* ActionName(AuditAction action) {
  switch (action) {
    case AuditAction::kAdd: return "add";
    case AuditAction::kDisable: return "disable";
    case AuditAction::kEnable: return "enable";
    case AuditAction::kRetire: return "retire";
    case AuditAction::kSetConfidence: return "set_confidence";
    case AuditAction::kCheckpoint: return "checkpoint";
    case AuditAction::kRestore: return "restore";
  }
  return "add";
}

AuditAction ActionFromName(std::string_view name) {
  if (name == "disable") return AuditAction::kDisable;
  if (name == "enable") return AuditAction::kEnable;
  if (name == "retire") return AuditAction::kRetire;
  if (name == "set_confidence") return AuditAction::kSetConfidence;
  if (name == "checkpoint") return AuditAction::kCheckpoint;
  if (name == "restore") return AuditAction::kRestore;
  return AuditAction::kAdd;
}

}  // namespace

RuleRepository::RuleRepository(size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

// Moves transfer the data and start with fresh mutexes; the contract (see
// header) is that nothing concurrent is in flight during a move.
RuleRepository::RuleRepository(RuleRepository&& other) noexcept
    : shards_(std::move(other.shards_)),
      routing_(std::move(other.routing_)),
      audit_(std::move(other.audit_)),
      clock_(other.clock_),
      journal_(std::move(other.journal_)),
      checkpoints_(std::move(other.checkpoints_)),
      merged_cache_(std::move(other.merged_cache_)),
      merged_cache_version_(other.merged_cache_version_),
      merged_snapshot_(std::move(other.merged_snapshot_)),
      merged_snapshot_version_(other.merged_snapshot_version_) {}

RuleRepository& RuleRepository::operator=(RuleRepository&& other) noexcept {
  if (this != &other) {
    shards_ = std::move(other.shards_);
    routing_ = std::move(other.routing_);
    audit_ = std::move(other.audit_);
    clock_ = other.clock_;
    journal_ = std::move(other.journal_);
    checkpoints_ = std::move(other.checkpoints_);
    merged_cache_ = std::move(other.merged_cache_);
    merged_cache_version_ = other.merged_cache_version_;
    merged_snapshot_ = std::move(other.merged_snapshot_);
    merged_snapshot_version_ = other.merged_snapshot_version_;
  }
  return *this;
}

Result<ShardKey> RuleRepository::ShardOfRule(const RuleId& id) const {
  std::lock_guard<std::mutex> lock(routing_mu_);
  auto it = routing_.find(id.value());
  if (it == routing_.end()) {
    return Status::NotFound("no such rule: " + id.value());
  }
  return ShardKey(it->second.shard);
}

uint64_t RuleRepository::Log(AuditAction action, const RuleId& rule_id,
                             std::string_view author,
                             std::string_view detail) {
  std::lock_guard<std::mutex> lock(log_mu_);
  audit_.push_back({++clock_, action, rule_id, std::string(author),
                    std::string(detail)});
  return clock_;
}

// ---- transactions ----------------------------------------------------------

RuleRepository::Transaction RuleRepository::Begin(std::string_view author,
                                                  const TenantId& tenant) {
  return Transaction(this, std::string(author), tenant);
}

Status RuleRepository::Transaction::Add(Rule rule) {
  Op op{OpKind::kAdd, std::move(rule), RuleId(), "", 0.0};
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status RuleRepository::Transaction::Disable(const RuleId& id,
                                            std::string_view reason) {
  ops_.push_back({OpKind::kDisable, std::nullopt, id, std::string(reason),
                  0.0});
  return Status::OK();
}

Status RuleRepository::Transaction::Enable(const RuleId& id) {
  ops_.push_back({OpKind::kEnable, std::nullopt, id, "", 0.0});
  return Status::OK();
}

Status RuleRepository::Transaction::Retire(const RuleId& id,
                                           std::string_view reason) {
  ops_.push_back({OpKind::kRetire, std::nullopt, id, std::string(reason),
                  0.0});
  return Status::OK();
}

Status RuleRepository::Transaction::SetConfidence(const RuleId& id,
                                                  double confidence) {
  ops_.push_back({OpKind::kSetConfidence, std::nullopt, id, "", confidence});
  return Status::OK();
}

Status RuleRepository::Transaction::Commit() {
  return repo_->CommitTransaction(*this);
}

Status RuleRepository::CommitTransaction(Transaction& txn) {
  txn.touched_.clear();
  if (txn.ops_.empty()) return Status::OK();

  // Phase 1: resolve every op to its shard (and its rule's owning
  // tenant) before applying anything, so an unknown rule id — or a
  // cross-tenant edit — fails the whole commit with zero side effects.
  // Ids staged by earlier Adds in this transaction resolve too.
  std::vector<uint32_t> op_shard(txn.ops_.size());
  std::vector<std::string> op_tenant(txn.ops_.size());
  std::unordered_map<std::string, uint32_t> staged_adds;
  for (size_t i = 0; i < txn.ops_.size(); ++i) {
    Transaction::Op& op = txn.ops_[i];
    if (op.kind == Transaction::OpKind::kAdd) {
      uint32_t shard =
          KeyForTenantType(txn.tenant_, op.rule->target_type()).index();
      op_shard[i] = shard;
      op_tenant[i] = txn.tenant_.value();
      staged_adds.emplace(op.rule->id(), shard);
      continue;
    }
    auto staged = staged_adds.find(op.id.value());
    if (staged != staged_adds.end()) {
      op_shard[i] = staged->second;
      op_tenant[i] = txn.tenant_.value();
      continue;
    }
    std::lock_guard<std::mutex> lock(routing_mu_);
    auto it = routing_.find(op.id.value());
    if (it == routing_.end()) {
      return Status::NotFound("no such rule: " + op.id.value());
    }
    // A tenant-scoped transaction edits only its own rules; the default
    // tenant is the administrative scope and may edit everything.
    if (!txn.tenant_.is_default() &&
        it->second.tenant != txn.tenant_.value()) {
      return Status::FailedPrecondition(
          "tenant '" + txn.tenant_.value() + "' may not edit rule '" +
          op.id.value() + "' owned by tenant '" +
          TenantId(it->second.tenant).display() + "'");
    }
    op_shard[i] = it->second.shard;
    op_tenant[i] = it->second.tenant;
  }

  // Phase 2: lock every affected shard (ascending — the global lock
  // order), apply in staging order, and bump each modified shard's
  // version exactly once so readers republish at most once per shard.
  std::vector<uint32_t> affected(op_shard);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(affected.size());
  for (uint32_t idx : affected) {
    locks.emplace_back(shards_[idx]->mu);
  }

  Status result = Status::OK();
  std::vector<uint32_t> modified;
  // Which tenants' rules each modified shard saw touched — those (and
  // only those) per-tenant counters bump below, so an edit to tenant A's
  // rules never advances tenant B's (or the shared pool's) versions.
  std::map<uint32_t, std::set<std::string>> modified_tenants;
  size_t current_op = 0;
  auto mark_modified = [&](uint32_t idx) {
    if (std::find(modified.begin(), modified.end(), idx) == modified.end()) {
      modified.push_back(idx);
    }
    modified_tenants[idx].insert(op_tenant[current_op]);
  };
  // What actually landed, for the durability journal (a failed commit
  // journals its applied prefix — exactly what stays in memory).
  CommitRecord record;
  record.tenant = txn.tenant_.value();
  auto journal_op = [&](CommitRecord::Op op, uint64_t ts, AuditAction action,
                        const RuleId& id, std::string_view detail) {
    record.ops.push_back(std::move(op));
    record.entries.push_back(
        {ts, action, id, txn.author_, std::string(detail)});
  };

  for (size_t i = 0; i < txn.ops_.size(); ++i) {
    current_op = i;
    Transaction::Op& op = txn.ops_[i];
    Shard& shard = *shards_[op_shard[i]];
    switch (op.kind) {
      case Transaction::OpKind::kAdd: {
        std::string id = op.rule->id();
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          if (routing_.count(id) != 0) {
            result = Status::AlreadyExists("duplicate rule id: " + id);
            break;
          }
        }
        op.rule->metadata().author = txn.author_;
        op.rule->metadata().tenant = txn.tenant_.value();
        result = shard.rules.Add(std::move(*op.rule));
        if (!result.ok()) break;
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          routing_.emplace(id,
                           RouteEntry{op_shard[i], txn.tenant_.value()});
        }
        uint64_t ts = Log(AuditAction::kAdd, RuleId(id), txn.author_, "");
        Rule* stored = shard.rules.FindMutable(id);
        stored->metadata().created_at = ts;
        journal_op({CommitRecord::OpKind::kAdd, *stored, RuleId(), 0.0, 0},
                   ts, AuditAction::kAdd, RuleId(id), "");
        mark_modified(op_shard[i]);
        break;
      }
      case Transaction::OpKind::kDisable: {
        result = shard.rules.Disable(op.id.view());
        if (!result.ok()) break;
        uint64_t ts = Log(AuditAction::kDisable, op.id, txn.author_,
                          op.detail);
        journal_op({CommitRecord::OpKind::kDisable, std::nullopt, op.id, 0.0,
                    0},
                   ts, AuditAction::kDisable, op.id, op.detail);
        mark_modified(op_shard[i]);
        break;
      }
      case Transaction::OpKind::kEnable: {
        result = shard.rules.Enable(op.id.view());
        if (!result.ok()) break;
        uint64_t ts = Log(AuditAction::kEnable, op.id, txn.author_, "");
        journal_op({CommitRecord::OpKind::kEnable, std::nullopt, op.id, 0.0,
                    0},
                   ts, AuditAction::kEnable, op.id, "");
        mark_modified(op_shard[i]);
        break;
      }
      case Transaction::OpKind::kRetire: {
        result = shard.rules.Retire(op.id.view());
        if (!result.ok()) break;
        uint64_t ts = Log(AuditAction::kRetire, op.id, txn.author_,
                          op.detail);
        journal_op({CommitRecord::OpKind::kRetire, std::nullopt, op.id, 0.0,
                    0},
                   ts, AuditAction::kRetire, op.id, op.detail);
        mark_modified(op_shard[i]);
        break;
      }
      case Transaction::OpKind::kSetConfidence: {
        Rule* rule = shard.rules.FindMutable(op.id.view());
        if (rule == nullptr) {
          result = Status::NotFound("no such rule: " + op.id.value());
          break;
        }
        rule->metadata().confidence = op.confidence;
        std::string detail = StrFormat("%.4f", op.confidence);
        uint64_t ts = Log(AuditAction::kSetConfidence, op.id, txn.author_,
                          detail);
        journal_op({CommitRecord::OpKind::kSetConfidence, std::nullopt,
                    op.id, op.confidence, 0},
                   ts, AuditAction::kSetConfidence, op.id, detail);
        mark_modified(op_shard[i]);
        break;
      }
    }
    if (!result.ok()) break;  // applied prefix stays; see header contract
  }

  // Journal before publication: when the append succeeds, readers never
  // observe state recovery could not rebuild. When it fails, the applied
  // ops still publish below — they cannot be rolled back — and the error
  // is surfaced to the caller, whose in-memory state is then ahead of
  // the durable log until journaling recovers (see CommitJournal).
  if (journal_ && !record.ops.empty()) {
    Status jst = journal_(record);
    if (result.ok() && !jst.ok()) result = jst;
  }

  std::sort(modified.begin(), modified.end());
  for (uint32_t idx : modified) {
    Shard& shard = *shards_[idx];
    shard.version.fetch_add(1, std::memory_order_release);
    for (const std::string& tenant : modified_tenants[idx]) {
      ++shard.tenant_versions[tenant];
    }
    shard.published.reset();
    txn.touched_.push_back(ShardKey(idx));
  }
  txn.ops_.clear();
  return result;
}

Status RuleRepository::Mutate(std::string_view author,
                              const std::function<Status(Transaction&)>& fn) {
  return Mutate(author, TenantId(), fn);
}

Status RuleRepository::Mutate(std::string_view author, const TenantId& tenant,
                              const std::function<Status(Transaction&)>& fn) {
  Transaction txn = Begin(author, tenant);
  RULEKIT_RETURN_IF_ERROR(fn(txn));
  return txn.Commit();
}

// ---- single mutations ------------------------------------------------------

Status RuleRepository::Add(Rule rule, std::string_view author) {
  Transaction txn = Begin(author);
  (void)txn.Add(std::move(rule));
  return txn.Commit();
}

Status RuleRepository::Disable(const RuleId& id, std::string_view author,
                               std::string_view reason) {
  Transaction txn = Begin(author);
  (void)txn.Disable(id, reason);
  return txn.Commit();
}

Status RuleRepository::Enable(const RuleId& id, std::string_view author) {
  Transaction txn = Begin(author);
  (void)txn.Enable(id);
  return txn.Commit();
}

Status RuleRepository::Retire(const RuleId& id, std::string_view author,
                              std::string_view reason) {
  Transaction txn = Begin(author);
  (void)txn.Retire(id, reason);
  return txn.Commit();
}

Status RuleRepository::SetConfidence(const RuleId& id, double confidence,
                                     std::string_view author) {
  Transaction txn = Begin(author);
  (void)txn.SetConfidence(id, confidence);
  return txn.Commit();
}

Result<std::vector<RuleId>> RuleRepository::DisableRulesForType(
    std::string_view type, std::string_view author, std::string_view reason,
    const TenantId& tenant) {
  std::vector<RuleId> disabled;
  Status journal_status;
  // One shard at a time: attribute-value rules can carry `type` anywhere
  // in their candidate list, so every shard must be scanned, but shards
  // not hosting such rules are locked only briefly and never bumped.
  // A non-default tenant scales down only its own rules; the default
  // tenant is the administrative scope and disables every tenant's rules
  // for the type — exactly the pre-tenancy emergency lever.
  for (size_t idx = 0; idx < shards_.size(); ++idx) {
    Shard& shard = *shards_[idx];
    std::lock_guard<std::mutex> lock(shard.mu);
    CommitRecord record;  // one journal record per published shard
    record.tenant = tenant.value();
    std::set<std::string> touched_tenants;
    for (const Rule* rule : shard.rules.ActiveForType(type)) {
      if (!tenant.is_default() &&
          rule->metadata().tenant != tenant.value()) {
        continue;
      }
      std::string owner = rule->metadata().tenant;
      if (shard.rules.Disable(rule->id()).ok()) {
        RuleId id(rule->id());
        uint64_t ts = Log(AuditAction::kDisable, id, author, reason);
        record.ops.push_back(
            {CommitRecord::OpKind::kDisable, std::nullopt, id, 0.0, 0});
        record.entries.push_back({ts, AuditAction::kDisable, id,
                                  std::string(author), std::string(reason)});
        disabled.push_back(std::move(id));
        touched_tenants.insert(std::move(owner));
      }
    }
    if (!record.ops.empty()) {
      // Scale-down is an emergency lever: a journal failure must not stop
      // the remaining shards from being disabled, but it is surfaced
      // below — same semantics as CommitTransaction (applied state
      // publishes, the caller learns recovery cannot reproduce it).
      if (journal_) {
        Status jst = journal_(record);
        if (journal_status.ok() && !jst.ok()) journal_status = jst;
      }
      shard.version.fetch_add(1, std::memory_order_release);
      for (const std::string& owner : touched_tenants) {
        ++shard.tenant_versions[owner];
      }
      shard.published.reset();
    }
  }
  if (!journal_status.ok()) return journal_status;
  return disabled;
}

// ---- snapshots -------------------------------------------------------------

ShardSnapshot RuleRepository::ShardSnapshotOf(ShardKey key) const {
  const Shard& shard = *shards_[key.index() % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.published == nullptr) {
    shard.published = std::make_shared<const RuleSet>(shard.rules);
  }
  return {key, shard.version.load(std::memory_order_acquire),
          shard.tenant_versions, shard.published};
}

RepositorySnapshot RuleRepository::SnapshotAll() const {
  RepositorySnapshot snap;
  snap.shards.reserve(shards_.size());
  for (size_t idx = 0; idx < shards_.size(); ++idx) {
    snap.shards.push_back(ShardSnapshotOf(ShardKey(idx)));
    snap.composite_version += snap.shards.back().version;
  }
  return snap;
}

uint64_t RuleRepository::shard_version(ShardKey key) const {
  if (key.index() >= shards_.size()) return 0;
  return shards_[key.index()]->version.load(std::memory_order_acquire);
}

uint64_t RuleRepository::tenant_shard_version(ShardKey key,
                                              const TenantId& tenant) const {
  if (key.index() >= shards_.size()) return 0;
  const Shard& shard = *shards_[key.index()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.tenant_versions.find(tenant.value());
  return it == shard.tenant_versions.end() ? 0 : it->second;
}

std::vector<TenantId> RuleRepository::Tenants() const {
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lock(routing_mu_);
    for (const auto& [id, route] : routing_) names.insert(route.tenant);
  }
  names.insert("");  // the shared pool always exists
  std::vector<TenantId> out;
  out.reserve(names.size());
  for (const std::string& name : names) out.emplace_back(name);
  return out;  // "" sorts first: default tenant leads
}

uint64_t RuleRepository::composite_version() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->version.load(std::memory_order_acquire);
  }
  return total;
}

void RuleRepository::RefreshMergedLocked(
    const RepositorySnapshot& pinned) const {
  if (merged_cache_version_ == pinned.composite_version) return;
  RuleSet merged;
  for (const ShardSnapshot& shard : pinned.shards) {
    for (const Rule& rule : shard.rules->rules()) {
      (void)merged.Add(rule);  // ids are unique across shards
    }
  }
  merged_cache_ = std::move(merged);
  merged_cache_version_ = pinned.composite_version;
}

std::shared_ptr<const RuleSet> RuleRepository::snapshot() const {
  RepositorySnapshot pinned = SnapshotAll();  // shard locks released here
  std::lock_guard<std::mutex> lock(merged_mu_);
  RefreshMergedLocked(pinned);
  if (merged_snapshot_ == nullptr ||
      merged_snapshot_version_ != pinned.composite_version) {
    merged_snapshot_ = std::make_shared<const RuleSet>(merged_cache_);
    merged_snapshot_version_ = pinned.composite_version;
  }
  return merged_snapshot_;
}

const RuleSet& RuleRepository::rules() const {
  if (shards_.size() == 1) return shards_[0]->rules;
  RepositorySnapshot pinned = SnapshotAll();
  std::lock_guard<std::mutex> lock(merged_mu_);
  RefreshMergedLocked(pinned);
  return merged_cache_;
}

uint64_t RuleRepository::clock() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return clock_;
}

// ---- checkpoints -----------------------------------------------------------

Result<uint64_t> RuleRepository::Checkpoint(std::string_view author) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  CheckpointState snap;
  for (const auto& shard : shards_) {
    for (const Rule& rule : shard->rules.rules()) {
      snap.states[RuleId(rule.id())] = {rule.metadata().state,
                                        rule.metadata().confidence};
    }
  }
  uint64_t version = Log(AuditAction::kCheckpoint, RuleId(), author, "");
  if (journal_) {
    CommitRecord record;
    record.ops.push_back(
        {CommitRecord::OpKind::kCheckpoint, std::nullopt, RuleId(), 0.0, 0});
    record.entries.push_back({version, AuditAction::kCheckpoint, RuleId(),
                              std::string(author), ""});
    // Journal before registering: an unjournaled checkpoint must not be
    // restorable, or a later journaled kRestoreCheckpoint could reference
    // a version Replay() has never seen and abort recovery outright. The
    // audit entry stays, like a failed commit's applied prefix.
    RULEKIT_RETURN_IF_ERROR(journal_(record));
  }
  checkpoints_[version] = std::move(snap);
  return version;
}

Status RuleRepository::RestoreCheckpoint(uint64_t version,
                                         std::string_view author) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  auto it = checkpoints_.find(version);
  if (it == checkpoints_.end()) {
    return Status::NotFound(StrFormat(
        "no checkpoint %llu", static_cast<unsigned long long>(version)));
  }
  for (const auto& shard : shards_) {
    for (Rule& rule : shard->rules.mutable_rules()) {
      auto state_it = it->second.states.find(RuleId(rule.id()));
      if (state_it == it->second.states.end()) {
        // Added after the checkpoint: take it out of execution.
        rule.metadata().state = RuleState::kDisabled;
      } else {
        rule.metadata().state = state_it->second.first;
        rule.metadata().confidence = state_it->second.second;
      }
    }
  }
  std::string detail =
      StrFormat("version %llu", static_cast<unsigned long long>(version));
  uint64_t ts = Log(AuditAction::kRestore, RuleId(), author, detail);
  Status journaled = Status::OK();
  if (journal_) {
    CommitRecord record;
    record.ops.push_back({CommitRecord::OpKind::kRestoreCheckpoint,
                          std::nullopt, RuleId(), 0.0, version});
    record.entries.push_back(
        {ts, AuditAction::kRestore, RuleId(), std::string(author), detail});
    journaled = journal_(record);  // before the bumps publish the restore
  }
  for (const auto& shard : shards_) {
    shard->version.fetch_add(1, std::memory_order_release);
    // A restore rewrites every rule's state regardless of owner, so every
    // tenant's view of every shard changes: bump the default counter and
    // every tenant counter the shard has ever seen.
    ++shard->tenant_versions[""];
    for (auto& [tenant, version] : shard->tenant_versions) {
      if (!tenant.empty()) ++version;
    }
    shard->published.reset();
  }
  return journaled;
}

std::vector<AuditEntry> RuleRepository::HistoryOf(
    const RuleId& rule_id) const {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<AuditEntry> out;
  for (const auto& e : audit_) {
    if (e.rule_id == rule_id) out.push_back(e);
  }
  return out;
}

// ---- durability ------------------------------------------------------------

Status RuleRepository::Replay(const CommitRecord& record) {
  if (record.entries.size() != record.ops.size()) {
    return Status::InvalidArgument(StrFormat(
        "commit record has %zu ops but %zu audit entries", record.ops.size(),
        record.entries.size()));
  }

  // Recovery mirrors the writer: all-shard locking (like Checkpoint), ops
  // applied in journal order, then one version bump per shard the record
  // modified. Replay is single-threaded in practice, but locking keeps
  // the invariants checkable under TSan.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);

  std::vector<bool> modified(shards_.size(), false);
  // Owner tenants touched per shard — mirrored from the writer so the
  // per-tenant counters converge exactly (the acceptance bar for
  // recovery). Restores bump everything, flagged separately.
  std::vector<std::set<std::string>> modified_tenants(shards_.size());
  bool restored = false;
  for (size_t i = 0; i < record.ops.size(); ++i) {
    const CommitRecord::Op& op = record.ops[i];
    const AuditEntry& entry = record.entries[i];
    auto fail = [&](const Status& why) {
      return Status::IOError(StrFormat(
          "journal op %zu (%s at t=%llu) does not apply: %s", i,
          ActionName(entry.action),
          static_cast<unsigned long long>(entry.timestamp),
          why.message().c_str()));
    };
    switch (op.kind) {
      case CommitRecord::OpKind::kAdd: {
        if (!op.rule.has_value()) {
          return fail(Status::InvalidArgument("add op carries no rule"));
        }
        std::string id = op.rule->id();
        // The stored rule carries its owner; routing mirrors the writer's
        // tenant-aware placement.
        const std::string& owner = op.rule->metadata().tenant;
        uint32_t shard_idx =
            KeyForTenantType(TenantId(owner), op.rule->target_type())
                .index();
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          if (routing_.count(id) != 0) {
            return fail(Status::AlreadyExists("duplicate rule id: " + id));
          }
        }
        Status st = shards_[shard_idx]->rules.Add(*op.rule);
        if (!st.ok()) return fail(st);
        modified_tenants[shard_idx].insert(owner);
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          routing_.emplace(std::move(id), RouteEntry{shard_idx, owner});
        }
        modified[shard_idx] = true;
        break;
      }
      case CommitRecord::OpKind::kDisable:
      case CommitRecord::OpKind::kEnable:
      case CommitRecord::OpKind::kRetire:
      case CommitRecord::OpKind::kSetConfidence: {
        uint32_t shard_idx = 0;
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          auto it = routing_.find(op.id.value());
          if (it == routing_.end()) {
            return fail(Status::NotFound("no such rule: " + op.id.value()));
          }
          shard_idx = it->second.shard;
          modified_tenants[shard_idx].insert(it->second.tenant);
        }
        Shard& shard = *shards_[shard_idx];
        Status st;
        if (op.kind == CommitRecord::OpKind::kDisable) {
          st = shard.rules.Disable(op.id.view());
        } else if (op.kind == CommitRecord::OpKind::kEnable) {
          st = shard.rules.Enable(op.id.view());
        } else if (op.kind == CommitRecord::OpKind::kRetire) {
          st = shard.rules.Retire(op.id.view());
        } else {
          Rule* rule = shard.rules.FindMutable(op.id.view());
          if (rule == nullptr) {
            st = Status::NotFound("no such rule: " + op.id.value());
          } else {
            rule->metadata().confidence = op.confidence;
          }
        }
        if (!st.ok()) return fail(st);
        modified[shard_idx] = true;
        break;
      }
      case CommitRecord::OpKind::kCheckpoint: {
        // Recompute the state map exactly as Checkpoint() did at this
        // point in the mutation history; the entry timestamp is the
        // checkpoint's version handle.
        CheckpointState snap;
        for (const auto& shard : shards_) {
          for (const Rule& rule : shard->rules.rules()) {
            snap.states[RuleId(rule.id())] = {rule.metadata().state,
                                              rule.metadata().confidence};
          }
        }
        checkpoints_[entry.timestamp] = std::move(snap);
        break;  // Checkpoint() bumps no shard
      }
      case CommitRecord::OpKind::kRestoreCheckpoint: {
        auto it = checkpoints_.find(op.checkpoint_version);
        if (it == checkpoints_.end()) {
          return fail(Status::NotFound(StrFormat(
              "no checkpoint %llu",
              static_cast<unsigned long long>(op.checkpoint_version))));
        }
        for (const auto& shard : shards_) {
          for (Rule& rule : shard->rules.mutable_rules()) {
            auto state_it = it->second.states.find(RuleId(rule.id()));
            if (state_it == it->second.states.end()) {
              rule.metadata().state = RuleState::kDisabled;
            } else {
              rule.metadata().state = state_it->second.first;
              rule.metadata().confidence = state_it->second.second;
            }
          }
        }
        std::fill(modified.begin(), modified.end(), true);
        restored = true;
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(log_mu_);
    // The writer's audit log is timestamp-ordered (Log() assigns under
    // log_mu_), but records from disjoint-shard commits can reach the
    // journal slightly out of that order. Merge rather than append so
    // the recovered log is byte-identical to the writer's.
    size_t old_size = audit_.size();
    audit_.insert(audit_.end(), record.entries.begin(), record.entries.end());
    if (old_size > 0 && old_size < audit_.size() &&
        audit_[old_size].timestamp < audit_[old_size - 1].timestamp) {
      std::inplace_merge(
          audit_.begin(), audit_.begin() + static_cast<ptrdiff_t>(old_size),
          audit_.end(), [](const AuditEntry& a, const AuditEntry& b) {
            return a.timestamp < b.timestamp;
          });
    }
    for (const AuditEntry& e : record.entries) {
      clock_ = std::max(clock_, e.timestamp);
    }
  }

  for (size_t idx = 0; idx < shards_.size(); ++idx) {
    if (!modified[idx]) continue;
    Shard& shard = *shards_[idx];
    shard.version.fetch_add(1, std::memory_order_release);
    if (restored) {
      // Mirror RestoreCheckpoint: default counter plus every tenant
      // counter the shard has seen.
      ++shard.tenant_versions[""];
      for (auto& [tenant, version] : shard.tenant_versions) {
        if (!tenant.empty()) ++version;
      }
    } else {
      for (const std::string& tenant : modified_tenants[idx]) {
        ++shard.tenant_versions[tenant];
      }
    }
    shard.published.reset();
  }
  return Status::OK();
}

PersistedState RuleRepository::ExportState() const {
  PersistedState out;
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->rules.size();
  out.rules.reserve(total);
  out.shard_versions.reserve(shards_.size());
  out.tenant_versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    for (const Rule& rule : shard->rules.rules()) out.rules.push_back(rule);
    out.shard_versions.push_back(
        shard->version.load(std::memory_order_acquire));
    out.tenant_versions.push_back(shard->tenant_versions);
  }
  out.checkpoints.reserve(checkpoints_.size());
  for (const auto& [version, state] : checkpoints_) {
    CheckpointRecord rec;
    rec.version = version;
    rec.entries.reserve(state.states.size());
    for (const auto& [id, sc] : state.states) {
      rec.entries.push_back({id, sc.first, sc.second});
    }
    out.checkpoints.push_back(std::move(rec));
  }
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    out.audit = audit_;
    out.clock = clock_;
  }
  return out;
}

Status RuleRepository::ImportState(PersistedState state) {
  if (!routing_.empty() || !audit_.empty() || clock_ != 0) {
    return Status::FailedPrecondition(
        "ImportState requires a freshly constructed repository");
  }
  for (Rule& rule : state.rules) {
    std::string id = rule.id();
    std::string owner = rule.metadata().tenant;
    uint32_t shard_idx =
        KeyForTenantType(TenantId(owner), rule.target_type()).index();
    if (routing_.count(id) != 0) {
      return Status::AlreadyExists("duplicate rule id in persisted state: " +
                                   id);
    }
    RULEKIT_RETURN_IF_ERROR(shards_[shard_idx]->rules.Add(std::move(rule)));
    routing_.emplace(std::move(id), RouteEntry{shard_idx, std::move(owner)});
  }
  if (state.shard_versions.size() == shards_.size()) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->version.store(state.shard_versions[i],
                                std::memory_order_release);
    }
  } else {
    // Shard count changed between export and import: the per-shard split
    // is meaningless, but the composite total must stay monotonic for
    // staleness probes, so it lands on shard 0.
    uint64_t total = 0;
    for (uint64_t v : state.shard_versions) total += v;
    shards_[0]->version.store(total, std::memory_order_release);
  }
  if (state.tenant_versions.size() == shards_.size()) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->tenant_versions = std::move(state.tenant_versions[i]);
    }
  } else {
    // Same monotonicity fallback per tenant: each tenant's total lands
    // in shard 0's map.
    for (const auto& per_shard : state.tenant_versions) {
      for (const auto& [tenant, version] : per_shard) {
        shards_[0]->tenant_versions[tenant] += version;
      }
    }
  }
  for (const CheckpointRecord& rec : state.checkpoints) {
    CheckpointState cs;
    for (const CheckpointRecord::Entry& e : rec.entries) {
      cs.states[e.id] = {e.state, e.confidence};
    }
    checkpoints_[rec.version] = std::move(cs);
  }
  audit_ = std::move(state.audit);
  clock_ = state.clock;
  for (const AuditEntry& e : audit_) clock_ = std::max(clock_, e.timestamp);
  return Status::OK();
}

// ---- persistence -----------------------------------------------------------

Status RuleRepository::SaveToFile(const std::string& path) const {
  PersistedState state = ExportState();
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# rulekit repository v3\n";
  for (const Rule& rule : state.rules) {
    const RuleMetadata& m = rule.metadata();
    out << "#meta " << m.author << '\t' << OriginName(m.origin) << '\t'
        << m.created_at << '\t' << StrFormat("%.6f", m.confidence) << '\t'
        << StateName(m.state) << '\t' << EscapeControl(m.note) << '\t'
        << EscapeControl(m.tenant) << '\n';
    out << rule.ToDsl() << '\n';
  }
  // The audit section makes HistoryOf() survive a save/load round trip;
  // v1 readers ignore these lines (leading '#').
  for (const AuditEntry& e : state.audit) {
    out << "#audit " << e.timestamp << '\t' << ActionName(e.action) << '\t'
        << e.rule_id.value() << '\t' << e.author << '\t'
        << EscapeControl(e.detail) << '\n';
  }
  out << "#clock " << state.clock << '\n';
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<RuleRepository> RuleRepository::LoadFromFile(const std::string& path,
                                                    size_t shard_count) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  RuleRepository repo(shard_count);
  std::string line;
  RuleMetadata pending;
  bool has_pending = false;
  size_t line_no = 0;
  std::vector<RuleId> loaded_order;  // for the v1 synthetic-audit fallback
  std::vector<AuditEntry> loaded_audit;
  uint64_t loaded_clock = 0;
  bool has_audit = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (StartsWith(trimmed, "#meta ")) {
      auto fields = Split(trimmed.substr(6), '\t');
      if (fields.size() < 5) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: malformed #meta line", path.c_str(), line_no));
      }
      pending = RuleMetadata{};
      pending.author = fields[0];
      pending.origin = OriginFromName(fields[1]);
      pending.created_at = std::strtoull(fields[2].c_str(), nullptr, 10);
      pending.confidence = std::strtod(fields[3].c_str(), nullptr);
      pending.state = StateFromName(fields[4]);
      if (fields.size() > 5) pending.note = UnescapeControl(fields[5]);
      if (fields.size() > 6) pending.tenant = UnescapeControl(fields[6]);
      has_pending = true;
      continue;
    }
    if (StartsWith(trimmed, "#audit ")) {
      auto fields = Split(trimmed.substr(7), '\t');
      if (fields.size() < 4) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: malformed #audit line", path.c_str(),
                      line_no));
      }
      AuditEntry entry;
      entry.timestamp = std::strtoull(fields[0].c_str(), nullptr, 10);
      entry.action = ActionFromName(fields[1]);
      entry.rule_id = RuleId(fields[2]);
      entry.author = fields[3];
      if (fields.size() > 4) entry.detail = UnescapeControl(fields[4]);
      loaded_audit.push_back(std::move(entry));
      has_audit = true;
      continue;
    }
    if (StartsWith(trimmed, "#clock ")) {
      loaded_clock = std::strtoull(
          std::string(trimmed.substr(7)).c_str(), nullptr, 10);
      has_audit = true;
      continue;
    }
    if (trimmed.front() == '#') continue;
    auto rules = ParseRules(trimmed);
    if (!rules.ok()) return rules.status();
    for (Rule& rule : *rules) {
      if (has_pending) {
        rule.metadata() = pending;  // preserves the saved created_at
        has_pending = false;
      }
      std::string id = rule.id();
      std::string owner = rule.metadata().tenant;
      // The repository is private to this function, so shards are mutated
      // without locks; the routing map still gets the cross-shard dup check.
      uint32_t shard_idx =
          repo.KeyForTenantType(TenantId(owner), rule.target_type()).index();
      if (repo.routing_.count(id) != 0) {
        return Status::AlreadyExists(
            StrFormat("%s:%zu: duplicate rule id: %s", path.c_str(), line_no,
                      id.c_str()));
      }
      RULEKIT_RETURN_IF_ERROR(repo.shards_[shard_idx]->rules.Add(
          std::move(rule)));
      repo.routing_.emplace(id, RouteEntry{shard_idx, std::move(owner)});
      loaded_order.emplace_back(id);
    }
  }
  if (has_audit) {
    // Format v2: the file carries the real history — install it verbatim
    // so HistoryOf() and the logical clock survive the round trip.
    for (const AuditEntry& e : loaded_audit) {
      loaded_clock = std::max(loaded_clock, e.timestamp);
    }
    repo.audit_ = std::move(loaded_audit);
    repo.clock_ = loaded_clock;
  } else {
    // Format v1: no history was saved; synthesize one kAdd per rule.
    for (const RuleId& id : loaded_order) {
      repo.Log(AuditAction::kAdd, id, "loader", "loaded from " + path);
    }
  }
  return repo;
}

}  // namespace rulekit::rules
