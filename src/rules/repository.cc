#include "src/rules/repository.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"
#include "src/rules/rule_parser.h"

namespace rulekit::rules {

namespace {

const char* OriginName(RuleOrigin origin) {
  switch (origin) {
    case RuleOrigin::kAnalyst: return "analyst";
    case RuleOrigin::kMined: return "mined";
    case RuleOrigin::kCurated: return "curated";
    case RuleOrigin::kImported: return "imported";
  }
  return "analyst";
}

RuleOrigin OriginFromName(std::string_view name) {
  if (name == "mined") return RuleOrigin::kMined;
  if (name == "curated") return RuleOrigin::kCurated;
  if (name == "imported") return RuleOrigin::kImported;
  return RuleOrigin::kAnalyst;
}

const char* StateName(RuleState state) {
  switch (state) {
    case RuleState::kActive: return "active";
    case RuleState::kDisabled: return "disabled";
    case RuleState::kRetired: return "retired";
  }
  return "active";
}

RuleState StateFromName(std::string_view name) {
  if (name == "disabled") return RuleState::kDisabled;
  if (name == "retired") return RuleState::kRetired;
  return RuleState::kActive;
}

}  // namespace

RuleRepository::RuleRepository(size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

// Moves transfer the data and start with fresh mutexes; the contract (see
// header) is that nothing concurrent is in flight during a move.
RuleRepository::RuleRepository(RuleRepository&& other) noexcept
    : shards_(std::move(other.shards_)),
      routing_(std::move(other.routing_)),
      audit_(std::move(other.audit_)),
      clock_(other.clock_),
      checkpoints_(std::move(other.checkpoints_)),
      merged_cache_(std::move(other.merged_cache_)),
      merged_cache_version_(other.merged_cache_version_),
      merged_snapshot_(std::move(other.merged_snapshot_)),
      merged_snapshot_version_(other.merged_snapshot_version_) {}

RuleRepository& RuleRepository::operator=(RuleRepository&& other) noexcept {
  if (this != &other) {
    shards_ = std::move(other.shards_);
    routing_ = std::move(other.routing_);
    audit_ = std::move(other.audit_);
    clock_ = other.clock_;
    checkpoints_ = std::move(other.checkpoints_);
    merged_cache_ = std::move(other.merged_cache_);
    merged_cache_version_ = other.merged_cache_version_;
    merged_snapshot_ = std::move(other.merged_snapshot_);
    merged_snapshot_version_ = other.merged_snapshot_version_;
  }
  return *this;
}

Result<ShardKey> RuleRepository::ShardOfRule(const RuleId& id) const {
  std::lock_guard<std::mutex> lock(routing_mu_);
  auto it = routing_.find(id.value());
  if (it == routing_.end()) {
    return Status::NotFound("no such rule: " + id.value());
  }
  return ShardKey(it->second);
}

uint64_t RuleRepository::Log(AuditAction action, const RuleId& rule_id,
                             std::string_view author,
                             std::string_view detail) {
  std::lock_guard<std::mutex> lock(log_mu_);
  audit_.push_back({++clock_, action, rule_id, std::string(author),
                    std::string(detail)});
  return clock_;
}

// ---- transactions ----------------------------------------------------------

RuleRepository::Transaction RuleRepository::Begin(std::string_view author) {
  return Transaction(this, std::string(author));
}

Status RuleRepository::Transaction::Add(Rule rule) {
  Op op{OpKind::kAdd, std::move(rule), RuleId(), "", 0.0};
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status RuleRepository::Transaction::Disable(const RuleId& id,
                                            std::string_view reason) {
  ops_.push_back({OpKind::kDisable, std::nullopt, id, std::string(reason),
                  0.0});
  return Status::OK();
}

Status RuleRepository::Transaction::Enable(const RuleId& id) {
  ops_.push_back({OpKind::kEnable, std::nullopt, id, "", 0.0});
  return Status::OK();
}

Status RuleRepository::Transaction::Retire(const RuleId& id,
                                           std::string_view reason) {
  ops_.push_back({OpKind::kRetire, std::nullopt, id, std::string(reason),
                  0.0});
  return Status::OK();
}

Status RuleRepository::Transaction::SetConfidence(const RuleId& id,
                                                  double confidence) {
  ops_.push_back({OpKind::kSetConfidence, std::nullopt, id, "", confidence});
  return Status::OK();
}

Status RuleRepository::Transaction::Commit() {
  return repo_->CommitTransaction(*this);
}

Status RuleRepository::CommitTransaction(Transaction& txn) {
  txn.touched_.clear();
  if (txn.ops_.empty()) return Status::OK();

  // Phase 1: resolve every op to its shard before applying anything, so an
  // unknown rule id fails the whole commit with zero side effects. Ids
  // staged by earlier Adds in this transaction resolve too.
  std::vector<uint32_t> op_shard(txn.ops_.size());
  std::unordered_map<std::string, uint32_t> staged_adds;
  for (size_t i = 0; i < txn.ops_.size(); ++i) {
    Transaction::Op& op = txn.ops_[i];
    if (op.kind == Transaction::OpKind::kAdd) {
      uint32_t shard = KeyForType(op.rule->target_type()).index();
      op_shard[i] = shard;
      staged_adds.emplace(op.rule->id(), shard);
      continue;
    }
    auto staged = staged_adds.find(op.id.value());
    if (staged != staged_adds.end()) {
      op_shard[i] = staged->second;
      continue;
    }
    std::lock_guard<std::mutex> lock(routing_mu_);
    auto it = routing_.find(op.id.value());
    if (it == routing_.end()) {
      return Status::NotFound("no such rule: " + op.id.value());
    }
    op_shard[i] = it->second;
  }

  // Phase 2: lock every affected shard (ascending — the global lock
  // order), apply in staging order, and bump each modified shard's
  // version exactly once so readers republish at most once per shard.
  std::vector<uint32_t> affected(op_shard);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(affected.size());
  for (uint32_t idx : affected) {
    locks.emplace_back(shards_[idx]->mu);
  }

  Status result = Status::OK();
  std::vector<uint32_t> modified;
  auto mark_modified = [&](uint32_t idx) {
    if (std::find(modified.begin(), modified.end(), idx) == modified.end()) {
      modified.push_back(idx);
    }
  };

  for (size_t i = 0; i < txn.ops_.size(); ++i) {
    Transaction::Op& op = txn.ops_[i];
    Shard& shard = *shards_[op_shard[i]];
    switch (op.kind) {
      case Transaction::OpKind::kAdd: {
        std::string id = op.rule->id();
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          if (routing_.count(id) != 0) {
            result = Status::AlreadyExists("duplicate rule id: " + id);
            break;
          }
        }
        op.rule->metadata().author = txn.author_;
        result = shard.rules.Add(std::move(*op.rule));
        if (!result.ok()) break;
        {
          std::lock_guard<std::mutex> lock(routing_mu_);
          routing_.emplace(id, op_shard[i]);
        }
        uint64_t ts = Log(AuditAction::kAdd, RuleId(id), txn.author_, "");
        shard.rules.FindMutable(id)->metadata().created_at = ts;
        mark_modified(op_shard[i]);
        break;
      }
      case Transaction::OpKind::kDisable:
        result = shard.rules.Disable(op.id.view());
        if (!result.ok()) break;
        Log(AuditAction::kDisable, op.id, txn.author_, op.detail);
        mark_modified(op_shard[i]);
        break;
      case Transaction::OpKind::kEnable:
        result = shard.rules.Enable(op.id.view());
        if (!result.ok()) break;
        Log(AuditAction::kEnable, op.id, txn.author_, "");
        mark_modified(op_shard[i]);
        break;
      case Transaction::OpKind::kRetire:
        result = shard.rules.Retire(op.id.view());
        if (!result.ok()) break;
        Log(AuditAction::kRetire, op.id, txn.author_, op.detail);
        mark_modified(op_shard[i]);
        break;
      case Transaction::OpKind::kSetConfidence: {
        Rule* rule = shard.rules.FindMutable(op.id.view());
        if (rule == nullptr) {
          result = Status::NotFound("no such rule: " + op.id.value());
          break;
        }
        rule->metadata().confidence = op.confidence;
        Log(AuditAction::kSetConfidence, op.id, txn.author_,
            StrFormat("%.4f", op.confidence));
        mark_modified(op_shard[i]);
        break;
      }
    }
    if (!result.ok()) break;  // applied prefix stays; see header contract
  }

  std::sort(modified.begin(), modified.end());
  for (uint32_t idx : modified) {
    Shard& shard = *shards_[idx];
    shard.version.fetch_add(1, std::memory_order_release);
    shard.published.reset();
    txn.touched_.push_back(ShardKey(idx));
  }
  txn.ops_.clear();
  return result;
}

Status RuleRepository::Mutate(std::string_view author,
                              const std::function<Status(Transaction&)>& fn) {
  Transaction txn = Begin(author);
  RULEKIT_RETURN_IF_ERROR(fn(txn));
  return txn.Commit();
}

// ---- single mutations ------------------------------------------------------

Status RuleRepository::Add(Rule rule, std::string_view author) {
  Transaction txn = Begin(author);
  (void)txn.Add(std::move(rule));
  return txn.Commit();
}

Status RuleRepository::Disable(const RuleId& id, std::string_view author,
                               std::string_view reason) {
  Transaction txn = Begin(author);
  (void)txn.Disable(id, reason);
  return txn.Commit();
}

Status RuleRepository::Enable(const RuleId& id, std::string_view author) {
  Transaction txn = Begin(author);
  (void)txn.Enable(id);
  return txn.Commit();
}

Status RuleRepository::Retire(const RuleId& id, std::string_view author,
                              std::string_view reason) {
  Transaction txn = Begin(author);
  (void)txn.Retire(id, reason);
  return txn.Commit();
}

Status RuleRepository::SetConfidence(const RuleId& id, double confidence,
                                     std::string_view author) {
  Transaction txn = Begin(author);
  (void)txn.SetConfidence(id, confidence);
  return txn.Commit();
}

std::vector<RuleId> RuleRepository::DisableRulesForType(
    std::string_view type, std::string_view author, std::string_view reason) {
  std::vector<RuleId> disabled;
  // One shard at a time: attribute-value rules can carry `type` anywhere
  // in their candidate list, so every shard must be scanned, but shards
  // not hosting such rules are locked only briefly and never bumped.
  for (size_t idx = 0; idx < shards_.size(); ++idx) {
    Shard& shard = *shards_[idx];
    std::lock_guard<std::mutex> lock(shard.mu);
    bool changed = false;
    for (const Rule* rule : shard.rules.ActiveForType(type)) {
      if (shard.rules.Disable(rule->id()).ok()) {
        Log(AuditAction::kDisable, RuleId(rule->id()), author, reason);
        disabled.emplace_back(rule->id());
        changed = true;
      }
    }
    if (changed) {
      shard.version.fetch_add(1, std::memory_order_release);
      shard.published.reset();
    }
  }
  return disabled;
}

// ---- snapshots -------------------------------------------------------------

ShardSnapshot RuleRepository::ShardSnapshotOf(ShardKey key) const {
  const Shard& shard = *shards_[key.index() % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.published == nullptr) {
    shard.published = std::make_shared<const RuleSet>(shard.rules);
  }
  return {key, shard.version.load(std::memory_order_acquire),
          shard.published};
}

RepositorySnapshot RuleRepository::SnapshotAll() const {
  RepositorySnapshot snap;
  snap.shards.reserve(shards_.size());
  for (size_t idx = 0; idx < shards_.size(); ++idx) {
    snap.shards.push_back(ShardSnapshotOf(ShardKey(idx)));
    snap.composite_version += snap.shards.back().version;
  }
  return snap;
}

uint64_t RuleRepository::shard_version(ShardKey key) const {
  if (key.index() >= shards_.size()) return 0;
  return shards_[key.index()]->version.load(std::memory_order_acquire);
}

uint64_t RuleRepository::composite_version() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->version.load(std::memory_order_acquire);
  }
  return total;
}

void RuleRepository::RefreshMergedLocked(
    const RepositorySnapshot& pinned) const {
  if (merged_cache_version_ == pinned.composite_version) return;
  RuleSet merged;
  for (const ShardSnapshot& shard : pinned.shards) {
    for (const Rule& rule : shard.rules->rules()) {
      (void)merged.Add(rule);  // ids are unique across shards
    }
  }
  merged_cache_ = std::move(merged);
  merged_cache_version_ = pinned.composite_version;
}

std::shared_ptr<const RuleSet> RuleRepository::snapshot() const {
  RepositorySnapshot pinned = SnapshotAll();  // shard locks released here
  std::lock_guard<std::mutex> lock(merged_mu_);
  RefreshMergedLocked(pinned);
  if (merged_snapshot_ == nullptr ||
      merged_snapshot_version_ != pinned.composite_version) {
    merged_snapshot_ = std::make_shared<const RuleSet>(merged_cache_);
    merged_snapshot_version_ = pinned.composite_version;
  }
  return merged_snapshot_;
}

const RuleSet& RuleRepository::rules() const {
  if (shards_.size() == 1) return shards_[0]->rules;
  RepositorySnapshot pinned = SnapshotAll();
  std::lock_guard<std::mutex> lock(merged_mu_);
  RefreshMergedLocked(pinned);
  return merged_cache_;
}

uint64_t RuleRepository::clock() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return clock_;
}

// ---- checkpoints -----------------------------------------------------------

uint64_t RuleRepository::Checkpoint(std::string_view author) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  CheckpointState snap;
  for (const auto& shard : shards_) {
    for (const Rule& rule : shard->rules.rules()) {
      snap.states[RuleId(rule.id())] = {rule.metadata().state,
                                        rule.metadata().confidence};
    }
  }
  uint64_t version = Log(AuditAction::kCheckpoint, RuleId(), author, "");
  checkpoints_[version] = std::move(snap);
  return version;
}

Status RuleRepository::RestoreCheckpoint(uint64_t version,
                                         std::string_view author) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  auto it = checkpoints_.find(version);
  if (it == checkpoints_.end()) {
    return Status::NotFound(StrFormat(
        "no checkpoint %llu", static_cast<unsigned long long>(version)));
  }
  for (const auto& shard : shards_) {
    for (Rule& rule : shard->rules.mutable_rules()) {
      auto state_it = it->second.states.find(RuleId(rule.id()));
      if (state_it == it->second.states.end()) {
        // Added after the checkpoint: take it out of execution.
        rule.metadata().state = RuleState::kDisabled;
      } else {
        rule.metadata().state = state_it->second.first;
        rule.metadata().confidence = state_it->second.second;
      }
    }
    shard->version.fetch_add(1, std::memory_order_release);
    shard->published.reset();
  }
  Log(AuditAction::kRestore, RuleId(), author,
      StrFormat("version %llu", static_cast<unsigned long long>(version)));
  return Status::OK();
}

std::vector<AuditEntry> RuleRepository::HistoryOf(
    const RuleId& rule_id) const {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<AuditEntry> out;
  for (const auto& e : audit_) {
    if (e.rule_id == rule_id) out.push_back(e);
  }
  return out;
}

// ---- persistence -----------------------------------------------------------

Status RuleRepository::SaveToFile(const std::string& path) const {
  auto snap = snapshot();
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# rulekit repository v1\n";
  for (const Rule& rule : snap->rules()) {
    const RuleMetadata& m = rule.metadata();
    out << "#meta " << m.author << '\t' << OriginName(m.origin) << '\t'
        << m.created_at << '\t' << StrFormat("%.6f", m.confidence) << '\t'
        << StateName(m.state) << '\t' << EscapeControl(m.note) << '\n';
    out << rule.ToDsl() << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<RuleRepository> RuleRepository::LoadFromFile(const std::string& path,
                                                    size_t shard_count) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  RuleRepository repo(shard_count);
  std::string line;
  RuleMetadata pending;
  bool has_pending = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (StartsWith(trimmed, "#meta ")) {
      auto fields = Split(trimmed.substr(6), '\t');
      if (fields.size() < 5) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: malformed #meta line", path.c_str(), line_no));
      }
      pending = RuleMetadata{};
      pending.author = fields[0];
      pending.origin = OriginFromName(fields[1]);
      pending.created_at = std::strtoull(fields[2].c_str(), nullptr, 10);
      pending.confidence = std::strtod(fields[3].c_str(), nullptr);
      pending.state = StateFromName(fields[4]);
      if (fields.size() > 5) pending.note = UnescapeControl(fields[5]);
      has_pending = true;
      continue;
    }
    if (trimmed.front() == '#') continue;
    auto rules = ParseRules(trimmed);
    if (!rules.ok()) return rules.status();
    for (Rule& rule : *rules) {
      if (has_pending) {
        rule.metadata() = pending;  // preserves the saved created_at
        has_pending = false;
      }
      std::string id = rule.id();
      // The repository is private to this function, so shards are mutated
      // without locks; the routing map still gets the cross-shard dup check.
      uint32_t shard_idx = repo.KeyForType(rule.target_type()).index();
      if (repo.routing_.count(id) != 0) {
        return Status::AlreadyExists("duplicate rule id: " + id);
      }
      RULEKIT_RETURN_IF_ERROR(repo.shards_[shard_idx]->rules.Add(
          std::move(rule)));
      repo.routing_.emplace(id, shard_idx);
      repo.Log(AuditAction::kAdd, RuleId(id), "loader",
               "loaded from " + path);
    }
  }
  return repo;
}

}  // namespace rulekit::rules
