#include "src/rules/repository.h"

#include <fstream>
#include <sstream>

#include "src/common/string_util.h"
#include "src/rules/rule_parser.h"

namespace rulekit::rules {

namespace {

const char* OriginName(RuleOrigin origin) {
  switch (origin) {
    case RuleOrigin::kAnalyst: return "analyst";
    case RuleOrigin::kMined: return "mined";
    case RuleOrigin::kCurated: return "curated";
    case RuleOrigin::kImported: return "imported";
  }
  return "analyst";
}

RuleOrigin OriginFromName(std::string_view name) {
  if (name == "mined") return RuleOrigin::kMined;
  if (name == "curated") return RuleOrigin::kCurated;
  if (name == "imported") return RuleOrigin::kImported;
  return RuleOrigin::kAnalyst;
}

const char* StateName(RuleState state) {
  switch (state) {
    case RuleState::kActive: return "active";
    case RuleState::kDisabled: return "disabled";
    case RuleState::kRetired: return "retired";
  }
  return "active";
}

RuleState StateFromName(std::string_view name) {
  if (name == "disabled") return RuleState::kDisabled;
  if (name == "retired") return RuleState::kRetired;
  return RuleState::kActive;
}

}  // namespace

RuleRepository::RuleRepository(RuleRepository&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  rules_ = std::move(other.rules_);
  audit_ = std::move(other.audit_);
  snapshots_ = std::move(other.snapshots_);
  clock_ = other.clock_;
  published_ = std::move(other.published_);
}

RuleRepository& RuleRepository::operator=(RuleRepository&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    rules_ = std::move(other.rules_);
    audit_ = std::move(other.audit_);
    snapshots_ = std::move(other.snapshots_);
    clock_ = other.clock_;
    published_ = std::move(other.published_);
  }
  return *this;
}

void RuleRepository::Log(AuditAction action, std::string_view rule_id,
                         std::string_view author, std::string_view detail) {
  audit_.push_back({++clock_, action, std::string(rule_id),
                    std::string(author), std::string(detail)});
  published_.reset();  // any logged action may have touched the rule set
}

std::shared_ptr<const RuleSet> RuleRepository::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (published_ == nullptr) {
    published_ = std::make_shared<const RuleSet>(rules_);
  }
  return published_;
}

uint64_t RuleRepository::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

Status RuleRepository::Add(Rule rule, std::string_view author) {
  std::lock_guard<std::mutex> lock(mu_);
  rule.metadata().author = std::string(author);
  rule.metadata().created_at = clock_ + 1;
  std::string id = rule.id();
  RULEKIT_RETURN_IF_ERROR(rules_.Add(std::move(rule)));
  Log(AuditAction::kAdd, id, author, "");
  return Status::OK();
}

Status RuleRepository::DisableLocked(std::string_view id,
                                     std::string_view author,
                                     std::string_view reason) {
  RULEKIT_RETURN_IF_ERROR(rules_.Disable(id));
  Log(AuditAction::kDisable, id, author, reason);
  return Status::OK();
}

Status RuleRepository::Disable(std::string_view id, std::string_view author,
                               std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  return DisableLocked(id, author, reason);
}

Status RuleRepository::Enable(std::string_view id, std::string_view author) {
  std::lock_guard<std::mutex> lock(mu_);
  RULEKIT_RETURN_IF_ERROR(rules_.Enable(id));
  Log(AuditAction::kEnable, id, author, "");
  return Status::OK();
}

Status RuleRepository::Retire(std::string_view id, std::string_view author,
                              std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  RULEKIT_RETURN_IF_ERROR(rules_.Retire(id));
  Log(AuditAction::kRetire, id, author, reason);
  return Status::OK();
}

Status RuleRepository::SetConfidence(std::string_view id, double confidence,
                                     std::string_view author) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule* rule = rules_.FindMutable(id);
  if (rule == nullptr) {
    return Status::NotFound("no such rule: " + std::string(id));
  }
  rule->metadata().confidence = confidence;
  Log(AuditAction::kSetConfidence, id, author,
      StrFormat("%.4f", confidence));
  return Status::OK();
}

std::vector<std::string> RuleRepository::DisableRulesForType(
    std::string_view type, std::string_view author,
    std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> disabled;
  for (const Rule* rule : rules_.ActiveForType(type)) {
    if (DisableLocked(rule->id(), author, reason).ok()) {
      disabled.push_back(rule->id());
    }
  }
  return disabled;
}

uint64_t RuleRepository::Checkpoint(std::string_view author) {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const Rule& rule : rules_.rules()) {
    snap.states[rule.id()] = {rule.metadata().state,
                              rule.metadata().confidence};
  }
  Log(AuditAction::kCheckpoint, "", author, "");
  uint64_t version = clock_;
  snapshots_[version] = std::move(snap);
  return version;
}

Status RuleRepository::RestoreCheckpoint(uint64_t version,
                                         std::string_view author) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(version);
  if (it == snapshots_.end()) {
    return Status::NotFound(StrFormat("no checkpoint %llu",
                                      static_cast<unsigned long long>(
                                          version)));
  }
  for (Rule& rule : rules_.mutable_rules()) {
    auto state_it = it->second.states.find(rule.id());
    if (state_it == it->second.states.end()) {
      // Added after the checkpoint: take it out of execution.
      rule.metadata().state = RuleState::kDisabled;
    } else {
      rule.metadata().state = state_it->second.first;
      rule.metadata().confidence = state_it->second.second;
    }
  }
  Log(AuditAction::kRestore, "", author,
      StrFormat("version %llu", static_cast<unsigned long long>(version)));
  return Status::OK();
}

std::vector<AuditEntry> RuleRepository::HistoryOf(
    std::string_view rule_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEntry> out;
  for (const auto& e : audit_) {
    if (e.rule_id == rule_id) out.push_back(e);
  }
  return out;
}

Status RuleRepository::SaveToFile(const std::string& path) const {
  auto snap = snapshot();
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# rulekit repository v1\n";
  for (const Rule& rule : snap->rules()) {
    const RuleMetadata& m = rule.metadata();
    out << "#meta " << m.author << '\t' << OriginName(m.origin) << '\t'
        << m.created_at << '\t' << StrFormat("%.6f", m.confidence) << '\t'
        << StateName(m.state) << '\t' << EscapeControl(m.note) << '\n';
    out << rule.ToDsl() << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<RuleRepository> RuleRepository::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  RuleRepository repo;
  std::string line;
  RuleMetadata pending;
  bool has_pending = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (StartsWith(trimmed, "#meta ")) {
      auto fields = Split(trimmed.substr(6), '\t');
      if (fields.size() < 5) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: malformed #meta line", path.c_str(),
                      line_no));
      }
      pending = RuleMetadata{};
      pending.author = fields[0];
      pending.origin = OriginFromName(fields[1]);
      pending.created_at = std::strtoull(fields[2].c_str(), nullptr, 10);
      pending.confidence = std::strtod(fields[3].c_str(), nullptr);
      pending.state = StateFromName(fields[4]);
      if (fields.size() > 5) pending.note = UnescapeControl(fields[5]);
      has_pending = true;
      continue;
    }
    if (trimmed.front() == '#') continue;
    auto rules = ParseRules(trimmed);
    if (!rules.ok()) return rules.status();
    for (Rule& rule : *rules) {
      if (has_pending) {
        rule.metadata() = pending;
        has_pending = false;
      }
      std::string id = rule.id();
      RULEKIT_RETURN_IF_ERROR(repo.rules_.Add(std::move(rule)));
      repo.Log(AuditAction::kAdd, id, "loader", "loaded from " + path);
    }
  }
  return repo;
}

}  // namespace rulekit::rules
