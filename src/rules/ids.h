#ifndef RULEKIT_RULES_IDS_H_
#define RULEKIT_RULES_IDS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace rulekit::rules {

/// Strongly-typed rule identifier. The repository, audit log, and eval
/// trackers used to pass bare `std::string`s around, which made it easy to
/// hand a type name (or a shard index) where a rule id was expected; the
/// wrapper turns that misuse into a compile error while staying cheap to
/// construct from the untyped ids the DSL parser produces.
class RuleId {
 public:
  RuleId() = default;
  explicit RuleId(std::string value) : value_(std::move(value)) {}
  explicit RuleId(std::string_view value) : value_(value) {}
  // Exact match for string literals (otherwise ambiguous between the
  // string and string_view conversions above).
  explicit RuleId(const char* value) : value_(value) {}

  const std::string& value() const { return value_; }
  std::string_view view() const { return value_; }
  const char* c_str() const { return value_.c_str(); }
  bool empty() const { return value_.empty(); }

  friend bool operator==(const RuleId& a, const RuleId& b) {
    return a.value_ == b.value_;
  }
  friend bool operator<(const RuleId& a, const RuleId& b) {
    return a.value_ < b.value_;
  }
  /// Comparisons against untyped ids (test expectations, DSL round trips).
  friend bool operator==(const RuleId& a, std::string_view b) {
    return a.value_ == b;
  }

  struct Hash {
    size_t operator()(const RuleId& id) const {
      return std::hash<std::string>{}(id.value_);
    }
  };

 private:
  std::string value_;
};

/// Identifies one tenant (vendor feed) of the multi-tenant pipeline.
/// Chimera's update stream arrives as per-vendor batches; the tenant is
/// the unit of state partitioning — repository placement, hot-cache
/// stripes, quality windows, and retrain slots are all keyed by it. The
/// default tenant (empty value) is the shared pool: it owns every rule
/// and batch of a pre-tenancy deployment, and its rules are visible to
/// every other tenant as the shared baseline rule set.
class TenantId {
 public:
  TenantId() = default;  // the default (shared) tenant
  explicit TenantId(std::string value) : value_(std::move(value)) {}
  explicit TenantId(std::string_view value) : value_(value) {}
  explicit TenantId(const char* value) : value_(value) {}

  /// The default tenant — what every pre-tenancy call site implies.
  static const TenantId& Default() {
    static const TenantId kDefault;
    return kDefault;
  }

  bool is_default() const { return value_.empty(); }
  const std::string& value() const { return value_; }
  /// Human-readable form ("default" for the default tenant).
  std::string display() const {
    return value_.empty() ? std::string("default") : value_;
  }

  friend bool operator==(const TenantId& a, const TenantId& b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const TenantId& a, const TenantId& b) {
    return a.value_ != b.value_;
  }
  friend bool operator<(const TenantId& a, const TenantId& b) {
    return a.value_ < b.value_;
  }

  struct Hash {
    size_t operator()(const TenantId& id) const {
      return std::hash<std::string>{}(id.value_);
    }
  };

 private:
  std::string value_;
};

/// Identifies one shard of a sharded RuleRepository. Shards are keyed by
/// the hash of a rule's (tenant, target type), so all rules asserting
/// (or vetoing) one type for one tenant live together and an edit to a
/// cold type never touches the hot types' shards. The strong type keeps
/// shard indices from being mixed up with rule counts, versions, or
/// checkpoint handles.
class ShardKey {
 public:
  ShardKey() = default;
  constexpr explicit ShardKey(uint32_t index) : index_(index) {}

  /// The shard that owns rules targeting `target_type` in a repository
  /// with `shard_count` shards (FNV-1a; stable across runs and builds so
  /// routing decisions are reproducible).
  static ShardKey ForType(std::string_view target_type, size_t shard_count) {
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (char c : target_type) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;  // FNV prime
    }
    if (shard_count == 0) shard_count = 1;
    return ShardKey(static_cast<uint32_t>(h % shard_count));
  }

  /// The shard that owns `tenant`'s rules targeting `target_type`. For
  /// the default tenant this is exactly ForType — a single-tenant
  /// repository places (and versions) every rule precisely as the
  /// pre-tenancy code did, which is what keeps recovery and serving
  /// byte-identical for existing deployments. Non-default tenants fold
  /// the tenant bytes (plus a separator that cannot appear in either
  /// string's hash run) into the same FNV-1a stream.
  static ShardKey ForTenantType(const TenantId& tenant,
                                std::string_view target_type,
                                size_t shard_count) {
    if (tenant.is_default()) return ForType(target_type, shard_count);
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (char c : tenant.value()) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;  // FNV prime
    }
    h ^= 0x1f;  // unit separator: "ab"+"c" routes unlike "a"+"bc"
    h *= 1099511628211ull;
    for (char c : target_type) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    if (shard_count == 0) shard_count = 1;
    return ShardKey(static_cast<uint32_t>(h % shard_count));
  }

  constexpr uint32_t index() const { return index_; }

  friend constexpr bool operator==(ShardKey a, ShardKey b) {
    return a.index_ == b.index_;
  }
  friend constexpr bool operator<(ShardKey a, ShardKey b) {
    return a.index_ < b.index_;
  }

  struct Hash {
    size_t operator()(ShardKey key) const { return key.index_; }
  };

 private:
  uint32_t index_ = 0;
};

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_IDS_H_
