#include "src/rules/rule_parser.h"

#include <cctype>

#include "src/common/string_util.h"

namespace rulekit::rules {

namespace {

// ---------------------------------------------------------------------------
// Predicate expression parser (recursive descent over a char scanner).
// ---------------------------------------------------------------------------

class PredicateParser {
 public:
  PredicateParser(std::string_view text,
                  const DictionaryRegistry* dictionaries)
      : text_(text), dictionaries_(dictionaries) {}

  Result<PredicatePtr> Run() {
    auto p = ParseOr();
    if (!p.ok()) return p;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing input");
    return p;
  }

 private:
  Status Error(const std::string& msg) {
    return Status::InvalidArgument(StrFormat(
        "predicate parse error at offset %zu in \"%.*s\": %s", pos_,
        static_cast<int>(text_.size()), text_.data(), msg.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  // Consumes `word` if it appears (word-bounded) at the cursor.
  bool TryKeyword(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  bool TryChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseQuoted() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected a double-quoted string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
      }
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<std::string> ParseIdentifierUntil(char terminator) {
    SkipSpace();
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != terminator) {
      out += text_[pos_++];
    }
    std::string trimmed(Trim(out));
    if (trimmed.empty()) return Error("expected a name");
    return trimmed;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  Result<PredicatePtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    PredicatePtr node = std::move(left).value();
    while (TryKeyword("or")) {
      auto right = ParseAnd();
      if (!right.ok()) return right;
      node = Or(std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<PredicatePtr> ParseAnd() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    PredicatePtr node = std::move(left).value();
    while (TryKeyword("and")) {
      auto right = ParseUnary();
      if (!right.ok()) return right;
      node = And(std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<PredicatePtr> ParseUnary() {
    if (TryKeyword("not")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return Not(std::move(inner).value());
    }
    return ParseAtom();
  }

  Result<PredicatePtr> ParseAtom() {
    if (TryChar('(')) {
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (!TryChar(')')) return Error("expected ')'");
      return inner;
    }
    if (TryKeyword("title")) {
      if (TryChar('~')) {
        auto pattern = ParseQuoted();
        if (!pattern.ok()) return pattern.status();
        auto re = regex::Regex::CompileCaseFolded(
            Rule::NormalizePattern(*pattern));
        if (!re.ok()) return re.status();
        return TitleMatches(std::move(re).value());
      }
      if (TryKeyword("has")) {
        auto phrase = ParseQuoted();
        if (!phrase.ok()) return phrase.status();
        return TitleContains(std::move(phrase).value());
      }
      if (TryKeyword("anyof")) {
        if (!TryKeyword("dict") || !TryChar('(')) {
          return Error("expected dict(Name) after 'anyof'");
        }
        auto name = ParseIdentifierUntil(')');
        if (!name.ok()) return name.status();
        if (!TryChar(')')) return Error("expected ')'");
        if (dictionaries_ == nullptr) {
          return Error("dictionary rules need a DictionaryRegistry");
        }
        auto dict = dictionaries_->Find(*name);
        if (dict == nullptr) {
          return Error("unknown dictionary '" + *name + "'");
        }
        return DictionaryContains(std::move(dict), std::move(name).value());
      }
      return Error("expected '~', 'has', or 'anyof' after 'title'");
    }
    if (TryKeyword("has")) {
      if (!TryChar('(')) return Error("expected '(' after 'has'");
      auto name = ParseIdentifierUntil(')');
      if (!name.ok()) return name.status();
      if (!TryChar(')')) return Error("expected ')'");
      return AttributeExists(std::move(name).value());
    }
    if (TryKeyword("attr")) {
      if (!TryChar('(')) return Error("expected '(' after 'attr'");
      auto name = ParseIdentifierUntil(')');
      if (!name.ok()) return name.status();
      if (!TryChar(')')) return Error("expected ')'");
      if (TryChar('=')) {
        auto value = ParseQuoted();
        if (!value.ok()) return value.status();
        return AttributeEquals(std::move(name).value(),
                               std::move(value).value());
      }
      if (TryChar('~')) {
        auto pattern = ParseQuoted();
        if (!pattern.ok()) return pattern.status();
        auto re = regex::Regex::CompileCaseFolded(*pattern);
        if (!re.ok()) return re.status();
        return AttributeMatches(std::move(name).value(),
                                std::move(re).value());
      }
      return Error("expected '=' or '~' after attr(...)");
    }
    if (TryKeyword("price")) {
      if (TryChar('<')) {
        auto limit = ParseNumber();
        if (!limit.ok()) return limit.status();
        return PriceBelow(*limit);
      }
      if (TryChar('>')) {
        auto limit = ParseNumber();
        if (!limit.ok()) return limit.status();
        return PriceAbove(*limit);
      }
      return Error("expected '<' or '>' after 'price'");
    }
    return Error("expected a predicate atom");
  }

  std::string_view text_;
  const DictionaryRegistry* dictionaries_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Line-level rule parser.
// ---------------------------------------------------------------------------

struct LineParts {
  std::string keyword;
  std::string id;
  std::string body;
  std::string target;
};

Result<LineParts> SplitLine(std::string_view line, size_t line_no) {
  auto err = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("rule line %zu: %s", line_no, msg.c_str()));
  };
  size_t arrow = line.rfind("=>");
  if (arrow == std::string_view::npos) return err("missing '=>'");
  std::string_view head = line.substr(0, arrow);
  std::string_view target = Trim(line.substr(arrow + 2));
  if (target.empty()) return err("missing target type after '=>'");

  size_t colon = head.find(':');
  if (colon == std::string_view::npos) return err("missing ':' after id");
  std::string_view decl = Trim(head.substr(0, colon));
  std::string_view body = Trim(head.substr(colon + 1));

  size_t space = decl.find(' ');
  if (space == std::string_view::npos) {
    return err("expected '<kind> <id>:'");
  }
  LineParts parts;
  parts.keyword = std::string(Trim(decl.substr(0, space)));
  parts.id = std::string(Trim(decl.substr(space + 1)));
  parts.body = std::string(body);
  parts.target = std::string(target);
  if (parts.id.empty()) return err("empty rule id");
  if (parts.body.empty()) return err("empty rule body");
  return parts;
}

Result<Rule> ParseLine(std::string_view line, size_t line_no,
                       const DictionaryRegistry* dictionaries) {
  auto parts = SplitLine(line, line_no);
  if (!parts.ok()) return parts.status();
  auto err = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("rule line %zu: %s", line_no, msg.c_str()));
  };

  const std::string& kw = parts->keyword;
  if (kw == "whitelist") {
    return Rule::Whitelist(parts->id, parts->body, parts->target);
  }
  if (kw == "blacklist") {
    return Rule::Blacklist(parts->id, parts->body, parts->target);
  }
  if (kw == "attr") {
    // body: has(Name)
    std::string_view body = parts->body;
    if (!StartsWith(body, "has(") || !EndsWith(body, ")")) {
      return err("attr rule body must be has(AttributeName)");
    }
    std::string name(Trim(body.substr(4, body.size() - 5)));
    if (name.empty()) return err("empty attribute name");
    return Rule::AttributeExists(parts->id, name, parts->target);
  }
  if (kw == "attrval") {
    // body: Name = "value"; target: type1 | type2 | ...
    size_t eq = parts->body.find('=');
    if (eq == std::string::npos) return err("attrval body must be Name = \"value\"");
    std::string name(Trim(std::string_view(parts->body).substr(0, eq)));
    std::string_view rest = Trim(std::string_view(parts->body).substr(eq + 1));
    if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
      return err("attrval value must be double-quoted");
    }
    std::string value(rest.substr(1, rest.size() - 2));
    std::vector<std::string> types;
    for (auto& t : Split(parts->target, '|')) {
      std::string trimmed(Trim(t));
      if (!trimmed.empty()) types.push_back(std::move(trimmed));
    }
    if (types.empty()) return err("attrval needs at least one target type");
    return Rule::AttributeValue(parts->id, name, value, std::move(types));
  }
  if (kw == "pred") {
    bool positive = true;
    std::string target = parts->target;
    if (StartsWith(target, "not ")) {
      positive = false;
      target = std::string(Trim(std::string_view(target).substr(4)));
    }
    auto predicate = PredicateParser(parts->body, dictionaries).Run();
    if (!predicate.ok()) return predicate.status();
    return Rule::FromPredicate(parts->id, std::move(predicate).value(),
                               target, positive);
  }
  return err("unknown rule kind '" + kw + "'");
}

}  // namespace

Result<std::vector<Rule>> ParseRules(
    std::string_view text, const DictionaryRegistry* dictionaries) {
  std::vector<Rule> rules;
  size_t line_no = 0;
  for (const auto& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    auto rule = ParseLine(line, line_no, dictionaries);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return rules;
}

Result<RuleSet> ParseRuleSet(
    std::string_view text, const DictionaryRegistry* dictionaries) {
  auto rules = ParseRules(text, dictionaries);
  if (!rules.ok()) return rules.status();
  RuleSet set;
  Status st = set.AddAll(std::move(rules).value());
  if (!st.ok()) return st;
  return set;
}

Result<PredicatePtr> ParsePredicate(
    std::string_view text, const DictionaryRegistry* dictionaries) {
  return PredicateParser(text, dictionaries).Run();
}

}  // namespace rulekit::rules
