#ifndef RULEKIT_RULES_DICTIONARY_REGISTRY_H_
#define RULEKIT_RULES_DICTIONARY_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/text/dictionary.h"

namespace rulekit::rules {

/// Named phrase dictionaries referenced from the rule DSL (§4's wished-for
/// rule: "if the title contains any word from a given dictionary then the
/// product is either a PC or a laptop"). Analysts curate dictionaries
/// (brand lists, subtype vocabularies) separately from the rules that use
/// them, so one dictionary update refreshes every dependent rule.
class DictionaryRegistry {
 public:
  DictionaryRegistry() = default;

  /// Registers (or replaces) a named dictionary.
  void Register(std::string name,
                std::shared_ptr<const text::Dictionary> dict);

  /// Builds and registers a dictionary from phrases.
  void RegisterPhrases(std::string name,
                       const std::vector<std::string>& phrases);

  /// The dictionary for `name`, or nullptr.
  std::shared_ptr<const text::Dictionary> Find(std::string_view name) const;

  size_t size() const { return dicts_.size(); }
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const text::Dictionary>>
      dicts_;
};

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_DICTIONARY_REGISTRY_H_
