#ifndef RULEKIT_RULES_TOKEN_PATTERN_H_
#define RULEKIT_RULES_TOKEN_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

namespace rulekit::rules {

/// Builds the token-anchored regex for a mined token sequence a1..an
/// (§5.2 rule form R4). Each token must match a whole title token, in
/// order, with arbitrary gaps:
///   (^|[^a-z0-9])a1[^a-z0-9](?:.*[^a-z0-9])?a2...an([^a-z0-9]|$)
/// so "ring.*size" cannot fire on "sparring ... size" — the regex
/// semantics coincide with token-subsequence semantics, which is what the
/// miner's consistency filter checks.
std::string BoundedTokenPattern(const std::vector<std::string>& tokens);

/// Inverse of BoundedTokenPattern: recovers the token sequence if
/// `pattern` has exactly that shape. Also accepts the plain display shape
/// "a1.*a2...*an" over literal token characters. Returns nullopt otherwise.
std::optional<std::vector<std::string>> ParseTokenPattern(
    const std::string& pattern);

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_TOKEN_PATTERN_H_
