#include "src/rules/dictionary_registry.h"

#include <algorithm>

namespace rulekit::rules {

void DictionaryRegistry::Register(
    std::string name, std::shared_ptr<const text::Dictionary> dict) {
  dicts_[std::move(name)] = std::move(dict);
}

void DictionaryRegistry::RegisterPhrases(
    std::string name, const std::vector<std::string>& phrases) {
  auto dict = std::make_shared<text::Dictionary>();
  dict->AddAll(phrases);
  Register(std::move(name), std::move(dict));
}

std::shared_ptr<const text::Dictionary> DictionaryRegistry::Find(
    std::string_view name) const {
  auto it = dicts_.find(std::string(name));
  return it == dicts_.end() ? nullptr : it->second;
}

std::vector<std::string> DictionaryRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(dicts_.size());
  for (const auto& [name, dict] : dicts_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace rulekit::rules
