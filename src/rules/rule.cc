#include "src/rules/rule.h"

#include "src/common/string_util.h"

namespace rulekit::rules {

std::string Rule::NormalizePattern(std::string_view pattern) {
  // Remove spaces that only serve readability: around '|' and just inside
  // parentheses. Literal spaces elsewhere are significant.
  std::string out;
  out.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (c == ' ') {
      // Look at the nearest non-space neighbors.
      size_t j = i;
      while (j < pattern.size() && pattern[j] == ' ') ++j;
      char next = j < pattern.size() ? pattern[j] : '\0';
      char prev = out.empty() ? '\0' : out.back();
      bool decorative = prev == '|' || prev == '(' || next == '|' ||
                        next == ')';
      if (decorative) {
        i = j - 1;  // skip the run of spaces
        continue;
      }
    }
    out += c;
  }
  return out;
}

namespace {

Result<regex::Regex> CompileRulePattern(std::string_view pattern) {
  return regex::Regex::CompileCaseFolded(Rule::NormalizePattern(pattern));
}

}  // namespace

Result<Rule> Rule::Whitelist(std::string id, std::string_view pattern,
                             std::string type) {
  auto re = CompileRulePattern(pattern);
  if (!re.ok()) return re.status();
  Rule r;
  r.id_ = std::move(id);
  r.kind_ = RuleKind::kWhitelist;
  r.types_ = {std::move(type)};
  r.pattern_text_ = NormalizePattern(pattern);
  r.regex_ = std::move(re).value();
  return r;
}

Result<Rule> Rule::Blacklist(std::string id, std::string_view pattern,
                             std::string type) {
  auto re = CompileRulePattern(pattern);
  if (!re.ok()) return re.status();
  Rule r;
  r.id_ = std::move(id);
  r.kind_ = RuleKind::kBlacklist;
  r.types_ = {std::move(type)};
  r.positive_ = false;
  r.pattern_text_ = NormalizePattern(pattern);
  r.regex_ = std::move(re).value();
  return r;
}

Rule Rule::AttributeExists(std::string id, std::string attribute,
                           std::string type) {
  Rule r;
  r.id_ = std::move(id);
  r.kind_ = RuleKind::kAttributeExists;
  r.types_ = {std::move(type)};
  r.attribute_ = std::move(attribute);
  return r;
}

Rule Rule::AttributeValue(std::string id, std::string attribute,
                          std::string value,
                          std::vector<std::string> types) {
  Rule r;
  r.id_ = std::move(id);
  r.kind_ = RuleKind::kAttributeValue;
  r.types_ = std::move(types);
  r.attribute_ = std::move(attribute);
  r.attribute_value_ = ToLowerAscii(value);
  return r;
}

Rule Rule::FromPredicate(std::string id, PredicatePtr predicate,
                         std::string type, bool positive) {
  Rule r;
  r.id_ = std::move(id);
  r.kind_ = RuleKind::kPredicate;
  r.types_ = {std::move(type)};
  r.positive_ = positive;
  r.predicate_ = std::move(predicate);
  return r;
}

bool Rule::Applies(const data::ProductItem& item) const {
  switch (kind_) {
    case RuleKind::kWhitelist:
    case RuleKind::kBlacklist:
      return regex_->PartialMatch(item.title);
    case RuleKind::kAttributeExists:
      return item.HasAttribute(attribute_);
    case RuleKind::kAttributeValue: {
      auto v = item.GetAttribute(attribute_);
      return v.has_value() && ToLowerAscii(*v) == attribute_value_;
    }
    case RuleKind::kPredicate:
      return predicate_->Eval(item);
  }
  return false;
}

std::string Rule::ToDsl() const {
  switch (kind_) {
    case RuleKind::kWhitelist:
      return StrFormat("whitelist %s: %s => %s", id_.c_str(),
                       pattern_text_.c_str(), types_.front().c_str());
    case RuleKind::kBlacklist:
      return StrFormat("blacklist %s: %s => %s", id_.c_str(),
                       pattern_text_.c_str(), types_.front().c_str());
    case RuleKind::kAttributeExists:
      return StrFormat("attr %s: has(%s) => %s", id_.c_str(),
                       attribute_.c_str(), types_.front().c_str());
    case RuleKind::kAttributeValue: {
      std::string types = Join(types_, " | ");
      return StrFormat("attrval %s: %s = \"%s\" => %s", id_.c_str(),
                       attribute_.c_str(), attribute_value_.c_str(),
                       types.c_str());
    }
    case RuleKind::kPredicate:
      return StrFormat("pred %s: %s => %s%s", id_.c_str(),
                       predicate_->ToString().c_str(),
                       positive_ ? "" : "not ", types_.front().c_str());
  }
  return "";
}

}  // namespace rulekit::rules
