#include "src/rules/predicate.h"

#include "src/common/string_util.h"

namespace rulekit::rules {

namespace {

class TitleMatchesPredicate : public Predicate {
 public:
  explicit TitleMatchesPredicate(regex::Regex re) : re_(std::move(re)) {}
  bool Eval(const data::ProductItem& item) const override {
    return re_.PartialMatch(item.title);
  }
  std::string ToString() const override {
    return "title ~ \"" + re_.pattern() + "\"";
  }

 private:
  regex::Regex re_;
};

class TitleContainsPredicate : public Predicate {
 public:
  explicit TitleContainsPredicate(std::string phrase)
      : phrase_(ToLowerAscii(phrase)) {
    dict_.Add(phrase_);
  }
  bool Eval(const data::ProductItem& item) const override {
    return dict_.ContainsAny(item.title);
  }
  std::string ToString() const override {
    return "title has \"" + phrase_ + "\"";
  }

 private:
  std::string phrase_;
  text::Dictionary dict_;
};

class AttributeExistsPredicate : public Predicate {
 public:
  explicit AttributeExistsPredicate(std::string name)
      : name_(std::move(name)) {}
  bool Eval(const data::ProductItem& item) const override {
    return item.HasAttribute(name_);
  }
  std::string ToString() const override { return "has(" + name_ + ")"; }

 private:
  std::string name_;
};

class AttributeEqualsPredicate : public Predicate {
 public:
  AttributeEqualsPredicate(std::string name, std::string value)
      : name_(std::move(name)), value_(ToLowerAscii(value)) {}
  bool Eval(const data::ProductItem& item) const override {
    auto v = item.GetAttribute(name_);
    return v.has_value() && ToLowerAscii(*v) == value_;
  }
  std::string ToString() const override {
    return "attr(" + name_ + ") = \"" + value_ + "\"";
  }

 private:
  std::string name_;
  std::string value_;
};

class AttributeMatchesPredicate : public Predicate {
 public:
  AttributeMatchesPredicate(std::string name, regex::Regex re)
      : name_(std::move(name)), re_(std::move(re)) {}
  bool Eval(const data::ProductItem& item) const override {
    auto v = item.GetAttribute(name_);
    return v.has_value() && re_.PartialMatch(*v);
  }
  std::string ToString() const override {
    return "attr(" + name_ + ") ~ \"" + re_.pattern() + "\"";
  }

 private:
  std::string name_;
  regex::Regex re_;
};

class PricePredicate : public Predicate {
 public:
  PricePredicate(double limit, bool below) : limit_(limit), below_(below) {}
  bool Eval(const data::ProductItem& item) const override {
    auto price = item.Price();
    if (!price.has_value()) return false;
    return below_ ? *price < limit_ : *price > limit_;
  }
  std::string ToString() const override {
    return StrFormat("price %c %.2f", below_ ? '<' : '>', limit_);
  }

 private:
  double limit_;
  bool below_;
};

class DictionaryPredicate : public Predicate {
 public:
  DictionaryPredicate(std::shared_ptr<const text::Dictionary> dict,
                      std::string name)
      : dict_(std::move(dict)), name_(std::move(name)) {}
  bool Eval(const data::ProductItem& item) const override {
    return dict_->ContainsAny(item.title);
  }
  std::string ToString() const override {
    return "title anyof dict(" + name_ + ")";
  }

 private:
  std::shared_ptr<const text::Dictionary> dict_;
  std::string name_;
};

class BinaryPredicate : public Predicate {
 public:
  BinaryPredicate(PredicatePtr a, PredicatePtr b, bool conjunction)
      : a_(std::move(a)), b_(std::move(b)), conjunction_(conjunction) {}
  bool Eval(const data::ProductItem& item) const override {
    return conjunction_ ? a_->Eval(item) && b_->Eval(item)
                        : a_->Eval(item) || b_->Eval(item);
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + (conjunction_ ? " and " : " or ") +
           b_->ToString() + ")";
  }

 private:
  PredicatePtr a_, b_;
  bool conjunction_;
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr a) : a_(std::move(a)) {}
  bool Eval(const data::ProductItem& item) const override {
    return !a_->Eval(item);
  }
  std::string ToString() const override {
    return "not " + a_->ToString();
  }

 private:
  PredicatePtr a_;
};

}  // namespace

PredicatePtr TitleMatches(regex::Regex re) {
  return std::make_shared<TitleMatchesPredicate>(std::move(re));
}

PredicatePtr TitleContains(std::string phrase) {
  return std::make_shared<TitleContainsPredicate>(std::move(phrase));
}

PredicatePtr AttributeExists(std::string name) {
  return std::make_shared<AttributeExistsPredicate>(std::move(name));
}

PredicatePtr AttributeEquals(std::string name, std::string value) {
  return std::make_shared<AttributeEqualsPredicate>(std::move(name),
                                                    std::move(value));
}

PredicatePtr AttributeMatches(std::string name, regex::Regex re) {
  return std::make_shared<AttributeMatchesPredicate>(std::move(name),
                                                     std::move(re));
}

PredicatePtr PriceBelow(double limit) {
  return std::make_shared<PricePredicate>(limit, /*below=*/true);
}

PredicatePtr PriceAbove(double limit) {
  return std::make_shared<PricePredicate>(limit, /*below=*/false);
}

PredicatePtr DictionaryContains(
    std::shared_ptr<const text::Dictionary> dict, std::string name) {
  return std::make_shared<DictionaryPredicate>(std::move(dict),
                                               std::move(name));
}

PredicatePtr And(PredicatePtr a, PredicatePtr b) {
  return std::make_shared<BinaryPredicate>(std::move(a), std::move(b),
                                           /*conjunction=*/true);
}

PredicatePtr Or(PredicatePtr a, PredicatePtr b) {
  return std::make_shared<BinaryPredicate>(std::move(a), std::move(b),
                                           /*conjunction=*/false);
}

PredicatePtr Not(PredicatePtr a) {
  return std::make_shared<NotPredicate>(std::move(a));
}

}  // namespace rulekit::rules
