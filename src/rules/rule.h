#ifndef RULEKIT_RULES_RULE_H_
#define RULEKIT_RULES_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/product.h"
#include "src/regex/regex.h"
#include "src/rules/predicate.h"

namespace rulekit::rules {

/// The rule families Chimera uses (§3.3): regex whitelist/blacklist rules
/// over titles, attribute-existence and attribute-value rules, plus the
/// richer predicate rules §4 asks for.
enum class RuleKind {
  kWhitelist,        // title matches regex           => type
  kBlacklist,        // title matches regex           => NOT type
  kAttributeExists,  // item has attribute            => type
  kAttributeValue,   // attribute equals value        => one of types
  kPredicate,        // arbitrary predicate           => type / NOT type
};

/// Lifecycle state used by rule maintenance.
enum class RuleState {
  kActive,
  kDisabled,  // temporarily off ("scale down"), can be re-enabled
  kRetired,   // permanently removed from execution
};

/// Where a rule came from.
enum class RuleOrigin { kAnalyst, kMined, kCurated, kImported };

/// Bookkeeping attached to every rule.
struct RuleMetadata {
  std::string author = "analyst";
  RuleOrigin origin = RuleOrigin::kAnalyst;
  uint64_t created_at = 0;  // logical timestamp
  double confidence = 1.0;  // [0,1]; mined rules carry their score
  RuleState state = RuleState::kActive;
  std::string note;
  /// Owning tenant (vendor feed). Empty = the default/shared tenant:
  /// such rules are visible to every tenant's serving view, while a
  /// non-default tenant's rules are visible only to that tenant.
  std::string tenant;
};

/// An immutable-condition classification rule with mutable metadata.
/// Copyable (regexes and predicates are shared).
class Rule {
 public:
  /// r => type. The pattern is compiled case-folded; normalization strips
  /// decorative spaces around '|' so paper-style patterns parse verbatim.
  static Result<Rule> Whitelist(std::string id, std::string_view pattern,
                                std::string type);

  /// r => NOT type.
  static Result<Rule> Blacklist(std::string id, std::string_view pattern,
                                std::string type);

  /// has(attribute) => type. (Paper: "if a product has an 'isbn' attribute,
  /// then it is a book".)
  static Rule AttributeExists(std::string id, std::string attribute,
                              std::string type);

  /// attr = value => one of `types`. (Paper: Brand "Apple" => phone,
  /// laptop, ...). Matching is case-insensitive on the value.
  static Rule AttributeValue(std::string id, std::string attribute,
                             std::string value,
                             std::vector<std::string> types);

  /// predicate => type (or NOT type when `positive` is false).
  static Rule FromPredicate(std::string id, PredicatePtr predicate,
                            std::string type, bool positive = true);

  // ---- structure ---------------------------------------------------------

  const std::string& id() const { return id_; }
  RuleKind kind() const { return kind_; }

  /// The single target type (all kinds except kAttributeValue).
  const std::string& target_type() const { return types_.front(); }

  /// Candidate types (kAttributeValue may carry several).
  const std::vector<std::string>& candidate_types() const { return types_; }

  /// True for rules that assert a type; false for ones that veto it.
  bool is_positive() const {
    return kind_ != RuleKind::kBlacklist && positive_;
  }

  /// The regex pattern text ("" for non-regex rules).
  const std::string& pattern_text() const { return pattern_text_; }

  /// The compiled regex for kWhitelist/kBlacklist rules.
  const std::optional<regex::Regex>& pattern_regex() const { return regex_; }

  /// The attribute name for attribute rules ("" otherwise).
  const std::string& attribute() const { return attribute_; }
  /// The attribute value for kAttributeValue ("" otherwise).
  const std::string& attribute_value() const { return attribute_value_; }

  /// The predicate for kPredicate rules.
  const PredicatePtr& predicate() const { return predicate_; }

  // ---- evaluation --------------------------------------------------------

  /// True if the rule's condition holds on the item (regardless of
  /// polarity or state).
  bool Applies(const data::ProductItem& item) const;

  // ---- metadata ----------------------------------------------------------

  const RuleMetadata& metadata() const { return metadata_; }
  RuleMetadata& metadata() { return metadata_; }
  bool is_active() const { return metadata_.state == RuleState::kActive; }

  /// One-line DSL form (see rules/rule_parser.h); kPredicate rules print a
  /// `pred` line.
  std::string ToDsl() const;

  /// Strips decorative whitespace around '|' and group parentheses so the
  /// paper's "(motor | engine) oils?" notation compiles as intended.
  static std::string NormalizePattern(std::string_view pattern);

 private:
  Rule() = default;

  std::string id_;
  RuleKind kind_ = RuleKind::kWhitelist;
  std::vector<std::string> types_;
  bool positive_ = true;
  std::string pattern_text_;
  std::optional<regex::Regex> regex_;
  std::string attribute_;
  std::string attribute_value_;
  PredicatePtr predicate_;
  RuleMetadata metadata_;
};

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_RULE_H_
