#include "src/rules/token_pattern.h"

#include <cctype>

#include "src/common/string_util.h"

namespace rulekit::rules {

namespace {

constexpr char kPrefix[] = "(^|[^a-z0-9])";
constexpr char kGap[] = "[^a-z0-9](?:.*[^a-z0-9])?";
constexpr char kSuffix[] = "([^a-z0-9]|$)";

bool IsPlainToken(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::string BoundedTokenPattern(const std::vector<std::string>& tokens) {
  std::string out = kPrefix;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += kGap;
    out += RegexEscape(tokens[i]);
  }
  out += kSuffix;
  return out;
}

std::optional<std::vector<std::string>> ParseTokenPattern(
    const std::string& pattern) {
  // Bounded shape first.
  if (StartsWith(pattern, kPrefix) && EndsWith(pattern, kSuffix)) {
    std::string body = pattern.substr(
        sizeof(kPrefix) - 1,
        pattern.size() - (sizeof(kPrefix) - 1) - (sizeof(kSuffix) - 1));
    std::vector<std::string> tokens;
    size_t start = 0;
    while (true) {
      size_t gap = body.find(kGap, start);
      std::string token = body.substr(
          start, gap == std::string::npos ? std::string::npos : gap - start);
      if (!IsPlainToken(token)) return std::nullopt;
      tokens.push_back(std::move(token));
      if (gap == std::string::npos) break;
      start = gap + (sizeof(kGap) - 1);
    }
    return tokens;
  }
  // Plain display shape "a.*b".
  std::vector<std::string> tokens;
  size_t start = 0;
  while (true) {
    size_t dot = pattern.find(".*", start);
    std::string token = pattern.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (!IsPlainToken(token)) return std::nullopt;
    tokens.push_back(std::move(token));
    if (dot == std::string::npos) break;
    start = dot + 2;
  }
  return tokens;
}

}  // namespace rulekit::rules
