#ifndef RULEKIT_RULES_RULE_PARSER_H_
#define RULEKIT_RULES_RULE_PARSER_H_

#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/rules/dictionary_registry.h"
#include "src/rules/rule.h"
#include "src/rules/rule_set.h"

namespace rulekit::rules {

/// Parses the rule DSL, one rule per line. The language is designed so that
/// non-programmer domain analysts can author rules (§4 "Rule Languages"):
///
///   # comment
///   whitelist rings1: rings? => rings
///   whitelist oil2: (motor | engine) oils? => motor oil
///   blacklist toe1: toe rings? => rings
///   attr isbn1: has(ISBN) => books
///   attrval apple1: Brand = "apple" => smart phones | laptop computers
///   pred cheap1: title has "apple" and price < 100 => not smart phones
///   pred bags1: title anyof dict(handbag words) => handbags
///
/// Predicate expressions support: `title ~ "regex"`, `title has "phrase"`,
/// `title anyof dict(Name)` (requires a DictionaryRegistry), `has(Attr)`,
/// `attr(Attr) = "value"`, `attr(Attr) ~ "regex"`, `price < N`,
/// `price > N`, with `and`, `or`, `not` and parentheses.
Result<std::vector<Rule>> ParseRules(
    std::string_view text, const DictionaryRegistry* dictionaries = nullptr);

/// ParseRules + RuleSet assembly.
Result<RuleSet> ParseRuleSet(
    std::string_view text, const DictionaryRegistry* dictionaries = nullptr);

/// Parses a single predicate expression (the part before "=>" of a `pred`
/// rule).
Result<PredicatePtr> ParsePredicate(
    std::string_view text, const DictionaryRegistry* dictionaries = nullptr);

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_RULE_PARSER_H_
