#ifndef RULEKIT_RULES_RULE_SET_H_
#define RULEKIT_RULES_RULE_SET_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/rules/rule.h"

namespace rulekit::rules {

/// An id-keyed collection of rules. Industrial systems accumulate rules in
/// the tens of thousands (§3.3: 20,459 rules); this container provides the
/// lookups the classifiers, evaluators, and maintenance tools need.
/// Rules are never erased — maintenance retires them — so indices handed
/// out by `rules()` stay stable.
///
/// RuleSet is copyable, and the serving stack relies on that: the
/// repository publishes immutable `shared_ptr<const RuleSet>` copies
/// (copy-on-write snapshots), and classifiers/indices/filters are built
/// against one snapshot so concurrent repository mutations can never
/// invalidate rule indices a reader is traversing.
class RuleSet {
 public:
  RuleSet() = default;

  /// Adds a rule; fails with AlreadyExists on a duplicate id.
  Status Add(Rule rule);

  /// Adds every rule, stopping at the first failure.
  Status AddAll(std::vector<Rule> rules);

  const Rule* Find(std::string_view id) const;
  Rule* FindMutable(std::string_view id);

  /// State transitions (§2.2 "scale down" = disable; maintenance = retire).
  Status Disable(std::string_view id);
  Status Enable(std::string_view id);
  Status Retire(std::string_view id);

  /// All rules, including disabled and retired ones.
  const std::vector<Rule>& rules() const { return rules_; }
  /// Mutable access for bulk metadata edits (checkpoint restore). Ids and
  /// conditions must not be changed through this.
  std::vector<Rule>& mutable_rules() { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Active rules of one kind.
  std::vector<const Rule*> ActiveOfKind(RuleKind kind) const;

  /// Active rules (any kind) targeting `type`.
  std::vector<const Rule*> ActiveForType(std::string_view type) const;

  size_t CountActive() const;
  size_t CountActiveOfKind(RuleKind kind) const;

  /// Serializes every active rule as DSL, one per line.
  std::string ToDsl() const;

 private:
  std::vector<Rule> rules_;
  std::unordered_map<std::string, size_t> index_;
};

/// Summary statistics of a rule set — what the §3.3 deployment report
/// enumerates (rule counts by kind, types covered, mix of origins).
struct RuleSetStats {
  size_t total = 0;
  size_t active = 0;
  size_t disabled = 0;
  size_t retired = 0;
  size_t whitelist = 0;       // active only, likewise below
  size_t blacklist = 0;
  size_t attribute_rules = 0;  // kAttributeExists + kAttributeValue
  size_t predicate_rules = 0;
  size_t analyst_rules = 0;
  size_t mined_rules = 0;
  size_t types_covered = 0;   // distinct target types of active rules
  double mean_confidence = 0.0;  // over active rules
};

RuleSetStats ComputeStats(const RuleSet& set);

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_RULE_SET_H_
