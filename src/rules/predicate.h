#ifndef RULEKIT_RULES_PREDICATE_H_
#define RULEKIT_RULES_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/product.h"
#include "src/regex/regex.h"
#include "src/text/dictionary.h"

namespace rulekit::rules {

/// A boolean condition over a product item — the building block of the
/// richer rule language §4 calls for ("if the title contains 'Apple' but
/// the price is less than $100 then the product is not a phone").
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates the condition on an item.
  virtual bool Eval(const data::ProductItem& item) const = 0;

  /// Round-trippable DSL form (see rules/rule_parser.h).
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// title ~ "pattern" — the (case-folded) regex matches the title anywhere.
PredicatePtr TitleMatches(regex::Regex re);

/// title has "phrase" — the lowercased title contains the phrase at word
/// boundaries.
PredicatePtr TitleContains(std::string phrase);

/// has(Name) — the attribute is present.
PredicatePtr AttributeExists(std::string name);

/// attr(Name) = "value" — case-insensitive attribute equality.
PredicatePtr AttributeEquals(std::string name, std::string value);

/// attr(Name) ~ "pattern" — the regex matches the attribute value.
PredicatePtr AttributeMatches(std::string name, regex::Regex re);

/// price < x / price > x. Items without a parsable price fail both.
PredicatePtr PriceBelow(double limit);
PredicatePtr PriceAbove(double limit);

/// title anyof dict — the title contains any phrase of the dictionary
/// (§4: "if the title contains any word from a given dictionary ...").
/// `name` is used for printing.
PredicatePtr DictionaryContains(std::shared_ptr<const text::Dictionary> dict,
                                std::string name);

/// Boolean combinators.
PredicatePtr And(PredicatePtr a, PredicatePtr b);
PredicatePtr Or(PredicatePtr a, PredicatePtr b);
PredicatePtr Not(PredicatePtr a);

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_PREDICATE_H_
