#ifndef RULEKIT_RULES_REPOSITORY_H_
#define RULEKIT_RULES_REPOSITORY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/rules/rule_set.h"

namespace rulekit::rules {

/// What happened to a rule (audit log entries).
enum class AuditAction {
  kAdd,
  kDisable,
  kEnable,
  kRetire,
  kSetConfidence,
  kCheckpoint,
  kRestore,
};

/// One audit-log record. Over years, many analysts and developers modify,
/// add, and remove rules (§4 "Rule System Properties"); the log is what
/// makes that churn reconstructible.
struct AuditEntry {
  uint64_t timestamp = 0;  // logical clock
  AuditAction action = AuditAction::kAdd;
  std::string rule_id;     // empty for checkpoint/restore
  std::string author;
  std::string detail;
};

/// The system of record for rules: every mutation goes through the
/// repository, bumps a logical clock, and lands in the audit log.
/// Checkpoints capture all rule states so the system can be "scaled down"
/// (disable the bad parts) and later restored to the previous state
/// quickly (§2.2 requirement 3).
///
/// Concurrency model: mutations are serialized by an internal mutex and
/// invalidate the published snapshot. Readers that may race with writers
/// must go through snapshot(), which hands out an immutable copy-on-write
/// `shared_ptr<const RuleSet>`; successive calls return the same shared
/// copy until the next mutation. The live accessors (rules(),
/// mutable_rules(), audit_log()) alias writer-side state and are only safe
/// when no concurrent mutation can occur (tests, single-threaded tools).
class RuleRepository {
 public:
  RuleRepository() = default;

  // Movable (for Result<RuleRepository>); not copyable.
  RuleRepository(RuleRepository&& other) noexcept;
  RuleRepository& operator=(RuleRepository&& other) noexcept;

  // ---- mutations ---------------------------------------------------------

  Status Add(Rule rule, std::string_view author);
  Status Disable(std::string_view id, std::string_view author,
                 std::string_view reason);
  Status Enable(std::string_view id, std::string_view author);
  Status Retire(std::string_view id, std::string_view author,
                std::string_view reason);
  Status SetConfidence(std::string_view id, double confidence,
                       std::string_view author);

  /// Disables every active rule targeting `type`; returns the ids disabled.
  /// This is the scale-down lever: "Chimera's predictions regarding clothes
  /// need to be temporarily disabled".
  std::vector<std::string> DisableRulesForType(std::string_view type,
                                               std::string_view author,
                                               std::string_view reason);

  // ---- snapshots ---------------------------------------------------------

  /// An immutable snapshot of the current rule set. Cheap when nothing has
  /// changed since the last call (returns the cached copy); after a
  /// mutation the next call pays one RuleSet copy. The returned set never
  /// changes, so classifiers and indices built against it stay coherent
  /// while writers keep mutating the repository.
  std::shared_ptr<const RuleSet> snapshot() const;

  /// Records the current state (+confidence) of every rule; returns a
  /// version handle.
  uint64_t Checkpoint(std::string_view author);

  /// Restores every rule present in the checkpoint to its recorded state;
  /// rules added after the checkpoint are disabled.
  Status RestoreCheckpoint(uint64_t version, std::string_view author);

  // ---- access (writer-side; see class comment) ---------------------------

  const RuleSet& rules() const { return rules_; }
  RuleSet& mutable_rules() { return rules_; }
  const std::vector<AuditEntry>& audit_log() const { return audit_; }
  uint64_t clock() const;

  /// Audit entries touching one rule, oldest first.
  std::vector<AuditEntry> HistoryOf(std::string_view rule_id) const;

  // ---- persistence -------------------------------------------------------

  /// Saves all rules (with metadata) to a text file.
  Status SaveToFile(const std::string& path) const;

  /// Loads a file written by SaveToFile into a fresh repository. The audit
  /// log is not persisted; loading yields kAdd entries.
  static Result<RuleRepository> LoadFromFile(const std::string& path);

 private:
  struct Snapshot {
    std::map<std::string, std::pair<RuleState, double>> states;
  };

  // Unlocked helpers; callers hold mu_.
  void Log(AuditAction action, std::string_view rule_id,
           std::string_view author, std::string_view detail);
  Status DisableLocked(std::string_view id, std::string_view author,
                       std::string_view reason);

  mutable std::mutex mu_;
  RuleSet rules_;
  std::vector<AuditEntry> audit_;
  std::map<uint64_t, Snapshot> snapshots_;
  uint64_t clock_ = 0;
  /// Cached immutable copy of rules_; null when stale.
  mutable std::shared_ptr<const RuleSet> published_;
};

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_REPOSITORY_H_
