#ifndef RULEKIT_RULES_REPOSITORY_H_
#define RULEKIT_RULES_REPOSITORY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/rules/ids.h"
#include "src/rules/rule_set.h"

namespace rulekit::rules {

/// What happened to a rule (audit log entries).
enum class AuditAction {
  kAdd,
  kDisable,
  kEnable,
  kRetire,
  kSetConfidence,
  kCheckpoint,
  kRestore,
};

/// One audit-log record. Over years, many analysts and developers modify,
/// add, and remove rules (§4 "Rule System Properties"); the log is what
/// makes that churn reconstructible.
struct AuditEntry {
  uint64_t timestamp = 0;  // logical clock
  AuditAction action = AuditAction::kAdd;
  RuleId rule_id;          // empty for checkpoint/restore
  std::string author;
  std::string detail;
};

/// One applied mutation batch, as observed by the durability journal
/// (the storage WAL): the ops that actually landed — a commit that
/// failed part-way journals its applied prefix — plus the audit entries
/// they produced, aligned 1:1 in op order. Replaying journaled records
/// in order onto a fresh repository rebuilds the rules, the audit log,
/// the logical clock, and every shard version exactly (see Replay()).
struct CommitRecord {
  enum class OpKind : uint8_t {
    kAdd = 0,
    kDisable = 1,
    kEnable = 2,
    kRetire = 3,
    kSetConfidence = 4,
    kCheckpoint = 5,
    kRestoreCheckpoint = 6,
  };
  struct Op {
    OpKind kind = OpKind::kAdd;
    /// kAdd: the rule exactly as stored (metadata finalized: author and
    /// created_at already assigned).
    std::optional<Rule> rule;
    RuleId id;                        // the state edits
    double confidence = 0.0;          // kSetConfidence
    uint64_t checkpoint_version = 0;  // kRestoreCheckpoint
  };
  std::vector<Op> ops;
  std::vector<AuditEntry> entries;  // 1:1 with ops
  /// Tenant the mutation batch was issued for (empty = default). Adds
  /// also carry the tenant inside the rule's metadata; edits derive the
  /// owning tenant from the routing map on both the write and the replay
  /// path, so this field is attribution — which feed asked — while the
  /// per-tenant shard version bumps follow rule ownership.
  std::string tenant;
};

/// Durability hook, fired once per successful mutation batch *after* its
/// ops are applied but *before* the touched shards republish — so a
/// crash can lose an unjournaled commit, but can never publish state
/// that would not survive recovery. Invoked while the affected shard
/// locks are held: keep it lean (an append + optional fsync). A non-OK
/// return is surfaced to the mutating caller; the in-memory commit is
/// not rolled back.
using CommitJournal = std::function<Status(const CommitRecord&)>;

/// One in-memory checkpoint (version handle + per-rule state), exported
/// for persistence so RestoreCheckpoint() still works after recovery.
struct CheckpointRecord {
  uint64_t version = 0;
  struct Entry {
    RuleId id;
    RuleState state = RuleState::kActive;
    double confidence = 1.0;
  };
  std::vector<Entry> entries;
};

/// The complete persistent state of a repository — what a compacted
/// snapshot stores and crash recovery restores.
struct PersistedState {
  /// Shard-ascending, insertion order within a shard (deterministic for
  /// a given mutation history, so export → import → export is stable).
  std::vector<Rule> rules;
  std::vector<AuditEntry> audit;
  uint64_t clock = 0;
  /// Per-shard version counters at export time (restored exactly when
  /// the importing repository has the same shard count).
  std::vector<uint64_t> shard_versions;
  /// Per-shard per-tenant version counters, parallel to shard_versions
  /// (key "" is the default tenant). Restored exactly under the same
  /// shard-count-match rule; on a mismatch each tenant's total lands in
  /// shard 0's map so tenant staleness probes stay monotonic.
  std::vector<std::map<std::string, uint64_t>> tenant_versions;
  std::vector<CheckpointRecord> checkpoints;
};

/// An immutable view of one shard, pinned at one shard version. The
/// RuleSet never changes after publication, so indices and classifiers
/// built against it stay coherent while writers keep mutating the shard.
struct ShardSnapshot {
  ShardKey key;
  uint64_t version = 0;
  /// Per-tenant version counters pinned with the rules (key "" is the
  /// default tenant; bumps once per mutation batch touching that
  /// tenant's rules in this shard). Tenant-scoped cache tags hash these
  /// instead of `version` so one tenant's edits never invalidate
  /// another's cached results.
  std::map<std::string, uint64_t> tenant_versions;
  std::shared_ptr<const RuleSet> rules;
};

/// Every shard pinned at once (each shard internally consistent; the
/// composite version is the sum of the pinned shard versions and is
/// strictly monotonic across mutations).
struct RepositorySnapshot {
  std::vector<ShardSnapshot> shards;  // ascending by shard index
  uint64_t composite_version = 0;
};

/// The system of record for rules: every mutation goes through the
/// repository, bumps a logical clock, and lands in the audit log.
/// Checkpoints capture all rule states so the system can be "scaled down"
/// (disable the bad parts) and later restored to the previous state
/// quickly (§2.2 requirement 3).
///
/// Sharding: rules are partitioned by hash of their target type into
/// `shard_count` shards. Each shard has its own mutex, its own version
/// counter, and publishes its own copy-on-write
/// `shared_ptr<const RuleSet>` snapshot — so a writer editing one shard
/// republishes only that shard, and writers on disjoint shards never
/// contend. With the default `shard_count = 1` the repository behaves
/// exactly like the historical monolithic one.
///
/// Concurrency model: single mutations and transactions lock only the
/// shards they touch (ascending index order; multi-shard operations like
/// Checkpoint/RestoreCheckpoint lock all shards the same way). Readers
/// that may race with writers go through ShardSnapshotOf()/SnapshotAll()
/// (or the legacy merged snapshot()); the live accessors (rules(),
/// audit_log()) alias writer-side state and are only safe when no
/// concurrent mutation can occur (tests, single-threaded tools).
class RuleRepository {
 public:
  explicit RuleRepository(size_t shard_count = 1);

  // Movable (for Result<RuleRepository>); not copyable. Must not be moved
  // while mutations, snapshots, or open transactions are in flight.
  RuleRepository(RuleRepository&& other) noexcept;
  RuleRepository& operator=(RuleRepository&& other) noexcept;

  size_t shard_count() const { return shards_.size(); }

  /// The shard that owns the default tenant's rules targeting
  /// `target_type`.
  ShardKey KeyForType(std::string_view target_type) const {
    return ShardKey::ForType(target_type, shards_.size());
  }

  /// The shard that owns `tenant`'s rules targeting `target_type`
  /// (identical to KeyForType for the default tenant).
  ShardKey KeyForTenantType(const TenantId& tenant,
                            std::string_view target_type) const {
    return ShardKey::ForTenantType(tenant, target_type, shards_.size());
  }

  /// The shard a known rule lives in (NotFound for unknown ids).
  Result<ShardKey> ShardOfRule(const RuleId& id) const;

  // ---- transactions ------------------------------------------------------

  /// A batch of staged edits that commits atomically with respect to
  /// publication: Commit() locks every affected shard, applies the edits,
  /// and bumps each touched shard's version exactly once — so snapshot
  /// readers never observe a half-applied transaction and a multi-edit
  /// maintenance session pays one republish instead of one per edit.
  ///
  /// Staging never locks anything; all validation happens at Commit().
  /// Unknown rule ids fail the whole commit before any edit is applied.
  /// Later failures (duplicate add, illegal state transition) stop the
  /// apply at that edit: the already-applied prefix stays, the status
  /// reports the failure, and publication is still atomic. A transaction
  /// dropped without Commit() discards all staged edits.
  class Transaction {
   public:
    Transaction(Transaction&&) = default;
    Transaction& operator=(Transaction&&) = default;
    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    /// Stage edits. Ids may refer to rules added earlier in the same
    /// transaction.
    Status Add(Rule rule);
    Status Disable(const RuleId& id, std::string_view reason);
    Status Enable(const RuleId& id);
    Status Retire(const RuleId& id, std::string_view reason);
    Status SetConfidence(const RuleId& id, double confidence);

    /// Applies every staged edit and publishes each touched shard once.
    Status Commit();

    /// Shards modified by Commit() (empty before commit / when nothing
    /// changed). The serving layer republishes exactly these.
    const std::vector<ShardKey>& touched() const { return touched_; }

    size_t staged() const { return ops_.size(); }

   private:
    friend class RuleRepository;
    enum class OpKind { kAdd, kDisable, kEnable, kRetire, kSetConfidence };
    struct Op {
      OpKind kind;
      std::optional<Rule> rule;  // kAdd
      RuleId id;                 // everything else
      std::string detail;
      double confidence = 0.0;
    };
    Transaction(RuleRepository* repo, std::string author, TenantId tenant)
        : repo_(repo), author_(std::move(author)),
          tenant_(std::move(tenant)) {}

    RuleRepository* repo_;
    std::string author_;
    TenantId tenant_;
    std::vector<Op> ops_;
    std::vector<ShardKey> touched_;
  };

  /// Starts a transaction attributed to `author`, scoped to `tenant`.
  /// Added rules are stamped with (and routed by) the tenant. A
  /// non-default tenant's transaction may edit only its own rules —
  /// Commit() fails with FailedPrecondition, before applying anything,
  /// if an op targets a rule owned by another tenant (including the
  /// shared default pool). The default tenant is the administrative
  /// scope and may edit everything.
  Transaction Begin(std::string_view author,
                    const TenantId& tenant = TenantId());

  /// Stages edits through `fn` and commits: the one-liner form of the
  /// transactional API. If `fn` returns an error the transaction is
  /// dropped without applying anything.
  Status Mutate(std::string_view author,
                const std::function<Status(Transaction&)>& fn);
  Status Mutate(std::string_view author, const TenantId& tenant,
                const std::function<Status(Transaction&)>& fn);

  // ---- single mutations (one-op transactions) ----------------------------

  Status Add(Rule rule, std::string_view author);
  Status Disable(const RuleId& id, std::string_view author,
                 std::string_view reason);
  Status Enable(const RuleId& id, std::string_view author);
  Status Retire(const RuleId& id, std::string_view author,
                std::string_view reason);
  Status SetConfidence(const RuleId& id, double confidence,
                       std::string_view author);

  // Untyped-id shims (DSL strings, shells, legacy callers).
  Status Disable(std::string_view id, std::string_view author,
                 std::string_view reason) {
    return Disable(RuleId(id), author, reason);
  }
  Status Enable(std::string_view id, std::string_view author) {
    return Enable(RuleId(id), author);
  }
  Status Retire(std::string_view id, std::string_view author,
                std::string_view reason) {
    return Retire(RuleId(id), author, reason);
  }
  Status SetConfidence(std::string_view id, double confidence,
                       std::string_view author) {
    return SetConfidence(RuleId(id), confidence, author);
  }

  /// Disables every active rule targeting `type` (scanning all shards —
  /// attribute-value rules can carry a type anywhere in their candidate
  /// list); returns the ids disabled. This is the scale-down lever:
  /// "Chimera's predictions regarding clothes need to be temporarily
  /// disabled". If the journal rejects an append the error is returned
  /// instead of the ids — the disables still applied and published
  /// (scale-down is an emergency action), but the caller learns that
  /// recovery cannot reproduce them.
  Result<std::vector<RuleId>> DisableRulesForType(
      std::string_view type, std::string_view author,
      std::string_view reason, const TenantId& tenant = TenantId());

  // ---- snapshots ---------------------------------------------------------

  /// One shard's immutable snapshot. Cheap when the shard is unchanged
  /// since the last call (returns the cached copy); after a mutation the
  /// next call pays one shard-sized RuleSet copy — never a whole-repo
  /// copy.
  ShardSnapshot ShardSnapshotOf(ShardKey key) const;

  /// Pins every shard (brief per-shard locks, ascending order).
  RepositorySnapshot SnapshotAll() const;

  /// Current version of one shard (bumps on every mutation of it).
  uint64_t shard_version(ShardKey key) const;

  /// `tenant`'s version counter in one shard: bumps once per mutation
  /// batch that touched that tenant's rules there (0 if never touched).
  /// In a single-default-tenant repository the default tenant's counter
  /// tracks shard_version() exactly.
  uint64_t tenant_shard_version(ShardKey key, const TenantId& tenant) const;

  /// Every tenant owning at least one rule, default tenant first, the
  /// rest sorted. The default tenant is always listed (it owns the
  /// shared pool even when empty).
  std::vector<TenantId> Tenants() const;

  /// Sum of all shard versions; strictly increases on any mutation.
  uint64_t composite_version() const;

  /// Legacy merged snapshot: an immutable copy of ALL shards' rules in
  /// one RuleSet. Cached until any shard changes; prefer the per-shard
  /// snapshots in serving paths — this one pays a full-repository copy.
  std::shared_ptr<const RuleSet> snapshot() const;

  /// Records the current state (+confidence) of every rule across all
  /// shards; returns a version handle. When a journal is installed the
  /// checkpoint is appended before it is registered: if the append fails
  /// the error is returned and the checkpoint does not exist — otherwise
  /// a later journaled restore could reference a checkpoint recovery has
  /// never heard of, turning one dropped record into a replay failure.
  Result<uint64_t> Checkpoint(std::string_view author);

  /// Restores every rule present in the checkpoint to its recorded state;
  /// rules added after the checkpoint are disabled. Touches (and bumps)
  /// every shard.
  Status RestoreCheckpoint(uint64_t version, std::string_view author);

  // ---- access (writer-side; see class comment) ---------------------------

  /// Merged view of all shards' rules. For a single-shard repository this
  /// is the live rule set (historical behaviour); for a sharded one it is
  /// a cached merge rebuilt on access after mutations — so re-fetch it
  /// after edits rather than holding the reference across them.
  const RuleSet& rules() const;

  const std::vector<AuditEntry>& audit_log() const { return audit_; }
  uint64_t clock() const;

  /// Audit entries touching one rule, oldest first.
  std::vector<AuditEntry> HistoryOf(const RuleId& rule_id) const;
  std::vector<AuditEntry> HistoryOf(std::string_view rule_id) const {
    return HistoryOf(RuleId(rule_id));
  }

  // ---- durability (see src/storage/) -------------------------------------

  /// Installs (or clears, with nullptr) the commit journal. Must be set
  /// before concurrent mutations begin (the storage layer installs it at
  /// store-open time, before the repository is shared).
  void SetJournal(CommitJournal journal) { journal_ = std::move(journal); }

  /// Re-applies one journaled commit during recovery: ops land with
  /// their recorded audit entries and timestamps, no new entries are
  /// logged, and the installed journal (if any) does not fire. Touched
  /// shards bump exactly as the original commit bumped them, so the
  /// composite version converges to the writer's. Fails (with the
  /// offending op) on a record inconsistent with the current state —
  /// the storage layer turns that into a corrupt-log error.
  Status Replay(const CommitRecord& record);

  /// Snapshot of everything persistence needs (locks all shards
  /// briefly, then the log).
  PersistedState ExportState() const;

  /// Restores an exported state into this repository, which must be
  /// freshly constructed (no rules, no audit entries). Shard versions
  /// restore exactly when the shard count matches the exported vector;
  /// otherwise the composite total lands on shard 0 so
  /// composite_version() is still preserved. Single-threaded recovery
  /// context: takes no locks.
  Status ImportState(PersistedState state);

  // ---- persistence (human-editable text format) --------------------------

  /// Saves all rules (with metadata) and the audit log to a text file.
  Status SaveToFile(const std::string& path) const;

  /// Loads a file written by SaveToFile into a fresh repository with
  /// `shard_count` shards. Files that carry an audit section (format v2)
  /// restore the real history and logical clock; older files degrade to
  /// synthetic kAdd entries. Duplicate rule ids are rejected with the
  /// offending line number.
  static Result<RuleRepository> LoadFromFile(const std::string& path,
                                             size_t shard_count = 1);

 private:
  struct Shard {
    mutable std::mutex mu;
    RuleSet rules;
    /// Bumps once per mutation batch touching this shard. Written under
    /// mu; readable without it (composite_version(), staleness probes).
    std::atomic<uint64_t> version{0};
    /// Per-tenant version counters (key "" = default tenant); a batch
    /// bumps exactly the counters of the tenants whose rules it touched
    /// here. Guarded by mu; pinned into ShardSnapshot under the same
    /// critical section as `rules`, so tenant-scoped cache tags are
    /// coherent with the rule set they describe.
    std::map<std::string, uint64_t> tenant_versions;
    /// Cached immutable copy of `rules`; null when stale. Guarded by mu.
    mutable std::shared_ptr<const RuleSet> published;
  };

  struct CheckpointState {
    std::map<RuleId, std::pair<RuleState, double>> states;
  };

  // Lock order: shard mutexes (ascending index) -> routing_mu_ -> log_mu_
  // -> merged_mu_. Never the reverse.

  /// Appends an audit entry and returns its timestamp.
  uint64_t Log(AuditAction action, const RuleId& rule_id,
               std::string_view author, std::string_view detail);

  Status CommitTransaction(Transaction& txn);

  /// Rebuilds merged_cache_ from pinned shard snapshots if stale; caller
  /// holds merged_mu_ (and no shard mutexes — the pin already happened).
  void RefreshMergedLocked(const RepositorySnapshot& pinned) const;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// rule id -> owning shard index and owning tenant ("" = default).
  struct RouteEntry {
    uint32_t shard = 0;
    std::string tenant;
  };
  mutable std::mutex routing_mu_;
  std::unordered_map<std::string, RouteEntry> routing_;

  mutable std::mutex log_mu_;
  std::vector<AuditEntry> audit_;
  uint64_t clock_ = 0;

  /// Durability hook (see CommitJournal). Installed once before
  /// concurrent use; called under the affected shard locks.
  CommitJournal journal_;

  /// Guarded by holding ALL shard mutexes (only Checkpoint/Restore touch
  /// it, and both lock every shard).
  std::map<uint64_t, CheckpointState> checkpoints_;

  mutable std::mutex merged_mu_;
  mutable RuleSet merged_cache_;
  mutable uint64_t merged_cache_version_ = ~0ull;
  mutable std::shared_ptr<const RuleSet> merged_snapshot_;
  mutable uint64_t merged_snapshot_version_ = ~0ull;
};

/// Convenience alias for the transactional mutation API.
using RuleTransaction = RuleRepository::Transaction;

}  // namespace rulekit::rules

#endif  // RULEKIT_RULES_REPOSITORY_H_
