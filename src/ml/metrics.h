#ifndef RULEKIT_ML_METRICS_H_
#define RULEKIT_ML_METRICS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rulekit::ml {

/// One evaluation observation: ground truth plus the system's prediction
/// (nullopt = the system declined to classify the item).
struct Observation {
  std::string gold;
  std::optional<std::string> predicted;
};

/// Aggregate quality numbers in the paper's operational sense (§2.2):
///   precision = correct / predicted   (quality of what was shipped)
///   recall    = correct / total      (coverage of the incoming batch)
/// This recall definition charges declined items against recall, matching
/// "items that the system declines to classify … lower recall".
struct EvalSummary {
  size_t total = 0;
  size_t predicted = 0;
  size_t correct = 0;

  double precision() const {
    return predicted == 0 ? 1.0
                          : static_cast<double>(correct) /
                                static_cast<double>(predicted);
  }
  double recall() const {
    return total == 0 ? 1.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double coverage() const {
    return total == 0 ? 1.0
                      : static_cast<double>(predicted) /
                            static_cast<double>(total);
  }
};

/// Per-class precision/recall breakdown.
struct ClassMetrics {
  size_t gold_count = 0;       // items whose gold label is this class
  size_t predicted_count = 0;  // items predicted as this class
  size_t correct = 0;

  double precision() const {
    return predicted_count == 0 ? 1.0
                                : static_cast<double>(correct) /
                                      static_cast<double>(predicted_count);
  }
  double recall() const {
    return gold_count == 0 ? 1.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(gold_count);
  }
};

/// Computes the aggregate summary over observations.
EvalSummary Summarize(const std::vector<Observation>& observations);

/// Computes the per-class breakdown.
std::map<std::string, ClassMetrics> PerClass(
    const std::vector<Observation>& observations);

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_METRICS_H_
