#include "src/ml/split.h"

#include <algorithm>
#include <unordered_map>

namespace rulekit::ml {

std::pair<std::vector<data::LabeledItem>, std::vector<data::LabeledItem>>
RandomSplit(std::vector<data::LabeledItem> items, double test_fraction,
            Rng& rng) {
  rng.Shuffle(items);
  size_t test_size = static_cast<size_t>(
      test_fraction * static_cast<double>(items.size()));
  std::vector<data::LabeledItem> test(
      std::make_move_iterator(items.begin()),
      std::make_move_iterator(items.begin() + test_size));
  std::vector<data::LabeledItem> train(
      std::make_move_iterator(items.begin() + test_size),
      std::make_move_iterator(items.end()));
  return {std::move(train), std::move(test)};
}

std::pair<std::vector<data::LabeledItem>, std::vector<data::LabeledItem>>
StratifiedSplit(const std::vector<data::LabeledItem>& items,
                double test_fraction, Rng& rng) {
  std::unordered_map<std::string, std::vector<size_t>> by_label;
  for (size_t i = 0; i < items.size(); ++i) {
    by_label[items[i].label].push_back(i);
  }
  std::vector<data::LabeledItem> train, test;
  for (auto& [label, indices] : by_label) {
    rng.Shuffle(indices);
    size_t test_size = static_cast<size_t>(
        test_fraction * static_cast<double>(indices.size()));
    // Keep at least one item in train when the class has any.
    if (test_size == indices.size() && test_size > 0) --test_size;
    for (size_t i = 0; i < indices.size(); ++i) {
      (i < test_size ? test : train).push_back(items[indices[i]]);
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace rulekit::ml
