#ifndef RULEKIT_ML_KNN_H_
#define RULEKIT_ML_KNN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/features.h"
#include "src/text/tfidf.h"

namespace rulekit::ml {

/// k-nearest-neighbors over TF-IDF cosine similarity, accelerated by an
/// inverted index from token to training documents (only documents sharing
/// at least one token with the query are scored). Another stock member of
/// Chimera's learning ensemble.
class KnnClassifier : public Classifier {
 public:
  KnnClassifier(std::shared_ptr<FeatureExtractor> extractor, size_t k = 7);

  void Train(const std::vector<data::LabeledItem>& data);

  std::vector<ScoredLabel> Predict(
      const data::ProductItem& item) const override;
  std::string name() const override { return "knn"; }

  size_t num_examples() const { return docs_.size(); }

 private:
  struct Doc {
    text::SparseVector vector;  // L2-normalized TF-IDF
    uint32_t label;
  };

  std::shared_ptr<FeatureExtractor> extractor_;
  size_t k_;
  LabelSpace labels_;
  text::TfIdfModel tfidf_;
  std::vector<Doc> docs_;
  std::unordered_map<text::TokenId, std::vector<uint32_t>> postings_;
};

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_KNN_H_
