#include "src/ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace rulekit::ml {

NaiveBayesClassifier::NaiveBayesClassifier(
    std::shared_ptr<FeatureExtractor> extractor, double alpha)
    : extractor_(std::move(extractor)), alpha_(alpha) {}

void NaiveBayesClassifier::Train(const std::vector<data::LabeledItem>& data) {
  std::vector<std::unordered_map<text::TokenId, size_t>> counts;
  std::vector<size_t> class_totals;
  std::vector<size_t> class_docs;

  for (const auto& li : data) {
    uint32_t c = labels_.Intern(li.label);
    if (c >= counts.size()) {
      counts.resize(c + 1);
      class_totals.resize(c + 1, 0);
      class_docs.resize(c + 1, 0);
    }
    ++class_docs[c];
    for (text::TokenId t : extractor_->InternFeatureIds(li.item)) {
      ++counts[c][t];
      ++class_totals[c];
    }
  }

  const double vocab_size =
      static_cast<double>(extractor_->vocabulary().size()) + 1.0;
  const double total_docs = static_cast<double>(data.size());
  log_prior_.resize(counts.size());
  log_likelihood_.resize(counts.size());
  default_log_likelihood_.resize(counts.size());
  for (size_t c = 0; c < counts.size(); ++c) {
    log_prior_[c] =
        std::log(static_cast<double>(class_docs[c]) / total_docs);
    const double denom =
        static_cast<double>(class_totals[c]) + alpha_ * vocab_size;
    default_log_likelihood_[c] = std::log(alpha_ / denom);
    for (const auto& [t, n] : counts[c]) {
      log_likelihood_[c][t] =
          std::log((static_cast<double>(n) + alpha_) / denom);
    }
  }
}

std::vector<ScoredLabel> NaiveBayesClassifier::Predict(
    const data::ProductItem& item) const {
  if (log_prior_.empty()) return {};
  auto ids = extractor_->LookupFeatureIds(item);
  if (ids.empty()) return {};

  std::vector<double> scores(log_prior_.size());
  for (size_t c = 0; c < scores.size(); ++c) {
    double s = log_prior_[c];
    const auto& ll = log_likelihood_[c];
    for (text::TokenId t : ids) {
      auto it = ll.find(t);
      s += it == ll.end() ? default_log_likelihood_[c] : it->second;
    }
    scores[c] = s;
  }

  // Softmax-normalize the joint log scores into [0, 1] confidences.
  double max_score = *std::max_element(scores.begin(), scores.end());
  double z = 0.0;
  for (double s : scores) z += std::exp(s - max_score);

  std::vector<ScoredLabel> out;
  for (size_t c = 0; c < scores.size(); ++c) {
    double p = std::exp(scores[c] - max_score) / z;
    if (p > 0.01) {
      out.push_back({labels_.NameOf(static_cast<uint32_t>(c)), p});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  if (out.size() > 5) out.resize(5);
  return out;
}

}  // namespace rulekit::ml
