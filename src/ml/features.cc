#include "src/ml/features.h"

#include "src/common/string_util.h"

namespace rulekit::ml {

FeatureExtractor::FeatureExtractor(FeatureOptions options)
    : options_(options) {}

std::vector<std::string> FeatureExtractor::RawFeatures(
    const data::ProductItem& item) const {
  std::vector<std::string> features = tokenizer_.Tokenize(item.title);

  if (options_.use_description) {
    if (auto desc = item.GetAttribute("Description"); desc.has_value()) {
      for (auto& t : tokenizer_.Tokenize(*desc)) {
        features.push_back("d:" + t);
      }
    }
  }
  if (options_.use_attributes) {
    for (const auto& [k, v] : item.attributes) {
      if (k == "Description" || k == "Price") continue;
      features.push_back("has:" + ToLowerAscii(k));
      if (k == "Brand") features.push_back("brand:" + ToLowerAscii(v));
    }
  }
  return features;
}

std::vector<text::TokenId> FeatureExtractor::InternFeatureIds(
    const data::ProductItem& item) {
  std::vector<text::TokenId> ids;
  for (const auto& f : RawFeatures(item)) ids.push_back(vocab_.Intern(f));
  return ids;
}

std::vector<text::TokenId> FeatureExtractor::LookupFeatureIds(
    const data::ProductItem& item) const {
  std::vector<text::TokenId> ids;
  for (const auto& f : RawFeatures(item)) {
    text::TokenId id = vocab_.Lookup(f);
    if (id != text::kInvalidTokenId) ids.push_back(id);
  }
  return ids;
}

}  // namespace rulekit::ml
