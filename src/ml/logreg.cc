#include "src/ml/logreg.h"

#include <algorithm>
#include <cmath>

namespace rulekit::ml {

LogRegClassifier::LogRegClassifier(
    std::shared_ptr<FeatureExtractor> extractor, LogRegOptions options)
    : extractor_(std::move(extractor)), options_(options) {}

void LogRegClassifier::Train(const std::vector<data::LabeledItem>& data) {
  // First pass: intern features and labels.
  std::vector<std::vector<text::TokenId>> xs;
  std::vector<uint32_t> ys;
  xs.reserve(data.size());
  ys.reserve(data.size());
  for (const auto& li : data) {
    xs.push_back(extractor_->InternFeatureIds(li.item));
    ys.push_back(labels_.Intern(li.label));
  }
  num_features_ = extractor_->vocabulary().size();
  const size_t num_classes = labels_.size();
  const size_t stride = num_features_ + 1;  // +1 bias
  weights_.assign(num_classes * stride, 0.0);

  Rng rng(options_.seed);
  std::vector<size_t> order(xs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> logits(num_classes);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        options_.learning_rate / (1.0 + 0.5 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const auto& x = xs[idx];
      if (x.empty()) continue;
      const double inv_len = 1.0 / static_cast<double>(x.size());
      // logits = W x (x entries have weight inv_len; bias always on).
      for (size_t c = 0; c < num_classes; ++c) {
        double z = weights_[c * stride + num_features_];
        for (text::TokenId t : x) z += weights_[c * stride + t] * inv_len;
        logits[c] = z;
      }
      double max_z = *std::max_element(logits.begin(), logits.end());
      double sum = 0.0;
      for (size_t c = 0; c < num_classes; ++c) {
        logits[c] = std::exp(logits[c] - max_z);
        sum += logits[c];
      }
      for (size_t c = 0; c < num_classes; ++c) {
        const double p = logits[c] / sum;
        const double grad = p - (ys[idx] == c ? 1.0 : 0.0);
        if (std::abs(grad) < 1e-9) continue;
        double* w = &weights_[c * stride];
        w[num_features_] -= lr * grad;
        const double step = lr * grad * inv_len;
        for (text::TokenId t : x) {
          w[t] -= step + lr * options_.l2 * w[t];
        }
      }
    }
  }
}

double LogRegClassifier::WeightAt(size_t cls, text::TokenId t) const {
  return weights_[cls * (num_features_ + 1) + t];
}

std::vector<ScoredLabel> LogRegClassifier::Predict(
    const data::ProductItem& item) const {
  const size_t num_classes = labels_.size();
  if (num_classes == 0) return {};
  auto ids = extractor_->LookupFeatureIds(item);
  if (ids.empty()) return {};
  // Features interned after training have no weights.
  std::vector<text::TokenId> usable;
  for (text::TokenId t : ids) {
    if (t < num_features_) usable.push_back(t);
  }
  if (usable.empty()) return {};
  const double inv_len = 1.0 / static_cast<double>(usable.size());
  const size_t stride = num_features_ + 1;

  std::vector<double> logits(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    double z = weights_[c * stride + num_features_];
    for (text::TokenId t : usable) z += weights_[c * stride + t] * inv_len;
    logits[c] = z;
  }
  double max_z = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& z : logits) {
    z = std::exp(z - max_z);
    sum += z;
  }
  std::vector<ScoredLabel> out;
  for (size_t c = 0; c < num_classes; ++c) {
    double p = logits[c] / sum;
    if (p > 0.01) {
      out.push_back({labels_.NameOf(static_cast<uint32_t>(c)), p});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  if (out.size() > 5) out.resize(5);
  return out;
}

}  // namespace rulekit::ml
