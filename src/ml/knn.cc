#include "src/ml/knn.h"

#include <algorithm>

namespace rulekit::ml {

KnnClassifier::KnnClassifier(std::shared_ptr<FeatureExtractor> extractor,
                             size_t k)
    : extractor_(std::move(extractor)), k_(std::max<size_t>(1, k)) {}

void KnnClassifier::Train(const std::vector<data::LabeledItem>& data) {
  std::vector<std::vector<text::TokenId>> id_lists;
  id_lists.reserve(data.size());
  for (const auto& li : data) {
    id_lists.push_back(extractor_->InternFeatureIds(li.item));
    tfidf_.AddDocument(id_lists.back());
  }
  docs_.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    Doc doc;
    doc.vector = tfidf_.VectorizeNormalized(id_lists[i]);
    doc.label = labels_.Intern(data[i].label);
    uint32_t doc_id = static_cast<uint32_t>(docs_.size());
    for (const auto& [t, w] : doc.vector.entries()) {
      postings_[t].push_back(doc_id);
    }
    docs_.push_back(std::move(doc));
  }
}

std::vector<ScoredLabel> KnnClassifier::Predict(
    const data::ProductItem& item) const {
  if (docs_.empty()) return {};
  auto ids = extractor_->LookupFeatureIds(item);
  if (ids.empty()) return {};
  text::SparseVector query = tfidf_.VectorizeNormalized(ids);

  // Accumulate dot products over postings (vectors are normalized, so the
  // dot product is the cosine).
  std::unordered_map<uint32_t, double> similarity;
  for (const auto& [t, w] : query.entries()) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    for (uint32_t doc_id : it->second) {
      similarity[doc_id] += w * docs_[doc_id].vector.WeightOf(t);
    }
  }
  if (similarity.empty()) return {};

  // Top-k by similarity.
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(similarity.size());
  for (const auto& [doc_id, sim] : similarity) {
    scored.emplace_back(sim, doc_id);
  }
  size_t k = std::min(k_, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) { return a > b; });

  // Similarity-weighted vote among the neighbors.
  std::unordered_map<uint32_t, double> votes;
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    votes[docs_[scored[i].second].label] += scored[i].first;
    total += scored[i].first;
  }
  if (total <= 0.0) return {};

  std::vector<ScoredLabel> out;
  for (const auto& [label, v] : votes) {
    out.push_back({labels_.NameOf(label), v / total});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  return out;
}

}  // namespace rulekit::ml
