#ifndef RULEKIT_ML_LOGREG_H_
#define RULEKIT_ML_LOGREG_H_

#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/ml/classifier.h"
#include "src/ml/features.h"

namespace rulekit::ml {

/// Hyperparameters of the softmax-regression learner.
struct LogRegOptions {
  size_t epochs = 15;
  double learning_rate = 0.6;
  double l2 = 1e-6;
  uint64_t seed = 31;
};

/// Multinomial (softmax) logistic regression trained with SGD over sparse
/// token counts. Serves as the maximum-margin-style member of Chimera's
/// ensemble (standing in for the paper's SVM; a linear decision boundary
/// over the same features exercises the same pipeline role).
class LogRegClassifier : public Classifier {
 public:
  LogRegClassifier(std::shared_ptr<FeatureExtractor> extractor,
                   LogRegOptions options = {});

  void Train(const std::vector<data::LabeledItem>& data);

  std::vector<ScoredLabel> Predict(
      const data::ProductItem& item) const override;
  std::string name() const override { return "logreg"; }

 private:
  double WeightAt(size_t cls, text::TokenId t) const;

  std::shared_ptr<FeatureExtractor> extractor_;
  LogRegOptions options_;
  LabelSpace labels_;
  size_t num_features_ = 0;
  std::vector<double> weights_;  // num_classes x (num_features + 1 bias)
};

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_LOGREG_H_
