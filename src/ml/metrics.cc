#include "src/ml/metrics.h"

namespace rulekit::ml {

EvalSummary Summarize(const std::vector<Observation>& observations) {
  EvalSummary out;
  out.total = observations.size();
  for (const auto& obs : observations) {
    if (!obs.predicted.has_value()) continue;
    ++out.predicted;
    if (*obs.predicted == obs.gold) ++out.correct;
  }
  return out;
}

std::map<std::string, ClassMetrics> PerClass(
    const std::vector<Observation>& observations) {
  std::map<std::string, ClassMetrics> out;
  for (const auto& obs : observations) {
    out[obs.gold].gold_count += 1;
    if (obs.predicted.has_value()) {
      ClassMetrics& pm = out[*obs.predicted];
      pm.predicted_count += 1;
      if (*obs.predicted == obs.gold) pm.correct += 1;
    }
  }
  return out;
}

}  // namespace rulekit::ml
