#ifndef RULEKIT_ML_ENSEMBLE_H_
#define RULEKIT_ML_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/classifier.h"

namespace rulekit::ml {

/// Weighted score-averaging ensemble: the "combine them into an ensemble"
/// step of the paper's default learning-based solution (§3.1). Member
/// scores for the same label are summed with member weights and
/// renormalized.
class EnsembleClassifier : public Classifier {
 public:
  EnsembleClassifier() = default;

  /// Adds a member with a voting weight. Members are not owned exclusively;
  /// they may be shared with a Chimera pipeline.
  void AddMember(std::shared_ptr<Classifier> member, double weight = 1.0);

  size_t num_members() const { return members_.size(); }

  std::vector<ScoredLabel> Predict(
      const data::ProductItem& item) const override;
  std::string name() const override { return "ensemble"; }

 private:
  std::vector<std::pair<std::shared_ptr<Classifier>, double>> members_;
};

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_ENSEMBLE_H_
