#ifndef RULEKIT_ML_SPLIT_H_
#define RULEKIT_ML_SPLIT_H_

#include <vector>

#include "src/common/random.h"
#include "src/data/product.h"

namespace rulekit::ml {

/// Shuffled split into (train, test) with `test_fraction` of items in test.
std::pair<std::vector<data::LabeledItem>, std::vector<data::LabeledItem>>
RandomSplit(std::vector<data::LabeledItem> items, double test_fraction,
            Rng& rng);

/// Class-stratified split: each label contributes ~test_fraction of its
/// items to the test set (at least one stays in train when possible).
std::pair<std::vector<data::LabeledItem>, std::vector<data::LabeledItem>>
StratifiedSplit(const std::vector<data::LabeledItem>& items,
                double test_fraction, Rng& rng);

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_SPLIT_H_
