#ifndef RULEKIT_ML_NAIVE_BAYES_H_
#define RULEKIT_ML_NAIVE_BAYES_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/features.h"

namespace rulekit::ml {

/// Multinomial Naive Bayes over token features with Laplace smoothing —
/// one of the stock learners in Chimera's ensemble (§3.1/§3.3).
class NaiveBayesClassifier : public Classifier {
 public:
  /// `extractor` is shared with the other ensemble members so all see the
  /// same vocabulary; it must outlive the classifier.
  explicit NaiveBayesClassifier(std::shared_ptr<FeatureExtractor> extractor,
                                double alpha = 0.1);

  /// Fits class priors and token likelihoods.
  void Train(const std::vector<data::LabeledItem>& data);

  std::vector<ScoredLabel> Predict(
      const data::ProductItem& item) const override;
  std::string name() const override { return "naive_bayes"; }

  size_t num_classes() const { return labels_.size(); }

 private:
  std::shared_ptr<FeatureExtractor> extractor_;
  double alpha_;
  LabelSpace labels_;
  std::vector<double> log_prior_;
  // Per class: token -> log P(token | class); plus the default log-prob of
  // an unseen token under that class.
  std::vector<std::unordered_map<text::TokenId, double>> log_likelihood_;
  std::vector<double> default_log_likelihood_;
};

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_NAIVE_BAYES_H_
