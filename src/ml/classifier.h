#ifndef RULEKIT_ML_CLASSIFIER_H_
#define RULEKIT_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/data/product.h"

namespace rulekit::ml {

/// A candidate product type with a weight in [0, 1]. Classifiers return a
/// (possibly empty) ranked list; the Chimera voting master combines lists
/// from several classifiers (paper §3.3: "each prediction is a list of
/// product types together with weights").
struct ScoredLabel {
  std::string label;
  double score = 0.0;
};

/// Common interface of all Chimera classifiers — learning-based (this
/// module) and rule-based (src/engine).
///
/// Predict/PredictBatch must be safe to call from several threads at once
/// on a const classifier: trained/built state is immutable after
/// construction, and implementations keep no mutable per-call caches.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Ranked candidate types for an item; empty = declines to predict.
  virtual std::vector<ScoredLabel> Predict(
      const data::ProductItem& item) const = 0;

  /// Batch prediction, one ranked list per item. The default parallelizes
  /// per-item Predict over `pool` (null = sequential); rule-based
  /// classifiers override it with the indexed batch executor. Results are
  /// identical to calling Predict on each item.
  virtual std::vector<std::vector<ScoredLabel>> PredictBatch(
      const std::vector<const data::ProductItem*>& items,
      ThreadPool* pool) const {
    std::vector<std::vector<ScoredLabel>> out(items.size());
    auto run = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = Predict(*items[i]);
    };
    if (pool != nullptr && items.size() > 1) {
      pool->ParallelFor(items.size(), run);
    } else {
      run(0, items.size());
    }
    return out;
  }

  /// Human-readable classifier name for reports.
  virtual std::string name() const = 0;
};

/// Convenience: the top-scoring label, or nullopt if the classifier
/// declined.
inline const ScoredLabel* TopLabel(const std::vector<ScoredLabel>& scored) {
  const ScoredLabel* best = nullptr;
  for (const auto& s : scored) {
    if (best == nullptr || s.score > best->score) best = &s;
  }
  return best;
}

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_CLASSIFIER_H_
