#ifndef RULEKIT_ML_CLASSIFIER_H_
#define RULEKIT_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/data/product.h"

namespace rulekit::ml {

/// A candidate product type with a weight in [0, 1]. Classifiers return a
/// (possibly empty) ranked list; the Chimera voting master combines lists
/// from several classifiers (paper §3.3: "each prediction is a list of
/// product types together with weights").
struct ScoredLabel {
  std::string label;
  double score = 0.0;
};

/// Common interface of all Chimera classifiers — learning-based (this
/// module) and rule-based (src/engine).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Ranked candidate types for an item; empty = declines to predict.
  virtual std::vector<ScoredLabel> Predict(
      const data::ProductItem& item) const = 0;

  /// Human-readable classifier name for reports.
  virtual std::string name() const = 0;
};

/// Convenience: the top-scoring label, or nullopt if the classifier
/// declined.
inline const ScoredLabel* TopLabel(const std::vector<ScoredLabel>& scored) {
  const ScoredLabel* best = nullptr;
  for (const auto& s : scored) {
    if (best == nullptr || s.score > best->score) best = &s;
  }
  return best;
}

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_CLASSIFIER_H_
