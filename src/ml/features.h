#ifndef RULEKIT_ML_FEATURES_H_
#define RULEKIT_ML_FEATURES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/product.h"
#include "src/text/tfidf.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace rulekit::ml {

/// Options for feature extraction from product items.
struct FeatureOptions {
  /// Include tokens from the "Description" attribute (prefixed "d:").
  bool use_description = true;
  /// Include attribute-presence features ("has:isbn") and brand identity
  /// features ("brand:apple").
  bool use_attributes = true;
};

/// Maps product items to sparse token-id feature vectors over a shared
/// vocabulary. Training-time extraction interns new tokens; inference-time
/// extraction only looks tokens up, so unseen words map to no feature.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureOptions options = {});

  /// Token ids of an item's features, interning unseen tokens (training).
  std::vector<text::TokenId> InternFeatureIds(const data::ProductItem& item);

  /// Token ids of an item's features; unseen tokens are dropped
  /// (inference).
  std::vector<text::TokenId> LookupFeatureIds(
      const data::ProductItem& item) const;

  const text::Vocabulary& vocabulary() const { return vocab_; }
  text::Vocabulary& vocabulary() { return vocab_; }

 private:
  std::vector<std::string> RawFeatures(const data::ProductItem& item) const;

  FeatureOptions options_;
  text::Tokenizer tokenizer_;
  text::Vocabulary vocab_;
};

/// Dense label (product type) interning shared by the learning classifiers.
class LabelSpace {
 public:
  uint32_t Intern(const std::string& label) { return vocab_.Intern(label); }
  uint32_t Lookup(const std::string& label) const {
    return vocab_.Lookup(label);
  }
  const std::string& NameOf(uint32_t id) const { return vocab_.TokenFor(id); }
  size_t size() const { return vocab_.size(); }

 private:
  text::Vocabulary vocab_;
};

}  // namespace rulekit::ml

#endif  // RULEKIT_ML_FEATURES_H_
