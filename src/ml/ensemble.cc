#include "src/ml/ensemble.h"

#include <algorithm>
#include <unordered_map>

namespace rulekit::ml {

void EnsembleClassifier::AddMember(std::shared_ptr<Classifier> member,
                                   double weight) {
  members_.emplace_back(std::move(member), weight);
}

std::vector<ScoredLabel> EnsembleClassifier::Predict(
    const data::ProductItem& item) const {
  std::unordered_map<std::string, double> sums;
  double total_weight = 0.0;
  for (const auto& [member, weight] : members_) {
    auto scored = member->Predict(item);
    if (scored.empty()) continue;
    total_weight += weight;
    for (const auto& s : scored) {
      sums[s.label] += weight * s.score;
    }
  }
  if (sums.empty() || total_weight <= 0.0) return {};
  std::vector<ScoredLabel> out;
  out.reserve(sums.size());
  for (const auto& [label, sum] : sums) {
    out.push_back({label, sum / total_weight});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  return out;
}

}  // namespace rulekit::ml
