#ifndef RULEKIT_EM_MATCH_RULE_H_
#define RULEKIT_EM_MATCH_RULE_H_

#include <string>
#include <vector>

#include "src/data/product.h"

namespace rulekit::em {

/// Similarity operator of one EM condition.
enum class EmOp {
  kExactEqual,       // attribute values equal (case-insensitive)
  kJaccard3Gram,     // jaccard.3g(a, b) >= threshold (the paper's example)
  kEditSimilarity,   // normalized edit similarity >= threshold
  kNumericTolerance, // |a - b| <= threshold (both numeric)
};

/// One conjunct over a record pair. `attribute` may be "Title" (the title
/// field) or any attribute name.
struct EmCondition {
  std::string attribute;
  EmOp op = EmOp::kExactEqual;
  double threshold = 0.0;

  /// Evaluates the conjunct; missing attributes fail the condition.
  bool Eval(const data::ProductItem& a, const data::ProductItem& b) const;

  std::string ToString() const;
};

/// A declarative match rule: the conjunction of its conditions implies a
/// match. The paper's example (§6):
///   [a.isbn = b.isbn] ∧ [jaccard.3g(a.title, b.title) >= 0.8] => a ≈ b
class EmRule {
 public:
  EmRule(std::string id, std::vector<EmCondition> conditions);

  const std::string& id() const { return id_; }
  const std::vector<EmCondition>& conditions() const { return conditions_; }

  /// True if every condition holds (symmetric in a, b for all ops).
  bool Matches(const data::ProductItem& a, const data::ProductItem& b) const;

  std::string ToString() const;

 private:
  std::string id_;
  std::vector<EmCondition> conditions_;
};

}  // namespace rulekit::em

#endif  // RULEKIT_EM_MATCH_RULE_H_
