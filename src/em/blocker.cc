#include "src/em/blocker.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "src/text/tokenizer.h"

namespace rulekit::em {

namespace {

// Blocking keys of a record: its (sufficiently long) title tokens plus an
// "isbn:" key when present.
std::vector<std::string> KeysOf(const data::ProductItem& item,
                                const BlockerOptions& options,
                                const text::Tokenizer& tokenizer) {
  std::vector<std::string> keys;
  for (auto& tok : tokenizer.Tokenize(item.title)) {
    if (tok.size() >= options.min_token_length) {
      keys.push_back(std::move(tok));
    }
  }
  if (auto isbn = item.GetAttribute("ISBN"); isbn.has_value()) {
    keys.push_back("isbn:" + std::string(*isbn));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace

TokenBlocker::TokenBlocker(BlockerOptions options) : options_(options) {}

std::vector<std::pair<uint32_t, uint32_t>> TokenBlocker::CandidatePairs(
    const std::vector<data::ProductItem>& records) const {
  text::Tokenizer tokenizer;
  std::unordered_map<std::string, std::vector<uint32_t>> blocks;
  for (uint32_t i = 0; i < records.size(); ++i) {
    for (const auto& key : KeysOf(records[i], options_, tokenizer)) {
      blocks[key].push_back(i);
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& [key, members] : blocks) {
    if (members.size() > options_.max_block_size) continue;
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        pairs.emplace_back(members[a], members[b]);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::vector<std::pair<uint32_t, uint32_t>>
TokenBlocker::CandidatePairsAcross(
    const std::vector<data::ProductItem>& left,
    const std::vector<data::ProductItem>& right) const {
  text::Tokenizer tokenizer;
  std::unordered_map<std::string, std::vector<uint32_t>> right_blocks;
  for (uint32_t j = 0; j < right.size(); ++j) {
    for (const auto& key : KeysOf(right[j], options_, tokenizer)) {
      right_blocks[key].push_back(j);
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (const auto& key : KeysOf(left[i], options_, tokenizer)) {
      auto it = right_blocks.find(key);
      if (it == right_blocks.end()) continue;
      if (it->second.size() > options_.max_block_size) continue;
      for (uint32_t j : it->second) pairs.emplace_back(i, j);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace rulekit::em
