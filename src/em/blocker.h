#ifndef RULEKIT_EM_BLOCKER_H_
#define RULEKIT_EM_BLOCKER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/data/product.h"

namespace rulekit::em {

/// Options for token blocking.
struct BlockerOptions {
  /// Tokens shorter than this do not form blocks (too common).
  size_t min_token_length = 3;
  /// Blocks larger than this are skipped (stopword-like tokens would
  /// otherwise produce quadratic candidate blowup).
  size_t max_block_size = 200;
};

/// Standard token blocking: candidate pairs share at least one title token
/// (or an exact key attribute value like ISBN). Blocking is what makes
/// rule-based EM feasible over large catalogs — evaluating every pair is
/// quadratic.
class TokenBlocker {
 public:
  explicit TokenBlocker(BlockerOptions options = {});

  /// Candidate pairs (i, j), i < j, within one record collection.
  std::vector<std::pair<uint32_t, uint32_t>> CandidatePairs(
      const std::vector<data::ProductItem>& records) const;

  /// Candidate pairs (i, j) across two collections: i indexes `left`,
  /// j indexes `right`.
  std::vector<std::pair<uint32_t, uint32_t>> CandidatePairsAcross(
      const std::vector<data::ProductItem>& left,
      const std::vector<data::ProductItem>& right) const;

 private:
  BlockerOptions options_;
};

}  // namespace rulekit::em

#endif  // RULEKIT_EM_BLOCKER_H_
