#include "src/em/matcher.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace rulekit::em {

EmMatcher::EmMatcher(std::vector<EmRule> match_rules,
                     std::vector<EmRule> reject_rules)
    : rules_(std::move(match_rules)), rejects_(std::move(reject_rules)) {}

bool EmMatcher::Matches(const data::ProductItem& a,
                        const data::ProductItem& b,
                        std::string* rule_id) const {
  // Scan all rules and report the lowest id, so the explanation (not just
  // the decision) is independent of rule order.
  const EmRule* best = nullptr;
  for (const auto& rule : rules_) {
    if (!rule.Matches(a, b)) continue;
    if (best == nullptr || rule.id() < best->id()) best = &rule;
  }
  if (best == nullptr) return false;
  for (const auto& reject : rejects_) {
    if (reject.Matches(a, b)) return false;
  }
  if (rule_id != nullptr) *rule_id = best->id();
  return true;
}

std::vector<MatchDecision> EmMatcher::MatchAll(
    const std::vector<data::ProductItem>& records,
    const TokenBlocker& blocker) const {
  std::vector<MatchDecision> out;
  for (const auto& [i, j] : blocker.CandidatePairs(records)) {
    std::string rule_id;
    if (Matches(records[i], records[j], &rule_id)) {
      out.push_back({i, j, rule_id});
    }
  }
  return out;
}

data::ProductItem PerturbItem(const data::ProductItem& item, Rng& rng,
                              double token_dropout, double typo_prob,
                              double attr_dropout) {
  data::ProductItem out;
  out.id = item.id + "-dup";
  // Token dropout, preserving order.
  std::vector<std::string> kept;
  for (const auto& tok : SplitWhitespace(item.title)) {
    if (kept.empty() || !rng.Bernoulli(token_dropout)) kept.push_back(tok);
  }
  out.title = Join(kept, " ");
  // Typo: one adjacent transposition.
  if (out.title.size() > 3 && rng.Bernoulli(typo_prob)) {
    size_t i = 1 + rng.Uniform(out.title.size() - 2);
    if (out.title[i] != ' ' && out.title[i + 1] != ' ') {
      std::swap(out.title[i], out.title[i + 1]);
    }
  }
  for (const auto& [k, v] : item.attributes) {
    if (k != "ISBN" && rng.Bernoulli(attr_dropout)) continue;
    out.attributes.emplace_back(k, v);
  }
  return out;
}

}  // namespace rulekit::em
