#include "src/em/match_rule.h"

#include <cmath>
#include <cstdlib>

#include "src/common/string_util.h"
#include "src/text/similarity.h"

namespace rulekit::em {

namespace {

std::optional<std::string> FieldOf(const data::ProductItem& item,
                                   const std::string& attribute) {
  if (attribute == "Title") return item.title;
  auto v = item.GetAttribute(attribute);
  if (!v.has_value()) return std::nullopt;
  return std::string(*v);
}

}  // namespace

bool EmCondition::Eval(const data::ProductItem& a,
                       const data::ProductItem& b) const {
  auto va = FieldOf(a, attribute);
  auto vb = FieldOf(b, attribute);
  if (!va.has_value() || !vb.has_value()) return false;
  switch (op) {
    case EmOp::kExactEqual:
      return ToLowerAscii(*va) == ToLowerAscii(*vb);
    case EmOp::kJaccard3Gram:
      return text::JaccardNGram(ToLowerAscii(*va), ToLowerAscii(*vb), 3) >=
             threshold;
    case EmOp::kEditSimilarity:
      return text::EditSimilarity(ToLowerAscii(*va), ToLowerAscii(*vb)) >=
             threshold;
    case EmOp::kNumericTolerance: {
      char* end_a = nullptr;
      char* end_b = nullptr;
      double na = std::strtod(va->c_str(), &end_a);
      double nb = std::strtod(vb->c_str(), &end_b);
      if (end_a == va->c_str() || end_b == vb->c_str()) return false;
      return std::fabs(na - nb) <= threshold;
    }
  }
  return false;
}

std::string EmCondition::ToString() const {
  switch (op) {
    case EmOp::kExactEqual:
      return StrFormat("[a.%s = b.%s]", attribute.c_str(),
                       attribute.c_str());
    case EmOp::kJaccard3Gram:
      return StrFormat("[jaccard.3g(a.%s, b.%s) >= %.2f]",
                       attribute.c_str(), attribute.c_str(), threshold);
    case EmOp::kEditSimilarity:
      return StrFormat("[editsim(a.%s, b.%s) >= %.2f]", attribute.c_str(),
                       attribute.c_str(), threshold);
    case EmOp::kNumericTolerance:
      return StrFormat("[|a.%s - b.%s| <= %.2f]", attribute.c_str(),
                       attribute.c_str(), threshold);
  }
  return "";
}

EmRule::EmRule(std::string id, std::vector<EmCondition> conditions)
    : id_(std::move(id)), conditions_(std::move(conditions)) {}

bool EmRule::Matches(const data::ProductItem& a,
                     const data::ProductItem& b) const {
  for (const auto& c : conditions_) {
    if (!c.Eval(a, b)) return false;
  }
  return !conditions_.empty();
}

std::string EmRule::ToString() const {
  std::string out = id_ + ": ";
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i) out += " AND ";
    out += conditions_[i].ToString();
  }
  out += " => match";
  return out;
}

}  // namespace rulekit::em
