#ifndef RULEKIT_EM_MATCHER_H_
#define RULEKIT_EM_MATCHER_H_

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/em/blocker.h"
#include "src/em/match_rule.h"

namespace rulekit::em {

/// One declared match with the rule that fired first (for explainability —
/// one of the paper's core reasons rules survive in industry).
struct MatchDecision {
  uint32_t left = 0;
  uint32_t right = 0;
  std::string rule_id;
};

/// Rule-based entity matcher: a pair matches iff ANY rule matches it
/// (disjunctive semantics). Because the rules vote independently and
/// positively, the match set is invariant under rule reordering — the
/// §5.3 question "would executing these rules in any order give us the
/// same matching result?" has answer yes for this semantics, and the tests
/// verify it.
class EmMatcher {
 public:
  /// `match_rules` assert matches; `reject_rules` veto them (the analysts'
  /// blacklist analog for EM): a pair matches iff some match rule fires
  /// AND no reject rule fires. Both directions are order-independent.
  explicit EmMatcher(std::vector<EmRule> match_rules,
                     std::vector<EmRule> reject_rules = {});

  const std::vector<EmRule>& match_rules() const { return rules_; }
  const std::vector<EmRule>& reject_rules() const { return rejects_; }

  /// True if some match rule fires and no reject rule does; fills
  /// `rule_id` (lowest-id firing match rule, order-independent) when
  /// provided.
  bool Matches(const data::ProductItem& a, const data::ProductItem& b,
               std::string* rule_id = nullptr) const;

  /// All matches within one collection, via token blocking.
  std::vector<MatchDecision> MatchAll(
      const std::vector<data::ProductItem>& records,
      const TokenBlocker& blocker) const;

 private:
  std::vector<EmRule> rules_;
  std::vector<EmRule> rejects_;
};

/// Produces a noisy duplicate of an item — token dropout, transposition
/// typos, attribute dropout — for EM benchmarks (the synthetic stand-in
/// for real duplicate listings from different vendors).
data::ProductItem PerturbItem(const data::ProductItem& item, Rng& rng,
                              double token_dropout = 0.15,
                              double typo_prob = 0.2,
                              double attr_dropout = 0.3);

}  // namespace rulekit::em

#endif  // RULEKIT_EM_MATCHER_H_
