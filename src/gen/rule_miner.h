#ifndef RULEKIT_GEN_RULE_MINER_H_
#define RULEKIT_GEN_RULE_MINER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/product.h"
#include "src/rules/rule.h"

namespace rulekit::gen {

/// Knobs of the §5.2 rule generator. Defaults mirror the paper: minimum
/// support 0.001 within a type's titles, 2-4 tokens per rule, confidence
/// threshold α = 0.7 splitting high/low-confidence rules, and up to q = 500
/// selected rules per type.
struct RuleMinerConfig {
  double min_support = 0.001;
  size_t min_tokens = 2;
  size_t max_tokens = 4;
  double alpha = 0.7;
  size_t max_rules_per_type = 500;
  /// Drop candidate rules that match any title of a different type
  /// ("we only consider those rules that do not make any incorrect
  /// predictions on training data", §7).
  bool require_consistency = true;
  /// Confidence model weights (linear combination, §5.2): does the rule
  /// contain the type's head noun (the last type-name token), the full
  /// type name, how many type-name tokens appear, and the rule's support.
  double w_head_token = 0.45;
  double w_full_type_name = 0.1;
  double w_type_name_tokens = 0.2;
  double w_support = 0.25;
};

/// One mined rule: token sequence a1..an, compiled as a1.*a2.*...*an => t.
struct MinedRule {
  std::vector<std::string> tokens;
  std::string type;
  size_t support_count = 0;
  double support = 0.0;     // fraction of the type's titles
  double confidence = 0.0;  // [0,1]
  std::vector<uint32_t> covered;  // indices of the type's titles it touches

  /// "a1.*a2.*a3" — the display form of Rule R4 (§5.2).
  std::string Pattern() const;

  /// A whitelist Rule (origin kMined, confidence attached). The compiled
  /// pattern is the token-anchored form (rules/token_pattern.h) so that
  /// matching equals token-subsequence semantics. `id` must be unique in
  /// the receiving rule set.
  Result<rules::Rule> ToRule(std::string id) const;
};

/// Outcome of mining + selection over a labeled corpus.
struct MiningOutcome {
  size_t candidates_mined = 0;      // frequent sequences across all types
  size_t candidates_consistent = 0; // after the consistency filter
  std::vector<MinedRule> selected;  // after Greedy-Biased selection
  size_t num_high_confidence = 0;   // selected with confidence >= alpha
  size_t num_low_confidence = 0;
};

/// Mines classification rules from labeled data (paper §5.2): frequent
/// token sequences per type (AprioriAll), a confidence score per rule, a
/// consistency filter against other types' titles, and Greedy-Biased
/// subset selection (Algorithm 2) per type.
MiningOutcome MineRules(const std::vector<data::LabeledItem>& labeled,
                        const RuleMinerConfig& config = {});

}  // namespace rulekit::gen

#endif  // RULEKIT_GEN_RULE_MINER_H_
