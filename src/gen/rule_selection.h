#ifndef RULEKIT_GEN_RULE_SELECTION_H_
#define RULEKIT_GEN_RULE_SELECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rulekit::gen {

/// Input to rule-subset selection: each candidate rule has a confidence
/// and the set of item indices it covers.
struct SelectionCandidate {
  double confidence = 0.0;
  std::vector<uint32_t> covered;  // sorted unique item indices
};

/// Algorithm 1 (Greedy): repeatedly pick the rule maximizing
/// |new coverage| * confidence; stop at q rules or when no rule adds
/// coverage. Returns indices into `candidates` in selection order.
/// `universe_size` bounds the item indices.
std::vector<size_t> GreedySelect(
    const std::vector<SelectionCandidate>& candidates, size_t universe_size,
    size_t q);

/// Algorithm 2 (Greedy-Biased): split candidates at confidence >= alpha,
/// exhaust Greedy over the high-confidence pool first, then fill the
/// remaining quota from the low-confidence pool over the still-uncovered
/// items.
std::vector<size_t> GreedyBiasedSelect(
    const std::vector<SelectionCandidate>& candidates, size_t universe_size,
    size_t q, double alpha);

}  // namespace rulekit::gen

#endif  // RULEKIT_GEN_RULE_SELECTION_H_
